"""Section 4.1 Abbe-acceleration claim: batched source-point imaging.

The paper's argument: Abbe's per-source-point contributions are
independent, so with enough parallel lanes Abbe matches Hopkins' wall
time.  On one CPU the analogue is batching the per-point FFTs into one
vectorized stack; this bench quantifies the batched-vs-loop speedup and
the remaining Abbe/Hopkins gap (~S/Q, Section 3.1's complexity ratio).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.harness.runner import _annular_source, _target_image
from repro.optics import AbbeImaging, HopkinsImaging


@pytest.fixture(scope="module")
def setup(settings, datasets):
    cfg = settings.config
    clip = datasets[0][0]
    target = _target_image(clip, cfg)
    source = _annular_source(cfg)
    abbe = AbbeImaging(cfg)
    hopkins = HopkinsImaging(cfg, source, num_kernels=cfg.socs_terms)
    mask = ad.Tensor(target)
    src = ad.Tensor(source)
    return abbe, hopkins, mask, src


def test_abbe_forward_batched(benchmark, setup):
    abbe, _, mask, src = setup
    with ad.no_grad():
        benchmark(lambda: abbe.aerial(mask, src).data)
    benchmark.extra_info["source_points"] = abbe.num_source_points


def test_abbe_forward_loop(benchmark, setup):
    """The unbatched reference — the 'serial Abbe' the paper accelerates."""
    abbe, _, mask, src = setup
    with ad.no_grad():
        benchmark(lambda: abbe.aerial_loop(mask, src).data)


def test_hopkins_forward(benchmark, setup):
    _, hopkins, mask, _ = setup
    with ad.no_grad():
        benchmark(lambda: hopkins.aerial(mask).data)
    benchmark.extra_info["kernels"] = hopkins.num_kernels


def test_abbe_forward_backward(benchmark, setup):
    """Forward + both gradients — the real per-iteration cost of SMO."""
    abbe, _, mask, src = setup

    def step():
        m = ad.Tensor(mask.data, requires_grad=True)
        s = ad.Tensor(src.data + 0.05, requires_grad=True)
        loss = F.sum(F.power(abbe.aerial(m, s), 2.0))
        gm, gs = ad.grad(loss, [m, s])
        return gm.data, gs.data

    benchmark(step)


def test_batched_equals_loop_result(setup):
    """Correctness guard for the acceleration: identical images."""
    abbe, _, mask, src = setup
    with ad.no_grad():
        fast = abbe.aerial(mask, src).data
        slow = abbe.aerial_loop(mask, src).data
    np.testing.assert_allclose(fast, slow, atol=1e-12)
