"""Aberration condition axis: shared-phase-group stacking vs per-corner passes.

The perf-regression gate for the Zernike aberration subsystem: a
3-aberration process window (nominal, astigmatism+defocus, coma —
crossed with 3 dose corners, so C=9 corners over F=3 pupil-phase
groups) evaluated through the fused condition axis
(:class:`repro.smo.ProcessWindowSMOObjective` ->
``engine.aerial_conditions`` -> one ``incoherent_image_stack`` node
sharing a single mask-spectrum FFT, corners sharing an aberration
sharing the whole imaging pass) must be

* >= ``SPEEDUP_GATE``x faster wall-clock than *per-corner independent
  passes* — one full ``incoherent_image`` evaluation (own mask FFT, own
  streamed kernel pass) per corner —

with loss/gradient parity to ``PARITY_RTOL`` against both that
per-corner loop and the composed-op reference graph (a ``fused=False``
engine building one ``incoherent_image_composed`` per condition).
Results are appended to ``BENCH_aberration.json`` via
:mod:`bench_runner`.

Run as a script (CI parity mode skips the timing gate)::

    PYTHONPATH=src python benchmarks/bench_aberration.py          # full gate
    PYTHONPATH=src python benchmarks/bench_aberration.py --check  # parity only

or through pytest like the other bench modules::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_aberration.py

Knobs: ``BISMO_AB_SCALE`` (optical preset, default ``small``),
``BISMO_AB_TILES`` (batch size, default 4), ``BISMO_AB_CHECK_ONLY=1``
(parity asserts only — for shared CI runners where sub-second timings
flake).
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, Tuple

import numpy as np

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.harness.runner import _annular_source
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import AbbeImaging, OpticalConfig, ProcessWindow, fftlib
from repro.smo import ProcessWindowSMOObjective, dose_resist
from repro.smo.objective import robust_corner_loss
from repro.smo.parametrization import (
    init_theta_mask,
    init_theta_source,
    mask_from_theta,
    source_from_theta,
)
from bench_env import env_flag, env_int, env_str

SCALE = env_str("BISMO_AB_SCALE", "small")
NUM_TILES = env_int("BISMO_AB_TILES", 4)
CHECK_ONLY = env_flag("BISMO_AB_CHECK_ONLY")

DOSES = (0.97, 1.0, 1.03)
#: The 3-aberration condition axis: nominal, an even-parity mix
#: (defocus + astigmatism), and an odd-parity coma condition.
ABERRATIONS = (
    None,
    {"Z4": 40.0, "Z5": 25.0},
    {"Z7": 30.0},
)

SPEEDUP_GATE = 1.5
PARITY_RTOL = 1e-8


def _setup(scale: str = SCALE, num_tiles: int = NUM_TILES):
    from conftest import rescale_clips

    cfg = OpticalConfig.preset(scale)
    window = ProcessWindow.from_grid(
        DOSES, focus_nm=(), aberrations=ABERRATIONS
    )
    ds = rescale_clips(dataset_by_name("ICCAD13", num_clips=num_tiles), cfg)
    targets = tile_stack(ds, cfg)
    source = _annular_source(cfg)
    theta_j = init_theta_source(source, cfg)
    theta_m = init_theta_mask(targets, cfg)
    objective = ProcessWindowSMOObjective(cfg, targets, window)
    return cfg, window, targets, theta_j, theta_m, objective


def _grads(loss_fn, theta_j, theta_m) -> Tuple[float, np.ndarray, np.ndarray]:
    tj = ad.Tensor(theta_j, requires_grad=True)
    tm = ad.Tensor(theta_m, requires_grad=True)
    loss = loss_fn(tj, tm)
    gj, gm = ad.grad(loss, [tj, tm])
    return float(loss.data), gj.data, gm.data


def _per_corner_loss_fn(cfg, window, targets, engine):
    """C independent imaging passes — one ``incoherent_image`` per corner.

    The pre-subsystem consumer pattern: every corner re-images the mask
    from scratch (its own mask FFT, its own streamed kernel pass), even
    when corners share an aberration.
    """
    targets_t = ad.Tensor(targets)
    corner_stacks = [
        engine.condition_stacks((c.aberrations,))[0] for c in window.corners
    ]

    def loss_fn(tj: ad.Tensor, tm: ad.Tensor) -> ad.Tensor:
        source = source_from_theta(tj, cfg)
        mask = mask_from_theta(tm, cfg)
        j = engine.source_weights(source)
        jn = F.div(j, F.add(F.sum(j), 1e-12))
        losses = []
        for corner, (stack, pairs) in zip(window.corners, corner_stacks):
            aerial = F.incoherent_image(mask, stack, jn, conj_pairs=pairs)
            z = dose_resist(aerial, cfg, corner.dose, corner.intensity_threshold)
            losses.append(F.sum(F.power(F.sub(z, targets_t), 2.0)))
        return robust_corner_loss(losses, window)

    return loss_fn


def run_parity(setup=None) -> Dict[str, float]:
    """Fused stack == per-corner passes == composed-op reference."""
    cfg, window, targets, theta_j, theta_m, objective = setup or _setup()
    composed = ProcessWindowSMOObjective(
        cfg, targets, window, engine=AbbeImaging(cfg, fused=False)
    )
    lf, gjf, gmf = _grads(objective.loss, theta_j, theta_m)
    ln, gjn, gmn = _grads(
        _per_corner_loss_fn(cfg, window, targets, objective.engine),
        theta_j,
        theta_m,
    )
    lc, gjc, gmc = _grads(composed.loss, theta_j, theta_m)
    np.testing.assert_allclose(lf, ln, rtol=PARITY_RTOL)
    np.testing.assert_allclose(lf, lc, rtol=PARITY_RTOL)
    np.testing.assert_allclose(gjf, gjn, rtol=PARITY_RTOL, atol=1e-12)
    np.testing.assert_allclose(gmf, gmn, rtol=PARITY_RTOL, atol=1e-12)
    np.testing.assert_allclose(gjf, gjc, rtol=PARITY_RTOL, atol=1e-12)
    np.testing.assert_allclose(gmf, gmc, rtol=PARITY_RTOL, atol=1e-12)
    return {
        "loss": lf,
        "per_corner_loss_reldiff": abs(lf - ln) / abs(ln),
        "composed_loss_reldiff": abs(lf - lc) / abs(lc),
        "grad_j_maxdiff": float(np.abs(gjf - gjn).max()),
        "grad_m_maxdiff": float(np.abs(gmf - gmn).max()),
    }


def run_perf(setup=None, rounds: int = 5) -> Dict[str, float]:
    """Best-of-``rounds`` wall-clock: fused stack vs per-corner passes."""
    cfg, window, targets, theta_j, theta_m, objective = setup or _setup()
    per_corner = _per_corner_loss_fn(cfg, window, targets, objective.engine)

    def best_of(loss_fn) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            _grads(loss_fn, theta_j, theta_m)
            times.append(time.perf_counter() - t0)
        return min(times)

    t_fused = best_of(objective.loss)
    t_per_condition = best_of(objective.loss_reference)
    t_per_corner = best_of(per_corner)
    return {
        "corners": window.num_corners,
        "conditions": len(window.conditions()),
        "fused_ms": t_fused * 1e3,
        "per_condition_ms": t_per_condition * 1e3,
        "per_corner_ms": t_per_corner * 1e3,
        "speedup_vs_per_corner": t_per_corner / t_fused,
        "speedup_vs_per_condition": t_per_condition / t_fused,
    }


def _record(payload: Dict) -> None:
    try:
        from bench_runner import record_bench
    except ImportError:  # script run without benchmarks/ on sys.path
        import sys

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_runner import record_bench

    path = record_bench("aberration", payload)
    print(f"recorded -> {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="parity mode: run the numerical asserts, skip the timing "
        "gate (still records measurements)",
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--scale", default=SCALE, help="optical preset (default: %(default)s)"
    )
    parser.add_argument(
        "--tiles", type=int, default=NUM_TILES, help="batch size B"
    )
    args = parser.parse_args(argv)

    setup = _setup(args.scale, args.tiles)
    payload: Dict = {
        "scale": args.scale,
        "tiles": args.tiles,
        "doses": list(DOSES),
        "aberrations": [a if a is None else dict(a) for a in ABERRATIONS],
        "check_only": bool(args.check),
        "fftlib": fftlib.describe(),
    }
    payload["parity"] = run_parity(setup)
    print(
        f"parity ok: fused {len(DOSES) * len(ABERRATIONS)}-corner aberration "
        f"loss matches the per-corner passes and the composed reference to "
        f"{PARITY_RTOL:g}"
    )
    perf = run_perf(setup, rounds=args.rounds)
    payload["perf"] = perf
    print(
        f"B={args.tiles} {args.scale}, C={perf['corners']} corners / "
        f"F={perf['conditions']} aberration groups: fused "
        f"{perf['fused_ms']:.1f} ms vs per-condition "
        f"{perf['per_condition_ms']:.1f} ms vs per-corner "
        f"{perf['per_corner_ms']:.1f} ms "
        f"({perf['speedup_vs_per_corner']:.2f}x over per-corner)"
    )
    _record(payload)
    if not args.check:
        assert perf["speedup_vs_per_corner"] >= SPEEDUP_GATE, (
            f"shared-phase-group stacking only "
            f"{perf['speedup_vs_per_corner']:.2f}x over per-corner passes "
            f"(gate: {SPEEDUP_GATE}x)"
        )
        print(f"gate passed: >= {SPEEDUP_GATE}x over per-corner passes")
    return 0


# ----------------------------------------------------------------------
# pytest entry points (same checks, bench-suite conventions)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode needs no pytest
    pytest = None
else:

    @pytest.fixture(scope="module")
    def shared_setup():
        return _setup()


def test_aberration_parity(shared_setup):
    run_parity(shared_setup)


def test_aberration_speedup(shared_setup):
    if CHECK_ONLY:
        pytest.skip("BISMO_AB_CHECK_ONLY=1: parity-only mode, gate skipped")
    perf = run_perf(shared_setup)
    print(
        f"\naberration window: B={NUM_TILES} {SCALE} C={perf['corners']} "
        f"F={perf['conditions']} "
        f"speedup={perf['speedup_vs_per_corner']:.2f}x"
    )
    assert perf["speedup_vs_per_corner"] >= SPEEDUP_GATE


if __name__ == "__main__":
    raise SystemExit(main())
