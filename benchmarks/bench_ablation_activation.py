"""Section 3.1 ablation: sigmoid vs cosine activation stability.

The paper prefers the sigmoid activation because "the Cosine function
... may lead to training instability due to gradient issues".  This
bench optimizes the same MO problem under both activations and reports
final losses; the cosine run is expected to converge worse (its
gradient vanishes and flips sign periodically in theta).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.harness.runner import _annular_source, _target_image
from repro.opt import make_optimizer
from repro.smo import (
    AbbeSMOObjective,
    init_theta_mask,
    init_theta_source,
    mask_from_theta,
    mask_from_theta_cosine,
    source_from_theta,
)
from repro.smo.objective import smo_loss_from_aerial

from conftest import BENCH_ITERS


def _optimize_mask(cfg, objective, target, source, activation, iterations):
    """Plain MO loop with a pluggable mask activation."""
    theta_j = ad.Tensor(init_theta_source(source, cfg))
    theta_m = init_theta_mask(target, cfg)
    if activation is mask_from_theta_cosine:
        # cosine activation peaks at theta = pi/alpha; map the target
        # initialization onto the equivalent cosine arguments.
        theta_m = np.where(theta_m > 0, np.pi / cfg.alpha_m, 0.0)
    opt = make_optimizer("adam", 0.1)
    losses = []
    src = source_from_theta(theta_j, cfg)
    for _ in range(iterations):
        tm = ad.Tensor(theta_m, requires_grad=True)
        mask = activation(tm, cfg)
        aerial = objective.engine.aerial(mask, src)
        loss = smo_loss_from_aerial(aerial, objective.target, cfg)
        (g,) = ad.grad(loss, [tm])
        theta_m = opt.step(theta_m, g.data)
        losses.append(float(loss.data))
    return np.array(losses)


def test_activation_ablation(benchmark, settings, datasets):
    cfg = settings.config
    clip = datasets[0][0]
    target = _target_image(clip, cfg)
    source = _annular_source(cfg)
    objective = AbbeSMOObjective(cfg, target)

    def run_both():
        sig = _optimize_mask(
            cfg, objective, target, source, mask_from_theta, BENCH_ITERS
        )
        cos = _optimize_mask(
            cfg, objective, target, source, mask_from_theta_cosine, BENCH_ITERS
        )
        return sig, cos

    sig, cos = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nactivation ablation ({BENCH_ITERS} iters):")
    print(f"  sigmoid: {sig[0]:12.0f} -> {sig[-1]:12.0f}")
    print(f"  cosine:  {cos[0]:12.0f} -> {cos[-1]:12.0f}")
    benchmark.extra_info["sigmoid_final"] = float(sig[-1])
    benchmark.extra_info["cosine_final"] = float(cos[-1])

    assert np.all(np.isfinite(sig))
    # the paper's claim: sigmoid converges at least as well
    assert sig[-1] <= cos[-1] * 1.05
