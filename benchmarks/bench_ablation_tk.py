"""Algorithm 2 hyperparameter ablation: unroll steps T and terms K.

The paper fixes T = 3 and K = 5, citing BLO literature that small
unrolls suffice.  This bench sweeps T in {1, 3} and K in {0, 5} for
BiSMO-NMN (K = 0 degenerates to BiSMO-FD, Section 3.2.4) and reports the
final loss of each setting under the same outer-iteration budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.runner import _annular_source, _target_image
from repro.smo import AbbeSMOObjective, BiSMO

from conftest import BENCH_ITERS


@pytest.mark.parametrize("unroll", [1, 3])
@pytest.mark.parametrize("terms", [0, 5])
def test_unroll_terms_sweep(benchmark, settings, datasets, unroll, terms):
    cfg = settings.config
    clip = datasets[0][0]
    target = _target_image(clip, cfg)
    source = _annular_source(cfg)
    objective = AbbeSMOObjective(cfg, target)

    def run():
        solver = BiSMO(
            cfg,
            target,
            method="nmn",
            unroll_steps=unroll,
            terms=terms,
            objective=objective,
        )
        return solver.run(source, iterations=BENCH_ITERS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nBiSMO-NMN T={unroll} K={terms}: "
        f"{result.losses[0]:.0f} -> {result.final_loss:.0f} "
        f"({result.runtime_seconds:.1f}s)"
    )
    benchmark.extra_info["final_loss"] = result.final_loss
    benchmark.extra_info["runtime_s"] = result.runtime_seconds
    assert np.all(np.isfinite(result.losses))
    assert result.final_loss < result.losses[0]
