"""Batched multi-tile Abbe evaluation vs. the per-tile Python loop.

The tentpole claim of the ImagingEngine refactor: evaluating a layout
suite as one ``(B, N, N)`` batch through the engine's fused multi-tile
forward (plus the graph-free fast path) beats looping the single-tile
engine over the suite — the acceptance bar is >= 2x for B = 8 tiles
against the *pre-refactor* consumer pattern (per-tile composed-op
graphs, ``AbbeImaging(cfg, fused=False)``).  Since PR 3 the fused
``incoherent_image`` primitive has made even the per-tile *fused* loop
nearly as fast as the batched fast path in no-grad mode, so that loop
is reported for context but no longer gated.

Run like every other bench module, e.g.::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_batched_tiles.py \
        --benchmark-json=batched_tiles.json

``BISMO_BENCH_CHECK_ONLY=1`` keeps the parity asserts but skips the
wall-clock gate (CI check mode on shared runners).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.autodiff as ad
from repro.harness.runner import _annular_source
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import cache, engine_for

from conftest import BENCH_SCALE, BENCH_ITERS  # noqa: F401  (shared scale knobs)
from bench_env import env_flag

NUM_TILES = 8
CHECK_ONLY = env_flag("BISMO_BENCH_CHECK_ONLY")


@pytest.fixture(scope="module")
def setup(settings):
    cfg = settings.config
    ds = dataset_by_name("ICCAD13", num_clips=NUM_TILES)
    tiles = tile_stack(list(ds), cfg)
    source = _annular_source(cfg)
    engine = engine_for(cfg, "abbe")
    return engine, tiles, source


def _per_tile_loop(engine, tiles, source):
    """The per-tile consumer pattern: B independent single-tile passes."""
    src = ad.Tensor(source)
    with ad.no_grad():
        return np.stack(
            [engine.aerial(ad.Tensor(tile), src).data for tile in tiles]
        )


def test_per_tile_loop(benchmark, setup):
    engine, tiles, source = setup
    benchmark(lambda: _per_tile_loop(engine, tiles, source))
    benchmark.extra_info["tiles"] = NUM_TILES


def test_batched_fast_path(benchmark, setup):
    engine, tiles, source = setup
    benchmark(lambda: engine.aerial_fast(tiles, source))
    benchmark.extra_info["tiles"] = NUM_TILES
    benchmark.extra_info["source_points"] = engine.num_source_points


def test_batched_graph_path(benchmark, setup):
    """Differentiable fused (B*S, N, N) stack (for batched optimization)."""
    engine, tiles, source = setup
    src = ad.Tensor(source)
    stack = ad.Tensor(tiles)
    with ad.no_grad():
        benchmark(lambda: engine.aerial(stack, src).data)


def test_engine_cache_warm_start(benchmark, setup):
    """Second engine for an identical config: cache hit, no pupil rebuild."""
    engine, _, _ = setup
    cfg = engine.config
    # Zero the counters so the hit/miss assert is independent of what
    # other bench modules built earlier in the session.
    cache.reset_stats()

    def rebuild():
        return engine_for(cfg, "abbe")

    benchmark(rebuild)
    assert rebuild() is engine
    stats = cache.stats()["abbe_engine"]
    benchmark.extra_info["engine_hits"] = stats["hits"]
    assert stats["hits"] > 0 and stats["misses"] <= 1


def test_batched_speedup_and_parity(setup):
    """The acceptance bar: batched fast path >= 2x over the pre-refactor
    per-tile composed loop, identical images (the fused per-tile loop is
    reported for context — PR 3 closed most of its gap by design)."""
    from repro.optics import AbbeImaging

    engine, tiles, source = setup
    composed_engine = AbbeImaging(engine.config, fused=False)
    loop_result = _per_tile_loop(engine, tiles, source)
    composed_result = _per_tile_loop(composed_engine, tiles, source)
    fast_result = engine.aerial_fast(tiles, source)
    np.testing.assert_allclose(fast_result, loop_result, atol=1e-10)
    np.testing.assert_allclose(fast_result, composed_result, atol=1e-10)
    if CHECK_ONLY:
        pytest.skip("BISMO_BENCH_CHECK_ONLY=1: parity verified, timing skipped")

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_composed = best_of(lambda: _per_tile_loop(composed_engine, tiles, source))
    t_loop = best_of(lambda: _per_tile_loop(engine, tiles, source))
    t_batch = best_of(lambda: engine.aerial_fast(tiles, source))
    speedup = t_composed / t_batch
    print(
        f"\nbatched tiles: B={NUM_TILES} composed-loop={t_composed * 1e3:.1f} ms "
        f"fused-loop={t_loop * 1e3:.1f} ms batched={t_batch * 1e3:.1f} ms "
        f"speedup={speedup:.2f}x"
    )
    assert speedup >= 2.0, f"batched path only {speedup:.2f}x over the composed loop"
