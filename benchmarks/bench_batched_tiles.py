"""Batched multi-tile Abbe evaluation vs. the per-tile Python loop.

The tentpole claim of the ImagingEngine refactor: evaluating a layout
suite as one ``(B, N, N)`` batch through the engine's fused multi-tile
forward (plus the graph-free fast path) beats looping the single-tile
engine over the suite — the acceptance bar is >= 2x for B = 8 tiles.

Run like every other bench module, e.g.::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_batched_tiles.py \
        --benchmark-json=batched_tiles.json
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.autodiff as ad
from repro.harness.runner import _annular_source
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import cache, engine_for

from conftest import BENCH_SCALE, BENCH_ITERS  # noqa: F401  (shared scale knobs)

NUM_TILES = 8


@pytest.fixture(scope="module")
def setup(settings):
    cfg = settings.config
    ds = dataset_by_name("ICCAD13", num_clips=NUM_TILES)
    tiles = tile_stack(list(ds), cfg)
    source = _annular_source(cfg)
    engine = engine_for(cfg, "abbe")
    return engine, tiles, source


def _per_tile_loop(engine, tiles, source):
    """The status-quo consumer pattern: B independent single-tile passes."""
    src = ad.Tensor(source)
    with ad.no_grad():
        return np.stack(
            [engine.aerial(ad.Tensor(tile), src).data for tile in tiles]
        )


def test_per_tile_loop(benchmark, setup):
    engine, tiles, source = setup
    benchmark(lambda: _per_tile_loop(engine, tiles, source))
    benchmark.extra_info["tiles"] = NUM_TILES


def test_batched_fast_path(benchmark, setup):
    engine, tiles, source = setup
    benchmark(lambda: engine.aerial_fast(tiles, source))
    benchmark.extra_info["tiles"] = NUM_TILES
    benchmark.extra_info["source_points"] = engine.num_source_points


def test_batched_graph_path(benchmark, setup):
    """Differentiable fused (B*S, N, N) stack (for batched optimization)."""
    engine, tiles, source = setup
    src = ad.Tensor(source)
    stack = ad.Tensor(tiles)
    with ad.no_grad():
        benchmark(lambda: engine.aerial(stack, src).data)


def test_engine_cache_warm_start(benchmark, setup):
    """Second engine for an identical config: cache hit, no pupil rebuild."""
    engine, _, _ = setup
    cfg = engine.config

    def rebuild():
        return engine_for(cfg, "abbe")

    benchmark(rebuild)
    assert rebuild() is engine
    stats = cache.stats()["abbe_engine"]
    benchmark.extra_info["engine_hits"] = stats["hits"]
    assert stats["hits"] > 0 and stats["misses"] <= 1


def test_batched_speedup_and_parity(setup):
    """The acceptance bar: batched >= 2x over the loop, identical images."""
    engine, tiles, source = setup
    loop_result = _per_tile_loop(engine, tiles, source)
    fast_result = engine.aerial_fast(tiles, source)
    np.testing.assert_allclose(fast_result, loop_result, atol=1e-10)

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_loop = best_of(lambda: _per_tile_loop(engine, tiles, source))
    t_batch = best_of(lambda: engine.aerial_fast(tiles, source))
    speedup = t_loop / t_batch
    print(
        f"\nbatched tiles: B={NUM_TILES} loop={t_loop * 1e3:.1f} ms "
        f"batched={t_batch * 1e3:.1f} ms speedup={speedup:.2f}x"
    )
    assert speedup >= 2.0, f"batched path only {speedup:.2f}x over the loop"
