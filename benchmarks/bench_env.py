"""The benchmark suite's single door to ``BISMO_*`` environment knobs.

Every benchmark reads its scale/tile/iteration overrides through the
typed accessors here instead of touching ``os.environ`` directly; the R2
env-registry rule (``python -m repro.analysis``) enforces that this
module and ``repro.optics.fftlib`` are the only raw readers, and that
every variable consumed here is declared in
``repro.analysis.registry.DECLARED_ENV_VARS`` and documented in
README's env-var table.
"""

from __future__ import annotations

import os

from repro.analysis.registry import is_declared_env_var

__all__ = ["env_str", "env_int", "env_flag", "env_list"]


def _raw(name: str, default: str) -> str:
    if not is_declared_env_var(name):
        raise KeyError(
            f"benchmark env var {name!r} is not declared in "
            "repro.analysis.registry; add it there (and to README's "
            "env-var table) before reading it"
        )
    return os.environ.get(name, default)


def env_str(name: str, default: str) -> str:
    """String-valued knob, e.g. a scale name."""
    return _raw(name, default)


def env_int(name: str, default: int) -> int:
    """Integer knob (tile counts, iteration budgets)."""
    return int(_raw(name, str(default)))


def env_flag(name: str) -> bool:
    """Boolean knob: set to ``"1"`` to enable (the suite's convention)."""
    return _raw(name, "0") == "1"


def env_list(name: str, default: str) -> list[str]:
    """Comma-separated list knob, e.g. ``BISMO_GRID_SCALES=tiny,small``."""
    return [part.strip() for part in _raw(name, default).split(",") if part.strip()]
