"""Figure 3 reproduction: log10(L_smo) convergence per method.

Paper shape: the MO methods (dashed) plateau highest; AM-SMO zigzags and
settles between MO and the bilevel methods; the three BiSMO variants
converge lowest, with CG occasionally edging NMN (Fig. 3(d)).
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.harness import RunSettings, ascii_plot, figure3_series
from repro.harness.figures import FIGURE3_METHODS
from repro.layouts import dataset_by_name

from conftest import BENCH_SCALE
from bench_env import env_int

FIG3_STEPS = env_int("BISMO_BENCH_FIG3_STEPS", 60)


@pytest.mark.parametrize("dataset_name", ["ICCAD13", "ICCAD-L", "ISPD19"])
def test_figure3_convergence(benchmark, dataset_name):
    ds = dataset_by_name(dataset_name, num_clips=1)
    clip = ds[0]
    settings = RunSettings.preset(BENCH_SCALE, iterations=FIG3_STEPS, lr=0.01)

    series = benchmark.pedantic(
        lambda: figure3_series(clip, settings, dataset_name=ds.name),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 3 ({dataset_name}/{clip.name}), log10(L_smo) vs step:")
    print(ascii_plot(series, width=70, height=16))

    finals = {s.label: float(s.values[-1]) for s in series}
    for label, val in finals.items():
        benchmark.extra_info[label] = val
    # Shape check: some solid (SMO) curve must end at or below every
    # dashed (MO-only) curve — the paper's headline ordering.
    solid = [float(s.values[-1]) for s in series if s.style == "solid"]
    dashed = [float(s.values[-1]) for s in series if s.style == "dashed"]
    assert min(solid) <= min(dashed) + 0.05
    assert set(finals) == set(FIGURE3_METHODS)
