"""Figure 5 reproduction: mean/std of L_smo across clips for the three
BiSMO variants.

Paper shape: NMN has the best mean; CG shows the largest standard
deviation (its occasional instability on indefinite inner Hessians).
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.harness import RunSettings, figure5_stats
from repro.layouts import dataset_by_name

from conftest import BENCH_SCALE
from bench_env import env_int

FIG5_CLIPS = env_int("BISMO_BENCH_FIG5_CLIPS", 2)
FIG5_STEPS = env_int("BISMO_BENCH_FIG5_STEPS", 40)


@pytest.mark.parametrize("dataset_name", ["ICCAD13", "ICCAD-L"])
def test_figure5_mean_std(benchmark, dataset_name):
    ds = dataset_by_name(dataset_name, num_clips=FIG5_CLIPS)
    settings = RunSettings.preset(BENCH_SCALE, iterations=FIG5_STEPS)

    stats = benchmark.pedantic(
        lambda: figure5_stats(
            ds, settings, clips=FIG5_CLIPS, step_window=(FIG5_STEPS // 3, FIG5_STEPS)
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 5 ({dataset_name}) — L_smo over steps "
          f"{FIG5_STEPS // 3}-{FIG5_STEPS}:")
    print(f"{'method':12s} {'mean(final)':>14s} {'std(final)':>12s} {'std(avg)':>12s}")
    for method, data in stats.items():
        mean_f = float(data["mean"][-1])
        std_f = float(data["std"][-1])
        std_avg = float(np.mean(data["std"]))
        print(f"{method:12s} {mean_f:14.0f} {std_f:12.0f} {std_avg:12.0f}")
        benchmark.extra_info[f"{method} mean"] = mean_f
        benchmark.extra_info[f"{method} std"] = std_avg

    for data in stats.values():
        assert np.all(np.isfinite(data["mean"]))
        assert np.all(data["std"] >= 0)
