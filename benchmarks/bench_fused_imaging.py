"""Fused incoherent-imaging primitive vs the composed-op graph.

The perf-regression gate for PR 3's tentpole: evaluating the batched
SMO loss + gradients at B = 8 through the fused
:func:`repro.autodiff.functional.incoherent_image` node (streamed
forward, hand-written recomputing VJP, fftlib dispatch) must be

* >= 1.5x faster wall-clock, and
* >= 4x lower peak traced allocation,

than the mathematically identical composed graph ``fft2 -> mul ->
ifft2 -> abs2 -> mul -> sum`` (``AbbeImaging(..., fused=False)``),
with mask/source gradients matching to 1e-8 and BiSMO end-to-end loss
traces unchanged to 1e-10.  Results are appended to
``BENCH_fused_imaging.json`` via :mod:`bench_runner` so future PRs
inherit a perf trajectory baseline.

Run as a script (CI parity mode skips the timing/memory gates)::

    PYTHONPATH=src python benchmarks/bench_fused_imaging.py          # full gate
    PYTHONPATH=src python benchmarks/bench_fused_imaging.py --check  # parity only
    PYTHONPATH=src python benchmarks/bench_fused_imaging.py --backend torch

``--backend`` selects the :mod:`repro.optics.backend` array backend the
run executes under; each backend records its own entry (the backend
fingerprint is part of the payload).  Non-numpy backends are
correctness-parity runs — fused-vs-composed parity plus fused
loss/grad agreement with the numpy backend to 1e-8 — and never gate on
speed or memory (the perf gates encode numpy-path expectations).

or through pytest like the other bench modules::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_fused_imaging.py

Knobs: ``BISMO_FUSED_SCALE`` (optical preset, default ``small``),
``BISMO_FUSED_TILES`` (batch size, default 8), ``BISMO_FUSED_CHECK_ONLY=1``
(parity asserts only — for shared CI runners where sub-second timings
flake).
"""

from __future__ import annotations

import argparse
import os
import time
import tracemalloc
from typing import Dict, Tuple

import numpy as np

import repro.autodiff as ad
from repro.harness.runner import _annular_source
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import AbbeImaging, OpticalConfig, backend, fftlib
from repro.smo import BatchedSMOObjective, BiSMO
from repro.smo.parametrization import init_theta_mask, init_theta_source
from bench_env import env_flag, env_int, env_str

SCALE = env_str("BISMO_FUSED_SCALE", "small")
NUM_TILES = env_int("BISMO_FUSED_TILES", 8)
CHECK_ONLY = env_flag("BISMO_FUSED_CHECK_ONLY")

SPEEDUP_GATE = 1.5
MEMORY_GATE = 4.0
GRAD_RTOL = 1e-8
LOSS_RTOL = 1e-10


def _setup(scale: str = SCALE, num_tiles: int = NUM_TILES):
    from conftest import rescale_clips

    cfg = OpticalConfig.preset(scale)
    ds = rescale_clips(dataset_by_name("ICCAD13", num_clips=num_tiles), cfg)
    targets = tile_stack(ds, cfg)
    source = _annular_source(cfg)
    theta_j = init_theta_source(source, cfg)
    theta_m = init_theta_mask(targets, cfg)
    fused = BatchedSMOObjective(cfg, targets, engine=AbbeImaging(cfg))
    composed = BatchedSMOObjective(
        cfg, targets, engine=AbbeImaging(cfg, fused=False)
    )
    return cfg, targets, source, theta_j, theta_m, fused, composed


def _loss_and_grads(
    objective: BatchedSMOObjective, theta_j: np.ndarray, theta_m: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray]:
    tj = ad.Tensor(theta_j, requires_grad=True)
    tm = ad.Tensor(theta_m, requires_grad=True)
    loss = objective.loss(tj, tm)
    gj, gm = ad.grad(loss, [tj, tm])
    return float(loss.data), gj.data, gm.data


def run_parity(setup=None) -> Dict[str, float]:
    """Assert fused == composed: loss, gradients, BiSMO end-to-end."""
    cfg, targets, source, theta_j, theta_m, fused, composed = setup or _setup()
    lf, gjf, gmf = _loss_and_grads(fused, theta_j, theta_m)
    lc, gjc, gmc = _loss_and_grads(composed, theta_j, theta_m)
    np.testing.assert_allclose(lf, lc, rtol=LOSS_RTOL)
    np.testing.assert_allclose(gjf, gjc, rtol=GRAD_RTOL, atol=1e-12)
    np.testing.assert_allclose(gmf, gmc, rtol=GRAD_RTOL, atol=1e-12)
    # End-to-end: a short joint BiSMO-NMN run (inner SO steps, exact
    # HVPs through the create_graph fallback, outer Adam updates) must
    # produce the same loss trace on both graphs.
    traces = []
    for objective in (fused, composed):
        solver = BiSMO(
            cfg, targets, method="nmn", unroll_steps=2, terms=3,
            objective=objective,
        )
        result = solver.run(source, iterations=2)
        traces.append([rec.loss for rec in result.history])
    np.testing.assert_allclose(traces[0], traces[1], rtol=LOSS_RTOL)
    return {
        "loss": lf,
        "grad_j_maxdiff": float(np.abs(gjf - gjc).max()),
        "grad_m_maxdiff": float(np.abs(gmf - gmc).max()),
        "bismo_loss_trace_fused": traces[0],
        "bismo_loss_trace_composed": traces[1],
    }


def run_perf(setup=None, rounds: int = 5) -> Dict[str, float]:
    """Best-of-``rounds`` wall-clock and tracemalloc peaks for both paths."""
    _, _, _, theta_j, theta_m, fused, composed = setup or _setup()

    def best_of(objective) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            _loss_and_grads(objective, theta_j, theta_m)
            times.append(time.perf_counter() - t0)
        return min(times)

    def peak_bytes(objective) -> int:
        tracemalloc.start()
        try:
            _loss_and_grads(objective, theta_j, theta_m)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    t_fused, t_composed = best_of(fused), best_of(composed)
    m_fused, m_composed = peak_bytes(fused), peak_bytes(composed)
    return {
        "fused_ms": t_fused * 1e3,
        "composed_ms": t_composed * 1e3,
        "speedup": t_composed / t_fused,
        "fused_peak_mb": m_fused / 1e6,
        "composed_peak_mb": m_composed / 1e6,
        "memory_ratio": m_composed / m_fused,
    }


def run_host_parity(
    scale: str, num_tiles: int, backend_name: str
) -> Dict[str, float]:
    """Fused loss/grads on ``backend_name`` vs the numpy backend (1e-8)."""
    with backend.use_backend("numpy"):
        _, _, _, theta_j, theta_m, fused, _ = _setup(scale, num_tiles)
        l_ref, gj_ref, gm_ref = _loss_and_grads(fused, theta_j, theta_m)
    with backend.use_backend(backend_name):
        l_bk, gj_bk, gm_bk = _loss_and_grads(fused, theta_j, theta_m)
    np.testing.assert_allclose(l_bk, l_ref, rtol=GRAD_RTOL)
    np.testing.assert_allclose(gj_bk, gj_ref, rtol=GRAD_RTOL, atol=1e-8)
    np.testing.assert_allclose(gm_bk, gm_ref, rtol=GRAD_RTOL, atol=1e-8)
    return {
        "loss_absdiff": float(abs(l_bk - l_ref)),
        "grad_j_maxdiff": float(np.abs(gj_bk - gj_ref).max()),
        "grad_m_maxdiff": float(np.abs(gm_bk - gm_ref).max()),
    }


def _record(payload: Dict) -> None:
    try:
        from bench_runner import record_bench
    except ImportError:  # script run without benchmarks/ on sys.path
        import sys

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_runner import record_bench

    path = record_bench("fused_imaging", payload)
    print(f"recorded -> {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="parity mode: run the numerical asserts, skip the "
        "timing/memory gates (still records measurements)",
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--scale", default=SCALE, help="optical preset (default: %(default)s)"
    )
    parser.add_argument(
        "--tiles", type=int, default=NUM_TILES, help="batch size B"
    )
    parser.add_argument(
        "--backend",
        default=backend.env_default_backend(),
        choices=backend.registered_backends(),
        help="array backend to run under (default: %(default)s); "
        "non-numpy backends run correctness-parity only",
    )
    args = parser.parse_args(argv)
    if args.backend not in backend.available_backends():
        parser.error(
            f"backend '{args.backend}' is not available in this environment "
            f"(available: {', '.join(backend.available_backends())})"
        )

    with backend.use_backend(args.backend):
        setup = _setup(args.scale, args.tiles)
        payload: Dict = {
            "scale": args.scale,
            "tiles": args.tiles,
            "check_only": bool(args.check),
            "backend": backend.describe(),
            "fftlib": fftlib.describe(),
        }
        payload["parity"] = run_parity(setup)
        print(
            f"[{args.backend}] parity ok: grads match to {GRAD_RTOL:g}, "
            f"BiSMO traces to {LOSS_RTOL:g}"
        )
        perf = run_perf(setup, rounds=args.rounds)
        payload["perf"] = perf
        print(
            f"B={args.tiles} {args.scale}: fused {perf['fused_ms']:.1f} ms "
            f"vs composed {perf['composed_ms']:.1f} ms "
            f"({perf['speedup']:.2f}x), peak {perf['fused_peak_mb']:.1f} MB "
            f"vs {perf['composed_peak_mb']:.1f} MB "
            f"({perf['memory_ratio']:.1f}x lower)"
        )
    if args.backend != "numpy":
        payload["host_parity"] = run_host_parity(
            args.scale, args.tiles, args.backend
        )
        print(
            f"[{args.backend}] fused loss/grads match the numpy backend "
            f"to {GRAD_RTOL:g}"
        )
    _record(payload)
    if args.backend != "numpy":
        print(
            f"[{args.backend}] correctness-parity run: "
            "timing/memory gates skipped (numpy-path expectations)"
        )
    elif not args.check:
        assert perf["speedup"] >= SPEEDUP_GATE, (
            f"fused path only {perf['speedup']:.2f}x over composed "
            f"(gate: {SPEEDUP_GATE}x)"
        )
        assert perf["memory_ratio"] >= MEMORY_GATE, (
            f"fused peak only {perf['memory_ratio']:.1f}x lower "
            f"(gate: {MEMORY_GATE}x)"
        )
        print(f"gates passed: >= {SPEEDUP_GATE}x time, >= {MEMORY_GATE}x memory")
    return 0


# ----------------------------------------------------------------------
# pytest entry points (same checks, bench-suite conventions)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode needs no pytest
    pytest = None
else:

    @pytest.fixture(scope="module")
    def shared_setup():
        return _setup()


def test_fused_parity(shared_setup):
    run_parity(shared_setup)


def test_fused_speedup_and_memory(shared_setup):
    if CHECK_ONLY:
        pytest.skip("BISMO_FUSED_CHECK_ONLY=1: parity-only mode, gates skipped")
    perf = run_perf(shared_setup)
    print(
        f"\nfused imaging: B={NUM_TILES} {SCALE} "
        f"speedup={perf['speedup']:.2f}x memory_ratio={perf['memory_ratio']:.1f}x"
    )
    assert perf["speedup"] >= SPEEDUP_GATE
    assert perf["memory_ratio"] >= MEMORY_GATE


if __name__ == "__main__":
    raise SystemExit(main())
