"""Cross-solver benchmark grid — solvers x windows x scales, one trajectory.

A benchopt-style comparison matrix: every solver runs against every
process window at every scale with *time-to-target-loss* stopping — the
callback watches the per-iteration :class:`~repro.smo.IterationRecord`
trace and stops the solve as soon as the loss reaches a fixed fraction
of its starting value (or when the relative per-step improvement stays
below ``rtol`` for ``patience`` steps, the sufficient-progress rule).
Solvers are therefore compared on *seconds to reach the target*, not on
a fixed iteration budget that flatters cheap-but-slow-converging
methods.  Results append to ``BENCH_grid.json`` via
:mod:`bench_runner`, whose entries carry the ``fftlib.describe()``
threading fingerprint, so one file accumulates a comparable performance
trajectory across PRs and machines.

The module is also the perf gate for the condition-axis fan-out: a
C=9 / F=3 process window at ``small`` scale must evaluate the robust
loss + gradients >= ``FANOUT_GATE``x faster with condition workers than
with the serial streamed path, at <= 1e-12 forward/grad parity (the
implementation is bitwise-identical by construction; the bench asserts
the tolerance and records the bitwise flag).  The timing gate only
arms on >= 4 cores and is skipped in ``--check`` mode (parity always
runs).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_grid.py          # full gate
    PYTHONPATH=src python benchmarks/bench_grid.py --check  # parity only

or through pytest like the other bench modules::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_grid.py

Knobs: ``BISMO_GRID_SCALES`` (comma list of presets, default ``tiny``),
``BISMO_GRID_TILES`` (batch size, default 2), ``BISMO_GRID_CHECK_ONLY=1``
(parity-only mode for shared CI runners).
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

import repro.autodiff as ad
from repro.baselines import NILTBaseline
from repro.harness.runner import _annular_source
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import OpticalConfig, ProcessWindow, fftlib
from repro.smo import BiSMO, ProcessWindowSMOObjective
from repro.smo.convergence import RelativeImprovementStopper
from repro.smo.mo_only import AbbeMO
from repro.smo.parametrization import init_theta_mask, init_theta_source
from repro.smo.state import IterationRecord, SMOResult
from bench_env import env_flag, env_int, env_list

SCALES = tuple(env_list("BISMO_GRID_SCALES", "tiny"))
NUM_TILES = env_int("BISMO_GRID_TILES", 2)
CHECK_ONLY = env_flag("BISMO_GRID_CHECK_ONLY")

DOSES = (0.96, 1.0, 1.04)
FOCUS = (0.0, 40.0, 80.0)

#: Stop a solve once loss <= TARGET_FRACTION * first-iteration loss.
TARGET_FRACTION = 0.5
#: Sufficient-progress fallback: stop after ``patience`` consecutive
#: steps improving less than ``rtol`` relative.
PROGRESS_RTOL = 1e-3
PROGRESS_PATIENCE = 5
#: Hard per-cell iteration ceilings (time-to-target usually stops first).
MAX_ITERS = {"BiSMO-NMN": 6, "Abbe-MO": 12, "NILT": 12}

#: Condition fan-out must beat serial streaming by this factor on the
#: C=9/F=3 small-scale window (armed only on >= FANOUT_MIN_CPUS cores).
FANOUT_GATE = 2.0
FANOUT_MIN_CPUS = 4
PARITY_ATOL = 1e-12


def _clips(cfg: OpticalConfig, num_tiles: int) -> np.ndarray:
    from conftest import rescale_clips

    ds = rescale_clips(dataset_by_name("ICCAD13", num_clips=num_tiles), cfg)
    return tile_stack(ds, cfg)


def _windows(cfg: OpticalConfig) -> Dict[str, Optional[ProcessWindow]]:
    return {
        "nominal": None,
        "dose3": ProcessWindow.from_config(cfg),
        "dose3xfocus3": ProcessWindow.from_grid(DOSES, FOCUS),
    }


class _TimeToTarget:
    """Early-stop callback: target-loss or sufficient-progress."""

    def __init__(self) -> None:
        self.loss0: Optional[float] = None
        self.target: Optional[float] = None
        self.elapsed = 0.0
        self.time_to_target: Optional[float] = None
        self.iterations = 0
        self.reason = "budget"
        self._progress = RelativeImprovementStopper(
            rtol=PROGRESS_RTOL, patience=PROGRESS_PATIENCE
        )

    def __call__(self, rec: IterationRecord) -> bool:
        self.elapsed += rec.seconds
        self.iterations += 1
        if self.loss0 is None:
            self.loss0 = rec.loss
            self.target = TARGET_FRACTION * rec.loss
        if rec.loss <= self.target:
            self.time_to_target = self.elapsed
            self.reason = "target"
            return True
        if self._progress.update(rec.loss):
            self.reason = "progress"
            return True
        return False


def _make_solver(
    name: str,
    cfg: OpticalConfig,
    targets: np.ndarray,
    source: np.ndarray,
    window: Optional[ProcessWindow],
) -> Tuple[Callable[..., SMOResult], Dict]:
    """Return ``(run, kwargs)`` so every solver shares one call shape."""
    iters = MAX_ITERS[name]
    if name == "BiSMO-NMN":
        solver = BiSMO(cfg, targets, method="nmn", process_window=window)
        return solver.run, {"source_template": source, "iterations": iters}
    if name == "Abbe-MO":
        solver = AbbeMO(cfg, targets, source, process_window=window)
        return solver.run, {"iterations": iters}
    if name == "NILT":
        solver = NILTBaseline(cfg, targets, source, process_window=window)
        return solver.run, {"iterations": iters}
    raise ValueError(f"unknown solver {name!r}")


def run_grid(
    scales=SCALES, num_tiles: int = NUM_TILES, solvers=tuple(MAX_ITERS)
) -> List[Dict]:
    """The solvers x windows x scales matrix with time-to-target stops."""
    cells: List[Dict] = []
    for scale in scales:
        cfg = OpticalConfig.preset(scale)
        targets = _clips(cfg, num_tiles)
        source = _annular_source(cfg)
        for wname, window in _windows(cfg).items():
            for sname in solvers:
                run, kwargs = _make_solver(sname, cfg, targets, source, window)
                stopper = _TimeToTarget()
                t0 = time.perf_counter()
                result = run(callback=stopper, **kwargs)
                total = time.perf_counter() - t0
                cells.append(
                    {
                        "solver": sname,
                        "scale": scale,
                        "window": wname,
                        "corners": window.num_corners if window else 1,
                        "conditions": len(window.conditions()) if window else 1,
                        "tiles": int(num_tiles),
                        "iterations": stopper.iterations,
                        "stop_reason": stopper.reason,
                        "loss0": stopper.loss0,
                        "loss_final": result.history[-1].loss,
                        "target_loss": stopper.target,
                        "time_to_target_s": stopper.time_to_target,
                        "solve_seconds": total,
                    }
                )
                ttt = stopper.time_to_target
                print(
                    f"grid: {sname:<10} {scale:<6} {wname:<12} "
                    f"C={cells[-1]['corners']} "
                    f"iters={stopper.iterations:>3} ({stopper.reason}) "
                    f"loss {stopper.loss0:10.4g} -> "
                    f"{cells[-1]['loss_final']:10.4g}  "
                    + (f"target in {ttt:.2f}s" if ttt is not None else "no target")
                )
    return cells


# ----------------------------------------------------------------------
# condition fan-out gate: parallel vs serial streaming
# ----------------------------------------------------------------------
def _windowed_grads(
    objective: ProcessWindowSMOObjective,
    theta_j: np.ndarray,
    theta_m: np.ndarray,
) -> Tuple[float, np.ndarray, np.ndarray]:
    tj = ad.Tensor(theta_j, requires_grad=True)
    tm = ad.Tensor(theta_m, requires_grad=True)
    loss = objective.loss(tj, tm)
    gj, gm = ad.grad(loss, [tj, tm])
    return float(loss.data), gj.data, gm.data


def run_fanout(
    scale: str = "small", num_tiles: int = NUM_TILES, rounds: int = 3
) -> Dict[str, float]:
    """Serial vs fanned condition axis on the C=9/F=3 window.

    Returns timings plus parity metrics; callers decide whether the
    speedup gate is armed (cores / check mode).
    """
    cfg = OpticalConfig.preset(scale)
    targets = _clips(cfg, num_tiles)
    window = ProcessWindow.from_grid(DOSES, FOCUS)
    objective = ProcessWindowSMOObjective(cfg, targets, window)
    theta_j = init_theta_source(_annular_source(cfg), cfg)
    theta_m = init_theta_mask(targets, cfg)

    def best_of() -> Tuple[float, Tuple[float, np.ndarray, np.ndarray]]:
        times, out = [], None
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = _windowed_grads(objective, theta_j, theta_m)
            times.append(time.perf_counter() - t0)
        return min(times), out

    with fftlib.use(condition_workers=1):
        t_serial, (ls, gjs, gms) = best_of()
    with fftlib.use(condition_workers=0):  # auto: fill the budget
        t_fan, (lf, gjf, gmf) = best_of()
        workers = fftlib.effective_condition_workers(
            len(window.focus_values())
        )
    np.testing.assert_allclose(lf, ls, rtol=0.0, atol=PARITY_ATOL)
    np.testing.assert_allclose(gjf, gjs, rtol=0.0, atol=PARITY_ATOL)
    np.testing.assert_allclose(gmf, gms, rtol=0.0, atol=PARITY_ATOL)
    return {
        "scale": scale,
        "tiles": int(num_tiles),
        "corners": window.num_corners,
        "focus_values": len(window.focus_values()),
        "condition_workers": int(workers),
        "serial_ms": t_serial * 1e3,
        "fanout_ms": t_fan * 1e3,
        "speedup": t_serial / t_fan,
        "bitwise": bool(
            lf == ls and np.array_equal(gjf, gjs) and np.array_equal(gmf, gms)
        ),
        "grad_maxdiff": float(
            max(np.abs(gjf - gjs).max(), np.abs(gmf - gms).max())
        ),
    }


def _gate_armed() -> bool:
    return (os.cpu_count() or 1) >= FANOUT_MIN_CPUS


def _record(payload: Dict) -> None:
    try:
        from bench_runner import record_bench
    except ImportError:  # script run without benchmarks/ on sys.path
        import sys

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_runner import record_bench

    path = record_bench("grid", payload)
    print(f"recorded -> {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="parity mode: run the matrix + parity asserts, skip the "
        "fan-out timing gate (still records measurements)",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--scales",
        default=",".join(SCALES),
        help="comma list of optical presets (default: %(default)s)",
    )
    parser.add_argument(
        "--tiles", type=int, default=NUM_TILES, help="batch size B"
    )
    parser.add_argument(
        "--fanout-scale",
        default="small",
        help="preset for the fan-out gate cell (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    scales = tuple(s.strip() for s in args.scales.split(",") if s.strip())

    payload: Dict = {
        "scales": list(scales),
        "tiles": args.tiles,
        "doses": list(DOSES),
        "focus_nm": list(FOCUS),
        "target_fraction": TARGET_FRACTION,
        "check_only": bool(args.check),
        "cells": run_grid(scales, args.tiles),
    }
    fanout = run_fanout(args.fanout_scale, args.tiles, rounds=args.rounds)
    payload["fanout"] = fanout
    print(
        f"fanout: C={fanout['corners']}/F={fanout['focus_values']} "
        f"{args.fanout_scale}, {fanout['condition_workers']} workers: "
        f"serial {fanout['serial_ms']:.1f} ms vs fanned "
        f"{fanout['fanout_ms']:.1f} ms ({fanout['speedup']:.2f}x, "
        f"grad maxdiff {fanout['grad_maxdiff']:.1e}, "
        f"bitwise={fanout['bitwise']})"
    )
    _record(payload)
    if not args.check and _gate_armed():
        assert fanout["speedup"] >= FANOUT_GATE, (
            f"condition fan-out only {fanout['speedup']:.2f}x over serial "
            f"streaming (gate: {FANOUT_GATE}x)"
        )
        print(f"gate passed: >= {FANOUT_GATE}x over serial streaming")
    elif not args.check:
        print(
            f"gate skipped: {os.cpu_count()} cores < {FANOUT_MIN_CPUS} "
            "(parity still asserted)"
        )
    return 0


# ----------------------------------------------------------------------
# pytest entry points (same checks, bench-suite conventions)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode needs no pytest
    pytest = None


def test_grid_matrix():
    cells = run_grid(scales=("tiny",), num_tiles=NUM_TILES)
    # every (solver, window) cell ran and stopped for a recorded reason
    assert len(cells) == 3 * len(MAX_ITERS)
    assert all(c["stop_reason"] in ("target", "progress", "budget") for c in cells)
    assert all(c["iterations"] >= 1 for c in cells)


def test_grid_fanout_parity():
    # tiny keeps CI cheap; parity asserts run inside run_fanout
    run_fanout(scale="tiny", rounds=1)


def test_grid_fanout_speedup():
    if CHECK_ONLY:
        pytest.skip("BISMO_GRID_CHECK_ONLY=1: parity-only mode")
    if not _gate_armed():
        pytest.skip(f"needs >= {FANOUT_MIN_CPUS} cores for the timing gate")
    fanout = run_fanout(scale="small")
    print(f"\nfanout speedup: {fanout['speedup']:.2f}x")
    assert fanout["speedup"] >= FANOUT_GATE


if __name__ == "__main__":
    raise SystemExit(main())
