"""Joint multi-clip BiSMO: fused batched bilevel path vs the per-clip loop.

The tentpole claim of the batch-native solver stack: running BiSMO-NMN
jointly over a B-clip stack through :class:`BatchedSMOObjective` beats
the mathematically identical per-clip loop
(:class:`LoopedSMOObjective`, B independent single-tile graphs summed
per evaluation) — the acceptance bar is >= 2x wall-clock at B = 8 with
per-tile final losses matching to 1e-8 relative.

Two fused-path advantages add up: (1) one ``(B, N, N)`` graph per loss /
HVP evaluation instead of B single-tile graphs, and (2) the batched
objective's ``source_only_loss`` oracle — Abbe's aerial is linear in the
normalized source weights, so with theta_M fixed across an outer
iteration every inner SO step and inner-Hessian product rides one
FFT-free intensity-basis graph.  The per-clip loop, faithful to the
pre-batching consumer pattern, has neither.  Solver knobs are the
paper's Algorithm 2 defaults (T = 3 inner steps, K = 5 Neumann terms).

Run like every other bench module, e.g.::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_joint_smo.py \
        --benchmark-json=joint_smo.json

``BISMO_JOINT_SCALE`` picks the optical preset.  The default is
``tiny`` (32 px tiles) — the per-graph-overhead-bound regime the fused
path targets, where the win is ~3x; at ``small`` (the 64 px
reproduction scale) the run is increasingly FFT-bound and the win is
~2x.  ``BISMO_JOINT_CLIPS`` / ``BISMO_JOINT_ITERS`` override the batch
size and the outer-iteration budget.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.harness.runner import _annular_source
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import OpticalConfig
from repro.smo import BatchedSMOObjective, BiSMO, LoopedSMOObjective

from conftest import rescale_clips
from bench_env import env_flag, env_int, env_str

JOINT_SCALE = env_str("BISMO_JOINT_SCALE", "tiny")
NUM_CLIPS = env_int("BISMO_JOINT_CLIPS", 8)
ITERATIONS = env_int("BISMO_JOINT_ITERS", 2)
#: Set to 1 to keep the exact parity asserts but skip the wall-clock
#: gate — for CI runners whose shared cores make sub-second timings
#: unreliable.
CHECK_ONLY = env_flag("BISMO_JOINT_CHECK_ONLY")


@pytest.fixture(scope="module")
def setup():
    cfg = OpticalConfig.preset(JOINT_SCALE)
    ds = rescale_clips(dataset_by_name("ICCAD13", num_clips=NUM_CLIPS), cfg)
    targets = tile_stack(ds, cfg)
    source = _annular_source(cfg)
    return cfg, targets, source


def _solve(cfg, targets, source, objective) -> "BiSMO":
    solver = BiSMO(
        cfg,
        targets,
        method="nmn",
        unroll_steps=3,  # paper: T = 3
        terms=5,  # paper: K = 5
        objective=objective,
    )
    return solver.run(source, iterations=ITERATIONS)


def test_joint_batched(benchmark, setup):
    """One fused (B, N, N) graph per loss/HVP evaluation."""
    cfg, targets, source = setup
    result = benchmark(
        lambda: _solve(cfg, targets, source, BatchedSMOObjective(cfg, targets))
    )
    benchmark.extra_info["clips"] = NUM_CLIPS
    benchmark.extra_info["iterations"] = ITERATIONS
    assert result.num_tiles == NUM_CLIPS


def test_joint_per_clip_loop(benchmark, setup):
    """The status-quo pattern: B independent single-tile graphs summed."""
    cfg, targets, source = setup
    result = benchmark(
        lambda: _solve(cfg, targets, source, LoopedSMOObjective(cfg, targets))
    )
    benchmark.extra_info["clips"] = NUM_CLIPS
    assert result.num_tiles == NUM_CLIPS


def test_joint_speedup_and_parity(setup):
    """The acceptance bar: batched >= 2x over the per-clip loop, per-tile
    final losses matching to 1e-8 relative."""
    cfg, targets, source = setup
    batched = _solve(cfg, targets, source, BatchedSMOObjective(cfg, targets))
    looped = _solve(cfg, targets, source, LoopedSMOObjective(cfg, targets))
    np.testing.assert_allclose(
        batched.final_tile_losses, looped.final_tile_losses, rtol=1e-8
    )
    np.testing.assert_allclose(batched.theta_m, looped.theta_m, atol=1e-8)
    if CHECK_ONLY:
        pytest.skip("BISMO_JOINT_CHECK_ONLY=1: parity verified, timing skipped")

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_batch = best_of(
        lambda: _solve(cfg, targets, source, BatchedSMOObjective(cfg, targets))
    )
    t_loop = best_of(
        lambda: _solve(cfg, targets, source, LoopedSMOObjective(cfg, targets))
    )
    speedup = t_loop / t_batch
    print(
        f"\njoint BiSMO-NMN: B={NUM_CLIPS} iters={ITERATIONS} "
        f"loop={t_loop:.2f} s batched={t_batch:.2f} s speedup={speedup:.2f}x"
    )
    assert speedup >= 2.0, f"batched bilevel only {speedup:.2f}x over the loop"
