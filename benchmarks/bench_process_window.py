"""Process-window condition axis vs per-corner engine passes.

The perf-regression gate for the robust-SMO tentpole: evaluating the
robust C-corner loss + gradients through the fused condition axis
(:class:`repro.smo.ProcessWindowSMOObjective` ->
``engine.aerial_conditions`` -> one ``incoherent_image_stack`` node
sharing a single mask-spectrum FFT, with dose corners applied
post-aerial) must be

* >= ``SPEEDUP_GATE``x faster wall-clock than the *naive per-corner
  loop* — C independent engine passes, one ``aerial()`` per corner, the
  pre-condition-axis consumer pattern —

with loss parity to 1e-10 and gradient parity to 1e-8 against both the
naive loop and the per-focus reference loop
(``ProcessWindowSMOObjective.loss_reference``).  A C=9 window over
F=3 focus values does 3 imaging passes instead of 9, so the expected
speedup is ~C/F; the gate is set below that to absorb resist-model
overhead shared by both sides.  Results are appended to
``BENCH_process_window.json`` via :mod:`bench_runner`.

Run as a script (CI parity mode skips the timing gate)::

    PYTHONPATH=src python benchmarks/bench_process_window.py          # full gate
    PYTHONPATH=src python benchmarks/bench_process_window.py --check  # parity only

or through pytest like the other bench modules::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_process_window.py

Knobs: ``BISMO_PW_SCALE`` (optical preset, default ``small``),
``BISMO_PW_TILES`` (batch size, default 4), ``BISMO_PW_CHECK_ONLY=1``
(parity asserts only — for shared CI runners where sub-second timings
flake).
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, Tuple

import numpy as np

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.harness.runner import _annular_source
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import OpticalConfig, ProcessWindow, engine_for, fftlib
from repro.smo import HopkinsMOObjective, ProcessWindowSMOObjective, dose_resist
from repro.smo.objective import robust_corner_loss
from repro.smo.parametrization import (
    init_theta_mask,
    init_theta_source,
    mask_from_theta,
    source_from_theta,
)
from bench_env import env_flag, env_int, env_str

SCALE = env_str("BISMO_PW_SCALE", "small")
NUM_TILES = env_int("BISMO_PW_TILES", 4)
CHECK_ONLY = env_flag("BISMO_PW_CHECK_ONLY")

DOSES = (0.96, 1.0, 1.04)
FOCUS = (0.0, 40.0, 80.0)

SPEEDUP_GATE = 1.8
LOSS_RTOL = 1e-10
GRAD_RTOL = 1e-8


def _setup(scale: str = SCALE, num_tiles: int = NUM_TILES):
    from conftest import rescale_clips

    cfg = OpticalConfig.preset(scale)
    window = ProcessWindow.from_grid(DOSES, FOCUS)
    ds = rescale_clips(dataset_by_name("ICCAD13", num_clips=num_tiles), cfg)
    targets = tile_stack(ds, cfg)
    source = _annular_source(cfg)
    theta_j = init_theta_source(source, cfg)
    theta_m = init_theta_mask(targets, cfg)
    objective = ProcessWindowSMOObjective(cfg, targets, window)
    return cfg, window, targets, theta_j, theta_m, objective


def _grads(loss_fn, theta_j, theta_m) -> Tuple[float, np.ndarray, np.ndarray]:
    tj = ad.Tensor(theta_j, requires_grad=True)
    tm = ad.Tensor(theta_m, requires_grad=True)
    loss = loss_fn(tj, tm)
    gj, gm = ad.grad(loss, [tj, tm])
    return float(loss.data), gj.data, gm.data


def _naive_corner_loss_fn(cfg, window, targets):
    """C independent engine passes — one ``aerial()`` per corner.

    The pre-condition-axis consumer pattern: every corner re-images the
    mask from scratch (its own mask FFT, its own streamed kernel pass),
    even when corners share a focus value.
    """
    targets_t = ad.Tensor(targets)

    def loss_fn(tj: ad.Tensor, tm: ad.Tensor) -> ad.Tensor:
        source = source_from_theta(tj, cfg)
        mask = mask_from_theta(tm, cfg)
        losses = []
        for corner in window.corners:
            engine = engine_for(cfg, "abbe", defocus_nm=corner.defocus_nm)
            aerial = engine.aerial(mask, source)  # full pass per corner
            z = dose_resist(aerial, cfg, corner.dose)
            losses.append(F.sum(F.power(F.sub(z, targets_t), 2.0)))
        return robust_corner_loss(losses, window)

    return loss_fn


def run_parity(setup=None) -> Dict[str, float]:
    """Fused == naive per-corner loop == per-focus reference loop."""
    cfg, window, targets, theta_j, theta_m, objective = setup or _setup()
    lf, gjf, gmf = _grads(objective.loss, theta_j, theta_m)
    ln, gjn, gmn = _grads(
        _naive_corner_loss_fn(cfg, window, targets), theta_j, theta_m
    )
    lr_, gjr, gmr = _grads(objective.loss_reference, theta_j, theta_m)
    np.testing.assert_allclose(lf, ln, rtol=LOSS_RTOL)
    np.testing.assert_allclose(lf, lr_, rtol=LOSS_RTOL)
    np.testing.assert_allclose(gjf, gjn, rtol=GRAD_RTOL, atol=1e-12)
    np.testing.assert_allclose(gmf, gmn, rtol=GRAD_RTOL, atol=1e-12)
    np.testing.assert_allclose(gjf, gjr, rtol=GRAD_RTOL, atol=1e-12)
    np.testing.assert_allclose(gmf, gmr, rtol=GRAD_RTOL, atol=1e-12)
    return {
        "loss": lf,
        "naive_loss_reldiff": abs(lf - ln) / abs(ln),
        "grad_j_maxdiff": float(np.abs(gjf - gjn).max()),
        "grad_m_maxdiff": float(np.abs(gmf - gmn).max()),
    }


def run_perf(setup=None, rounds: int = 5) -> Dict[str, float]:
    """Best-of-``rounds`` wall-clock for fused / per-focus / per-corner."""
    cfg, window, targets, theta_j, theta_m, objective = setup or _setup()
    naive = _naive_corner_loss_fn(cfg, window, targets)

    def best_of(loss_fn) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            _grads(loss_fn, theta_j, theta_m)
            times.append(time.perf_counter() - t0)
        return min(times)

    t_fused = best_of(objective.loss)
    t_focus = best_of(objective.loss_reference)
    t_naive = best_of(naive)
    return {
        "corners": window.num_corners,
        "focus_values": len(window.focus_values()),
        "fused_ms": t_fused * 1e3,
        "per_focus_ms": t_focus * 1e3,
        "per_corner_ms": t_naive * 1e3,
        "speedup_vs_per_corner": t_naive / t_fused,
        "speedup_vs_per_focus": t_focus / t_fused,
    }


def run_hopkins_rank_sweep(
    scale: str = "default",
    ranks=(8, 16, 24),
    rounds: int = 3,
) -> Dict[str, list]:
    """Hopkins robust baselines at scale: SOCS rank Q vs window size.

    For each truncation order Q and each window (the paper's dose-only
    C=3 window and a C=9 dose x focus grid), time one windowed
    ``HopkinsMOObjective`` loss+gradient evaluation (best of ``rounds``)
    and record the retained TCC trace fraction.  The phased-SOCS trick
    makes the focus corners free of re-decomposition, so the sweep
    isolates the Q vs window-size runtime/accuracy tradeoff the ROADMAP
    asks for.  The decomposition itself is shared through the optics
    cache, so each Q pays its eigendecomposition once.
    """
    from conftest import rescale_clips

    cfg = OpticalConfig.preset(scale)
    ds = rescale_clips(dataset_by_name("ICCAD13", num_clips=1), cfg)
    target = tile_stack(ds, cfg)[0]
    source = _annular_source(cfg)
    theta_m = init_theta_mask(target, cfg)
    windows = {
        "dose3": ProcessWindow.from_config(cfg),
        "dose3xfocus3": ProcessWindow.from_grid(DOSES, FOCUS),
    }
    entries = []
    for q in ranks:
        for wname, window in windows.items():
            objective = HopkinsMOObjective(
                cfg, target, source, num_kernels=q, window=window
            )
            times = []
            for _ in range(rounds):
                t0 = time.perf_counter()
                tm = ad.Tensor(theta_m, requires_grad=True)
                loss = objective.loss(tm)
                ad.grad(loss, [tm])
                times.append(time.perf_counter() - t0)
            entries.append(
                {
                    "q": int(q),
                    "window": wname,
                    "corners": window.num_corners,
                    "conditions": len(window.conditions()),
                    "loss_grad_ms": min(times) * 1e3,
                    "truncation_energy": objective.engine.truncation_energy,
                    "loss": float(loss.data),
                }
            )
            print(
                f"hopkins sweep: Q={q:>3} {wname:<12} "
                f"C={window.num_corners} "
                f"loss+grad {entries[-1]['loss_grad_ms']:8.1f} ms  "
                f"trace {entries[-1]['truncation_energy']:.4f}"
            )
    return {"scale": scale, "entries": entries}


def _record(payload: Dict) -> None:
    try:
        from bench_runner import record_bench
    except ImportError:  # script run without benchmarks/ on sys.path
        import sys

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_runner import record_bench

    path = record_bench("process_window", payload)
    print(f"recorded -> {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="parity mode: run the numerical asserts, skip the timing "
        "gate (still records measurements)",
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--scale", default=SCALE, help="optical preset (default: %(default)s)"
    )
    parser.add_argument(
        "--tiles", type=int, default=NUM_TILES, help="batch size B"
    )
    parser.add_argument(
        "--hopkins-sweep",
        action="store_true",
        help="additionally sweep SOCS rank Q vs window size for the "
        "windowed Hopkins objective at the 'default' preset (slow: "
        "one TCC eigendecomposition per Q) and record it",
    )
    args = parser.parse_args(argv)

    setup = _setup(args.scale, args.tiles)
    payload: Dict = {
        "scale": args.scale,
        "tiles": args.tiles,
        "doses": list(DOSES),
        "focus_nm": list(FOCUS),
        "check_only": bool(args.check),
        "fftlib": fftlib.describe(),
    }
    payload["parity"] = run_parity(setup)
    print(
        f"parity ok: robust {len(DOSES) * len(FOCUS)}-corner loss matches "
        f"the per-corner loop to {LOSS_RTOL:g}, grads to {GRAD_RTOL:g}"
    )
    perf = run_perf(setup, rounds=args.rounds)
    payload["perf"] = perf
    print(
        f"B={args.tiles} {args.scale}, C={perf['corners']} corners / "
        f"F={perf['focus_values']} focus: fused {perf['fused_ms']:.1f} ms vs "
        f"per-focus {perf['per_focus_ms']:.1f} ms vs per-corner "
        f"{perf['per_corner_ms']:.1f} ms "
        f"({perf['speedup_vs_per_corner']:.2f}x over per-corner)"
    )
    if args.hopkins_sweep:
        # The sweep is intentionally pinned to the 'default' preset (the
        # ROADMAP's "at scale" target, recorded in its own scale field);
        # the timing rounds follow the CLI flag.
        payload["hopkins_rank_sweep"] = run_hopkins_rank_sweep(
            rounds=args.rounds
        )
    _record(payload)
    if not args.check:
        assert perf["speedup_vs_per_corner"] >= SPEEDUP_GATE, (
            f"condition axis only {perf['speedup_vs_per_corner']:.2f}x over "
            f"the per-corner loop (gate: {SPEEDUP_GATE}x)"
        )
        print(f"gate passed: >= {SPEEDUP_GATE}x over per-corner passes")
    return 0


# ----------------------------------------------------------------------
# pytest entry points (same checks, bench-suite conventions)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode needs no pytest
    pytest = None
else:

    @pytest.fixture(scope="module")
    def shared_setup():
        return _setup()


def test_process_window_parity(shared_setup):
    run_parity(shared_setup)


def test_process_window_speedup(shared_setup):
    if CHECK_ONLY:
        pytest.skip("BISMO_PW_CHECK_ONLY=1: parity-only mode, gate skipped")
    perf = run_perf(shared_setup)
    print(
        f"\nprocess window: B={NUM_TILES} {SCALE} C={perf['corners']} "
        f"F={perf['focus_values']} "
        f"speedup={perf['speedup_vs_per_corner']:.2f}x"
    )
    assert perf["speedup_vs_per_corner"] >= SPEEDUP_GATE


if __name__ == "__main__":
    raise SystemExit(main())
