"""Reusable bench-result recorder — the ``BENCH_*.json`` perf trajectory.

Every perf-gating benchmark records its measurements through
:func:`record_bench` so the repo accumulates a machine-readable
trajectory of hot-path performance across PRs: each call *appends* a
run entry (timestamp, git revision, environment fingerprint, payload)
to ``BENCH_<name>.json`` at the repo root instead of overwriting it.
Future sessions diff the latest entry against history to catch
regressions that a pass/fail wall-clock gate alone would hide.

Usage (from any bench module)::

    from bench_runner import record_bench

    record_bench("fused_imaging", {"speedup": 1.9, ...})

``BISMO_BENCH_DIR`` redirects the output directory (CI points it at a
scratch dir and uploads the JSON as a workflow artifact).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Optional
from bench_env import env_str

__all__ = ["record_bench", "bench_dir", "MAX_RUNS"]

#: Trajectory length bound; the oldest entries roll off.
MAX_RUNS = 200


def bench_dir() -> Path:
    """Directory holding the ``BENCH_*.json`` files (repo root)."""
    override = env_str("BISMO_BENCH_DIR", "").strip()
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent


def _fftlib_fingerprint() -> Optional[Dict[str, Any]]:
    """Current :func:`repro.optics.fftlib.describe` policy, or ``None``
    when the package is not importable (standalone recorder use)."""
    try:
        from repro.optics import fftlib
    except ImportError:
        return None
    return fftlib.describe()


def _obs_fingerprint() -> Optional[Dict[str, Any]]:
    """Observability snapshot for the entry's environment fingerprint.

    Captures the obs metric registry (cache hit/miss counts, FFT and
    chunk counters, harness retry totals) alongside the enabled flags,
    so a perf-trajectory entry records *how much work* the benchmarked
    code actually did — a speedup entry whose FFT count also changed is
    an algorithmic change, not a perf delta.  ``None`` when the package
    is not importable (standalone recorder use).
    """
    try:
        from repro import obs
    except ImportError:
        return None
    snap = obs.snapshot()
    snap["enabled"] = {
        "trace": obs.trace_enabled(),
        "metrics": obs.metrics_enabled(),
    }
    return snap


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def record_bench(
    name: str, payload: Dict[str, Any], path: Optional[os.PathLike] = None
) -> Path:
    """Append one run entry to ``BENCH_<name>.json`` and return its path.

    ``payload`` must be JSON-serializable; the helper adds the run
    metadata (UTC timestamp, git revision, python/platform fingerprint,
    CPU count, the live ``fftlib.describe()`` threading policy, and the
    ``repro.obs`` metrics snapshot — cache hit rates, FFT counts, retry
    totals) so trajectory entries are comparable across machines.  A corrupt or
    legacy file is replaced rather than crashing the benchmark that
    reports into it.
    """
    out = Path(path) if path is not None else bench_dir() / f"BENCH_{name}.json"
    data: Dict[str, Any] = {"name": name, "runs": []}
    if out.exists():
        try:
            loaded = json.loads(out.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                data = loaded
        except (json.JSONDecodeError, OSError):
            pass
    data["name"] = name
    data["runs"].append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_revision": _git_revision(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "fftlib": _fftlib_fingerprint(),
            "obs": _obs_fingerprint(),
            "payload": payload,
        }
    )
    data["runs"] = data["runs"][-MAX_RUNS:]
    out.parent.mkdir(parents=True, exist_ok=True)
    # Atomic replace: a benchmark killed mid-write must never leave a
    # truncated BENCH_*.json behind (same-directory temp so the rename
    # stays on one filesystem).
    tmp = out.with_name(out.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, out)
    return out
