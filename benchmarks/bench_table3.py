"""Table 3 reproduction: L2 / PVB comparison of all eight methods.

Paper shape to verify (Table 3 "Ratio" row): BiSMO-NMN best; BiSMO-CG
and BiSMO-FD within a few percent; AM-SMO(Abbe-Abbe) ~1.4x worse;
MO-only and hybrid methods 1.5-2.6x worse.
"""

from __future__ import annotations

from repro.harness import render_table, table3


def test_table3_l2_pvb(benchmark, matrix_records):
    table = benchmark.pedantic(
        lambda: table3(matrix_records), rounds=1, iterations=1
    )
    print()
    print(render_table(table))

    ratio = dict(zip(table.columns, table.row("Ratio")))
    avg = dict(zip(table.columns, table.row("Average")))
    for col in ("BiSMO-NMN L2", "Abbe-MO L2", "NILT L2"):
        benchmark.extra_info[col] = avg[col]

    # Paper-shape assertions: the bilevel methods must not lose to the
    # MO-only and AM baselines on the combined error metrics.
    bismo_best = min(
        ratio["BiSMO-NMN L2"] + ratio["BiSMO-NMN PVB"],
        ratio["BiSMO-CG L2"] + ratio["BiSMO-CG PVB"],
        ratio["BiSMO-FD L2"] + ratio["BiSMO-FD PVB"],
    )
    nilt = ratio["NILT L2"] + ratio["NILT PVB"]
    assert bismo_best <= nilt + 1e-9, "a BiSMO variant should beat NILT"
