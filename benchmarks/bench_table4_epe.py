"""Table 4 (EPE rows) reproduction: average EPE violations per method.

Paper shape: NILT worst by a wide margin (10.1 avg); the BiSMO variants
best (1.6-1.8); Abbe-MO between DAC23-MILT and AM-SMO(Abbe-Abbe).
"""

from __future__ import annotations

import numpy as np

from repro.harness import render_table, table4


def test_table4_epe(benchmark, matrix_records):
    table = benchmark.pedantic(
        lambda: table4(matrix_records), rounds=1, iterations=1
    )
    print()
    print(render_table(table))

    epe = dict(zip(table.columns, table.row("EPE avg.")))
    for method, value in epe.items():
        benchmark.extra_info[f"EPE {method}"] = value

    best_bismo = min(epe["BiSMO-FD"], epe["BiSMO-CG"], epe["BiSMO-NMN"])
    assert best_bismo <= epe["NILT"] + 1e-9, "BiSMO should not lose EPE to NILT"
