"""Table 4 (TAT rows): per-method runtime under the common budget, plus
per-iteration micro-benchmarks of the two imaging engines.

Paper shape: MO-only methods fastest per clip; BiSMO ~1x around its FD/
CG/NMN variants; AM-SMO(Abbe-Abbe) ~8x slower and AM-SMO(Abbe-Hopkins)
~20x slower (TCC rebuild cost) under equal-quality budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.harness import render_table, table4
from repro.harness.runner import _annular_source, _target_image
from repro.optics import AbbeImaging, HopkinsImaging
from repro.smo import init_theta_mask, init_theta_source


def test_table4_tat(benchmark, matrix_records):
    table = benchmark.pedantic(
        lambda: table4(matrix_records), rounds=1, iterations=1
    )
    print()
    print(render_table(table))
    tat = dict(zip(table.columns, table.row("TAT avg. (s)")))
    for method, value in tat.items():
        benchmark.extra_info[f"TAT {method}"] = value
    # AM-SMO(Abbe-Hopkins) pays for per-round TCC rebuilds on top of the
    # enlarged AM budget: it must cost more than every MO-only method, as
    # in the paper's Table 4 (19.5x vs <=0.84x ratios).
    for mo_method in ("NILT", "DAC23-MILT", "Abbe-MO"):
        assert tat["AM-SMO(Abbe-Hopkins)"] > tat[mo_method]


@pytest.fixture(scope="module")
def imaging_setup(settings, datasets):
    cfg = settings.config
    clip = datasets[0][0]
    target = _target_image(clip, cfg)
    source = _annular_source(cfg)
    return cfg, target, source


def test_abbe_mo_iteration(benchmark, imaging_setup):
    """One Abbe-MO gradient step (the paper reports 0.16 s/iter on GPU)."""
    cfg, target, source = imaging_setup
    engine = AbbeImaging(cfg)
    theta_j = ad.Tensor(init_theta_source(source, cfg))
    theta_m = init_theta_mask(target, cfg)
    from repro.smo import AbbeSMOObjective

    objective = AbbeSMOObjective(cfg, target, engine=engine)

    def step():
        tm = ad.Tensor(theta_m, requires_grad=True)
        loss = objective.loss(theta_j, tm)
        (g,) = ad.grad(loss, [tm])
        return g.data

    benchmark(step)


def test_hopkins_mo_iteration(benchmark, imaging_setup):
    """One Hopkins-MO gradient step (paper: 0.12 s/iter on GPU)."""
    cfg, target, source = imaging_setup
    from repro.smo import HopkinsMOObjective

    objective = HopkinsMOObjective(cfg, target, source)
    theta_m = init_theta_mask(target, cfg)

    def step():
        tm = ad.Tensor(theta_m, requires_grad=True)
        loss = objective.loss(tm)
        (g,) = ad.grad(loss, [tm])
        return g.data

    benchmark(step)


def test_tcc_rebuild_cost(benchmark, imaging_setup):
    """The hybrid AM-SMO per-round TCC + SOCS rebuild the paper blames
    for its 19.5x slowdown."""
    cfg, target, source = imaging_setup

    benchmark.pedantic(
        lambda: HopkinsImaging(cfg, source, num_kernels=cfg.socs_terms),
        rounds=2,
        iterations=1,
    )
