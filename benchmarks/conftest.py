"""Shared configuration for the benchmark suite.

Every paper table/figure has a bench module here.  Scale knobs come from
the environment so the same suite serves quick CI runs and full-quality
reproductions:

* ``BISMO_BENCH_SCALE``  — optical preset (default ``small``; use
  ``default`` for the 128-px reproduction-quality run, ``paper`` for the
  full 2048-px configuration).
* ``BISMO_BENCH_CLIPS``  — clips per dataset (default 1).
* ``BISMO_BENCH_ITERS``  — iteration budget per method (default 25).

The (method x dataset x clip) sweep backing Table 3 and Table 4 is
computed once per session and shared.
"""

from __future__ import annotations


import pytest

from repro.harness import METHOD_ORDER, RunSettings, run_matrix
from repro.layouts import Clip, dataset_by_name, DATASET_NAMES
from bench_env import env_int, env_str

BENCH_SCALE = env_str("BISMO_BENCH_SCALE", "small")
BENCH_CLIPS = env_int("BISMO_BENCH_CLIPS", 1)
BENCH_ITERS = env_int("BISMO_BENCH_ITERS", 25)


def rescale_clips(clips, config):
    """Rescale dataset clips onto a preset's tile pitch.

    Presets with a different tile (tiny = 500 nm vs the datasets'
    2000 nm) get the same clip geometry scaled onto their tile, so every
    bench can run at any scale.  Shared by the joint-SMO and
    fused-imaging bench setups.
    """
    clips = list(clips)
    if abs(clips[0].tile_nm - config.tile_nm) <= 1e-9:
        return clips
    factor = config.tile_nm / clips[0].tile_nm
    return [
        Clip(
            name=c.name,
            rects=tuple(r.scaled(factor) for r in c.rects),
            cd_nm=c.cd_nm,
            tile_nm=config.tile_nm,
        )
        for c in clips
    ]


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    return RunSettings.preset(BENCH_SCALE, iterations=BENCH_ITERS)


@pytest.fixture(scope="session")
def datasets():
    return [dataset_by_name(name, num_clips=BENCH_CLIPS) for name in DATASET_NAMES]


@pytest.fixture(scope="session")
def matrix_records(settings, datasets):
    """The shared Table 3 / Table 4 sweep (all eight methods)."""
    return run_matrix(
        datasets,
        settings,
        methods=METHOD_ORDER,
        clips_per_dataset=BENCH_CLIPS,
    )
