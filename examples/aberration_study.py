"""Aberration study: nominal vs robust vs adaptive-minimax corner matrix.

Exercises the Zernike aberration subsystem end to end: build a process
window whose corners drift in *pupil phase* — defocus (Z4), astigmatism
(Z5) and coma (Z7) — not just dose, then optimize one mask three ways
under the same iteration budget:

* **nominal** — classic MO, blind to the window;
* **robust sum** — the weighted-sum corner loss (static weights, the
  paper-style gamma-on-nominal weighting);
* **adaptive** — ``robust="adaptive"``: an exponentiated-gradient
  ascent re-weights the corners by their loss share every iteration, a
  soft-minimax loop that keeps shifting effort onto whichever corner is
  currently worst.

The harness process-window report judges all three masks at every
corner (per-corner L2/EPE plus the window-wide variation band), and the
script prints the adaptive weight trajectory.  The closing check is the
acceptance bar of the aberration issue: the adaptive run's worst-corner
loss must be strictly below the static-sum run's.

Run:  PYTHONPATH=src python examples/aberration_study.py
"""

import numpy as np

from repro.geometry import GridSpec, rasterize
from repro.harness import (
    RunSettings,
    evaluate_process_window,
    process_window_table,
    render_table,
)
from repro.layouts import iccad13
from repro.optics import OpticalConfig, ProcessWindow, SourceGrid, annular, binarize
from repro.smo import AbbeMO

ITERATIONS = 40


def main() -> None:
    config = OpticalConfig.preset("small")
    # Dose x aberration grid: nominal, defocus, astigmatism, coma — the
    # static weights put most mass on the nominal condition (the classic
    # gamma-heavy weighting), which is exactly the setting where a hard
    # aberrated corner gets under-served by a fixed weighted sum.
    aberrated = ({"Z4": 80.0}, {"Z5": 35.0}, {"Z7": 30.0})
    conditions = 1 + len(aberrated)
    weights = []
    for _ in (0.98, 1.02):  # dose-major order, per-condition weights
        weights.extend([6.0] + [1.0] * len(aberrated))
    window = ProcessWindow.from_grid(
        doses=(0.98, 1.02),
        focus_nm=(0.0,),
        aberrations=aberrated,
        weights=weights,
    )
    print(
        f"window: {window.num_corners} corners over {conditions} pupil "
        f"conditions — {', '.join(ab.label for ab in window.conditions())}"
    )

    clip = iccad13(num_clips=1)[0]
    grid = GridSpec(config.mask_size, config.pixel_nm)
    target = binarize(rasterize(clip.rects, grid))
    source = annular(
        SourceGrid.from_config(config), config.sigma_out, config.sigma_in
    )

    # ---- three optimizations, one budget ------------------------------
    runs = {
        "nominal": AbbeMO(config, target, source),
        "robust-sum": AbbeMO(
            config, target, source, process_window=window, robust="sum"
        ),
        "adaptive": AbbeMO(
            config,
            target,
            source,
            process_window=window,
            robust="adaptive",
            robust_tau=1.0,  # EG ascent rate
        ),
    }
    results = {name: solver.run(iterations=ITERATIONS) for name, solver in runs.items()}

    # ---- corner matrix report -----------------------------------------
    settings = RunSettings(
        config=config, iterations=ITERATIONS, process_window=window
    )
    records = []
    for name, result in results.items():
        rec = evaluate_process_window(
            result, clip, settings, source_fallback=source
        )
        rec.method = name
        records.append(rec)
    print()
    print(render_table(process_window_table(records, value="l2")))
    print()
    print(render_table(process_window_table(records, value="epe")))

    # ---- worst-corner comparison on the optimization loss -------------
    worst = {}
    for name, result in results.items():
        solver = runs[name]
        if name == "nominal":
            continue
        matrix = solver.objective.corner_loss_matrix(
            solver._theta_j_fixed.data, result.theta_m
        )
        worst[name] = matrix.sum(axis=1)
    labels = window.labels
    print("\nper-corner losses at the final mask (soft resist):")
    for name, losses in worst.items():
        worst_i = int(np.argmax(losses))
        print(
            f"  {name:>10}: worst corner {labels[worst_i]} = "
            f"{losses[worst_i]:.1f}  (all: "
            + ", ".join(f"{v:.1f}" for v in losses)
            + ")"
        )

    trajectory = results["adaptive"].corner_weight_matrix()
    drift = trajectory[-1] - trajectory[0]
    gained = int(np.argmax(drift))
    print(
        f"\nadaptive weight trajectory: corner {labels[gained]} gained the "
        f"most mass ({trajectory[0][gained]:.2f} -> {trajectory[-1][gained]:.2f}); "
        f"weight mass conserved at {trajectory[-1].sum():.1f}"
    )

    # The acceptance bar: adaptive strictly reduces the worst-corner loss.
    assert worst["adaptive"].max() < worst["robust-sum"].max(), (
        "adaptive minimax failed to beat the static weighted sum on the "
        "worst corner"
    )
    print(
        f"\nadaptive worst-corner loss {worst['adaptive'].max():.1f} < "
        f"robust-sum worst-corner loss {worst['robust-sum'].max():.1f}  ✓"
    )


if __name__ == "__main__":
    main()
