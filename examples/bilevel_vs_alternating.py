"""BiSMO vs AM-SMO convergence — the Figure 3 story on one clip.

Runs the alternating-minimization baseline and the three bilevel
variants under the same step budget and prints an ASCII convergence
plot: AM-SMO shows its characteristic zigzag (phase switching) while the
BiSMO variants descend smoothly past it.

Run:  python examples/bilevel_vs_alternating.py
"""

import numpy as np

from repro.geometry import GridSpec, rasterize
from repro.harness import ascii_plot
from repro.harness.figures import FigureSeries
from repro.layouts import iccad13
from repro.optics import OpticalConfig, SourceGrid, annular, binarize
from repro.smo import AMSMO, AbbeSMOObjective, BiSMO


def main() -> None:
    config = OpticalConfig.preset("small")
    clip = iccad13(num_clips=1)[0]
    grid = GridSpec(config.mask_size, config.pixel_nm)
    target = binarize(rasterize(clip.rects, grid))
    source_grid = SourceGrid.from_config(config)
    source = annular(source_grid, config.sigma_out, config.sigma_in)
    objective = AbbeSMOObjective(config, target)

    series = []

    am = AMSMO(config, target, rounds=3, so_steps=8, mo_steps=12).run(source)
    series.append(
        FigureSeries("AM-SMO", np.arange(len(am.losses)), am.log_losses())
    )
    print(f"AM-SMO             final loss {am.final_loss:12.0f}  ({am.runtime_seconds:.1f}s)")

    for method in ("fd", "cg", "nmn"):
        solver = BiSMO(
            config,
            target,
            method=method,
            damping=1.0 if method == "cg" else 0.0,
            objective=objective,
        )
        res = solver.run(source, iterations=30)
        series.append(
            FigureSeries(res.method, np.arange(len(res.losses)), res.log_losses())
        )
        print(
            f"{res.method:18s} final loss {res.final_loss:12.0f}  "
            f"({res.runtime_seconds:.1f}s)"
        )

    print("\nlog10(L_smo) vs step:")
    print(ascii_plot(series, width=70, height=16))


if __name__ == "__main__":
    main()
