"""Abbe-MO vs Hopkins-MO on an ICCAD13-style clip, with mask export.

Reproduces the Section 4.1 observation that lossless Abbe imaging gives
better mask optimization than truncated Hopkins/SOCS, then exports the
optimized mask back to rectilinear layout form (GLP), the way a real
OPC flow would hand it to mask synthesis.

Run:  python examples/mask_optimization_iccad.py
"""

import numpy as np

from repro.geometry import GridSpec, grid_to_rects, rasterize
from repro.layouts import dumps, iccad13
from repro.metrics import l2_error_nm2, pvb_nm2
from repro.optics import OpticalConfig, SourceGrid, annular, binarize
from repro.smo import AbbeMO, AbbeSMOObjective, HopkinsMO, init_theta_source


def main() -> None:
    config = OpticalConfig.preset("small")
    clip = iccad13(num_clips=2)[1]
    grid = GridSpec(config.mask_size, config.pixel_nm)
    target = binarize(rasterize(clip.rects, grid))
    source_grid = SourceGrid.from_config(config)
    source = annular(source_grid, config.sigma_out, config.sigma_in)

    judge = AbbeSMOObjective(config, target)

    results = {}
    for name, solver in (
        ("Abbe-MO", AbbeMO(config, target, source, objective=judge)),
        ("Hopkins-MO (Q=12)", HopkinsMO(config, target, source, num_kernels=12)),
    ):
        res = solver.run(iterations=40)
        theta_bin = np.where(res.theta_m >= 0, 1e3, -1e3)
        images = judge.images(init_theta_source(source, config), theta_bin)
        results[name] = (
            res,
            l2_error_nm2(images["resist"], target, config),
            pvb_nm2(images["resist_min"], images["resist_max"], config),
        )

    print(f"{'method':20s} {'final loss':>12s} {'L2 (nm^2)':>10s} {'PVB (nm^2)':>10s}")
    for name, (res, l2, pvb) in results.items():
        print(f"{name:20s} {res.final_loss:12.0f} {l2:10.0f} {pvb:10.0f}")

    # Export the Abbe-optimized mask to layout form.  Extra shapes beyond
    # the target are the SRAF-like assist features MO grows (Section 3.1
    # notes the target-initialized mask "facilitates SRAF generation").
    res, _, _ = results["Abbe-MO"]
    mask_img = binarize(1.0 / (1.0 + np.exp(-config.alpha_m * res.theta_m)))
    mask_rects = grid_to_rects(mask_img, grid)
    print(f"\noptimized mask vectorizes to {len(mask_rects)} rects "
          f"(target had {len(clip.rects)})")
    glp_text = dumps(clip.name + "_opt", {"M1": mask_rects})
    print("first lines of exported GLP:")
    print("\n".join(glp_text.splitlines()[:8]))


if __name__ == "__main__":
    main()
