"""Process-window study + mask manufacturability report.

Extensions beyond the paper's tables: after optimizing a mask with
Abbe-MO, sweep dose *and* focus corners to map the process window
(the paper's PVB uses dose only), report NILS/contrast diagnostics, and
run the mask-prep style manufacturability analysis (SRAF count, shots,
minimum feature).

Run:  python examples/process_window_study.py
"""

import numpy as np

from repro.geometry import GridSpec, rasterize
from repro.layouts import iccad13
from repro.mask import mask_statistics, remove_small_features
from repro.metrics import image_contrast, l2_error_nm2, nils_at_edges
from repro.optics import (
    AbbeImaging,
    OpticalConfig,
    SourceGrid,
    annular,
    binarize,
)
from repro.smo import AbbeMO, AbbeSMOObjective
from repro.smo.objective import dose_resist
import repro.autodiff as ad


def main() -> None:
    config = OpticalConfig.preset("small")
    clip = iccad13(num_clips=1)[0]
    grid = GridSpec(config.mask_size, config.pixel_nm)
    target = binarize(rasterize(clip.rects, grid))
    source = annular(
        SourceGrid.from_config(config), config.sigma_out, config.sigma_in
    )
    objective = AbbeSMOObjective(config, target)

    result = AbbeMO(config, target, source, objective=objective).run(iterations=40)
    mask = binarize(1.0 / (1.0 + np.exp(-config.alpha_m * result.theta_m)))

    # ---- dose x focus process-window map ------------------------------
    print("L2 error (nm^2) over the dose x focus grid:")
    doses = (0.96, 1.00, 1.04)
    foci = (0.0, 60.0, 120.0)
    header = "dose/focus"
    print(f"{header:>10s} " + " ".join(f"{f:>9.0f}nm" for f in foci))
    src_t = ad.Tensor(source)
    mask_t = ad.Tensor(mask)
    for dose in doses:
        row = []
        for focus in foci:
            engine = AbbeImaging(config, defocus_nm=focus)
            with ad.no_grad():
                aerial = engine.aerial(mask_t, src_t)
                z = dose_resist(aerial, config, dose).data
            row.append(l2_error_nm2(z, target, config))
        print(f"{dose:>10.2f} " + " ".join(f"{v:>11,.0f}" for v in row))

    # ---- image-quality diagnostics ------------------------------------
    with ad.no_grad():
        aerial = AbbeImaging(config).aerial(mask_t, src_t).data
    nils = nils_at_edges(aerial, clip.rects, config)
    roi = rasterize([r.expanded(60) for r in clip.rects], grid) > 0
    print(f"\nNILS at target edges: mean {nils.mean():.2f}, min {nils.min():.2f}")
    print(f"aerial contrast (near features): {image_contrast(aerial, roi):.3f}")

    # ---- manufacturability ---------------------------------------------
    stats = mask_statistics(mask, target, config)
    print(
        f"\nmask-prep report: {stats.shot_count} shots, "
        f"{stats.num_components} figures ({stats.num_srafs} SRAFs), "
        f"min feature {stats.min_feature_nm:.0f} nm"
    )
    cleaned = remove_small_features(mask, config, min_feature_nm=1.5 * config.pixel_nm)
    stats_clean = mask_statistics(cleaned, target, config)
    print(
        f"after mask-rule cleanup (>= {1.5 * config.pixel_nm:.0f} nm): "
        f"{stats_clean.shot_count} shots, {stats_clean.num_srafs} SRAFs"
    )


if __name__ == "__main__":
    main()
