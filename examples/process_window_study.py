"""Process-window study: robust SMO vs nominal MO across dose x focus.

Uses the first-class condition axis (PR 4): build a
:class:`repro.optics.ProcessWindow`, optimize one mask *robustly across
the whole window* (``process_window=`` on any solver), then judge both
the nominal and the robust mask at every corner with the harness
process-window report — per-corner L2/EPE matrix plus the window-wide
variation band.  Ends with the mask-prep manufacturability analysis.

Run:  PYTHONPATH=src python examples/process_window_study.py
"""

import numpy as np

from repro.geometry import GridSpec, rasterize
from repro.harness import (
    RunSettings,
    evaluate_process_window,
    process_window_table,
    render_table,
)
from repro.layouts import iccad13
from repro.mask import mask_statistics, remove_small_features
from repro.metrics import image_contrast, nils_at_edges
from repro.optics import (
    AbbeImaging,
    OpticalConfig,
    ProcessWindow,
    SourceGrid,
    annular,
    binarize,
)
from repro.smo import AbbeMO
import repro.autodiff as ad


def main() -> None:
    config = OpticalConfig.preset("small")
    window = ProcessWindow.from_grid(
        doses=(0.96, 1.0, 1.04), focus_nm=(0.0, 60.0, 120.0)
    )
    clip = iccad13(num_clips=1)[0]
    grid = GridSpec(config.mask_size, config.pixel_nm)
    target = binarize(rasterize(clip.rects, grid))
    source = annular(
        SourceGrid.from_config(config), config.sigma_out, config.sigma_in
    )

    # ---- nominal MO vs robust MO across the window --------------------
    nominal = AbbeMO(config, target, source).run(iterations=40)
    robust = AbbeMO(
        config, target, source, process_window=window
    ).run(iterations=40)

    settings = RunSettings(config=config, iterations=40, process_window=window)
    records = []
    for result in (nominal, robust):
        rec = evaluate_process_window(
            result, clip, settings, source_fallback=source
        )
        rec.method = "Abbe-MO" if result is nominal else "Abbe-MO(robust)"
        records.append(rec)

    print(render_table(process_window_table(records, value="l2")))
    print()
    print(render_table(process_window_table(records, value="epe")))
    band_nom, band_rob = records[0].band_nm2, records[1].band_nm2
    print(
        f"\nvariation band across all {window.num_corners} corners: "
        f"nominal {band_nom:,.0f} nm^2 vs robust {band_rob:,.0f} nm^2"
    )

    # ---- image-quality diagnostics for the robust mask ----------------
    mask = binarize(1.0 / (1.0 + np.exp(-config.alpha_m * robust.theta_m)))
    with ad.no_grad():
        aerial = AbbeImaging(config).aerial(
            ad.Tensor(mask), ad.Tensor(source)
        ).data
    nils = nils_at_edges(aerial, clip.rects, config)
    roi = rasterize([r.expanded(60) for r in clip.rects], grid) > 0
    print(f"\nNILS at target edges: mean {nils.mean():.2f}, min {nils.min():.2f}")
    print(f"aerial contrast (near features): {image_contrast(aerial, roi):.3f}")

    # ---- manufacturability ---------------------------------------------
    stats = mask_statistics(mask, target, config)
    print(
        f"\nmask-prep report: {stats.shot_count} shots, "
        f"{stats.num_components} figures ({stats.num_srafs} SRAFs), "
        f"min feature {stats.min_feature_nm:.0f} nm"
    )
    cleaned = remove_small_features(mask, config, min_feature_nm=1.5 * config.pixel_nm)
    stats_clean = mask_statistics(cleaned, target, config)
    print(
        f"after mask-rule cleanup (>= {1.5 * config.pixel_nm:.0f} nm): "
        f"{stats_clean.shot_count} shots, {stats_clean.num_srafs} SRAFs"
    )


if __name__ == "__main__":
    main()
