"""Quickstart: run BiSMO-NMN on one synthetic ICCAD13-style clip.

Demonstrates the minimal end-to-end flow:

1. pick an optical configuration,
2. load a benchmark clip and rasterize it to the mask grid,
3. build the annular source template of the paper,
4. run the bilevel solver,
5. report the paper's metrics (L2 / PVB / EPE).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.geometry import GridSpec, rasterize
from repro.layouts import iccad13
from repro.metrics import epe_report, l2_error_nm2, pvb_nm2
from repro.optics import OpticalConfig, SourceGrid, annular, binarize
from repro.smo import AbbeSMOObjective, BiSMO


def main() -> None:
    # "small" = 64x64 grid over the 4 um^2 tile: seconds, not minutes.
    # Use OpticalConfig.preset("default") or "paper" for higher fidelity.
    config = OpticalConfig.preset("small")

    clip = iccad13(num_clips=1)[0]
    grid = GridSpec(config.mask_size, config.pixel_nm)
    target = binarize(rasterize(clip.rects, grid))
    print(f"clip {clip.name}: {len(clip.rects)} rects, {clip.area_nm2} nm^2")

    source_grid = SourceGrid.from_config(config)
    source0 = annular(source_grid, config.sigma_out, config.sigma_in)
    print(f"annular source: {int(source0.sum())} of {source_grid.num_valid} points lit")

    solver = BiSMO(config, target, method="nmn", unroll_steps=3, terms=5)
    result = solver.run(source0, iterations=30)
    print(
        f"{result.method}: loss {result.losses[0]:.0f} -> {result.final_loss:.0f} "
        f"in {result.runtime_seconds:.1f}s"
    )

    # Judge the final (source, mask) pair with the lossless Abbe model.
    objective = AbbeSMOObjective(config, target)
    theta_m_binary = np.where(result.theta_m >= 0, 1e3, -1e3)  # manufacturable mask
    images = objective.images(result.theta_j, theta_m_binary)
    l2 = l2_error_nm2(images["resist"], target, config)
    pvb = pvb_nm2(images["resist_min"], images["resist_max"], config)
    epe = epe_report(images["resist"], clip.rects, config)
    print(f"L2  = {l2:,.0f} nm^2")
    print(f"PVB = {pvb:,.0f} nm^2")
    print(f"EPE = {epe.violations} violations over {epe.num_sites} sites")


if __name__ == "__main__":
    main()
