"""Source-only optimization from different illumination templates.

Shows why SMO optimizes the source at all: for a fixed mask, the choice
of illumination (annular / quasar / dipole / conventional) changes the
printability loss substantially, and gradient-based SO (possible only
with the Abbe model — Section 2.1) improves each starting template.

Run:  python examples/source_templates.py
"""

import numpy as np

from repro.geometry import GridSpec, rasterize
from repro.layouts import iccad13
from repro.optics import (
    OpticalConfig,
    SourceGrid,
    annular,
    binarize,
    conventional,
    dipole,
    quasar,
)
from repro.smo import (
    AbbeSMOObjective,
    SourceOptimizer,
    init_theta_mask,
    init_theta_source,
)


def render_source(src: np.ndarray) -> str:
    """Tiny ASCII heat map of the source plane."""
    glyphs = " .:-=+*#%@"
    rows = []
    for row in src:
        rows.append("".join(glyphs[int(v * (len(glyphs) - 1))] for v in row))
    return "\n".join(rows)


def main() -> None:
    config = OpticalConfig.preset("small")
    clip = iccad13(num_clips=1)[0]
    grid = GridSpec(config.mask_size, config.pixel_nm)
    target = binarize(rasterize(clip.rects, grid))
    source_grid = SourceGrid.from_config(config)
    objective = AbbeSMOObjective(config, target)
    theta_m = init_theta_mask(target, config)

    templates = {
        "annular": annular(source_grid, config.sigma_out, config.sigma_in),
        "quasar": quasar(source_grid, config.sigma_out, 0.4),
        "dipole-x": dipole(source_grid, config.sigma_out, 0.4, axis="x"),
        "conventional": conventional(source_grid, 0.7),
    }

    print(f"{'template':14s} {'initial loss':>13s} {'after SO':>13s}")
    best = None
    for name, template in templates.items():
        so = SourceOptimizer(config, target, lr=0.1, objective=objective)
        res = so.run(theta_m, init_theta_source(template, config), iterations=25)
        print(f"{name:14s} {res.losses[0]:13.0f} {res.final_loss:13.0f}")
        if best is None or res.final_loss < best[1].final_loss:
            best = (name, res)

    assert best is not None
    name, res = best
    final_src = 1.0 / (1.0 + np.exp(-config.alpha_j * res.theta_j))
    final_src[~source_grid.valid] = 0.0
    print(f"\nbest template: {name}; optimized source map:")
    print(render_source(final_src))


if __name__ == "__main__":
    main()
