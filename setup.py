"""Legacy setup shim — the offline environment lacks the ``wheel`` package,
so editable installs go through ``setup.py develop`` (metadata lives in
``pyproject.toml``)."""

from setuptools import setup

setup()
