"""BiSMO — reproduction of "Efficient Bilevel Source Mask Optimization"
(Chen, He, Xu, Geng, Yu — DAC 2024, arXiv:2405.09548).

Package layout
--------------
``repro.autodiff``
    Numpy reverse-mode autodiff with complex/FFT support and exact
    double-backward HVPs (PyTorch stand-in; nothing else is installed).
``repro.geometry`` / ``repro.layouts``
    Rectilinear layout geometry, rasterization, EPE sites; GLP clip I/O
    and synthetic ICCAD13 / ICCAD-L / ISPD19-style datasets (Table 2).
``repro.optics``
    Abbe and Hopkins/SOCS imaging, source templates, pupil, resist.
``repro.smo``
    The paper's contribution: the unified differentiable Abbe SMO
    objective and the BiSMO-FD / BiSMO-NMN / BiSMO-CG bilevel solvers,
    plus AM-SMO / MO / SO baselines.
``repro.baselines``
    NILT-style and DAC23-MILT-style published comparators.
``repro.metrics``
    L2 / PVB / EPE evaluation (Definitions 1-3).
``repro.harness``
    Regeneration of every table and figure (``bismo`` CLI).

Quickstart
----------
>>> from repro.optics import OpticalConfig, SourceGrid, annular
>>> from repro.smo import BiSMO
>>> cfg = OpticalConfig.preset("small")
>>> # target: (cfg.mask_size, cfg.mask_size) binary numpy array
>>> solver = BiSMO(cfg, target, method="nmn")
>>> src = annular(SourceGrid.from_config(cfg), cfg.sigma_out, cfg.sigma_in)
>>> result = solver.run(src, iterations=40)
"""

__version__ = "0.1.0"

from . import autodiff, baselines, geometry, harness, layouts, mask, metrics, opt, optics, smo, utils

__all__ = [
    "__version__",
    "autodiff",
    "geometry",
    "layouts",
    "optics",
    "smo",
    "baselines",
    "mask",
    "metrics",
    "opt",
    "harness",
    "utils",
]
