"""reprolint — the project's own static-analysis pass.

The reproduction rests on invariants that exist only by convention:
every FFT dispatches through :mod:`repro.optics.fftlib`, engine/cache
memo mutations hold their lock, fan-out reductions run in fixed
caller-thread order, library invariants raise real exceptions.  Nothing
in a generic linter knows any of that, so this package encodes the
conventions as machine-checked AST rules (R1-R8, see
:mod:`repro.analysis.rules`) with a CLI (``python -m repro.analysis``),
text/JSON reporters and per-line waiver comments::

    # reprolint: allow[R4] private per-stack accumulator owned by the caller

See ``docs/ARCHITECTURE.md`` ("Invariants & static analysis") for the
rule-to-invariant map.
"""

from __future__ import annotations

from .engine import (
    AnalysisError,
    Finding,
    Module,
    Project,
    Report,
    lint_source,
    run_paths,
)
from .registry import DECLARED_ENV_VARS, is_declared_env_var
from .rules import ALL_RULES, Rule, rules_by_id

__all__ = [
    "AnalysisError",
    "Finding",
    "Module",
    "Project",
    "Report",
    "lint_source",
    "run_paths",
    "DECLARED_ENV_VARS",
    "is_declared_env_var",
    "ALL_RULES",
    "Rule",
    "rules_by_id",
]
