"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings, 2 engine errors (syntax/IO/bad args).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import AnalysisError, run_paths
from .reporters import render_json, render_rule_list, render_text


def _find_root(start: Path) -> Path:
    """Walk up from *start* to the repo root (marked by README.md + src/)."""
    cur = start.resolve()
    for candidate in (cur, *cur.parents):
        if (candidate / "README.md").is_file() and (candidate / "src").is_dir():
            return candidate
    return cur


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: static analysis for this repo's invariants (rules R1-R8)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "examples"],
        help="files or directories to lint (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for module-name resolution and the README cross-check "
        "(default: auto-detected from cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run, e.g. R1,R7 (default: all)",
    )
    parser.add_argument(
        "--show-waived",
        action="store_true",
        help="also print findings suppressed by waiver comments",
    )
    parser.add_argument(
        "--no-project-checks",
        action="store_true",
        help="skip project-level checks (the R2 README cross-check)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    root = Path(args.root).resolve() if args.root else _find_root(Path.cwd())
    select: Optional[List[str]] = None
    if args.select:
        select = [part for part in args.select.split(",") if part.strip()]

    try:
        report = run_paths(
            [Path(p) for p in args.paths],
            root=root,
            select=select,
            project_checks=not args.no_project_checks,
        )
    except AnalysisError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_waived=args.show_waived))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
