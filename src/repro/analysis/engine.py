"""Core of the reprolint engine: modules, findings, waivers, runner.

The engine parses every target file once into an :class:`ast.Module`,
wraps it in a :class:`Module` record (source lines, dotted module name,
waiver table), and hands the batch to each rule.  Rules yield
:class:`Finding` objects; the engine then applies per-line waiver
comments of the form::

    result = unsafe_thing()  # reprolint: allow[R4] caller owns the buffer

A waiver on its own line applies to the next source line, so block
constructs can be waived without trailing comments.  Waivers must name
the rule id and carry a non-empty reason; malformed waivers are
findings themselves (rule ``W0``) so they cannot rot silently.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AnalysisError",
    "Finding",
    "Waiver",
    "Module",
    "Project",
    "Report",
    "module_name_for",
    "collect_files",
    "lint_source",
    "run_paths",
]

_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]*)\]\s*(?P<reason>.*)$"
)
_WAIVER_MARKER_RE = re.compile(r"#\s*reprolint\b")


class AnalysisError(RuntimeError):
    """Raised for unrecoverable engine errors (bad paths, bad config)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.waived:
            out["waived"] = True
            out["waiver_reason"] = self.waiver_reason
        return out


@dataclass(frozen=True)
class Waiver:
    """A parsed ``# reprolint: allow[...]`` comment."""

    line: int  # line the waiver comment sits on
    applies_to: int  # line the waiver covers
    rules: Tuple[str, ...]
    reason: str


@dataclass
class Module:
    """A parsed source file plus the metadata rules need."""

    path: Path  # absolute path on disk
    rel: str  # repo-relative posix path (stable for reports)
    module: Optional[str]  # dotted module name, e.g. "repro.optics.abbe"
    source: str
    tree: ast.Module
    waivers: Dict[int, List[Waiver]] = field(default_factory=dict)
    waiver_problems: List[Finding] = field(default_factory=list)

    @property
    def is_library(self) -> bool:
        """True for modules under the installable ``repro`` package."""
        return bool(self.module) and (
            self.module == "repro" or str(self.module).startswith("repro.")
        )

    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class Project:
    """The full batch of modules a run sees, plus the repo root."""

    root: Path
    modules: List[Module]

    def by_module(self, name: str) -> Optional[Module]:
        for mod in self.modules:
            if mod.module == name:
                return mod
        return None


@dataclass
class Report:
    """Outcome of a run: live findings, waived findings, engine errors."""

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def _parse_waivers(rel: str, source: str, known_rules: Set[str]) -> Tuple[Dict[int, List[Waiver]], List[Finding]]:
    """Extract waiver comments via the tokenizer (no string false-positives).

    Returns a map of covered-line -> waivers, plus findings for malformed
    waivers (missing reason, unknown rule id, unparseable allow[...]).
    """
    waivers: Dict[int, List[Waiver]] = {}
    problems: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers, problems

    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if not _WAIVER_MARKER_RE.search(tok.string):
            continue
        line_no, col = tok.start
        match = _WAIVER_RE.search(tok.string)
        if not match:
            problems.append(
                Finding(
                    rule="W0",
                    path=rel,
                    line=line_no,
                    col=col,
                    message="malformed reprolint comment; expected "
                    "'# reprolint: allow[RULE] reason'",
                )
            )
            continue
        rule_ids = tuple(
            part.strip().upper() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason").strip()
        if not rule_ids:
            problems.append(
                Finding(
                    rule="W0",
                    path=rel,
                    line=line_no,
                    col=col,
                    message="waiver names no rules; expected allow[RULE]",
                )
            )
            continue
        unknown = [rid for rid in rule_ids if rid not in known_rules]
        if unknown:
            problems.append(
                Finding(
                    rule="W0",
                    path=rel,
                    line=line_no,
                    col=col,
                    message="waiver names unknown rule(s): " + ", ".join(unknown),
                )
            )
            continue
        if not reason:
            problems.append(
                Finding(
                    rule="W0",
                    path=rel,
                    line=line_no,
                    col=col,
                    message="waiver for "
                    + ", ".join(rule_ids)
                    + " needs a reason after the bracket",
                )
            )
            continue
        # A comment-only line waives the next line; otherwise it waives
        # the line it trails.
        text_before = lines[line_no - 1][:col] if line_no - 1 < len(lines) else ""
        applies_to = line_no + 1 if not text_before.strip() else line_no
        waiver = Waiver(line=line_no, applies_to=applies_to, rules=rule_ids, reason=reason)
        waivers.setdefault(applies_to, []).append(waiver)
    return waivers, problems


def module_name_for(path: Path, root: Path) -> Optional[str]:
    """Dotted module name for *path*, or None when it has no import name.

    ``src/<pkg>/...`` resolves through the src layout; ``benchmarks/*.py``
    and ``examples/*.py`` resolve as ``benchmarks.<stem>`` /
    ``examples.<stem>`` (they are run with those dirs on sys.path).
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    parts = list(rel.parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    stem = parts[-1][: -len(".py")]
    dotted = parts[:-1] + ([] if stem == "__init__" else [stem])
    if not dotted:
        return None
    return ".".join(dotted)


def collect_files(paths: Sequence[Path], root: Path) -> List[Path]:
    """Expand files/directories into a sorted list of python files."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for raw in paths:
        path = raw if raw.is_absolute() else root / raw
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
        for cand in candidates:
            resolved = cand.resolve()
            if "__pycache__" in resolved.parts or resolved in seen:
                continue
            seen.add(resolved)
            out.append(resolved)
    return out


def _load_module(path: Path, root: Path, known_rules: Set[str], module_name: Optional[str] = None) -> Tuple[Optional[Module], Optional[Finding]]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        rel = _rel_of(path, root)
        return None, Finding(rule="E0", path=rel, line=1, col=0, message=f"cannot read file: {exc}")
    rel = _rel_of(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            rule="E0",
            path=rel,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0),
            message=f"syntax error: {exc.msg}",
        )
    waivers, problems = _parse_waivers(rel, source, known_rules)
    name = module_name if module_name is not None else module_name_for(path, root)
    return (
        Module(path=path, rel=rel, module=name, source=source, tree=tree, waivers=waivers, waiver_problems=problems),
        None,
    )


def _rel_of(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _apply_waivers(module: Module, findings: Iterable[Finding]) -> Tuple[List[Finding], List[Finding]]:
    live: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        waiver = _matching_waiver(module, finding)
        if waiver is not None:
            waived.append(
                Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    waived=True,
                    waiver_reason=waiver.reason,
                )
            )
        else:
            live.append(finding)
    return live, waived


def _matching_waiver(module: Module, finding: Finding) -> Optional[Waiver]:
    for waiver in module.waivers.get(finding.line, []):
        if finding.rule in waiver.rules:
            return waiver
    return None


def _run_rules(project: Project, rules: Sequence["RuleLike"], project_checks: bool) -> Report:
    report = Report(files_checked=len(project.modules))
    for module in project.modules:
        module_findings: List[Finding] = []
        for rule in rules:
            module_findings.extend(rule.check(module))
        live, waived = _apply_waivers(module, module_findings)
        report.findings.extend(live)
        report.waived.extend(waived)
        report.findings.extend(module.waiver_problems)
    if project_checks:
        for rule in rules:
            report.findings.extend(rule.check_project(project))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.waived.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


class RuleLike:
    """Structural interface rules implement (see rules.Rule)."""

    rule_id = "R?"

    def check(self, module: Module) -> Iterable[Finding]:
        raise NotImplementedError

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


def _select_rules(select: Optional[Sequence[str]]) -> List["RuleLike"]:
    from .rules import ALL_RULES, rules_by_id

    if select is None:
        return [cls() for cls in ALL_RULES]
    table = rules_by_id()
    picked: List[RuleLike] = []
    for rid in select:
        key = rid.strip().upper()
        if key not in table:
            raise AnalysisError(f"unknown rule id: {rid}")
        picked.append(table[key]())
    return picked


def lint_source(
    source: str,
    *,
    module_name: Optional[str],
    filename: str = "<memory>",
    select: Optional[Sequence[str]] = None,
    project_checks: bool = False,
    root: Optional[Path] = None,
) -> Report:
    """Lint a source string as if it were module *module_name*.

    The workhorse for fixture tests: rules that scope by module name
    (library-only rules, the fftlib exemption) see exactly the declared
    name rather than the fixture's on-disk location.
    """
    rules = _select_rules(select)
    known = {rule.rule_id for rule in rules} | {r.rule_id for r in _select_rules(None)}
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report = Report(files_checked=1)
        report.errors.append(
            Finding(
                rule="E0",
                path=filename,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0),
                message=f"syntax error: {exc.msg}",
            )
        )
        return report
    waivers, problems = _parse_waivers(filename, source, known)
    module = Module(
        path=Path(filename),
        rel=filename,
        module=module_name,
        source=source,
        tree=tree,
        waivers=waivers,
        waiver_problems=problems,
    )
    project = Project(root=root or Path.cwd(), modules=[module])
    return _run_rules(project, rules, project_checks)


def run_paths(
    paths: Sequence[Path],
    *,
    root: Path,
    select: Optional[Sequence[str]] = None,
    project_checks: bool = True,
) -> Report:
    """Lint files/directories under *root* and return a :class:`Report`."""
    rules = _select_rules(select)
    known = {r.rule_id for r in _select_rules(None)}
    files = collect_files(paths, root)
    modules: List[Module] = []
    errors: List[Finding] = []
    for path in files:
        module, error = _load_module(path, root, known)
        if error is not None:
            errors.append(error)
        elif module is not None:
            modules.append(module)
    project = Project(root=root, modules=modules)
    report = _run_rules(project, rules, project_checks)
    report.errors.extend(errors)
    report.files_checked = len(files)
    return report
