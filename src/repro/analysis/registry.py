"""Declared environment-variable registry for the R2 env-registry rule.

Every ``REPRO_*`` / ``BISMO_*`` environment variable the project reads
must be declared here, and raw ``os.environ`` reads of those prefixes
are only permitted in the designated reader modules listed in
``RAW_READER_MODULES`` (:mod:`repro.optics.fftlib` and
:mod:`repro.optics.backend` for the library,
``benchmarks/bench_env.py`` for the benchmark suite,
:mod:`repro.harness.resilience` for the harness resilience knobs,
:mod:`repro.obs.state` for the observability switches, and
:mod:`repro.utils.faultinject` for the fault plan, which must stay
importable before the rest of the package).  The R2 project check additionally
cross-checks this registry against the env-var table in ``README.md``
so the docs cannot drift from the code.
"""

from __future__ import annotations

from typing import Dict, Tuple

# Prefixes the registry governs.  Reads of anything else (PATH, CI, ...)
# are out of scope for R2.
GOVERNED_PREFIXES: Tuple[str, ...] = ("REPRO_", "BISMO_")

# name -> one-line description (kept in sync with README's env-var table
# by the R2 project-level cross-check).
DECLARED_ENV_VARS: Dict[str, str] = {
    # -- library knobs (read by repro.optics.fftlib) -------------------
    "REPRO_FFT_BACKEND": "FFT backend selection: auto|scipy|numpy",
    "REPRO_FFT_WORKERS": "scipy FFT worker threads per transform",
    "REPRO_FFT_PRECISION": "FFT compute precision: double|single",
    "REPRO_FFT_CHUNK": "batch chunk size for stacked transforms",
    "REPRO_COND_WORKERS": "process-condition fan-out worker threads",
    "REPRO_WORKER_BUDGET": "global cap on cond workers x FFT workers",
    # -- array backend (read by repro.optics.backend) ------------------
    "REPRO_BACKEND": "array backend selection: numpy|torch|cupy|strict",
    # -- resilience knobs (read by repro.harness.resilience) -----------
    "REPRO_CELL_TIMEOUT": "harness per-cell wall-clock timeout in seconds (0 = off)",
    "REPRO_MAX_RETRIES": "harness per-cell retry budget for transient faults",
    # -- observability (read by repro.obs.state) -----------------------
    "REPRO_TRACE": "span tracing: 1 = on, mem = with tracemalloc peaks, 0 = off",
    "REPRO_METRICS": "metrics registry: 1 = on, 0 = off",
    # -- fault injection (read by repro.utils.faultinject) -------------
    "REPRO_FAULT_PLAN": "deterministic fault-injection plan (tests/CI)",
    # -- benchmark knobs (read by benchmarks.bench_env) ----------------
    "BISMO_BENCH_DIR": "directory for recorded BENCH_*.json artifacts",
    "BISMO_BENCH_SCALE": "batched-tiles bench scale: small|paper",
    "BISMO_BENCH_CLIPS": "batched-tiles bench tile-count override",
    "BISMO_BENCH_ITERS": "batched-tiles bench SMO iteration override",
    "BISMO_BENCH_CHECK_ONLY": "batched-tiles bench: parity only, no wall-clock gate",
    "BISMO_BENCH_FIG3_STEPS": "Fig. 3 convergence bench step override",
    "BISMO_BENCH_FIG5_CLIPS": "Fig. 5 pattern-sweep clip-count override",
    "BISMO_BENCH_FIG5_STEPS": "Fig. 5 pattern-sweep step override",
    "BISMO_JOINT_SCALE": "joint-SMO bench scale: tiny|small|paper",
    "BISMO_JOINT_CLIPS": "joint-SMO bench tile-count override",
    "BISMO_JOINT_ITERS": "joint-SMO bench iteration override",
    "BISMO_JOINT_CHECK_ONLY": "joint-SMO bench: parity only, no wall-clock gate",
    "BISMO_FUSED_SCALE": "fused-imaging bench scale: small|paper",
    "BISMO_FUSED_TILES": "fused-imaging bench tile-count override",
    "BISMO_FUSED_CHECK_ONLY": "fused-imaging bench: parity only, no wall-clock gate",
    "BISMO_PW_SCALE": "process-window bench scale: small|paper",
    "BISMO_PW_TILES": "process-window bench tile-count override",
    "BISMO_PW_CHECK_ONLY": "process-window bench: parity only, no wall-clock gate",
    "BISMO_AB_SCALE": "aberration bench scale: small|paper",
    "BISMO_AB_TILES": "aberration bench tile-count override",
    "BISMO_AB_CHECK_ONLY": "aberration bench: parity only, no wall-clock gate",
    "BISMO_GRID_SCALES": "cross-solver grid bench scale list",
    "BISMO_GRID_TILES": "cross-solver grid bench tile-count override",
    "BISMO_GRID_CHECK_ONLY": "cross-solver grid bench: parity only, no wall-clock gate",
}

# Modules allowed to touch os.environ for governed prefixes directly.
# Everything else must go through these.
RAW_READER_MODULES: Tuple[str, ...] = (
    "repro.optics.fftlib",
    "repro.optics.backend",
    "benchmarks.bench_env",
    "repro.harness.resilience",
    "repro.obs.state",
    "repro.utils.faultinject",
)


def is_declared_env_var(name: str) -> bool:
    """Return True if *name* is a registered REPRO_*/BISMO_* variable."""
    return name in DECLARED_ENV_VARS


def is_governed_env_var(name: str) -> bool:
    """Return True if *name* falls under a governed prefix."""
    return name.startswith(GOVERNED_PREFIXES)


__all__ = [
    "GOVERNED_PREFIXES",
    "DECLARED_ENV_VARS",
    "RAW_READER_MODULES",
    "is_declared_env_var",
    "is_governed_env_var",
]
