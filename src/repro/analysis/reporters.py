"""Text and JSON renderers for reprolint reports."""

from __future__ import annotations

import json
from typing import List

from .engine import Report
from .rules import ALL_RULES

__all__ = ["render_text", "render_json", "render_rule_list"]


def render_text(report: Report, *, show_waived: bool = False) -> str:
    """Human-readable report: one ``path:line:col rule message`` per finding."""
    out: List[str] = []
    for finding in report.errors:
        out.append(f"{finding.path}:{finding.line}:{finding.col} {finding.rule} {finding.message}")
    for finding in report.findings:
        out.append(f"{finding.path}:{finding.line}:{finding.col} {finding.rule} {finding.message}")
    if show_waived:
        for finding in report.waived:
            out.append(
                f"{finding.path}:{finding.line}:{finding.col} {finding.rule} "
                f"[waived: {finding.waiver_reason}] {finding.message}"
            )
    counts = report.counts_by_rule()
    if report.findings or report.errors:
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        out.append(
            f"reprolint: {len(report.findings)} finding(s)"
            + (f" ({summary})" if summary else "")
            + (f", {len(report.errors)} error(s)" if report.errors else "")
            + f" across {report.files_checked} file(s)"
        )
    else:
        waived_note = f" ({len(report.waived)} waived)" if report.waived else ""
        out.append(f"reprolint: clean across {report.files_checked} file(s){waived_note}")
    return "\n".join(out)


def render_json(report: Report) -> str:
    """Machine-readable report for CI and tooling."""
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "counts": report.counts_by_rule(),
        "findings": [f.as_dict() for f in report.findings],
        "waived": [f.as_dict() for f in report.waived],
        "errors": [f.as_dict() for f in report.errors],
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` table."""
    out: List[str] = []
    for cls in ALL_RULES:
        out.append(f"{cls.rule_id}  {cls.name:<16} {cls.description}")
    return "\n".join(out)
