"""The reprolint rules R1-R10, each encoding one project invariant.

=====  ==================  ================================================
rule   name                invariant it guards
=====  ==================  ================================================
R1     fft-seam            every FFT dispatches through repro.optics.fftlib
R2     env-registry        REPRO_*/BISMO_* env reads are declared + routed
R3     lock-discipline     memo/cache mutations happen inside ``with lock``
R4     graph-safety        autodiff primitives never mutate their arguments
R5     determinism         seeded RNGs, ordered reductions, no wall clock
R6     pool-hygiene        fftlib/harness are the only parallelism owners
R7     no-assert           library invariants raise real exceptions
R8     public-api          every repro.* module declares a truthful __all__
R9     backend-seam        hot paths allocate/transform via optics.backend
R10    metrics-registry    obs span/metric names are declared in the registry
=====  ==================  ================================================

Rules receive one :class:`~repro.analysis.engine.Module` at a time; the
R2 README cross-check runs as a project-level pass.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .engine import Finding, Module, Project
from .registry import (
    DECLARED_ENV_VARS,
    RAW_READER_MODULES,
    is_declared_env_var,
    is_governed_env_var,
)
from ..obs import registry as obs_registry

__all__ = ["Rule", "ALL_RULES", "rules_by_id"]


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name for a Name/Attribute chain, e.g. ``np.fft.fft2``."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the full dotted thing they import.

    ``import numpy as np``                -> {"np": "numpy"}
    ``from scipy import fft as sf``       -> {"sf": "scipy.fft"}
    ``from os import environ``            -> {"environ": "os.environ"}
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = node.module + "." + alias.name
    return aliases


def _aliases_with_relatives(module: Module) -> Dict[str, str]:
    """:func:`_import_aliases` plus relative imports resolved to full paths.

    The library's own obs call sites bind relatively
    (``from ..obs import span as obs_span``), which the absolute-only
    alias map skips; this variant resolves ``node.level`` against the
    module's package so those bindings participate in :func:`_resolve`.
    """
    aliases = _import_aliases(module.tree)
    if not module.module:
        return aliases
    parts = str(module.module).split(".")
    # the package the module's relative imports are anchored to;
    # __init__ modules are their own package
    pkg = parts if module.rel.endswith("__init__.py") else parts[:-1]
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ImportFrom) and node.level > 0):
            continue
        hops = node.level - 1
        if hops > len(pkg):
            continue  # import reaches above the package root; unresolvable
        base = pkg[: len(pkg) - hops]
        target = ".".join(base + ([node.module] if node.module else []))
        if not target:
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            aliases[alias.asname or alias.name] = target + "." + alias.name
    return aliases


def _resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain through the module's import aliases."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    full_head = aliases.get(head, head)
    return full_head + ("." + rest if rest else "")


def _base_name(node: ast.AST) -> Optional[str]:
    """Peel Subscript/Attribute/Starred layers down to the root Name."""
    cur = node
    while isinstance(cur, (ast.Subscript, ast.Attribute, ast.Starred)):
        cur = cur.value
    if isinstance(cur, ast.Name):
        return cur.id
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Last identifier of a Name/Attribute chain (``self._memo`` -> ``_memo``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _finding(rule_id: str, module: Module, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule_id,
        path=module.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


class Rule:
    """Base class: one invariant, checked per-module (and optionally per-project)."""

    rule_id = "R?"
    name = "unnamed"
    description = ""

    def check(self, module: Module) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


# ---------------------------------------------------------------------------
# R1: fft-seam
# ---------------------------------------------------------------------------


class FftSeamRule(Rule):
    rule_id = "R1"
    name = "fft-seam"
    description = (
        "numpy.fft/scipy.fft may only be touched inside repro.optics.fftlib; "
        "everything else dispatches through the fftlib seam"
    )

    _FORBIDDEN = ("numpy.fft", "scipy.fft", "scipy.fftpack")
    _EXEMPT_MODULES = ("repro.optics.fftlib",)

    def _is_forbidden(self, resolved: str) -> bool:
        return any(
            resolved == pref or resolved.startswith(pref + ".") for pref in self._FORBIDDEN
        )

    def check(self, module: Module) -> Iterable[Finding]:
        if module.module in self._EXEMPT_MODULES:
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_forbidden(alias.name):
                        yield _finding(
                            self.rule_id,
                            module,
                            node,
                            f"direct import of '{alias.name}'; use repro.optics.fftlib",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                if self._is_forbidden(node.module):
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"direct import from '{node.module}'; use repro.optics.fftlib",
                    )
                else:
                    for alias in node.names:
                        full = node.module + "." + alias.name
                        if self._is_forbidden(full):
                            yield _finding(
                                self.rule_id,
                                module,
                                node,
                                f"direct import of '{full}'; use repro.optics.fftlib",
                            )
            elif isinstance(node, ast.Attribute):
                resolved = _resolve(node, aliases)
                if resolved and self._is_forbidden(resolved):
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"direct use of '{resolved}'; route through repro.optics.fftlib",
                    )


# ---------------------------------------------------------------------------
# R2: env-registry
# ---------------------------------------------------------------------------


class EnvRegistryRule(Rule):
    rule_id = "R2"
    name = "env-registry"
    description = (
        "REPRO_*/BISMO_* environment variables must be declared in "
        "repro.analysis.registry, read only via fftlib/bench_env, and "
        "documented in README's env-var table"
    )

    _READ_CALLS = ("os.environ.get", "os.getenv", "os.environ.pop", "os.environ.setdefault")

    def _env_name_of(self, node: ast.AST, aliases: Dict[str, str]) -> Optional[Tuple[ast.AST, str]]:
        """Return (location, var-name) when *node* reads an env variable."""
        if isinstance(node, ast.Call):
            resolved = _resolve(node.func, aliases)
            if resolved in self._READ_CALLS and node.args:
                name = _const_str(node.args[0])
                if name is not None:
                    return node, name
        elif isinstance(node, ast.Subscript):
            resolved = _resolve(node.value, aliases)
            if resolved == "os.environ":
                name = _const_str(node.slice)
                if name is not None:
                    return node, name
        return None

    def check(self, module: Module) -> Iterable[Finding]:
        aliases = _import_aliases(module.tree)
        is_reader = module.module in RAW_READER_MODULES
        for node in ast.walk(module.tree):
            hit = self._env_name_of(node, aliases)
            if hit is None:
                continue
            loc, name = hit
            if not is_governed_env_var(name):
                continue
            if not is_declared_env_var(name):
                yield _finding(
                    self.rule_id,
                    module,
                    loc,
                    f"env var '{name}' is not declared in repro.analysis.registry",
                )
            if not is_reader:
                yield _finding(
                    self.rule_id,
                    module,
                    loc,
                    f"raw read of '{name}' outside the designated readers "
                    f"({', '.join(RAW_READER_MODULES)})",
                )

    def check_project(self, project: Project) -> Iterable[Finding]:
        readme = project.root / "README.md"
        if not readme.is_file():
            return
        try:
            text = readme.read_text(encoding="utf-8")
        except OSError:
            return
        documented: Dict[str, int] = {}
        for idx, line in enumerate(text.splitlines(), start=1):
            if not line.lstrip().startswith("|"):
                continue
            for name in re.findall(r"`((?:REPRO|BISMO)_[A-Z0-9_]+)`", line):
                documented.setdefault(name, idx)
        for name in sorted(DECLARED_ENV_VARS):
            if name not in documented:
                yield Finding(
                    rule=self.rule_id,
                    path="README.md",
                    line=1,
                    col=0,
                    message=f"declared env var '{name}' missing from README's env-var table",
                )
        for name, line_no in sorted(documented.items()):
            if not is_declared_env_var(name):
                yield Finding(
                    rule=self.rule_id,
                    path="README.md",
                    line=line_no,
                    col=0,
                    message=f"README documents '{name}' but it is not declared "
                    "in repro.analysis.registry",
                )


# ---------------------------------------------------------------------------
# R3: lock-discipline
# ---------------------------------------------------------------------------

_GUARDED_NAME_RE = re.compile(r"(^|_)(memo|cache|caches|stats|building)s?$", re.IGNORECASE)
_LOCKY_NAME_RE = re.compile(r"lock", re.IGNORECASE)
_MUTATING_METHODS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault", "move_to_end"}
)


def _is_lock_ctor(node: ast.AST, aliases: Dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = _resolve(node.func, aliases)
    return resolved in ("threading.Lock", "threading.RLock")


class LockDisciplineRule(Rule):
    rule_id = "R3"
    name = "lock-discipline"
    description = (
        "in modules/classes that own a threading lock, memo/cache-dict "
        "mutations must happen inside a 'with <lock>' block"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        aliases = _import_aliases(module.tree)

        module_locks: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and _is_lock_ctor(node.value, aliases):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module_locks.add(target.id)

        class_locks: Dict[ast.ClassDef, Set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                attrs: Set[str] = set()
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Assign) and _is_lock_ctor(sub.value, aliases):
                        for target in sub.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attrs.add(target.attr)
                if attrs:
                    class_locks[node] = attrs

        if not module_locks and not class_locks:
            return

        yield from self._scan(module, module.tree, in_lock=False, aliases=aliases)

    def _is_guarded_target(self, node: ast.AST) -> bool:
        terminal = _terminal_name(node)
        return terminal is not None and bool(_GUARDED_NAME_RE.search(terminal))

    def _with_holds_lock(self, node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            # accept `with lock:`, `with self._memo_lock:`, `with lock_for(x):`
            if isinstance(expr, ast.Call):
                expr = expr.func
            dotted = _dotted(expr)
            if dotted and _LOCKY_NAME_RE.search(dotted.rsplit(".", 1)[-1]):
                return True
        return False

    def _scan(self, module: Module, node: ast.AST, in_lock: bool, aliases: Dict[str, str]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_in_lock = in_lock
            if isinstance(child, ast.With) and self._with_holds_lock(child):
                child_in_lock = True
            if not in_lock:
                yield from self._check_stmt(module, child)
            yield from self._scan(module, child, child_in_lock, aliases)

    def _check_stmt(self, module: Module, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and self._is_guarded_target(target.value):
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"write to guarded mapping "
                        f"'{_dotted(target.value) or _terminal_name(target.value)}' "
                        "outside a 'with <lock>' block",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and self._is_guarded_target(target.value):
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"del on guarded mapping "
                        f"'{_dotted(target.value) or _terminal_name(target.value)}' "
                        "outside a 'with <lock>' block",
                    )
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and self._is_guarded_target(func.value)
            ):
                yield _finding(
                    self.rule_id,
                    module,
                    node,
                    f"mutating call '.{func.attr}()' on guarded mapping "
                    f"'{_dotted(func.value) or _terminal_name(func.value)}' "
                    "outside a 'with <lock>' block",
                )


# ---------------------------------------------------------------------------
# R4: graph-safety
# ---------------------------------------------------------------------------


class GraphSafetyRule(Rule):
    rule_id = "R4"
    name = "graph-safety"
    description = (
        "repro.autodiff primitive forward/VJP bodies must not mutate their "
        "arguments in place (would corrupt saved tensors / create_graph)"
    )

    _NDARRAY_MUTATORS = frozenset({"fill", "sort", "partition", "resize", "put", "setflags"})

    def check(self, module: Module) -> Iterable[Finding]:
        if not module.module or not module.module.startswith("repro.autodiff"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = self._params_of(node)
                if params:
                    yield from self._scan_body(module, node, params)

    def _params_of(self, fn: ast.AST) -> Set[str]:
        args = fn.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return {n for n in names if n not in ("self", "cls")}

    def _scan_body(self, module: Module, fn: ast.AST, params: Set[str]) -> Iterator[Finding]:
        for node in fn.body:  # type: ignore[attr-defined]
            yield from self._scan_node(module, node, params)

    def _scan_node(self, module: Module, node: ast.AST, params: Set[str]) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested function: its own params shadow outer ones
            inner = params - self._params_of(node)
            for sub in node.body:
                yield from self._scan_node(module, sub, inner)
            return
        yield from self._check_one(module, node, params)
        for child in ast.iter_child_nodes(node):
            yield from self._scan_node(module, child, params)

    def _check_one(self, module: Module, node: ast.AST, params: Set[str]) -> Iterator[Finding]:
        if isinstance(node, ast.AugAssign):
            base = _base_name(node.target)
            if base in params:
                yield _finding(
                    self.rule_id,
                    module,
                    node,
                    f"augmented assignment mutates parameter '{base}' in place",
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = _base_name(target)
                    if base in params:
                        yield _finding(
                            self.rule_id,
                            module,
                            node,
                            f"assignment into parameter '{base}' mutates it in place",
                        )
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "out" and _base_name(kw.value) in params:
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"out= aliases parameter '{_base_name(kw.value)}'",
                    )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._NDARRAY_MUTATORS
                and _base_name(func.value) in params
            ):
                yield _finding(
                    self.rule_id,
                    module,
                    node,
                    f"call '.{func.attr}()' mutates parameter "
                    f"'{_base_name(func.value)}' in place",
                )


# ---------------------------------------------------------------------------
# R5: determinism
# ---------------------------------------------------------------------------


class DeterminismRule(Rule):
    rule_id = "R5"
    name = "determinism"
    description = (
        "no unseeded RNGs, no set iteration feeding float accumulation, "
        "no wall-clock reads outside repro.harness / repro.obs / "
        "repro.utils.timing"
    )

    _LEGACY_RNG = frozenset(
        {
            "rand",
            "randn",
            "randint",
            "random",
            "random_sample",
            "ranf",
            "sample",
            "choice",
            "shuffle",
            "permutation",
            "normal",
            "uniform",
            "standard_normal",
            "seed",
        }
    )
    _WALL_CLOCK = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )
    # the harness owns run timing, utils.timing owns the monotonic seam,
    # and the observability layer (repro.obs) is the second sanctioned
    # wall-clock consumer: its spans time arbitrary library scopes, but
    # everything it records flows through utils.timing.tick
    _CLOCK_EXEMPT_PREFIXES = ("repro.harness", "repro.obs", "repro.utils.timing")

    def check(self, module: Module) -> Iterable[Finding]:
        aliases = _import_aliases(module.tree)
        clock_exempt = not module.is_library or any(
            module.module == pref or str(module.module).startswith(pref + ".")
            for pref in self._CLOCK_EXEMPT_PREFIXES
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                resolved = _resolve(node.func, aliases)
                if resolved is None:
                    pass
                elif resolved.endswith(".default_rng") or resolved == "default_rng":
                    if not node.args or (
                        isinstance(node.args[0], ast.Constant) and node.args[0].value is None
                    ):
                        yield _finding(
                            self.rule_id,
                            module,
                            node,
                            "unseeded default_rng(); use repro.utils.seed.seeded_rng",
                        )
                elif resolved.startswith("numpy.random.") and resolved.rsplit(".", 1)[-1] in self._LEGACY_RNG:
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"legacy global-state RNG '{resolved}'; "
                        "use repro.utils.seed.seeded_rng",
                    )
                elif not clock_exempt and resolved in self._WALL_CLOCK:
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"wall-clock read '{resolved}' in library code; "
                        "use repro.utils.timing",
                    )
                elif self._is_sum_over_set(node):
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        "sum() over a set has unordered float accumulation; "
                        "sort or use an ordered container",
                    )
            elif isinstance(node, ast.For) and self._is_set_expr(node.iter):
                if self._accumulates(node):
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        "iteration over a set feeds an accumulator; float "
                        "reduction order is nondeterministic",
                    )

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _is_sum_over_set(self, node: ast.Call) -> bool:
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and bool(node.args)
            and self._is_set_expr(node.args[0])
        )

    def _accumulates(self, loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, (ast.Add, ast.Sub)):
                return True
        return False


# ---------------------------------------------------------------------------
# R6: pool-hygiene
# ---------------------------------------------------------------------------


class PoolHygieneRule(Rule):
    rule_id = "R6"
    name = "pool-hygiene"
    description = (
        "thread/process pools may only be constructed in repro.optics.fftlib "
        "and repro.harness.*, keeping the unified worker budget authoritative"
    )

    _POOL_CTORS = frozenset(
        {
            "concurrent.futures.ThreadPoolExecutor",
            "concurrent.futures.ProcessPoolExecutor",
            "concurrent.futures.thread.ThreadPoolExecutor",
            "concurrent.futures.process.ProcessPoolExecutor",
            "threading.Thread",
            "multiprocessing.Pool",
            "multiprocessing.Process",
            "multiprocessing.pool.Pool",
            "multiprocessing.pool.ThreadPool",
            "multiprocessing.dummy.Pool",
        }
    )
    _EXEMPT_PREFIXES = ("repro.optics.fftlib", "repro.harness")

    def check(self, module: Module) -> Iterable[Finding]:
        if module.module and any(
            module.module == pref or module.module.startswith(pref + ".")
            for pref in self._EXEMPT_PREFIXES
        ):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                resolved = _resolve(node.func, aliases)
                if resolved in self._POOL_CTORS:
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"'{resolved}' constructed outside fftlib/harness; "
                        "route parallelism through fftlib.map_conditions or "
                        "the harness runner",
                    )


# ---------------------------------------------------------------------------
# R7: no-assert
# ---------------------------------------------------------------------------


class NoAssertRule(Rule):
    rule_id = "R7"
    name = "no-assert"
    description = (
        "library code must raise real exceptions; assert statements vanish "
        "under 'python -O'"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if not module.is_library:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield _finding(
                    self.rule_id,
                    module,
                    node,
                    "assert in library code; raise ValueError/RuntimeError "
                    "instead (asserts vanish under python -O)",
                )


# ---------------------------------------------------------------------------
# R8: public-api
# ---------------------------------------------------------------------------


class PublicApiRule(Rule):
    rule_id = "R8"
    name = "public-api"
    description = (
        "every repro.* module declares __all__ as a literal list of names "
        "that all exist in the module"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if not module.is_library:
            return
        if module.module and module.module.rsplit(".", 1)[-1] == "__main__":
            return

        all_node: Optional[ast.Assign] = None
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        all_node = node
        if all_node is None:
            yield Finding(
                rule=self.rule_id,
                path=module.rel,
                line=1,
                col=0,
                message="module has no __all__; declare its public API",
            )
            return

        names: List[str] = []
        value = all_node.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            yield _finding(
                self.rule_id, module, all_node, "__all__ must be a literal list/tuple of strings"
            )
            return
        for elt in value.elts:
            name = _const_str(elt)
            if name is None:
                yield _finding(
                    self.rule_id, module, elt, "__all__ entries must be string literals"
                )
                return
            names.append(name)

        seen: Set[str] = set()
        for name in names:
            if name in seen:
                yield _finding(self.rule_id, module, all_node, f"duplicate __all__ entry '{name}'")
            seen.add(name)

        defined, has_star = self._defined_names(module.tree)
        if has_star:
            return
        for name in names:
            if name not in defined:
                yield _finding(
                    self.rule_id,
                    module,
                    all_node,
                    f"__all__ names '{name}' but the module never defines it",
                )

    def _defined_names(self, tree: ast.Module) -> Tuple[Set[str], bool]:
        defined: Set[str] = set()
        has_star = False

        def visit_block(stmts: Sequence[ast.stmt]) -> None:
            nonlocal has_star
            for node in stmts:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    defined.add(node.name)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name):
                                defined.add(sub.id)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(node.target, ast.Name):
                        defined.add(node.target.id)
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        defined.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        if alias.name == "*":
                            has_star = True
                        else:
                            defined.add(alias.asname or alias.name)
                elif isinstance(node, ast.If):
                    visit_block(node.body)
                    visit_block(node.orelse)
                elif isinstance(node, ast.Try):
                    visit_block(node.body)
                    visit_block(node.orelse)
                    visit_block(node.finalbody)
                    for handler in node.handlers:
                        visit_block(handler.body)
                elif isinstance(node, (ast.With, ast.For, ast.While)):
                    visit_block(node.body)

        visit_block(tree.body)
        return defined, has_star


# ---------------------------------------------------------------------------
# R9: backend-seam
# ---------------------------------------------------------------------------


class BackendSeamRule(Rule):
    rule_id = "R9"
    name = "backend-seam"
    description = (
        "hot-path modules (repro.autodiff.*, the imaging engines) allocate "
        "and transform only through the repro.optics.backend seam"
    )

    # modules the seam governs: the autodiff package plus the imaging
    # engines that stream FFT work (the backend seam's hot path)
    _SCOPED_PREFIXES = ("repro.autodiff",)
    _SCOPED_MODULES = (
        "repro.optics.abbe",
        "repro.optics.hopkins",
        "repro.optics.engine",
    )
    # allocations that must come from backend.zeros/empty (the *_like
    # variants are host-side graph plumbing and stay allowed), and the
    # fftlib transforms the backend absorbs (fftlib policy helpers like
    # map_conditions/get_stream_chunk remain direct)
    _FORBIDDEN_EXACT = ("numpy.zeros", "numpy.empty")
    _FFT_HEADS = ("repro.optics.fftlib", "fftlib")
    _FFT_OPS = ("fft2", "ifft2", "freq_reverse")

    def _in_scope(self, module: Module) -> bool:
        name = module.module or ""
        if name in self._SCOPED_MODULES:
            return True
        return any(
            name == pref or name.startswith(pref + ".")
            for pref in self._SCOPED_PREFIXES
        )

    def _is_forbidden(self, resolved: str) -> bool:
        if resolved in self._FORBIDDEN_EXACT:
            return True
        if resolved.startswith("numpy.fft."):
            return True
        head, _, op = resolved.rpartition(".")
        return head in self._FFT_HEADS and op in self._FFT_OPS

    def check(self, module: Module) -> Iterable[Finding]:
        if not self._in_scope(module):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolve(node.func, aliases)
            if resolved and self._is_forbidden(resolved):
                yield _finding(
                    self.rule_id,
                    module,
                    node,
                    f"hot-path call to '{resolved}'; allocate/transform "
                    "through repro.optics.backend (active_backend()/HOST)",
                )


# ---------------------------------------------------------------------------
# R10: metrics-registry
# ---------------------------------------------------------------------------


class MetricsRegistryRule(Rule):
    rule_id = "R10"
    name = "metrics-registry"
    description = (
        "span/metric names passed to repro.obs outside the obs package "
        "are string literals declared in repro.obs.registry"
    )

    # obs entry points whose first argument is a span name
    _SPAN_FUNCS = frozenset({"span", "traced"})
    # obs entry points whose first argument is a metric name, mapped to
    # the kind the registry must declare for it
    _METRIC_FUNCS = {
        "counter": "counter",
        "gauge": "gauge",
        "histogram": "histogram",
    }
    # modules that export the governed entry points (the package facade
    # plus the implementing submodules)
    _OBS_MODULES = ("repro.obs", "repro.obs.trace", "repro.obs.metrics")

    def _obs_func(self, resolved: str) -> Optional[str]:
        head, _, func = resolved.rpartition(".")
        if head in self._OBS_MODULES and (
            func in self._SPAN_FUNCS or func in self._METRIC_FUNCS
        ):
            return func
        return None

    def check(self, module: Module) -> Iterable[Finding]:
        name = str(module.module or "")
        # the obs package itself plumbs names generically (registry
        # lookups, exporters) and is the one place allowed to handle
        # them as data rather than declared literals
        if name == "repro.obs" or name.startswith("repro.obs."):
            return
        aliases = _aliases_with_relatives(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolve(node.func, aliases)
            if resolved is None:
                continue
            func = self._obs_func(resolved)
            if func is None:
                continue
            literal = _const_str(node.args[0]) if node.args else None
            if literal is None:
                yield _finding(
                    self.rule_id,
                    module,
                    node,
                    f"obs.{func}() name must be a string literal declared "
                    "in repro.obs.registry",
                )
            elif func in self._SPAN_FUNCS:
                if not obs_registry.is_declared_span(literal):
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"span name '{literal}' is not declared in "
                        "repro.obs.registry.DECLARED_SPANS",
                    )
            else:
                kind = obs_registry.metric_kind(literal)
                if kind is None:
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"metric name '{literal}' is not declared in "
                        "repro.obs.registry.DECLARED_METRICS",
                    )
                elif kind != self._METRIC_FUNCS[func]:
                    yield _finding(
                        self.rule_id,
                        module,
                        node,
                        f"metric '{literal}' is declared as a {kind}; "
                        f"use obs.{kind}() instead of obs.{func}()",
                    )


ALL_RULES: Tuple[Type[Rule], ...] = (
    FftSeamRule,
    EnvRegistryRule,
    LockDisciplineRule,
    GraphSafetyRule,
    DeterminismRule,
    PoolHygieneRule,
    NoAssertRule,
    PublicApiRule,
    BackendSeamRule,
    MetricsRegistryRule,
)


def rules_by_id() -> Dict[str, Type[Rule]]:
    return {cls.rule_id: cls for cls in ALL_RULES}
