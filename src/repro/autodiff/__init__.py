"""Numpy-backed reverse-mode autodiff substrate.

PyTorch is unavailable in this offline environment, so this package
recreates the part of ``torch.autograd`` that the BiSMO bilevel solvers
require: a dynamic graph over float64/complex128 numpy arrays, functional
ops with double-backward-safe VJPs (FFTs included), a ``grad`` driver with
``create_graph``, and exact/FD Hessian-vector and mixed Jacobian-vector
products.

Quick example::

    from repro import autodiff as ad
    from repro.autodiff import functional as F

    x = ad.Tensor([1.0, 2.0], requires_grad=True)
    loss = F.sum(F.sigmoid(x) ** 2)
    (g,) = ad.grad(loss, [x])
"""

from .tensor import Tensor, as_tensor, enable_grad, is_grad_enabled, no_grad
from .grad import (
    backward,
    grad,
    gradcheck,
    hvp,
    hvp_fd,
    mixed_jvp,
    mixed_jvp_fd,
    numerical_gradient,
)
from . import functional

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "grad",
    "backward",
    "hvp",
    "hvp_fd",
    "mixed_jvp",
    "mixed_jvp_fd",
    "gradcheck",
    "numerical_gradient",
    "functional",
]
