"""Differentiable functional ops for :mod:`repro.autodiff`.

Every op follows the same pattern: compute the forward result with numpy,
then (if grad mode is on and any input requires grad) attach a VJP closure.
VJP closures are written **in terms of these same functional ops**, so a
backward pass executed with graph recording enabled (``create_graph=True``
in :func:`repro.autodiff.grad.grad`) is itself differentiable.  That
property is what gives BiSMO-NMN / BiSMO-CG exact Hessian-vector products.

Complex gradients use the convention ``grad(z) = dL/dRe(z) + 1j*dL/dIm(z)``
for a real-valued loss ``L``; under this convention the VJP of a
holomorphic op ``f`` is ``g * conj(f'(z))`` and the VJP of a complex-linear
map ``A`` is ``A^H g``.
"""

from __future__ import annotations

import builtins
from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "tensor",
    "zeros",
    "ones",
    "zeros_like",
    "ones_like",
    "identity",
    "add",
    "sub",
    "neg",
    "mul",
    "div",
    "power",
    "exp",
    "log",
    "sqrt",
    "sin",
    "cos",
    "tanh",
    "sigmoid",
    "relu",
    "sum",
    "mean",
    "reshape",
    "broadcast_to",
    "real",
    "imag",
    "conj",
    "abs2",
    "absolute",
    "make_complex",
    "fft2",
    "ifft2",
    "getitem",
    "scatter",
    "matmul",
    "dot",
    "sum_to",
    "clip_for_stability",
]

ArrayLike = Union[Tensor, np.ndarray, float, int, complex, list, tuple]


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    """Create a new leaf tensor from ``data``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, dtype=np.float64) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype))


def ones(shape, dtype=np.float64) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype))


def zeros_like(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    return Tensor(np.zeros_like(x.data))


def ones_like(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    return Tensor(np.ones_like(x.data))


def _make(
    out_data: np.ndarray,
    inputs: Tuple[Tensor, ...],
    vjp,
    op: str,
) -> Tensor:
    """Assemble an op output, recording the graph edge when appropriate."""
    requires = is_grad_enabled() and builtins.any(t.requires_grad for t in inputs)
    if requires:
        return Tensor(out_data, requires_grad=True, _inputs=inputs, _vjp=vjp, _op=op)
    return Tensor(out_data)


# ----------------------------------------------------------------------
# broadcasting support
# ----------------------------------------------------------------------
def sum_to(x: Tensor, shape: Tuple[int, ...]) -> Tensor:
    """Reduce ``x`` by summation so its shape becomes ``shape``.

    This is the adjoint of numpy broadcasting and is used by every binary
    op's VJP; it is built from ``sum``/``reshape`` so it stays
    differentiable.
    """
    x = as_tensor(x)
    if x.shape == tuple(shape):
        return x
    ndim_extra = x.ndim - len(shape)
    if ndim_extra < 0:
        raise ValueError(f"cannot sum_to from {x.shape} to {shape}")
    axes = tuple(range(ndim_extra)) + tuple(
        i + ndim_extra for i, n in enumerate(shape) if n == 1 and x.shape[i + ndim_extra] != 1
    )
    out = sum(x, axis=axes, keepdims=True) if axes else x
    return reshape(out, tuple(shape))


def _binary_inputs(a: ArrayLike, b: ArrayLike) -> Tuple[Tensor, Tensor]:
    return as_tensor(a), as_tensor(b)


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def identity(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (g,)

    return _make(x.data.copy(), (x,), vjp, "identity")


def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor):
        return (sum_to(g, a.shape), sum_to(g, b.shape))

    return _make(a.data + b.data, (a, b), vjp, "add")


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor):
        return (sum_to(g, a.shape), sum_to(neg(g), b.shape))

    return _make(a.data - b.data, (a, b), vjp, "sub")


def neg(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (neg(g),)

    return _make(-x.data, (x,), vjp, "neg")


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor):
        ga = sum_to(mul(g, conj(b)), a.shape)
        gb = sum_to(mul(g, conj(a)), b.shape)
        return (ga, gb)

    return _make(a.data * b.data, (a, b), vjp, "mul")


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor):
        ga = sum_to(div(g, conj(b)), a.shape)
        gb = sum_to(neg(mul(g, conj(div(a, mul(b, b))))), b.shape)
        return (ga, gb)

    return _make(a.data / b.data, (a, b), vjp, "div")


def power(x: ArrayLike, p: float) -> Tensor:
    """Elementwise ``x**p`` for a real scalar exponent ``p``."""
    x = as_tensor(x)
    p = float(p)

    def vjp(g: Tensor):
        return (mul(g, conj(mul(power(x, p - 1.0), p))),)

    return _make(x.data**p, (x,), vjp, f"power[{p}]")


# ----------------------------------------------------------------------
# transcendental
# ----------------------------------------------------------------------
def exp(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def vjp(g: Tensor):
        return (mul(g, conj(exp(x))),)

    return _make(out_data, (x,), vjp, "exp")


def log(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (div(g, conj(x)),)

    return _make(np.log(x.data), (x,), vjp, "log")


def sqrt(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (div(g, conj(mul(sqrt(x), 2.0))),)

    return _make(np.sqrt(x.data), (x,), vjp, "sqrt")


def sin(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (mul(g, conj(cos(x))),)

    return _make(np.sin(x.data), (x,), vjp, "sin")


def cos(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (neg(mul(g, conj(sin(x)))),)

    return _make(np.cos(x.data), (x,), vjp, "cos")


def tanh(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        t = tanh(x)
        return (mul(g, conj(sub(1.0, mul(t, t)))),)

    return _make(np.tanh(x.data), (x,), vjp, "tanh")


def sigmoid(x: ArrayLike) -> Tensor:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-x))``."""
    x = as_tensor(x)
    if x.is_complex:
        raise TypeError("sigmoid expects a real tensor")
    out_data = _stable_sigmoid(x.data)

    def vjp(g: Tensor):
        s = sigmoid(x)
        return (mul(g, mul(s, sub(1.0, s))),)

    return _make(out_data, (x,), vjp, "sigmoid")


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def relu(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    if x.is_complex:
        raise TypeError("relu expects a real tensor")
    mask = (x.data > 0).astype(np.float64)

    def vjp(g: Tensor):
        return (mul(g, Tensor(mask)),)

    return _make(x.data * mask, (x,), vjp, "relu")


def clip_for_stability(x: ArrayLike, lo: float, hi: float) -> Tensor:
    """Clip values, passing gradients straight through (identity VJP).

    Used to guard sigmoid steepness products against overflow without
    killing gradients at the rails.
    """
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (g,)

    return _make(np.clip(x.data, lo, hi), (x,), vjp, "clip_st")


# ----------------------------------------------------------------------
# reductions & shaping
# ----------------------------------------------------------------------
def sum(x: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    x = as_tensor(x)
    out_data = np.sum(x.data, axis=axis, keepdims=keepdims)
    in_shape = x.shape

    def vjp(g: Tensor):
        if axis is None:
            return (broadcast_to(g, in_shape),)
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % len(in_shape) for a in axes)
        if keepdims:
            mid = g
        else:
            kd_shape = tuple(
                1 if i in axes else n for i, n in enumerate(in_shape)
            )
            mid = reshape(g, kd_shape)
        return (broadcast_to(mid, in_shape),)

    return _make(out_data, (x,), vjp, "sum")


def mean(x: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    x = as_tensor(x)
    if axis is None:
        count = x.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = 1
        for a in axes:
            count *= x.shape[a % x.ndim]
    return div(sum(x, axis=axis, keepdims=keepdims), float(count))


def reshape(x: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    x = as_tensor(x)
    in_shape = x.shape

    def vjp(g: Tensor):
        return (reshape(g, in_shape),)

    return _make(x.data.reshape(shape), (x,), vjp, "reshape")


def broadcast_to(x: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    x = as_tensor(x)
    in_shape = x.shape

    def vjp(g: Tensor):
        return (sum_to(g, in_shape),)

    return _make(np.broadcast_to(x.data, shape).copy(), (x,), vjp, "broadcast_to")


# ----------------------------------------------------------------------
# complex support
# ----------------------------------------------------------------------
def real(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (g,)

    return _make(np.real(x.data).copy(), (x,), vjp, "real")


def imag(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor):
        return (mul(g, 1j),)

    return _make(np.imag(x.data).copy(), (x,), vjp, "imag")


def conj(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    if not x.is_complex:
        return x

    def vjp(g: Tensor):
        return (conj(g),)

    return _make(np.conj(x.data), (x,), vjp, "conj")


def abs2(x: ArrayLike) -> Tensor:
    """Squared magnitude ``|x|**2`` (real output, works for complex x)."""
    x = as_tensor(x)
    out_data = (x.data * np.conj(x.data)).real

    def vjp(g: Tensor):
        return (mul(mul(g, 2.0), x),)

    return _make(out_data, (x,), vjp, "abs2")


def absolute(x: ArrayLike) -> Tensor:
    """``|x|`` built from differentiable primitives (non-smooth at 0)."""
    return sqrt(add(abs2(x), 1e-30))


def make_complex(re: ArrayLike, im: ArrayLike) -> Tensor:
    re_t, im_t = _binary_inputs(re, im)

    def vjp(g: Tensor):
        return (real(g), imag(g))

    return _make(re_t.data + 1j * im_t.data, (re_t, im_t), vjp, "make_complex")


# ----------------------------------------------------------------------
# FFTs (always over the last two axes, numpy "backward" normalization)
# ----------------------------------------------------------------------
def fft2(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    ntot = x.shape[-1] * x.shape[-2]

    def vjp(g: Tensor):
        return (mul(ifft2(g), float(ntot)),)

    return _make(np.fft.fft2(x.data), (x,), vjp, "fft2")


def ifft2(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    ntot = x.shape[-1] * x.shape[-2]

    def vjp(g: Tensor):
        return (div(fft2(g), float(ntot)),)

    return _make(np.fft.ifft2(x.data), (x,), vjp, "ifft2")


# ----------------------------------------------------------------------
# indexing
# ----------------------------------------------------------------------
def getitem(x: ArrayLike, idx) -> Tensor:
    x = as_tensor(x)
    in_shape = x.shape
    complex_in = x.is_complex

    def vjp(g: Tensor):
        return (scatter(g, idx, in_shape, complex_grad=complex_in),)

    return _make(x.data[idx].copy(), (x,), vjp, "getitem")


def scatter(
    x: ArrayLike, idx, shape: Tuple[int, ...], complex_grad: bool = False
) -> Tensor:
    """Place ``x`` into a zeros array of ``shape`` at ``idx`` (adjoint of
    :func:`getitem`)."""
    x = as_tensor(x)
    dtype = np.complex128 if (complex_grad or x.is_complex) else np.float64
    out_data = np.zeros(shape, dtype=dtype)
    np.add.at(out_data, idx, x.data)

    def vjp(g: Tensor):
        return (getitem(g, idx),)

    return _make(out_data, (x,), vjp, "scatter")


# ----------------------------------------------------------------------
# linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """2-D matrix product with complex-aware VJPs."""
    a, b = _binary_inputs(a, b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul supports 2-D operands only")

    def vjp(g: Tensor):
        ga = matmul(g, _transpose(conj(b)))
        gb = matmul(_transpose(conj(a)), g)
        return (ga, gb)

    return _make(a.data @ b.data, (a, b), vjp, "matmul")


def _transpose(x: Tensor) -> Tensor:
    def vjp(g: Tensor):
        return (_transpose(g),)

    return _make(x.data.T.copy(), (x,), vjp, "transpose")


def dot(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Real inner product ``sum(a * b)`` used by HVP helpers.

    Operands are flattened; for complex operands this is
    ``sum(Re(a)Re(b) + Im(a)Im(b))`` — the Euclidean inner product of the
    underlying real vector space, which is the pairing that makes
    grad/HVP compositions correct under our gradient convention.
    """
    a, b = _binary_inputs(a, b)
    af = reshape(a, (a.size,))
    bf = reshape(b, (b.size,))
    if a.is_complex or b.is_complex:
        return sum(real(mul(af, conj(bf))))
    return sum(mul(af, bf))
