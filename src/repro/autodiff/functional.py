"""Differentiable functional ops for :mod:`repro.autodiff`.

Every op follows the same pattern: compute the forward result with numpy,
then (if grad mode is on and any input requires grad) attach a VJP closure.
VJP closures are written **in terms of these same functional ops**, so a
backward pass executed with graph recording enabled (``create_graph=True``
in :func:`repro.autodiff.grad.grad`) is itself differentiable.  That
property is what gives BiSMO-NMN / BiSMO-CG exact Hessian-vector products.

Complex gradients use the convention ``grad(z) = dL/dRe(z) + 1j*dL/dIm(z)``
for a real-valued loss ``L``; under this convention the VJP of a
holomorphic op ``f`` is ``g * conj(f'(z))`` and the VJP of a complex-linear
map ``A`` is ``A^H g``.
"""

from __future__ import annotations

import builtins
from typing import Any, Callable, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import counter as _obs_counter
from ..obs import span as _obs_span
from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "tensor",
    "zeros",
    "ones",
    "zeros_like",
    "ones_like",
    "identity",
    "add",
    "sub",
    "neg",
    "mul",
    "div",
    "power",
    "exp",
    "log",
    "sqrt",
    "sin",
    "cos",
    "tanh",
    "sigmoid",
    "relu",
    "sum",
    "mean",
    "reshape",
    "broadcast_to",
    "real",
    "imag",
    "conj",
    "abs2",
    "absolute",
    "make_complex",
    "fft2",
    "ifft2",
    "incoherent_image",
    "incoherent_image_stack",
    "incoherent_image_composed",
    "getitem",
    "scatter",
    "matmul",
    "dot",
    "sum_to",
    "clip_for_stability",
]

ArrayLike = Union[Tensor, np.ndarray, float, int, complex, list, tuple]


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    """Create a new leaf tensor from ``data``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Union[int, Tuple[int, ...]], dtype: Any = np.float64) -> Tensor:
    return Tensor(_get_backend().HOST.zeros(shape, dtype=dtype))


def ones(shape: Union[int, Tuple[int, ...]], dtype: Any = np.float64) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype))


def zeros_like(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    return Tensor(np.zeros_like(x.data))


def ones_like(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    return Tensor(np.ones_like(x.data))


def _make(
    out_data: np.ndarray,
    inputs: Tuple[Tensor, ...],
    vjp: Callable[[Tensor], Sequence[Optional[Tensor]]],
    op: str,
) -> Tensor:
    """Assemble an op output, recording the graph edge when appropriate."""
    requires = is_grad_enabled() and builtins.any(t.requires_grad for t in inputs)
    if requires:
        return Tensor(out_data, requires_grad=True, _inputs=inputs, _vjp=vjp, _op=op)
    return Tensor(out_data)


# ----------------------------------------------------------------------
# broadcasting support
# ----------------------------------------------------------------------
def sum_to(x: Tensor, shape: Tuple[int, ...]) -> Tensor:
    """Reduce ``x`` by summation so its shape becomes ``shape``.

    This is the adjoint of numpy broadcasting and is used by every binary
    op's VJP; it is built from ``sum``/``reshape`` so it stays
    differentiable.
    """
    x = as_tensor(x)
    if x.shape == tuple(shape):
        return x
    ndim_extra = x.ndim - len(shape)
    if ndim_extra < 0:
        raise ValueError(f"cannot sum_to from {x.shape} to {shape}")
    axes = tuple(range(ndim_extra)) + tuple(
        i + ndim_extra for i, n in enumerate(shape) if n == 1 and x.shape[i + ndim_extra] != 1
    )
    out = sum(x, axis=axes, keepdims=True) if axes else x
    return reshape(out, tuple(shape))


def _binary_inputs(a: ArrayLike, b: ArrayLike) -> Tuple[Tensor, Tensor]:
    return as_tensor(a), as_tensor(b)


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def identity(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (g,)

    return _make(x.data.copy(), (x,), vjp, "identity")


def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (sum_to(g, a.shape), sum_to(g, b.shape))

    return _make(a.data + b.data, (a, b), vjp, "add")


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (sum_to(g, a.shape), sum_to(neg(g), b.shape))

    return _make(a.data - b.data, (a, b), vjp, "sub")


def neg(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (neg(g),)

    return _make(-x.data, (x,), vjp, "neg")


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        ga = sum_to(mul(g, conj(b)), a.shape)
        gb = sum_to(mul(g, conj(a)), b.shape)
        return (ga, gb)

    return _make(a.data * b.data, (a, b), vjp, "mul")


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = _binary_inputs(a, b)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        ga = sum_to(div(g, conj(b)), a.shape)
        gb = sum_to(neg(mul(g, conj(div(a, mul(b, b))))), b.shape)
        return (ga, gb)

    return _make(a.data / b.data, (a, b), vjp, "div")


def power(x: ArrayLike, p: float) -> Tensor:
    """Elementwise ``x**p`` for a real scalar exponent ``p``."""
    x = as_tensor(x)
    p = float(p)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (mul(g, conj(mul(power(x, p - 1.0), p))),)

    return _make(x.data**p, (x,), vjp, f"power[{p}]")


# ----------------------------------------------------------------------
# transcendental
# ----------------------------------------------------------------------
def exp(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (mul(g, conj(exp(x))),)

    return _make(out_data, (x,), vjp, "exp")


def log(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (div(g, conj(x)),)

    return _make(np.log(x.data), (x,), vjp, "log")


def sqrt(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (div(g, conj(mul(sqrt(x), 2.0))),)

    return _make(np.sqrt(x.data), (x,), vjp, "sqrt")


def sin(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (mul(g, conj(cos(x))),)

    return _make(np.sin(x.data), (x,), vjp, "sin")


def cos(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (neg(mul(g, conj(sin(x)))),)

    return _make(np.cos(x.data), (x,), vjp, "cos")


def tanh(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        t = tanh(x)
        return (mul(g, conj(sub(1.0, mul(t, t)))),)

    return _make(np.tanh(x.data), (x,), vjp, "tanh")


def sigmoid(x: ArrayLike) -> Tensor:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-x))``."""
    x = as_tensor(x)
    if x.is_complex:
        raise TypeError("sigmoid expects a real tensor")
    out_data = _stable_sigmoid(x.data)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        s = sigmoid(x)
        return (mul(g, mul(s, sub(1.0, s))),)

    return _make(out_data, (x,), vjp, "sigmoid")


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def relu(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    if x.is_complex:
        raise TypeError("relu expects a real tensor")
    mask = (x.data > 0).astype(np.float64)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (mul(g, Tensor(mask)),)

    return _make(x.data * mask, (x,), vjp, "relu")


def clip_for_stability(x: ArrayLike, lo: float, hi: float) -> Tensor:
    """Clip values, passing gradients straight through (identity VJP).

    Used to guard sigmoid steepness products against overflow without
    killing gradients at the rails.
    """
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (g,)

    return _make(np.clip(x.data, lo, hi), (x,), vjp, "clip_st")


# ----------------------------------------------------------------------
# reductions & shaping
# ----------------------------------------------------------------------
def sum(
    x: ArrayLike,
    axis: Optional[Union[int, Tuple[int, ...]]] = None,
    keepdims: bool = False,
) -> Tensor:
    x = as_tensor(x)
    out_data = np.sum(x.data, axis=axis, keepdims=keepdims)
    in_shape = x.shape

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        if axis is None:
            return (broadcast_to(g, in_shape),)
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % len(in_shape) for a in axes)
        if keepdims:
            mid = g
        else:
            kd_shape = tuple(
                1 if i in axes else n for i, n in enumerate(in_shape)
            )
            mid = reshape(g, kd_shape)
        return (broadcast_to(mid, in_shape),)

    return _make(out_data, (x,), vjp, "sum")


def mean(
    x: ArrayLike,
    axis: Optional[Union[int, Tuple[int, ...]]] = None,
    keepdims: bool = False,
) -> Tensor:
    x = as_tensor(x)
    if axis is None:
        count = x.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = 1
        for a in axes:
            count *= x.shape[a % x.ndim]
    return div(sum(x, axis=axis, keepdims=keepdims), float(count))


def reshape(x: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    x = as_tensor(x)
    in_shape = x.shape

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (reshape(g, in_shape),)

    return _make(x.data.reshape(shape), (x,), vjp, "reshape")


def broadcast_to(x: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    x = as_tensor(x)
    in_shape = x.shape

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (sum_to(g, in_shape),)

    return _make(np.broadcast_to(x.data, shape).copy(), (x,), vjp, "broadcast_to")


# ----------------------------------------------------------------------
# complex support
# ----------------------------------------------------------------------
def real(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (g,)

    return _make(np.real(x.data).copy(), (x,), vjp, "real")


def imag(x: ArrayLike) -> Tensor:
    x = as_tensor(x)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (mul(g, 1j),)

    return _make(np.imag(x.data).copy(), (x,), vjp, "imag")


def conj(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    if not x.is_complex:
        return x

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (conj(g),)

    return _make(np.conj(x.data), (x,), vjp, "conj")


def abs2(x: ArrayLike) -> Tensor:
    """Squared magnitude ``|x|**2`` (real output, works for complex x)."""
    x = as_tensor(x)
    out_data = (x.data * np.conj(x.data)).real

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (mul(mul(g, 2.0), x),)

    return _make(out_data, (x,), vjp, "abs2")


def absolute(x: ArrayLike) -> Tensor:
    """``|x|`` built from differentiable primitives (non-smooth at 0)."""
    return sqrt(add(abs2(x), 1e-30))


def make_complex(re: ArrayLike, im: ArrayLike) -> Tensor:
    re_t, im_t = _binary_inputs(re, im)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (real(g), imag(g))

    return _make(re_t.data + 1j * im_t.data, (re_t, im_t), vjp, "make_complex")


# ----------------------------------------------------------------------
# FFTs (always over the last two axes, numpy "backward" normalization)
# ----------------------------------------------------------------------
_fftlib: Any = None
_backend_mod: Any = None


def _get_fftlib() -> Any:
    """Resolve :mod:`repro.optics.fftlib` lazily.

    The import happens at first *call* rather than at module import so
    the autodiff package never participates in the
    ``repro.optics.__init__`` import cycle (fftlib itself has no repro
    dependencies).
    """
    global _fftlib
    if _fftlib is None:
        from ..optics import fftlib

        _fftlib = fftlib
    return _fftlib


def _get_backend() -> Any:
    """Resolve :mod:`repro.optics.backend` lazily (same cycle-avoidance
    rationale as :func:`_get_fftlib`; backend itself only imports
    fftlib)."""
    global _backend_mod
    if _backend_mod is None:
        from ..optics import backend

        _backend_mod = backend
    return _backend_mod


def fft2(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    ntot = x.shape[-1] * x.shape[-2]
    bk = _get_backend().active_backend()

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (mul(ifft2(g), float(ntot)),)

    out_data = bk.to_host(bk.fft2(bk.from_host(x.data)))
    return _make(out_data, (x,), vjp, "fft2")


def ifft2(x: ArrayLike) -> Tensor:
    x = as_tensor(x)
    ntot = x.shape[-1] * x.shape[-2]
    bk = _get_backend().active_backend()

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (div(fft2(g), float(ntot)),)

    out_data = bk.to_host(bk.ifft2(bk.from_host(x.data)))
    return _make(out_data, (x,), vjp, "ifft2")


# ----------------------------------------------------------------------
# fused incoherent imaging (the Abbe / SOCS hot path)
# ----------------------------------------------------------------------
def _check_incoherent_args(
    mask: Tensor, pupil_stack: Tensor, weights: Tensor
) -> Tuple[int, int]:
    """Validate shapes/dtypes shared by the fused and composed variants."""
    if pupil_stack.ndim != 3 or pupil_stack.shape[-2] != pupil_stack.shape[-1]:
        raise ValueError(
            f"pupil_stack must be (S, N, N); got {pupil_stack.shape}"
        )
    s, n = pupil_stack.shape[0], pupil_stack.shape[-1]
    if mask.ndim not in (2, 3) or mask.shape[-2:] != (n, n):
        raise ValueError(
            f"mask must be ({n}, {n}) or (B, {n}, {n}); got {mask.shape}"
        )
    if weights.shape != (s,):
        raise ValueError(f"weights must be ({s},); got {weights.shape}")
    if weights.is_complex:
        raise TypeError("incoherent_image weights must be real")
    if pupil_stack.requires_grad:
        raise ValueError(
            "incoherent_image does not propagate gradients to the pupil "
            "stack (it is a cached optical constant); detach it first"
        )
    return s, n


def incoherent_image_composed(
    mask: ArrayLike, pupil_stack: ArrayLike, weights: ArrayLike
) -> Tensor:
    """Reference incoherent sum from six composed autodiff ops.

    Computes ``I[b] = sum_s w_s |IFFT2(H_s * FFT2(M_b))|^2`` as the
    pre-fusion graph ``fft2 -> mul -> ifft2 -> abs2 -> mul -> sum`` that
    the engines used through PR 2.  Every ``(B, S, N, N)`` intermediate
    is materialized and retained by the backward graph — this is the
    memory/time baseline :func:`incoherent_image` is benchmarked
    against, and the oracle its gradients are tested against.
    """
    mask = as_tensor(mask)
    pupil_stack = as_tensor(pupil_stack)
    weights = as_tensor(weights)
    s, n = _check_incoherent_args(mask, pupil_stack, weights)
    single = mask.ndim == 2
    m3 = reshape(mask, (1, n, n)) if single else mask
    b = m3.shape[0]
    spectra = mul(
        reshape(pupil_stack, (1, s, n, n)), reshape(fft2(m3), (b, 1, n, n))
    )
    intensities = abs2(ifft2(spectra))  # (B, S, N, N)
    out = sum(mul(reshape(weights, (1, s, 1, 1)), intensities), axis=1)
    return reshape(out, (n, n)) if single else out


def _conj_pair_reps(conj_pairs: Any, s: int) -> np.ndarray:
    """Validate an involutive conjugate pairing; return representatives.

    ``conj_pairs[i] = j`` declares ``kernel_j(f) == kernel_i(-f)``; the
    map must be an involution over ``range(s)``.  Representatives are
    the indices with ``conj_pairs[i] >= i`` (each pair's lower index,
    plus every self-paired kernel).
    """
    cp = np.asarray(conj_pairs)
    if cp.shape != (s,) or not np.issubdtype(cp.dtype, np.integer):
        raise ValueError(f"conj_pairs must be ({s},) integer; got {cp.shape}")
    if not np.array_equal(cp[cp], np.arange(s)):
        raise ValueError("conj_pairs must be an involution over range(S)")
    return np.nonzero(cp >= np.arange(s))[0]


def _pair_setup(
    conj_pairs: Any, s: int, real_path: bool
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Validate a pairing and decide whether the streamed loops may use it.

    The involution is always validated when a pairing is supplied; it is
    *used* only on the all-real path (``real_path``) where the conjugate
    field identity ``F_{-sigma} = conj(F_{+sigma})`` holds.  Returns
    ``(cp, reps)`` or ``(None, None)``.
    """
    if conj_pairs is None:
        return None, None
    reps_all = _conj_pair_reps(conj_pairs, s)
    if not real_path:
        return None, None
    return np.asarray(conj_pairs), reps_all


def _stream_forward_one(
    bk: Any,
    fm: Any,
    kern: np.ndarray,
    w: np.ndarray,
    csize: int,
    cp: Any,
    reps: Any,
) -> np.ndarray:
    """Streamed weighted incoherent sum for ONE kernel stack.

    ``fm`` is the precomputed ``(B, N, N)`` mask spectrum (a backend
    array) — sharing it across kernel stacks is what lets the
    multi-condition primitive reuse one mask FFT for every process
    corner.  Kernel/weight selection runs host-side (``kern``/``w``
    are host constants); the chunk loop runs entirely on ``bk`` and
    the reduced ``(B, N, N)`` image returns to the host.
    """
    b, n = fm.shape[0], fm.shape[-1]
    if reps is None:
        kern_h, w_h, r = kern, w, kern.shape[0]
    else:
        kern_h = kern[reps]  # (R, N, N) representatives, R ~ S/2
        mates = cp[reps]
        w_h = w[reps] + np.where(mates != reps, w[mates], 0.0)
        r = reps.size
    kern_r = bk.from_host(kern_h)
    w_eff = bk.from_host(w_h)
    nn = n * n
    out = bk.zeros((b, n, n), bk.float64)
    chunks = _obs_counter("imaging.chunks")
    iffts = _obs_counter("imaging.ifft2")
    for lo in range(0, r, csize):
        hi = min(r, lo + csize)
        with _obs_span("fft.chunk", lo=lo, hi=hi, pass_="forward"):
            # One (B, C, N, N) transform block per chunk: big enough to
            # amortize dispatch, small enough to stay transient.
            fields = bk.ifft2(
                kern_r[lo:hi][None] * fm[:, None], overwrite_x=True
            )
            intens = bk.abs2(fields)
            out += (
                w_eff[lo:hi] @ intens.reshape(b, hi - lo, nn)
            ).reshape(b, n, n)
        chunks.inc()
        iffts.inc()
    return bk.to_host(out)


def _stream_backward_one(
    bk: Any,
    gd: np.ndarray,
    fm: Any,
    kern: np.ndarray,
    w: np.ndarray,
    csize: int,
    cp: Any,
    reps: Any,
    need_mask: bool,
    gw: Any,
) -> Optional[Any]:
    """One stack's streamed gradient contributions (graph-free).

    Recomputes the per-chunk coherent fields from ``fm`` (a backend
    array) and returns the *frequency-domain* mask-gradient accumulator
    as a backend array (the caller applies the final IFFT once, summed
    over stacks), adding weight-gradient contributions into the host
    vector ``gw`` in place when it is not None.
    """
    s, n = kern.shape[0], kern.shape[-1]
    b = fm.shape[0]
    nn = n * n
    need_w = gw is not None
    # Conjugate pairing additionally needs a real upstream gradient
    # (the mirrored-term identity conjugates g); fall back otherwise.
    gd_complex = np.iscomplexobj(gd)
    use_pairs = reps is not None and not gd_complex
    if use_pairs:
        kern_h = kern[reps]
        mates = cp[reps]
        is_pair = mates != reps
        w_direct, w_mirror = w[reps], np.where(is_pair, w[mates], 0.0)
        r = reps.size
    else:
        kern_h, r = kern, s
    kern_r = bk.from_host(kern_h)
    gd_dev = bk.from_host(gd)
    gdr = gd_dev.reshape(b, nn, 1)
    acc: Any = None
    acc_mirror: Any = None
    if need_mask:
        gd2 = 2.0 * gd_dev  # (B, N, N)
        acc = bk.zeros((b, n, n), bk.complex128)
        # The w_s factor commutes with the FFT, so it folds into the
        # per-chunk conj-kernel contraction (one pass fewer per block).
        # The weighted kernels are assembled host-side (cached real
        # constants) and transferred once per backward pass.
        if use_pairs:
            wkc = bk.from_host(w_direct[:, None, None] * kern_h)
            wkc_mirror = bk.from_host(w_mirror[:, None, None] * kern_h)
            acc_mirror = bk.zeros((b, n, n), bk.complex128)
        else:
            wkc = bk.from_host(w[:, None, None] * np.conj(kern))
    chunks = _obs_counter("imaging.chunks")
    iffts = _obs_counter("imaging.ifft2")
    ffts = _obs_counter("imaging.fft2")
    for lo in range(0, r, csize):
        hi = min(r, lo + csize)
        with _obs_span("fft.chunk", lo=lo, hi=hi, pass_="backward"):
            # Recomputed (B, C, N, N) block, never retained.
            fields = bk.ifft2(
                kern_r[lo:hi][None] * fm[:, None], overwrite_x=True
            )
            if need_w:
                intens = bk.abs2(fields)
                if gd_complex:
                    intens = bk.astype(intens, bk.complex128)
                val = bk.to_host(
                    bk.sum(
                        (intens.reshape(b, hi - lo, nn) @ gdr)[:, :, 0],
                        axis=0,
                    )
                )
                if use_pairs:
                    # |F[s']|^2 == |F[s]|^2, so mates share the contraction.
                    # reprolint: allow[R4] gw is a private per-stack accumulator the caller allocates; never a saved tensor
                    gw[reps[lo:hi]] += val
                    pc = is_pair[lo:hi]
                    # reprolint: allow[R4] gw is a private per-stack accumulator the caller allocates; never a saved tensor
                    gw[mates[lo:hi][pc]] += val[pc]
                else:
                    # reprolint: allow[R4] gw is a private per-stack accumulator the caller allocates; never a saved tensor
                    gw[lo:hi] += val
            if need_mask:
                fields *= gd2[:, None]  # in-place: no second block temp
                t = bk.fft2(fields, overwrite_x=True)
                acc += bk.einsum("cij,bcij->bij", wkc[lo:hi], t)
                if use_pairs:
                    acc_mirror += bk.einsum(
                        "cij,bcij->bij", wkc_mirror[lo:hi], t
                    )
        chunks.inc()
        iffts.inc()
        if need_mask:
            ffts.inc()
    if need_mask and use_pairs:
        # Mate term: conj(H_s')*FFT(2 w g conj(F_s)) == the direct
        # term conjugated and frequency-reversed (one pass total).
        acc += bk.conj(bk.freq_reverse(acc_mirror))
    return acc


def incoherent_image(
    mask: ArrayLike,
    pupil_stack: ArrayLike,
    weights: ArrayLike,
    chunk: Optional[int] = None,
    conj_pairs: Optional[np.ndarray] = None,
) -> Tensor:
    """Fused weighted incoherent sum ``I[b] = sum_s w_s |IFFT2(H_s FFT2(M_b))|^2``.

    One graph node replaces the six composed ops of
    :func:`incoherent_image_composed`.  The forward streams over
    source-axis chunks of ``chunk`` kernels (default
    :func:`repro.optics.fftlib.get_stream_chunk`): each chunk is one
    transient ``(B, chunk, N, N)`` transform block, so peak working
    memory is ``O(B * chunk * N^2)`` instead of the composed path's
    several *retained* ``O(B * S * N^2)`` intermediates; only the
    ``(B, N, N)`` mask spectra are saved for the backward pass.

    The hand-written VJP *recomputes* the per-chunk coherent fields
    instead of retaining the field stack, emitting mask gradients

    ``gM[b] = IFFT2( sum_s conj(H_s) * FFT2(2 w_s g[b] F[b,s]) )``

    (the backward-normalization factors cancel) and weight gradients
    ``gw[s] = sum_b <g[b], |F[b,s]|^2>`` with the same streamed chunk
    loop.  ``mask`` may be real or complex, single ``(N, N)`` or
    batched ``(B, N, N)``; ``weights`` must be real (pass normalized
    source weights for Abbe, SOCS eigenvalues for Hopkins); the pupil
    stack is treated as a constant (no gradient).

    Conjugate-pair streaming: ``conj_pairs`` declares the frequency-
    reversal pairing ``kernel_{conj_pairs[s]}(f) == kernel_s(-f)``
    (Abbe's shifted pupils for a point-symmetric source grid satisfy
    it; see ``AbbeImaging``).  For a *real* mask and *real* kernels the
    paired field is the complex conjugate of its mate's — ``F[b,s'] ==
    conj(F[b,s])`` — so only one kernel per pair is transformed and
    both weights ride the shared field, halving the FFT work in the
    forward and in the streamed VJP (the mirrored gradient term is
    recovered with one frequency reversal per backward).  The pairing
    is ignored (exact fallback) for complex masks, complex kernels, or
    a complex upstream gradient.

    Double backward: the streamed VJP returns graph-free gradients, so
    when the backward pass itself must be differentiable — ``ad.grad(...,
    create_graph=True)`` in the BiSMO HVP/mixed-JVP oracles and the
    unroll path — the VJP detects grad-recording mode and falls back to
    rebuilding the exact composed-op gradient expressions, which carry
    their own graph.  The fallback costs the composed path's memory but
    only runs where second-order products are requested.
    """
    mask = as_tensor(mask)
    pupil_stack = as_tensor(pupil_stack)
    weights = as_tensor(weights)
    s, n = _check_incoherent_args(mask, pupil_stack, weights)
    fl = _get_fftlib()
    bk = _get_backend().active_backend()
    csize = fl.get_stream_chunk() if chunk is None else int(chunk)
    if csize < 1:
        raise ValueError(f"chunk must be >= 1; got {csize}")
    cp, reps = _pair_setup(
        conj_pairs, s, not mask.is_complex and not pupil_stack.is_complex
    )
    single = mask.ndim == 2
    tiles = mask.data[None] if single else mask.data
    # (B, N, N) spectra — the only saved activation (a backend array;
    # the VJP closure reuses both it and the backend that produced it).
    with _obs_span("imaging.forward", op="incoherent_image", s=s, n=n):
        fm = bk.fft2(bk.from_host(tiles))
        out = _stream_forward_one(
            bk, fm, pupil_stack.data, weights.data, csize, cp, reps
        )
    out_data = out[0] if single else out

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        if is_grad_enabled():
            # create_graph backward: fall back to the composed-op
            # gradient expressions so the returned grads are themselves
            # differentiable (exact HVPs / unroll hypergradients).
            return _incoherent_vjp_composed(g, mask, pupil_stack, weights)
        return _incoherent_vjp_streamed(
            bk, g, mask, pupil_stack, weights, fm, csize, cp, reps
        )

    return _make(
        out_data, (mask, pupil_stack, weights), vjp, "incoherent_image"
    )


def _incoherent_vjp_streamed(
    bk: Any,
    g: Tensor,
    mask: Tensor,
    pupil_stack: Tensor,
    weights: Tensor,
    fm: Any,
    csize: int,
    cp: Any,
    reps: Any,
) -> Tuple[Optional[Tensor], ...]:
    """Graph-free streamed gradients (first-order backward hot path)."""
    host = _get_backend().HOST
    s = pupil_stack.shape[0]
    single = mask.ndim == 2
    gd = g.data[None] if single else g.data
    need_mask = mask.requires_grad
    gw: Any = (
        host.zeros(
            s, np.complex128 if np.iscomplexobj(gd) else np.float64
        )
        if weights.requires_grad
        else None
    )
    with _obs_span("imaging.vjp", op="incoherent_image", s=s):
        acc = _stream_backward_one(
            bk, gd, fm, pupil_stack.data, weights.data, csize, cp, reps,
            need_mask, gw,
        )
        gm_out = None
        if need_mask:
            gm = bk.to_host(bk.ifft2(acc, overwrite_x=True))
            gm_out = Tensor(gm[0] if single else gm)
    return (gm_out, None, Tensor(gw) if gw is not None else None)


def _incoherent_vjp_composed(
    g: Tensor, mask: Tensor, pupil_stack: Tensor, weights: Tensor
) -> Tuple[Optional[Tensor], ...]:
    """Differentiable gradients via the composed ops (create_graph path).

    Rebuilds the coherent fields with graph-recording functional ops and
    expresses the exact gradient formulas with them, so the returned
    tensors can be differentiated again (the property BiSMO's exact
    HVP / mixed-JVP oracles and the unroll path rely on).
    """
    s, n = pupil_stack.shape[0], pupil_stack.shape[-1]
    single = mask.ndim == 2
    m3 = reshape(mask, (1, n, n)) if single else mask
    b = m3.shape[0]
    g4 = reshape(g, (1, 1, n, n)) if single else reshape(g, (b, 1, n, n))
    p4 = reshape(pupil_stack, (1, s, n, n))
    fields = ifft2(mul(p4, reshape(fft2(m3), (b, 1, n, n))))  # (B, S, N, N)
    gm_out: Optional[Tensor] = None
    gw_out: Optional[Tensor] = None
    if weights.requires_grad:
        gw_out = sum(mul(g4, abs2(fields)), axis=(0, 2, 3))
    if mask.requires_grad:
        wf = reshape(weights, (1, s, 1, 1))
        gfields = mul(mul(g4, 2.0), mul(wf, fields))
        # The fft2/ifft2 backward-normalization factors cancel exactly.
        gm = ifft2(sum(mul(fft2(gfields), conj(p4)), axis=1))
        gm_out = reshape(gm, (n, n)) if single else gm
    return (gm_out, None, gw_out)


def incoherent_image_stack(
    mask: ArrayLike,
    pupil_stacks: Sequence[ArrayLike],
    weights: ArrayLike,
    chunk: Optional[int] = None,
    conj_pairs: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> Tensor:
    """Multi-condition fused incoherent imaging sharing ONE mask FFT.

    Computes ``out[f] = sum_s w_s |IFFT2(H^f_s FFT2(M))|^2`` for a
    *sequence* of F kernel stacks — the process-condition axis: each
    stack is the shifted-pupil (or SOCS kernel) stack at one focus
    condition, all sharing the same ``(S,)`` weights.  Output shape is
    ``(F, B, N, N)`` for a batched mask, ``(F, N, N)`` for a single
    tile.

    The mask spectrum ``FFT2(M)`` is computed once and streamed through
    every stack (and, in the hand-written VJP, every stack's recomputed
    chunks accumulate into one frequency-domain mask gradient closed by
    a single final IFFT) — evaluating F conditions costs F streamed
    kernel passes plus *one* mask transform, not F independent
    :func:`incoherent_image` calls.

    ``conj_pairs`` is an optional per-stack sequence: real stacks (zero
    defocus) may carry the ``+/-sigma`` frequency-reversal pairing and
    get the half-FFT streaming; complex (defocused) stacks pass None —
    the conjugate *field* identity needs real kernels even though the
    structural pairing survives defocus (the defocus phase is even).
    Under ``ad.grad(create_graph=True)`` the VJP falls back to
    composed-op gradient expressions (sharing one ``fft2(mask)`` graph
    node across stacks), so second-order products through the condition
    axis stay exactly differentiable.

    Condition parallelism: the per-stack streamed passes are independent
    (they share only the read-only mask spectrum), so both the forward
    and the streamed VJP fan them out across the
    :func:`repro.optics.fftlib.map_conditions` thread pool
    (``REPRO_COND_WORKERS`` / ``fftlib.set_condition_workers``; each
    pool thread gets its share of the unified worker budget for its own
    FFTs).  Every stack writes private buffers and the cross-stack
    reductions run on the caller's thread in fixed stack order, so the
    result is **bitwise identical** for any worker count — the
    create_graph fallback and every oracle/gradcheck see the exact same
    numbers as a serial run.
    """
    mask = as_tensor(mask)
    weights = as_tensor(weights)
    stacks = tuple(as_tensor(p) for p in pupil_stacks)
    if not stacks:
        raise ValueError("incoherent_image_stack needs at least one stack")
    for st in stacks:
        s, n = _check_incoherent_args(mask, st, weights)
    if conj_pairs is None:
        conj_pairs = (None,) * len(stacks)
    elif len(conj_pairs) != len(stacks):
        raise ValueError(
            f"conj_pairs must have one entry per stack "
            f"({len(stacks)}); got {len(conj_pairs)}"
        )
    fl = _get_fftlib()
    bk = _get_backend().active_backend()
    csize = fl.get_stream_chunk() if chunk is None else int(chunk)
    if csize < 1:
        raise ValueError(f"chunk must be >= 1; got {csize}")
    pair_info = tuple(
        _pair_setup(cp_f, s, not mask.is_complex and not st.is_complex)
        for st, cp_f in zip(stacks, conj_pairs)
    )
    single = mask.ndim == 2
    tiles = mask.data[None] if single else mask.data
    b = tiles.shape[0]
    # ONE (B, N, N) spectrum for every condition — a read-only backend
    # array shared across the condition pool's threads.
    fm = bk.fft2(bk.from_host(tiles))
    w = weights.data

    def _forward_one(fi: int) -> np.ndarray:
        cp_f, reps_f = pair_info[fi]
        # MemoryError inside the streamed block -> halve the chunk and
        # retry once (chunk-invariant result, see fftlib).
        with _obs_span("engine.condition", index=fi):
            return fl.run_with_chunk_fallback(
                lambda c: _stream_forward_one(
                    bk, fm, stacks[fi].data, w, c, cp_f, reps_f
                ),
                csize,
            )

    # Independent per-stack passes: fan out across the condition pool
    # (inline when serial) — each writes its own slot, so the stacking
    # is bitwise identical for any thread count.
    out = _get_backend().HOST.empty((len(stacks), b, n, n), np.float64)
    with _obs_span(
        "imaging.forward", op="incoherent_image_stack", stacks=len(stacks)
    ):
        for fi, plane in enumerate(
            fl.map_conditions(_forward_one, len(stacks))
        ):
            out[fi] = plane
    out_data = out[:, 0] if single else out

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        if is_grad_enabled():
            return _incoherent_stack_vjp_composed(g, mask, stacks, weights)
        return _incoherent_stack_vjp_streamed(
            bk, g, mask, stacks, weights, fm, csize, pair_info
        )

    return _make(
        out_data, (mask,) + stacks + (weights,), vjp, "incoherent_image_stack"
    )


def _incoherent_stack_vjp_streamed(
    bk: Any,
    g: Tensor,
    mask: Tensor,
    stacks: Tuple[Tensor, ...],
    weights: Tensor,
    fm: Any,
    csize: int,
    pair_info: Tuple,
) -> Tuple[Optional[Tensor], ...]:
    """Graph-free streamed gradients summed over the condition axis.

    Each stack's backward pass runs with *private* accumulation buffers
    (its own frequency-domain mask-gradient accumulator and its own
    weight-gradient vector), fanned out across the condition pool; the
    cross-stack reductions then run here in fixed stack order.  The
    per-stack buffers make an N-thread backward bitwise identical to
    the serial one — the reduction tree does not depend on scheduling.
    """
    fl = _get_fftlib()
    host = _get_backend().HOST
    s = stacks[0].shape[0]
    single = mask.ndim == 2
    gd = g.data[:, None] if single else g.data  # (F, B, N, N)
    need_mask = mask.requires_grad
    need_w = weights.requires_grad
    gw_dtype = np.complex128 if np.iscomplexobj(gd) else np.float64

    def _backward_one(fi: int) -> Tuple[Any, Any]:
        cp_f, reps_f = pair_info[fi]

        def _attempt(c: int) -> Tuple[Any, Any]:
            # Fresh accumulators per attempt: a MemoryError mid-pass must
            # not leave half-accumulated gradients behind for the
            # halved-chunk retry to double-count.
            gw_f = host.zeros(s, gw_dtype) if need_w else None
            acc = _stream_backward_one(
                bk, gd[fi], fm, stacks[fi].data, weights.data, c, cp_f,
                reps_f, need_mask, gw_f,
            )
            return acc, gw_f

        with _obs_span("engine.condition", index=fi):
            return fl.run_with_chunk_fallback(_attempt, csize)

    with _obs_span(
        "imaging.vjp", op="incoherent_image_stack", stacks=len(stacks)
    ):
        results = fl.map_conditions(_backward_one, len(stacks))
    gw: Any = host.zeros(s, gw_dtype) if need_w else None
    acc_total: Any = (
        bk.zeros(tuple(fm.shape), bk.complex128) if need_mask else None
    )
    for acc, gw_f in results:  # fixed stack-order reduction
        if need_mask:
            acc_total += acc
        if need_w:
            gw += gw_f
    gm_out = None
    if need_mask:
        gm = bk.to_host(bk.ifft2(acc_total, overwrite_x=True))
        gm_out = Tensor(gm[0] if single else gm)
    return (gm_out,) + (None,) * len(stacks) + (
        Tensor(gw) if gw is not None else None,
    )


def _incoherent_stack_vjp_composed(
    g: Tensor, mask: Tensor, stacks: Tuple[Tensor, ...], weights: Tensor
) -> Tuple[Optional[Tensor], ...]:
    """Differentiable gradients for the stack primitive (create_graph).

    Same strategy as :func:`_incoherent_vjp_composed`, applied per
    condition with ONE shared ``fft2(mask)`` graph node, accumulating
    mask/weight gradients across stacks with differentiable adds.
    """
    s, n = stacks[0].shape[0], stacks[0].shape[-1]
    single = mask.ndim == 2
    m3 = reshape(mask, (1, n, n)) if single else mask
    b = m3.shape[0]
    fmr = reshape(fft2(m3), (b, 1, n, n))  # shared spectrum node
    gm_out: Optional[Tensor] = None
    gw_out: Optional[Tensor] = None
    for fi, st in enumerate(stacks):
        gf = getitem(g, fi)  # (B, N, N) or (N, N)
        g4 = reshape(gf, (1, 1, n, n)) if single else reshape(gf, (b, 1, n, n))
        p4 = reshape(st, (1, s, n, n))
        fields = ifft2(mul(p4, fmr))  # (B, S, N, N)
        if weights.requires_grad:
            gw_f = sum(mul(g4, abs2(fields)), axis=(0, 2, 3))
            gw_out = gw_f if gw_out is None else add(gw_out, gw_f)
        if mask.requires_grad:
            wf = reshape(weights, (1, s, 1, 1))
            gfields = mul(mul(g4, 2.0), mul(wf, fields))
            gm = ifft2(sum(mul(fft2(gfields), conj(p4)), axis=1))
            gm_f = reshape(gm, (n, n)) if single else gm
            gm_out = gm_f if gm_out is None else add(gm_out, gm_f)
    return (gm_out,) + (None,) * len(stacks) + (gw_out,)


# ----------------------------------------------------------------------
# indexing
# ----------------------------------------------------------------------
def getitem(x: ArrayLike, idx: Any) -> Tensor:
    x = as_tensor(x)
    in_shape = x.shape
    complex_in = x.is_complex

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (scatter(g, idx, in_shape, complex_grad=complex_in),)

    return _make(x.data[idx].copy(), (x,), vjp, "getitem")


def scatter(
    x: ArrayLike, idx: Any, shape: Tuple[int, ...], complex_grad: bool = False
) -> Tensor:
    """Place ``x`` into a zeros array of ``shape`` at ``idx`` (adjoint of
    :func:`getitem`)."""
    x = as_tensor(x)
    dtype = np.complex128 if (complex_grad or x.is_complex) else np.float64
    out_data = _get_backend().HOST.zeros(shape, dtype)
    np.add.at(out_data, idx, x.data)

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (getitem(g, idx),)

    return _make(out_data, (x,), vjp, "scatter")


# ----------------------------------------------------------------------
# linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """2-D matrix product with complex-aware VJPs."""
    a, b = _binary_inputs(a, b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul supports 2-D operands only")

    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        ga = matmul(g, _transpose(conj(b)))
        gb = matmul(_transpose(conj(a)), g)
        return (ga, gb)

    return _make(a.data @ b.data, (a, b), vjp, "matmul")


def _transpose(x: Tensor) -> Tensor:
    def vjp(g: Tensor) -> Tuple[Optional[Tensor], ...]:
        return (_transpose(g),)

    return _make(x.data.T.copy(), (x,), vjp, "transpose")


def dot(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Real inner product ``sum(a * b)`` used by HVP helpers.

    Operands are flattened; for complex operands this is
    ``sum(Re(a)Re(b) + Im(a)Im(b))`` — the Euclidean inner product of the
    underlying real vector space, which is the pairing that makes
    grad/HVP compositions correct under our gradient convention.
    """
    a, b = _binary_inputs(a, b)
    af = reshape(a, (a.size,))
    bf = reshape(b, (b.size,))
    if a.is_complex or b.is_complex:
        return sum(real(mul(af, conj(bf))))
    return sum(mul(af, bf))
