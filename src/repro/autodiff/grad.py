"""Reverse-mode differentiation drivers: ``grad``, ``backward``, HVPs.

These mirror the small slice of ``torch.autograd`` that the BiSMO solvers
need: a functional :func:`grad` with ``create_graph`` support, exact
Hessian-vector / mixed-Jacobian-vector products built by double backward,
finite-difference fallbacks, and a :func:`gradcheck` used extensively by
the test-suite.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor, enable_grad, no_grad

__all__ = [
    "grad",
    "backward",
    "hvp",
    "mixed_jvp",
    "hvp_fd",
    "mixed_jvp_fd",
    "gradcheck",
    "numerical_gradient",
]


def _topo_order(root: Tensor) -> List[Tensor]:
    """Topologically order the graph reachable from ``root``.

    Only tensors with ``requires_grad`` participate; traversal is
    iterative to stay safe on deep unrolled graphs.
    """
    order: List[Tensor] = []
    visited: set[int] = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited or not node.requires_grad:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._inputs:
            if id(parent) not in visited and parent.requires_grad:
                stack.append((parent, False))
    return order


def _match_grad(g: Tensor, target: Tensor) -> Tensor:
    """Coerce an incoming gradient to the dtype/shape of ``target``."""
    if g.shape != target.shape:
        g = F.sum_to(g, target.shape)
    if not target.is_complex and g.is_complex:
        g = F.real(g)
    return g


def grad(
    output: Tensor,
    inputs: Sequence[Tensor],
    grad_output: Optional[Tensor] = None,
    create_graph: bool = False,
    allow_unused: bool = False,
) -> List[Optional[Tensor]]:
    """Compute gradients of ``output`` w.r.t. ``inputs``.

    Parameters
    ----------
    output:
        The tensor to differentiate (any shape; a scalar for losses).
    inputs:
        Leaf or intermediate tensors to differentiate with respect to.
    grad_output:
        Upstream gradient; defaults to ones (scalar outputs only).
    create_graph:
        If True, the returned gradients carry their own backward graph so
        they can be differentiated again (exact HVPs).
    allow_unused:
        If False, raise when some input is unreachable from ``output``.
    """
    inputs = list(inputs)
    if grad_output is None:
        if output.size != 1:
            raise ValueError("grad_output is required for non-scalar outputs")
        grad_output = Tensor(np.ones_like(output.data))
    grad_output = as_tensor(grad_output)

    order = _topo_order(output)
    grads: dict[int, Tensor] = {id(output): grad_output}
    wanted = {id(t) for t in inputs}
    result: dict[int, Tensor] = {}

    ctx = enable_grad() if create_graph else no_grad()
    with ctx:
        for node in reversed(order):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if id(node) in wanted:
                result[id(node)] = _match_grad(g, node)
            if node._vjp is None:
                continue
            in_grads = node._vjp(g)
            for parent, ig in zip(node._inputs, in_grads):
                if ig is None or not parent.requires_grad:
                    continue
                ig = _match_grad(ig, parent)
                prev = grads.get(id(parent))
                grads[id(parent)] = ig if prev is None else F.add(prev, ig)

    out: List[Optional[Tensor]] = []
    for t in inputs:
        g = result.get(id(t))
        if g is None and not allow_unused:
            raise RuntimeError(
                "an input tensor was not used in the graph of the output "
                "(pass allow_unused=True to get None instead)"
            )
        out.append(g)
    return out


def backward(output: Tensor, grad_output: Optional[Tensor] = None) -> None:
    """Torch-style ``.backward()``: accumulate into leaf ``.grad`` slots."""
    if grad_output is None:
        if output.size != 1:
            raise ValueError("grad_output is required for non-scalar outputs")
        grad_output = Tensor(np.ones_like(output.data))
    grad_output = as_tensor(grad_output)

    order = _topo_order(output)
    grads: dict[int, Tensor] = {id(output): grad_output}
    with no_grad():
        for node in reversed(order):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._vjp is None:
                g = _match_grad(g, node)
                node.grad = g if node.grad is None else F.add(node.grad, g)
                continue
            in_grads = node._vjp(g)
            for parent, ig in zip(node._inputs, in_grads):
                if ig is None or not parent.requires_grad:
                    continue
                ig = _match_grad(ig, parent)
                prev = grads.get(id(parent))
                grads[id(parent)] = ig if prev is None else F.add(prev, ig)


# ----------------------------------------------------------------------
# second-order products (exact, via double backward)
# ----------------------------------------------------------------------
def hvp(
    loss_fn: Callable[[Tensor], Tensor],
    x: Tensor,
    v: Tensor,
) -> Tensor:
    """Exact Hessian-vector product ``(d2 loss / dx2) @ v``.

    ``loss_fn`` is re-evaluated at ``x`` with graph recording so that the
    first gradient is differentiable; the product is then one more
    backward pass (never forms the Hessian).
    """
    x = Tensor(x.data, requires_grad=True)
    loss = loss_fn(x)
    (g,) = grad(loss, [x], create_graph=True)
    inner = F.dot(g, v.detach())
    (hv,) = grad(inner, [x])
    return hv


def mixed_jvp(
    loss_fn: Callable[[Tensor, Tensor], Tensor],
    x: Tensor,
    y: Tensor,
    v: Tensor,
) -> Tensor:
    """Exact mixed second-derivative product ``(d2 loss / dy dx) @ v``.

    Returns a tensor shaped like ``y``: the derivative w.r.t. ``y`` of
    ``<d loss/d x, v>``.  This is the best-response-Jacobian building
    block of Equation (12)/(14) in the paper (x = theta_J, y = theta_M).
    """
    x = Tensor(x.data, requires_grad=True)
    y = Tensor(y.data, requires_grad=True)
    loss = loss_fn(x, y)
    (gx,) = grad(loss, [x], create_graph=True)
    inner = F.dot(gx, v.detach())
    (gy,) = grad(inner, [y], allow_unused=True)
    if gy is None:
        return F.zeros_like(y)
    return gy


# ----------------------------------------------------------------------
# second-order products (finite-difference fallback)
# ----------------------------------------------------------------------
def hvp_fd(
    grad_fn: Callable[[Tensor], Tensor],
    x: Tensor,
    v: Tensor,
    eps: float = 1e-3,
) -> Tensor:
    """Central finite difference of a gradient function: ``H @ v``.

    ``grad_fn(x)`` must return ``d loss/d x``.  The step is scaled by
    ``eps / ||v||`` as in the DARTS reference implementation.
    """
    vn = float(np.linalg.norm(v.data.ravel()))
    if vn == 0.0:
        return F.zeros_like(x)
    h = eps / vn
    xp = Tensor(x.data + h * v.data)
    xm = Tensor(x.data - h * v.data)
    gp = grad_fn(xp)
    gm = grad_fn(xm)
    return Tensor((gp.data - gm.data) / (2.0 * h))


def mixed_jvp_fd(
    grad_y_fn: Callable[[Tensor], Tensor],
    x: Tensor,
    v: Tensor,
    eps: float = 1e-3,
) -> Tensor:
    """Central FD of ``d loss/d y`` as ``x`` moves along ``v``.

    ``grad_y_fn(x)`` must return ``d loss(x, y)/d y`` at fixed ``y``.
    """
    vn = float(np.linalg.norm(v.data.ravel()))
    if vn == 0.0:
        raise ValueError("mixed_jvp_fd needs a nonzero direction")
    h = eps / vn
    gp = grad_y_fn(Tensor(x.data + h * v.data))
    gm = grad_y_fn(Tensor(x.data - h * v.data))
    return Tensor((gp.data - gm.data) / (2.0 * h))


# ----------------------------------------------------------------------
# verification helpers
# ----------------------------------------------------------------------
def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input.

    Perturbs real and imaginary parts independently and encodes the result
    with the same complex-gradient convention as the engine.
    """
    base = [t.data.copy() for t in inputs]
    target = base[index]
    out = np.zeros_like(target, dtype=np.complex128 if np.iscomplexobj(target) else np.float64)

    def eval_at(arr: np.ndarray) -> float:
        args = [Tensor(b) for b in base]
        args[index] = Tensor(arr)
        with no_grad():
            return float(fn(*args).data.real)

    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        for part in ([1.0] if not np.iscomplexobj(target) else [1.0, 1.0j]):
            pert = target.copy()
            pert[idx] += eps * part
            fp = eval_at(pert)
            pert = target.copy()
            pert[idx] -= eps * part
            fm = eval_at(pert)
            out[idx] += part * (fp - fm) / (2 * eps)
        it.iternext()
    return out


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Check analytic grads of scalar ``fn`` against central differences."""
    inputs = [Tensor(t.data, requires_grad=True) for t in inputs]
    out = fn(*inputs)
    analytic = grad(out, inputs, allow_unused=True)
    for i, (t, g) in enumerate(zip(inputs, analytic)):
        num = numerical_gradient(fn, inputs, i, eps=eps)
        ana = np.zeros_like(num) if g is None else g.data
        if not np.allclose(ana, num, rtol=rtol, atol=atol):
            worst = np.max(np.abs(ana - num))
            raise AssertionError(
                f"gradcheck failed for input {i}: max |analytic - numeric| = {worst:.3e}"
            )
    return True
