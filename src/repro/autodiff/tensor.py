"""Core :class:`Tensor` type for the reverse-mode autodiff engine.

The BiSMO paper implements its bilevel solvers on top of PyTorch autodiff.
PyTorch is not available in this environment, so :mod:`repro.autodiff`
provides the same capability on numpy arrays: a dynamic computation graph
built by the functional ops in :mod:`repro.autodiff.functional`, traversed
in reverse by :func:`repro.autodiff.grad.grad`.

Design notes
------------
* Two dtypes only: ``float64`` and ``complex128``.  Anything else is
  promoted on construction.
* Gradients of a real-valued loss with respect to a complex tensor ``z``
  are stored as a complex tensor encoding ``dL/dRe(z) + 1j * dL/dIm(z)``
  (the same convention PyTorch uses for real losses).  Gradients with
  respect to real tensors stay real.
* Every op's VJP is itself written with the functional ops, so calling
  :func:`repro.autodiff.grad.grad` with ``create_graph=True`` yields a
  differentiable gradient — this is what makes exact Hessian-vector
  products for BiSMO-NMN / BiSMO-CG possible.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "is_grad_enabled",
    "no_grad",
    "enable_grad",
]

_GRAD_ENABLED: bool = True


def is_grad_enabled() -> bool:
    """Return whether newly created ops will record a backward graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager (re-)enabling graph recording inside ``no_grad``."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


_backend_mod: Any = None


def _coerce(data: Any) -> np.ndarray:
    """Coerce arbitrary array-likes to a float64 / complex128 ndarray.

    Delegates to the active array backend's host-coercion policy
    (:meth:`repro.optics.backend.ArrayBackend.coerce_host`): graph
    storage stays host-resident double precision regardless of the
    compute backend.  The backend module is resolved lazily so the
    autodiff package never participates in the ``repro.optics``
    import cycle.
    """
    global _backend_mod
    if _backend_mod is None:
        from ..optics import backend

        _backend_mod = backend
    arr: np.ndarray = _backend_mod.active_backend().coerce_host(data)
    return arr


class Tensor:
    """A numpy array plus an optional backward-graph edge.

    Graph edges are recorded by the functional ops: ``_inputs`` holds the
    parent tensors and ``_vjp`` maps an upstream gradient tensor to a tuple
    of gradients aligned with ``_inputs`` (entries may be ``None``).
    """

    __slots__ = ("data", "requires_grad", "grad", "_inputs", "_vjp", "_op")

    def __init__(
        self,
        data: Any,
        requires_grad: bool = False,
        _inputs: Tuple["Tensor", ...] = (),
        _vjp: Optional[Callable[["Tensor"], Sequence[Optional["Tensor"]]]] = None,
        _op: str = "",
    ) -> None:
        self.data = _coerce(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[Tensor] = None
        self._inputs = _inputs
        self._vjp = _vjp
        self._op = _op

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_complex(self) -> bool:
        return np.iscomplexobj(self.data)

    @property
    def is_leaf(self) -> bool:
        return self._vjp is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        op = f", op={self._op!r}" if self._op else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag}{op})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, do not mutate)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a graph-connected copy (identity op)."""
        from . import functional as F

        return F.identity(self)

    def copy_data(self) -> np.ndarray:
        return self.data.copy()

    # ------------------------------------------------------------------
    # operator sugar — all delegate to the functional layer
    # ------------------------------------------------------------------
    def __add__(self, other: Any) -> "Tensor":  # noqa: D105
        from . import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: Any) -> "Tensor":
        from . import functional as F

        return F.sub(self, other)

    def __rsub__(self, other: Any) -> "Tensor":
        from . import functional as F

        return F.sub(other, self)

    def __mul__(self, other: Any) -> "Tensor":
        from . import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        from . import functional as F

        return F.div(self, other)

    def __rtruediv__(self, other: Any) -> "Tensor":
        from . import functional as F

        return F.div(other, self)

    def __neg__(self) -> "Tensor":
        from . import functional as F

        return F.neg(self)

    def __pow__(self, p: Any) -> "Tensor":
        from . import functional as F

        return F.power(self, p)

    def __getitem__(self, idx: Any) -> "Tensor":
        from . import functional as F

        return F.getitem(self, idx)

    def __matmul__(self, other: Any) -> "Tensor":
        from . import functional as F

        return F.matmul(self, other)

    # ------------------------------------------------------------------
    # method sugar
    # ------------------------------------------------------------------
    def sum(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        from . import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        from . import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: Any) -> "Tensor":
        from . import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def backward(self, grad_output: Optional["Tensor"] = None) -> None:
        """Accumulate gradients into ``.grad`` of all reachable leaves."""
        from .grad import backward

        backward(self, grad_output)


def as_tensor(value: Any, requires_grad: bool = False) -> Tensor:
    """Wrap ``value`` in a :class:`Tensor` (no-op for existing tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
