"""Published comparators rebuilt on this repo's substrates (see the
substitution table in DESIGN.md): NILT-style Hopkins ILT and
DAC23-MILT-style multi-level Hopkins ILT."""

from .nilt import NILTBaseline
from .milt import MultiLevelILT

__all__ = ["NILTBaseline", "MultiLevelILT"]
