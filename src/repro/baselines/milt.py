"""DAC23-MILT-style baseline — multi-level Hopkins ILT [10].

"Efficient ILT via multi-level lithography simulation" (DAC'23) runs
inverse lithography coarse-to-fine: optimize the mask on a downsampled
grid (cheap simulations), then upsample and refine at progressively
finer resolutions.  We reproduce that algorithmic core on the Hopkins/
SOCS engine with the full process-window loss.  Coarse levels are only
used while they still satisfy the optical Nyquist criterion (a coarse
grid that cannot carry the 2*NA/lambda band would corrupt, not
accelerate, the simulation).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from .. import autodiff as ad
from ..obs import observe_iteration
from ..obs import span as obs_span
from ..opt import make_optimizer
from ..utils.timing import tick
from ..optics import OpticalConfig, ProcessWindow
from ..smo.objective import (
    AdaptiveCornerWeights,
    HopkinsMOObjective,
    adaptive_corner_update,
)
from ..smo.parametrization import init_theta_mask
from ..smo.state import IterationRecord, SMOResult

__all__ = ["MultiLevelILT"]


class MultiLevelILT:
    """Coarse-to-fine Hopkins ILT with the SMO process-window loss.

    ``target`` may be a single ``(N, N)`` tile or a ``(B, N, N)`` stack;
    a stack runs every level on the whole batch at once (one fused
    ``incoherent_image`` node over the SOCS kernels per step) and
    records per-tile losses.

    ``process_window`` replaces the dose-only Eq. (9) loss with the
    robust dose x focus reduction at *every* level (focus corners are
    exact phase multiplies of each level's SOCS kernels — see
    :class:`repro.optics.HopkinsImaging`); ``robust`` / ``robust_tau``
    pick weighted-sum or smooth worst-case.
    """

    method_name = "DAC23-MILT"

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        levels: int = 2,
        lr: float = 0.1,
        optimizer: str = "adam",
        num_kernels: Optional[int] = None,
        process_window: Optional[ProcessWindow] = None,
        robust: str = "sum",
        robust_tau: float = 1.0,
    ):
        self.config = config
        self.target = np.asarray(target, dtype=np.float64)
        self.source = np.asarray(source, dtype=np.float64)
        self.optimizer = optimizer
        self.lr = lr
        self.num_kernels = num_kernels
        self.process_window = process_window
        self.robust = robust
        self.robust_tau = robust_tau
        # One minimax ascent shared across all refinement levels, so the
        # dual weights keep their state through each level's objective.
        self.adaptive_weights = AdaptiveCornerWeights.maybe(
            process_window, robust, robust_tau
        )
        self.level_configs = self._valid_levels(config, levels)
        if process_window is not None and len(self.level_configs) > 1:
            # Raw phase maps are sampled on the native frequency grid
            # and cannot follow the coarse levels; fail up front with an
            # actionable message instead of deep inside condition_kernels.
            for ab in process_window.conditions():
                if ab.custom is not None:
                    raise ValueError(
                        "multi-level ILT cannot evaluate raw phase-map "
                        "aberrations on its coarse grids; use Zernike-"
                        "term specs (grid-independent) or levels=1"
                    )

    @staticmethod
    def _valid_levels(config: OpticalConfig, levels: int) -> List[OpticalConfig]:
        """Coarse-to-fine configs, dropping levels that undersample."""
        out: List[OpticalConfig] = []
        for lvl in range(levels - 1, -1, -1):
            size = config.mask_size // (2**lvl)
            cfg = config.with_(mask_size=size)
            try:
                cfg.validate_sampling()
            except ValueError:
                continue
            out.append(cfg)
        if not out or out[-1].mask_size != config.mask_size:
            raise ValueError("finest level must be the native grid")
        return out

    @staticmethod
    def _downsample_target(target: np.ndarray, size: int) -> np.ndarray:
        """Box-pool + re-binarize; batch dimensions pass through."""
        n = target.shape[-1]
        factor = n // size
        pooled = target.reshape(
            target.shape[:-2] + (size, factor, size, factor)
        ).mean(axis=(-3, -1))
        return (pooled >= 0.5).astype(np.float64)

    @staticmethod
    def _upsample_theta(theta: np.ndarray, factor: int) -> np.ndarray:
        return np.repeat(np.repeat(theta, factor, axis=-2), factor, axis=-1)

    def run(
        self,
        iterations: int = 50,
        callback: Optional[Callable[[IterationRecord], Optional[bool]]] = None,
    ) -> SMOResult:
        """Split ``iterations`` across levels (coarse levels get fewer).

        A truthy ``callback`` return stops the solve immediately —
        breaking out of both the iteration and the level loop."""
        history: List[IterationRecord] = []
        start = tick()
        theta: Optional[np.ndarray] = None
        n_levels = len(self.level_configs)
        per_level = max(1, iterations // n_levels)
        step = 0
        stop = False
        for li, cfg in enumerate(self.level_configs):
            if stop:
                break
            tgt = self._downsample_target(self.target, cfg.mask_size)
            if theta is None:
                theta = init_theta_mask(tgt, cfg)
            else:
                theta = self._upsample_theta(
                    theta, cfg.mask_size // theta.shape[-1]
                )
            # The per-level engine resolves through the optics cache, so a
            # harness sweep re-running MILT on many clips decomposes each
            # level's TCC once instead of once per clip.
            objective = HopkinsMOObjective(
                cfg,
                tgt,
                self.source,
                self.num_kernels,
                window=self.process_window,
                robust=self.robust,
                robust_tau=self.robust_tau,
                adaptive_weights=self.adaptive_weights,
            )
            opt = make_optimizer(self.optimizer, self.lr)
            iters = per_level if li < n_levels - 1 else iterations - per_level * (n_levels - 1)
            for _ in range(iters):
                t0 = tick()
                with obs_span(
                    "solver.iter", solver=self.method_name, iteration=step
                ):
                    tm = ad.Tensor(theta, requires_grad=True)
                    loss = objective.loss(tm)
                    (gm,) = ad.grad(loss, [tm])
                    # Losses at coarse levels are on fewer pixels; scale
                    # to the native grid so the convergence trace is
                    # comparable.
                    scale = (self.config.mask_size / cfg.mask_size) ** 2
                    tiles = (
                        objective.last_tile_losses * scale
                        if objective.last_tile_losses is not None
                        else None
                    )
                    theta = opt.step(theta, gm.data)
                    corner_w = adaptive_corner_update(objective)
                rec = IterationRecord(
                    step,
                    float(loss.data) * scale,
                    tick() - t0,
                    "mo",
                    tile_losses=tiles,
                    corner_weights=corner_w,
                )
                observe_iteration(rec, grad=gm)
                history.append(rec)
                step += 1
                if callback and callback(rec):
                    stop = True
                    break
        if theta is None:
            raise RuntimeError(
                "MultiLevelILT produced no iterate; "
                "levels/steps_per_level must be >= 1"
            )
        return SMOResult(
            method=self.method_name,
            theta_m=theta,
            theta_j=None,
            history=history,
            runtime_seconds=tick() - start,
        )
