"""NILT-style baseline — stand-in for Neural-ILT [7].

Neural-ILT couples a neural backbone with Hopkins-model ILT refinement
and optimizes nominal printability (no process-window term).  The
neural backbone cannot be reproduced offline (no training data or
torch); its *algorithmic role* — producing a quick printability-driven
mask from a Hopkins forward model — is played here by plain Hopkins ILT
minimizing the nominal L2 loss only.  As in the paper's Table 3/4, this
baseline lands clearly behind the process-window-aware methods, for the
same structural reason: truncated SOCS + no PVB objective.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..obs import observe_iteration
from ..obs import span as obs_span
from ..opt import make_optimizer
from ..utils.timing import tick
from ..optics import OpticalConfig, ProcessWindow, engine_for
from ..smo.objective import (
    AdaptiveCornerWeights,
    adaptive_corner_update,
    dose_resist,
    live_corner_weights,
    robust_tile_losses,
    windowed_corner_loss,
)
from ..smo.parametrization import init_theta_mask, mask_from_theta
from ..smo.state import IterationRecord, SMOResult

__all__ = ["NILTBaseline"]


class NILTBaseline:
    """Hopkins ILT on the nominal-dose L2 objective only.

    ``target`` may be a single ``(N, N)`` tile or a ``(B, N, N)`` stack;
    a stack optimizes the whole mask batch jointly through the engine's
    fused multi-tile forward — one ``incoherent_image`` node over the
    SOCS kernel stack per step — with per-tile losses in every record.

    ``process_window`` turns the objective into *robust printability*:
    the same per-corner L2 terms reduced across the dose x focus grid
    (corner weights are absolute — no extra ``gamma`` factor).  It
    remains structurally NILT: no PVB term, just printability evaluated
    at every corner instead of the nominal condition alone.
    """

    method_name = "NILT"

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        lr: float = 0.1,
        optimizer: str = "adam",
        num_kernels: Optional[int] = None,
        process_window: Optional[ProcessWindow] = None,
        robust: str = "sum",
        robust_tau: float = 1.0,
    ):
        self.config = config
        self.target = ad.Tensor(np.asarray(target, dtype=np.float64))
        self.num_tiles = self.target.shape[0] if self.target.ndim == 3 else 1
        # Shared SOCS engine from the optics cache: repeated NILT runs on
        # one (config, source) pair decompose the TCC exactly once.
        self.engine = engine_for(config, "hopkins", source=source, num_kernels=num_kernels)
        self._opt = make_optimizer(optimizer, lr)
        self.window = process_window
        self.robust = robust
        self.robust_tau = float(robust_tau)
        self._last_tile_losses: Optional[np.ndarray] = None
        #: ``(C, B)`` corner matrix of the latest windowed evaluation.
        self.last_corner_losses: Optional[np.ndarray] = None
        #: Live minimax corner weights (``robust="adaptive"`` only).
        self.adaptive_weights = AdaptiveCornerWeights.maybe(
            process_window, robust, self.robust_tau
        )

    def _robust_weights(self) -> Optional[np.ndarray]:
        return live_corner_weights(self.adaptive_weights)

    def _loss(self, theta_m: ad.Tensor) -> ad.Tensor:
        mask = mask_from_theta(theta_m, self.config)
        if self.window is not None:
            total, matrix = windowed_corner_loss(
                self.engine,
                self.config,
                mask,
                self.target,
                self.window,
                self.robust,
                self.robust_tau,
                weights=self._robust_weights(),
            )
            self.last_corner_losses = matrix
            if self.target.ndim == 3:
                self._last_tile_losses = robust_tile_losses(
                    matrix, self.window, self.robust, self.robust_tau,
                    weights=self._robust_weights(),
                )
            return total
        aerial = self.engine.aerial(mask)
        z = dose_resist(aerial, self.config, 1.0)
        if self.target.ndim == 3:  # any stack, including B=1
            # Per-tile diagnostics straight from the graph's resist image
            # (no extra imaging forward).
            self._last_tile_losses = self.config.gamma * (
                (z.data - self.target.data) ** 2
            ).sum(axis=(1, 2))
        # Nominal printability only — no PVB term (Neural-ILT's objective).
        return F.mul(F.sum(F.power(F.sub(z, self.target), 2.0)), self.config.gamma)

    def run(
        self,
        iterations: int = 50,
        theta_m0: Optional[np.ndarray] = None,
        callback: Optional[Callable[[IterationRecord], Optional[bool]]] = None,
    ) -> SMOResult:
        theta_m = (
            init_theta_mask(self.target.data, self.config)
            if theta_m0 is None
            else np.array(theta_m0, dtype=np.float64, copy=True)
        )
        self._opt.reset()
        history = []
        start = tick()
        for it in range(iterations):
            t0 = tick()
            with obs_span(
                "solver.iter", solver=self.method_name, iteration=it
            ):
                tm = ad.Tensor(theta_m, requires_grad=True)
                loss = self._loss(tm)
                (gm,) = ad.grad(loss, [tm])
                tiles = self._last_tile_losses
                theta_m = self._opt.step(theta_m, gm.data)
                corner_w = adaptive_corner_update(self)
            rec = IterationRecord(
                it,
                float(loss.data),
                tick() - t0,
                "mo",
                tile_losses=tiles,
                corner_weights=corner_w,
            )
            observe_iteration(rec, grad=gm)
            history.append(rec)
            if callback and callback(rec):
                break
        return SMOResult(
            method=self.method_name,
            theta_m=theta_m,
            theta_j=None,
            history=history,
            runtime_seconds=tick() - start,
        )
