"""Layout geometry substrate: rectangles, rectilinear polygons,
rasterization onto simulation grids, and EPE edge-site extraction."""

from .rect import Rect, bounding_box, merge_touching, total_area
from .polygon import RectilinearPolygon, decompose
from .raster import GridSpec, downsample_binary, grid_to_rects, rasterize
from .edges import EPESite, edge_sites, measure_epe

__all__ = [
    "Rect",
    "bounding_box",
    "total_area",
    "merge_touching",
    "RectilinearPolygon",
    "decompose",
    "GridSpec",
    "rasterize",
    "grid_to_rects",
    "downsample_binary",
    "EPESite",
    "edge_sites",
    "measure_epe",
]
