"""Edge measurement sites for Edge Placement Error (EPE) evaluation.

Definition 3 of the paper: EPE is the deviation between a feature edge's
intended and printed position.  Following the ICCAD13 contest convention
used by the paper's comparators, edges of the target pattern are sampled
at a fixed spacing and each sample becomes a measurement *site*; the
printed contour position is probed along the edge normal and a site whose
|EPE| exceeds a tolerance counts as one violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .raster import GridSpec
from .rect import Rect

__all__ = ["EPESite", "edge_sites", "measure_epe"]


@dataclass(frozen=True)
class EPESite:
    """One EPE measurement site.

    ``x_nm``/``y_nm`` sit exactly on a target edge; ``normal`` is the unit
    outward normal of the feature at that point (axis aligned).
    """

    x_nm: float
    y_nm: float
    normal: Tuple[float, float]

    @property
    def is_vertical_edge(self) -> bool:
        return self.normal[0] != 0.0


def edge_sites(
    rects: Sequence[Rect],
    spacing_nm: float = 40.0,
    corner_margin_nm: float = 10.0,
) -> List[EPESite]:
    """Sample measurement sites along the *boundary of the union* of rects.

    Edge segments interior to the union (shared between touching shapes)
    are skipped: they are not printable edges.  Corners are avoided by
    ``corner_margin_nm`` as in the contest EPE checkers.
    """
    sites: List[EPESite] = []
    for r in rects:
        for x1, y1, x2, y2, normal in (
            (r.x1, r.y1, r.x2, r.y1, (0.0, -1.0)),  # bottom
            (r.x1, r.y2, r.x2, r.y2, (0.0, 1.0)),  # top
            (r.x1, r.y1, r.x1, r.y2, (-1.0, 0.0)),  # left
            (r.x2, r.y1, r.x2, r.y2, (1.0, 0.0)),  # right
        ):
            horizontal = normal[0] == 0.0
            length = (x2 - x1) if horizontal else (y2 - y1)
            usable = length - 2 * corner_margin_nm
            if usable <= 0:
                continue
            count = max(1, int(usable // spacing_nm) + 1)
            offsets = np.linspace(corner_margin_nm, length - corner_margin_nm, count)
            for off in offsets:
                px = x1 + off if horizontal else float(x1)
                py = float(y1) if horizontal else y1 + off
                probe = (px + normal[0] * 0.5, py + normal[1] * 0.5)
                if _covered(rects, probe[0], probe[1], exclude=r):
                    continue  # interior (shared) edge segment
                sites.append(EPESite(px, py, normal))
    return sites


def _covered(rects: Iterable[Rect], x: float, y: float, exclude: Rect) -> bool:
    return any(r is not exclude and r.contains_point(x, y) for r in rects)


def measure_epe(
    printed: np.ndarray,
    sites: Sequence[EPESite],
    grid: GridSpec,
    threshold: float = 0.5,
    max_search_nm: float = 80.0,
) -> np.ndarray:
    """Signed EPE (nm) for every site against a printed image.

    Positive values mean the printed edge lies *outside* the target edge
    (over-print), negative inside (under-print).  Sites where no contour
    crossing is found within ``max_search_nm`` are assigned
    ``+/- max_search_nm`` (catastrophic open/short).
    """
    out = np.empty(len(sites), dtype=np.float64)
    step_nm = grid.pixel_nm / 2.0
    n_steps = int(max_search_nm / step_nm)
    for i, site in enumerate(sites):
        out[i] = _site_epe(printed, site, grid, threshold, step_nm, n_steps, max_search_nm)
    return out


def _sample(printed: np.ndarray, grid: GridSpec, x_nm: float, y_nm: float) -> float:
    """Bilinear sample of the printed image at a layout coordinate."""
    col, row = grid.to_pixels(x_nm, y_nm)
    col -= 0.5  # pixel centres sit at half-integer grid coords
    row -= 0.5
    n = grid.size
    col = min(max(col, 0.0), n - 1.0)
    row = min(max(row, 0.0), n - 1.0)
    c0, r0 = int(col), int(row)
    c1, r1 = min(c0 + 1, n - 1), min(r0 + 1, n - 1)
    fc, fr = col - c0, row - r0
    top = printed[r0, c0] * (1 - fc) + printed[r0, c1] * fc
    bot = printed[r1, c0] * (1 - fc) + printed[r1, c1] * fc
    return float(top * (1 - fr) + bot * fr)


def _site_epe(
    printed: np.ndarray,
    site: EPESite,
    grid: GridSpec,
    threshold: float,
    step_nm: float,
    n_steps: int,
    max_search_nm: float,
) -> float:
    nx, ny = site.normal
    inside = _sample(printed, grid, site.x_nm, site.y_nm) >= threshold
    direction = 1.0 if inside else -1.0  # march toward the contour
    prev_val = _sample(printed, grid, site.x_nm, site.y_nm)
    for k in range(1, n_steps + 1):
        d = k * step_nm * direction
        val = _sample(printed, grid, site.x_nm + nx * d, site.y_nm + ny * d)
        crossed = (val < threshold) if inside else (val >= threshold)
        if crossed:
            # linear interpolation between the last two samples
            lo, hi = prev_val, val
            frac = 0.5 if hi == lo else (threshold - lo) / (hi - lo)
            return ((k - 1) + frac) * step_nm * direction
        prev_val = val
    return max_search_nm * direction
