"""Rectilinear polygon support for layout clip I/O.

The ICCAD13 contest distributes clips as rectilinear polygons (GLP
format); the simulators work on rectangles.  :func:`decompose` performs
an exact scanline decomposition of a rectilinear polygon into
non-overlapping rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .rect import Rect

__all__ = ["RectilinearPolygon", "decompose"]


@dataclass
class RectilinearPolygon:
    """A simple rectilinear polygon given by its vertex loop (nm coords).

    Vertices must alternate horizontal/vertical edges; the loop is closed
    implicitly (last vertex connects back to the first).
    """

    vertices: List[Tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.vertices) < 4:
            raise ValueError("rectilinear polygon needs at least 4 vertices")
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            if (x1 != x2) == (y1 != y2):
                raise ValueError(
                    f"edge {i} from {(x1, y1)} to {(x2, y2)} is not axis-aligned"
                )

    @classmethod
    def from_rect(cls, r: Rect) -> "RectilinearPolygon":
        return cls([(r.x1, r.y1), (r.x2, r.y1), (r.x2, r.y2), (r.x1, r.y2)])

    def bounding_box(self) -> Rect:
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def area(self) -> int:
        """Shoelace area (positive regardless of orientation)."""
        s = 0
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            s += x1 * y2 - x2 * y1
        return abs(s) // 2

    def to_rects(self) -> List[Rect]:
        return decompose(self)


def decompose(poly: RectilinearPolygon) -> List[Rect]:
    """Exact scanline decomposition into non-overlapping rectangles.

    For each horizontal slab between consecutive distinct y coordinates,
    the interior x-intervals are found by parity counting of crossing
    vertical edges.
    """
    verts = poly.vertices
    n = len(verts)
    vertical_edges: List[Tuple[int, int, int]] = []  # (x, ylo, yhi)
    for i in range(n):
        x1, y1 = verts[i]
        x2, y2 = verts[(i + 1) % n]
        if x1 == x2 and y1 != y2:
            vertical_edges.append((x1, min(y1, y2), max(y1, y2)))
    ys = sorted({v[1] for v in verts})
    rects: List[Rect] = []
    for ylo, yhi in zip(ys[:-1], ys[1:]):
        ymid = (ylo + yhi) / 2.0
        crossings = sorted(x for x, e1, e2 in vertical_edges if e1 < ymid < e2)
        if len(crossings) % 2:
            raise ValueError("polygon is self-intersecting or malformed")
        for xa, xb in zip(crossings[::2], crossings[1::2]):
            rects.append(Rect(xa, ylo, xb, yhi))
    return _merge_vertical(rects)


def _merge_vertical(rects: List[Rect]) -> List[Rect]:
    """Merge vertically adjacent rects with identical x-extents."""
    rects = sorted(rects, key=lambda r: (r.x1, r.x2, r.y1))
    out: List[Rect] = []
    for r in rects:
        if out:
            p = out[-1]
            if p.x1 == r.x1 and p.x2 == r.x2 and p.y2 == r.y1:
                out[-1] = Rect(p.x1, p.y1, p.x2, r.y2)
                continue
        out.append(r)
    return out
