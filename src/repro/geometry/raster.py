"""Rasterization of rectilinear layouts onto the simulation pixel grid.

The lithography models in :mod:`repro.optics` operate on square pixel
grids (the paper uses 2048x2048 pixels for a 4 um^2 tile).  This module
converts nanometre-coordinate rectangles to such grids and back.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .rect import Rect

__all__ = ["GridSpec", "rasterize", "grid_to_rects", "downsample_binary"]


class GridSpec:
    """Mapping between nanometre layout space and pixel grid space.

    Parameters
    ----------
    size:
        Number of pixels per side (grids are square, like the paper's
        2048x2048 tiles).
    pixel_nm:
        Pixel pitch in nanometres.
    origin_nm:
        Layout coordinate of pixel (0, 0)'s lower-left corner.
    """

    def __init__(
        self,
        size: int,
        pixel_nm: float,
        origin_nm: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        if size <= 0:
            raise ValueError("grid size must be positive")
        if pixel_nm <= 0:
            raise ValueError("pixel pitch must be positive")
        self.size = int(size)
        self.pixel_nm = float(pixel_nm)
        self.origin_nm = (float(origin_nm[0]), float(origin_nm[1]))

    @property
    def extent_nm(self) -> float:
        """Physical side length of the grid in nanometres."""
        return self.size * self.pixel_nm

    @property
    def pixel_area_nm2(self) -> float:
        return self.pixel_nm * self.pixel_nm

    def to_pixels(self, x_nm: float, y_nm: float) -> Tuple[float, float]:
        """Layout nm -> fractional (col, row) pixel coordinates."""
        return (
            (x_nm - self.origin_nm[0]) / self.pixel_nm,
            (y_nm - self.origin_nm[1]) / self.pixel_nm,
        )

    def to_nm(self, col: float, row: float) -> Tuple[float, float]:
        return (
            self.origin_nm[0] + col * self.pixel_nm,
            self.origin_nm[1] + row * self.pixel_nm,
        )

    def centered_on(self, rects: Sequence[Rect]) -> "GridSpec":
        """Return a copy whose origin centres ``rects`` in the grid."""
        from .rect import bounding_box

        bb = bounding_box(rects)
        cx, cy = bb.center
        half = self.extent_nm / 2.0
        return GridSpec(self.size, self.pixel_nm, (cx - half, cy - half))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GridSpec(size={self.size}, pixel_nm={self.pixel_nm}, "
            f"origin_nm={self.origin_nm})"
        )


def rasterize(rects: Iterable[Rect], grid: GridSpec, antialias: bool = True) -> np.ndarray:
    """Rasterize rectangles to a float image in [0, 1].

    ``out[row, col]`` is the covered fraction of pixel (row, col); with
    ``antialias=False`` pixels are set to 1 when their centre is covered.
    Rows index y, columns index x (image convention).
    """
    out = np.zeros((grid.size, grid.size), dtype=np.float64)
    n = grid.size
    for r in rects:
        c1, r1 = grid.to_pixels(r.x1, r.y1)
        c2, r2 = grid.to_pixels(r.x2, r.y2)
        if c2 <= 0 or r2 <= 0 or c1 >= n or r1 >= n:
            continue
        c1, r1 = max(c1, 0.0), max(r1, 0.0)
        c2, r2 = min(c2, float(n)), min(r2, float(n))
        if not antialias:
            ci1, ci2 = int(np.ceil(c1 - 0.5)), int(np.ceil(c2 - 0.5))
            ri1, ri2 = int(np.ceil(r1 - 0.5)), int(np.ceil(r2 - 0.5))
            out[max(ri1, 0) : ri2, max(ci1, 0) : ci2] = 1.0
            continue
        cov_c = _interval_coverage(c1, c2, n)
        cov_r = _interval_coverage(r1, r2, n)
        out += cov_r[:, None] * cov_c[None, :]
    return np.clip(out, 0.0, 1.0)


def _interval_coverage(a: float, b: float, n: int) -> np.ndarray:
    """Per-cell covered length of interval [a, b] over unit cells [i, i+1)."""
    idx = np.arange(n, dtype=np.float64)
    return np.clip(np.minimum(b, idx + 1.0) - np.maximum(a, idx), 0.0, 1.0)


def grid_to_rects(image: np.ndarray, grid: GridSpec, threshold: float = 0.5) -> List[Rect]:
    """Vectorize a binary-ish image back to maximal horizontal-run rects.

    Adjacent equal-width runs in consecutive rows are merged vertically,
    producing a compact (not necessarily minimal) rect cover.  Used for
    exporting optimized masks back to layout form.
    """
    binary = image >= threshold
    n_rows, n_cols = binary.shape
    open_runs: dict[Tuple[int, int], int] = {}
    rects: List[Rect] = []
    for row in range(n_rows + 1):
        runs: List[Tuple[int, int]] = []
        if row < n_rows:
            cols = np.flatnonzero(binary[row])
            if cols.size:
                breaks = np.flatnonzero(np.diff(cols) > 1)
                starts = np.concatenate(([0], breaks + 1))
                ends = np.concatenate((breaks, [cols.size - 1]))
                runs = [(int(cols[s]), int(cols[e]) + 1) for s, e in zip(starts, ends)]
        next_open: dict[Tuple[int, int], int] = {}
        for run in runs:
            next_open[run] = open_runs.pop(run, row)
        for (c1, c2), r0 in open_runs.items():
            x1, y1 = grid.to_nm(c1, r0)
            x2, y2 = grid.to_nm(c2, row)
            rects.append(
                Rect(int(round(x1)), int(round(y1)), int(round(x2)), int(round(y2)))
            )
        open_runs = next_open
    return sorted(rects)


def downsample_binary(image: np.ndarray, factor: int) -> np.ndarray:
    """Block-average downsample (used by the multi-level ILT baseline)."""
    n = image.shape[0]
    if n % factor:
        raise ValueError(f"grid size {n} not divisible by {factor}")
    m = n // factor
    return image.reshape(m, factor, m, factor).mean(axis=(1, 3))
