"""Axis-aligned rectangle primitive used throughout the layout substrate.

Coordinates are integer nanometres, half-open on the upper edges:
a :class:`Rect` covers ``x1 <= x < x2`` and ``y1 <= y < y2``.  That
convention makes rasterization and area accounting exact for rectilinear
layouts (the ICCAD13 / ISPD19 clips the paper evaluates on are all
rectilinear Metal/Via shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

__all__ = ["Rect", "bounding_box", "total_area", "merge_touching"]


@dataclass(frozen=True, order=True)
class Rect:
    """Half-open axis-aligned rectangle in integer nanometres."""

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x2 <= self.x1 or self.y2 <= self.y1:
            raise ValueError(f"degenerate rect {self}")

    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def shifted(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scaled(self, s: float) -> "Rect":
        return Rect(
            int(round(self.x1 * s)),
            int(round(self.y1 * s)),
            int(round(self.x2 * s)),
            int(round(self.y2 * s)),
        )

    def intersects(self, other: "Rect") -> bool:
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return None
        return Rect(x1, y1, x2, y2)

    def contains_point(self, x: float, y: float) -> bool:
        return self.x1 <= x < self.x2 and self.y1 <= y < self.y2

    def expanded(self, margin: int) -> "Rect":
        return Rect(self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin)


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Tight bounding box of a non-empty rect collection."""
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_box of empty collection")
    return Rect(
        min(r.x1 for r in rects),
        min(r.y1 for r in rects),
        max(r.x2 for r in rects),
        max(r.y2 for r in rects),
    )


def total_area(rects: Iterable[Rect]) -> int:
    """Union area of rectangles via sweep over unique x-intervals.

    Exact for overlapping inputs; used to report clip area statistics
    matching Table 2's "average area" column.
    """
    rects = list(rects)
    if not rects:
        return 0
    xs = sorted({r.x1 for r in rects} | {r.x2 for r in rects})
    area = 0
    for xa, xb in zip(xs[:-1], xs[1:]):
        spans: List[Tuple[int, int]] = sorted(
            (r.y1, r.y2) for r in rects if r.x1 <= xa and r.x2 >= xb
        )
        if not spans:
            continue
        cov = 0
        cur_lo, cur_hi = spans[0]
        for lo, hi in spans[1:]:
            if lo > cur_hi:
                cov += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        cov += cur_hi - cur_lo
        area += cov * (xb - xa)
    return area


def merge_touching(rects: List[Rect]) -> List[Rect]:
    """Greedy merge of rects that share a full edge (cleanup utility)."""
    rects = sorted(rects)
    merged = True
    while merged:
        merged = False
        out: List[Rect] = []
        used = [False] * len(rects)
        for i, a in enumerate(rects):
            if used[i]:
                continue
            cur = a
            for j in range(i + 1, len(rects)):
                if used[j]:
                    continue
                b = rects[j]
                if cur.y1 == b.y1 and cur.y2 == b.y2 and cur.x2 == b.x1:
                    cur = Rect(cur.x1, cur.y1, b.x2, cur.y2)
                    used[j] = True
                    merged = True
                elif cur.x1 == b.x1 and cur.x2 == b.x2 and cur.y2 == b.y1:
                    cur = Rect(cur.x1, cur.y1, cur.x2, b.y2)
                    used[j] = True
                    merged = True
            out.append(cur)
        rects = sorted(out)
    return rects
