"""Experiment harness: run (method x dataset) sweeps and regenerate every
table and figure of the paper's evaluation section."""

from .runner import (
    METHOD_ORDER,
    RunRecord,
    RunSettings,
    batched_objective,
    evaluate_final,
    run_clip,
    run_joint,
    run_matrix,
)
from .process_window import (
    ProcessWindowRecord,
    evaluate_process_window,
    process_window_table,
    run_process_window,
)
from .resilience import (
    CellOutcome,
    CheckpointJournal,
    RecordCodec,
    RetryPolicy,
    classify_error,
    execute_cells,
)
from .tables import TableData, table3, table4
from .figures import FIGURE3_METHODS, FigureSeries, figure3_series, figure5_stats
from .report import ascii_plot, render_series, render_table, sweep_health, table_to_csv

__all__ = [
    "CellOutcome",
    "CheckpointJournal",
    "RecordCodec",
    "RetryPolicy",
    "classify_error",
    "execute_cells",
    "sweep_health",
    "METHOD_ORDER",
    "RunRecord",
    "RunSettings",
    "run_clip",
    "run_joint",
    "run_matrix",
    "evaluate_final",
    "batched_objective",
    "ProcessWindowRecord",
    "evaluate_process_window",
    "run_process_window",
    "process_window_table",
    "TableData",
    "table3",
    "table4",
    "FigureSeries",
    "FIGURE3_METHODS",
    "figure3_series",
    "figure5_stats",
    "render_table",
    "table_to_csv",
    "render_series",
    "ascii_plot",
]
