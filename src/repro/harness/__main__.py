"""``python -m repro.harness`` == the ``bismo`` CLI."""

from .cli import main

raise SystemExit(main())
