"""Command-line entry point: regenerate any paper table or figure.

Examples::

    bismo table3 --scale small --clips 2 --iterations 20
    bismo table3 --scale small --clips 2 --workers 4
    bismo table4 --scale default --clips 2 --joint
    bismo fig3 --dataset ICCAD13 --steps 100
    bismo fig5 --dataset ICCAD13 --clips 3
    bismo pwindow --pw-focus 0 40 --pw-aberrations Z5=20 Z7=-15 \
        --robust adaptive
    bismo all --out results/
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import sys
import tempfile
from pathlib import Path
from typing import Iterator, List, Optional

from ..layouts import dataset_by_name, DATASET_NAMES
from ..optics import ProcessWindow
from .figures import figure3_series, figure5_stats
from .process_window import process_window_table, run_process_window
from .report import (
    ascii_plot,
    render_series,
    render_table,
    sweep_health,
    table_to_csv,
)
from .runner import METHOD_ORDER, RunSettings, run_matrix
from .tables import table3, table4

__all__ = ["main", "build_parser"]


def _aberration_spec(text: str) -> dict:
    """argparse type for --pw-aberrations: parse or fail cleanly."""
    from ..optics import parse_aberration_spec

    try:
        return parse_aberration_spec(text)
    except (KeyError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bismo",
        description="Regenerate BiSMO (DAC'24) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", default="small", help="optical preset: tiny/small/default/paper")
        p.add_argument("--clips", type=int, default=2, help="clips per dataset")
        p.add_argument("--iterations", type=int, default=30)
        p.add_argument("--lr", type=float, default=0.1)
        p.add_argument("--out", type=Path, default=None, help="directory for CSV output")
        p.add_argument(
            "--methods",
            nargs="*",
            default=None,
            help=f"subset of methods (default: all of {', '.join(METHOD_ORDER)})",
        )
        p.add_argument(
            "--trace",
            type=Path,
            default=None,
            metavar="PATH",
            help="enable span tracing and write a merged Chrome "
            "trace-event JSON (loadable in Perfetto / chrome://tracing) "
            "to PATH after the run; parallel sweeps merge per-worker "
            "shards deterministically",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="enable the obs metrics registry and print a text "
            "summary (counters, cache hit rates, FFT counts) to stderr "
            "after the run; for parallel sweeps the merged per-worker "
            "totals ride the --trace file's otherData.metrics",
        )

    def resilience(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--resume",
            type=Path,
            default=None,
            metavar="JOURNAL",
            help="JSONL checkpoint journal: completed cells are appended "
            "as they finish and skipped when re-running with the same "
            "path, so an interrupted sweep resumes where it crashed",
        )
        p.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-cell wall-clock budget (default: REPRO_CELL_TIMEOUT; "
            "0 disables; enforced for parallel sweeps only)",
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="N",
            help="per-cell retry budget for transient faults (default: "
            "REPRO_MAX_RETRIES or 2)",
        )

    for name in ("table3", "table4", "tables", "all"):
        p = sub.add_parser(name)
        common(p)
        resilience(p)
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker processes for the sweep (records stay in serial "
            "order with identical numeric content)",
        )
        p.add_argument(
            "--joint",
            action="store_true",
            help="jointly optimize each dataset's clips with one shared "
            "source (batched multi-clip SMO) instead of per-clip solves",
        )

    p3 = sub.add_parser("fig3")
    common(p3)
    p3.add_argument("--dataset", default="ICCAD13", choices=list(DATASET_NAMES))
    p3.add_argument("--steps", type=int, default=100)
    p3.add_argument("--clip-index", type=int, default=0)

    p5 = sub.add_parser("fig5")
    common(p5)
    p5.add_argument("--dataset", default="ICCAD13", choices=list(DATASET_NAMES))

    pw = sub.add_parser(
        "pwindow",
        help="robust process-window run + per-corner report",
        description="Optimize selected methods robustly across a dose x "
        "focus corner grid and report per-corner L2/EPE plus the "
        "window-wide variation band.",
    )
    common(pw)
    resilience(pw)
    pw.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (records stay in serial "
        "order with identical numeric content)",
    )
    pw.add_argument("--dataset", default="ICCAD13", choices=list(DATASET_NAMES))
    pw.add_argument(
        "--pw-doses",
        type=float,
        nargs="+",
        default=[0.98, 1.0, 1.02],
        help="dose corner factors (default: %(default)s)",
    )
    pw.add_argument(
        "--pw-focus",
        type=float,
        nargs="+",
        default=[0.0],
        help="focus corners in nm (default: %(default)s); each distinct "
        "value costs one imaging pass, dose corners are free",
    )
    pw.add_argument(
        "--pw-aberrations",
        nargs="*",
        default=[],
        metavar="SPEC",
        type=_aberration_spec,
        help="extra pupil-aberration conditions, each a comma-separated "
        "Zernike spec like 'Z5=20,Z7=-10' (coefficients in nm; Z4 = "
        "wafer defocus).  Each spec is one more imaging pass crossed "
        "with every dose corner, on top of the --pw-focus conditions",
    )
    pw.add_argument(
        "--robust",
        choices=["sum", "max", "adaptive"],
        default="sum",
        help="corner reduction: weighted sum, smooth worst-case "
        "(log-sum-exp), or adaptive minimax corner reweighting "
        "(exponentiated-gradient ascent on the corner weights)",
    )
    pw.add_argument(
        "--tau",
        type=float,
        default=1.0,
        help="log-sum-exp temperature for --robust max (loss units), or "
        "the ascent rate for --robust adaptive",
    )

    return parser


def _settings(args: argparse.Namespace, iterations: Optional[int] = None) -> RunSettings:
    return RunSettings.preset(
        args.scale, iterations=iterations or args.iterations, lr=args.lr
    )


def _datasets(args: argparse.Namespace):
    return [dataset_by_name(n, num_clips=max(args.clips, 1)) for n in DATASET_NAMES]


@contextlib.contextmanager
def _obs_session(
    args: argparse.Namespace, cell_labels: List[str]
) -> Iterator[None]:
    """Enable :mod:`repro.obs` for the duration of one CLI command.

    ``--trace PATH`` turns on span tracing with a temporary shard
    directory; on exit the per-process shards are merged — in the
    submission order captured by *cell_labels* (filled from the
    ``"start"`` progress events as the command runs) — into one Chrome
    trace-event JSON at PATH.  Commands that never enter a harness cell
    (fig3/fig5) produce no shards and fall back to exporting the
    in-process event buffer.  ``--metrics`` prints the parent registry's
    text summary to stderr.
    """
    trace_path: Optional[Path] = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False))
    if trace_path is None and not want_metrics:
        yield
        return
    from .. import obs

    with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
        with obs.use(
            trace=trace_path is not None,
            metrics=True,
            shard_dir=tmp if trace_path is not None else None,
        ):
            yield
            if trace_path is not None:
                shards = obs.discover_shards(tmp)
                if shards:
                    trace = obs.merge_shards(shards, cell_labels)
                else:
                    trace = obs.chrome_trace(
                        obs.drain_events(), metrics=obs.values()
                    )
                trace_path.parent.mkdir(parents=True, exist_ok=True)
                trace_path.write_text(
                    json.dumps(trace, sort_keys=True), encoding="utf-8"
                )
                print(
                    f"[obs] wrote Chrome trace to {trace_path}",
                    file=sys.stderr,
                )
            if want_metrics:
                print(obs.summary_table(obs.snapshot()), file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out_dir: Optional[Path] = getattr(args, "out", None)
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    cell_labels: List[str] = []

    def progress(event: object) -> None:
        if getattr(event, "status", None) == "start" and getattr(
            event, "label", ""
        ):
            cell_labels.append(str(event.label))
        print(f"[run] {event}", file=sys.stderr)

    with _obs_session(args, cell_labels):
        return _run_command(args, out_dir, progress)


def _run_command(
    args: argparse.Namespace,
    out_dir: Optional[Path],
    progress,
) -> int:
    if args.command in ("table3", "table4", "tables", "all"):
        settings = _settings(args)
        methods = args.methods or METHOD_ORDER
        records = run_matrix(
            _datasets(args),
            settings,
            methods=methods,
            clips_per_dataset=args.clips,
            progress=progress,
            workers=args.workers,
            joint=args.joint,
            checkpoint=args.resume,
            cell_timeout=args.cell_timeout,
            max_retries=args.max_retries,
        )
        if args.command in ("table3", "tables", "all"):
            t3 = table3(records)
            print(render_table(t3))
            if out_dir:
                table_to_csv(t3, out_dir / "table3.csv")
        if args.command in ("table4", "tables", "all"):
            t4 = table4(records)
            print(render_table(t4))
            if out_dir:
                table_to_csv(t4, out_dir / "table4.csv")
        if any(not rec.ok for rec in records):
            print(render_table(sweep_health(records)), file=sys.stderr)
        return 0

    if args.command == "pwindow":
        window = ProcessWindow.from_grid(
            args.pw_doses,
            args.pw_focus,
            aberrations=args.pw_aberrations,
        )
        settings = dataclasses.replace(
            _settings(args),
            process_window=window,
            robust=args.robust,
            robust_tau=args.tau,
        )
        ds = dataset_by_name(args.dataset, num_clips=max(args.clips, 1))
        clips = list(ds)[: args.clips]
        methods = args.methods or ["Abbe-MO", "BiSMO-NMN"]
        records = run_process_window(
            methods,
            clips,
            settings,
            ds.name,
            checkpoint=args.resume,
            cell_timeout=args.cell_timeout,
            max_retries=args.max_retries,
            progress=progress,
            workers=args.workers,
        )
        if any(not rec.ok for rec in records):
            print(render_table(sweep_health(records)), file=sys.stderr)
        for value in ("l2", "epe"):
            table = process_window_table(records, value=value)
            print(render_table(table))
            print()
            if out_dir:
                table_to_csv(table, out_dir / f"pwindow_{value}.csv")
        return 0

    if args.command == "fig3":
        ds = dataset_by_name(args.dataset, num_clips=max(args.clip_index + 1, args.clips))
        clip = ds[args.clip_index]
        settings = _settings(args, iterations=args.steps)
        settings = RunSettings(
            config=settings.config, iterations=args.steps, lr=0.01
        )
        series = figure3_series(clip, settings, dataset_name=ds.name)
        print(ascii_plot(series))
        if out_dir:
            (out_dir / "fig3.csv").write_text(render_series(series))
        return 0

    if args.command == "fig5":
        ds = dataset_by_name(args.dataset, num_clips=args.clips)
        settings = _settings(args, iterations=60)
        stats = figure5_stats(ds, settings, clips=args.clips)
        for method, data in stats.items():
            mean = ", ".join(f"{v:.1f}" for v in data["mean"][:10])
            std = ", ".join(f"{v:.1f}" for v in data["std"][:10])
            print(f"{method}: mean[{mean} ...] std[{std} ...]")
        if out_dir:
            import csv

            with open(out_dir / "fig5.csv", "w", newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(["method", "step", "mean", "std"])
                for method, data in stats.items():
                    for s, m, d in zip(data["steps"], data["mean"], data["std"]):
                        writer.writerow([method, int(s), float(m), float(d)])
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
