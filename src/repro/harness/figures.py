"""Figure 3 / Figure 5 data-series generation.

Figure 3: log10(L_smo) convergence traces of the MO methods (dashed in
the paper) versus AM-SMO and the three BiSMO variants (solid) on one
clip per dataset, 100 steps at learning rate 0.01.

Figure 5: mean and standard deviation of L_smo across the clips of a
dataset for BiSMO-FD/CG/NMN over the step window the paper plots
(steps 20-60).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..layouts import Clip, Dataset
from .runner import RunSettings, run_clip

__all__ = ["FigureSeries", "figure3_series", "figure5_stats", "FIGURE3_METHODS"]

#: Methods plotted in Figure 3 — dashed (MO) + solid (SMO) lines.
FIGURE3_METHODS = (
    "DAC23-MILT",
    "Abbe-MO",
    "AM-SMO(Abbe-Abbe)",
    "BiSMO-FD",
    "BiSMO-CG",
    "BiSMO-NMN",
)


@dataclass
class FigureSeries:
    """Named x/y series ready for plotting or text rendering."""

    label: str
    steps: np.ndarray
    values: np.ndarray
    style: str = "solid"  # "dashed" for MO methods, as in the paper


def figure3_series(
    clip: Clip,
    settings: RunSettings,
    methods: Sequence[str] = FIGURE3_METHODS,
    dataset_name: str = "",
) -> List[FigureSeries]:
    """Convergence traces (log10 L_smo vs optimization step) on one clip."""
    out: List[FigureSeries] = []
    for method in methods:
        rec = run_clip(method, clip, settings, dataset_name)
        losses = np.maximum(rec.losses, 1e-30)
        style = "dashed" if method in ("NILT", "DAC23-MILT", "Abbe-MO") else "solid"
        out.append(
            FigureSeries(
                label=method,
                steps=np.arange(len(losses)),
                values=np.log10(losses),
                style=style,
            )
        )
    return out


def figure5_stats(
    dataset: Dataset,
    settings: RunSettings,
    methods: Sequence[str] = ("BiSMO-FD", "BiSMO-CG", "BiSMO-NMN"),
    clips: Optional[int] = None,
    step_window: tuple[int, int] = (20, 60),
) -> Dict[str, Dict[str, np.ndarray]]:
    """Mean/std of L_smo across clips per method.

    Returns ``{method: {"steps": ..., "mean": ..., "std": ...}}`` over
    the plotted window (clipped to the available iterations).
    """
    use_clips = list(dataset)[: clips or len(dataset)]
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for method in methods:
        traces = []
        for clip in use_clips:
            rec = run_clip(method, clip, settings, dataset.name)
            traces.append(rec.losses)
        n = min(len(t) for t in traces)
        stack = np.stack([t[:n] for t in traces])
        lo = min(step_window[0], max(n - 1, 0))
        hi = min(step_window[1], n)
        steps = np.arange(lo, hi)
        out[method] = {
            "steps": steps,
            "mean": stack[:, lo:hi].mean(axis=0),
            "std": stack[:, lo:hi].std(axis=0),
        }
    return out
