"""Process-window report: per-corner metrics for finished runs.

The harness counterpart of the robust condition-axis objectives: judge a
finished (source, mask) pair at *every* corner of a
:class:`repro.optics.ProcessWindow` under the lossless Abbe model —
per-corner loss / L2 / EPE plus the window-wide variation band
(:func:`repro.metrics.pvb_band_nm2`) — and render the result as a
corner-matrix table.  Used by the ``bismo pwindow`` CLI subcommand and
directly from python.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..layouts import Clip
from ..metrics import epe_report, l2_error_nm2, pvb_band_nm2
from ..optics import OpticalConfig, ProcessWindow
from ..smo import SMOResult, ProcessWindowSMOObjective, init_theta_source
from ..smo.objective import robust_tile_losses
from .. import obs
from ..utils.faultinject import fault_point
from .resilience import CellProgress, RecordCodec, RetryPolicy, execute_cells
from .runner import (
    RunSettings,
    _annular_source,
    _dispatch,
    _target_image,
    _worker_warmup,
)
from .tables import TableData

__all__ = [
    "ProcessWindowRecord",
    "evaluate_process_window",
    "run_process_window",
    "process_window_table",
]


@dataclass
class ProcessWindowRecord:
    """Per-corner judgment of one (method, clip) run.

    Like :class:`repro.harness.RunRecord`, carries resilience
    bookkeeping: ``status`` is ``"ok"`` unless the cell exhausted its
    retry budget (``"failed"`` / ``"timeout"``, NaN metrics, details in
    ``error``); ``attempts`` counts executions.
    """

    method: str
    dataset: str
    clip: str
    corner_labels: Tuple[str, ...]
    corner_loss: np.ndarray  # (C,) squared-error loss per corner
    corner_l2_nm2: np.ndarray  # (C,) L2 error per corner
    corner_epe: np.ndarray  # (C,) EPE violation counts per corner
    band_nm2: float  # variation band across ALL corners
    robust_loss: float  # the robust reduction of corner_loss
    runtime_s: float = 0.0
    losses: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))
    #: Per-corner resist thresholds the judge applied (config default
    #: unless the corner carries a calibrated override).
    corner_thresholds: Tuple[float, ...] = ()
    #: Final adaptive corner weights of the run (``robust="adaptive"``
    #: solves only; the judge's robust reduction uses them), else None.
    corner_weights: Optional[np.ndarray] = None
    status: str = "ok"
    error: str = ""
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict[str, Any]:
        """Plain-``json`` form for the checkpoint journal (floats revive
        bitwise — python's ``json`` writes ``repr``-exact doubles)."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "clip": self.clip,
            "corner_labels": list(self.corner_labels),
            "corner_loss": np.asarray(self.corner_loss, dtype=np.float64).tolist(),
            "corner_l2_nm2": np.asarray(
                self.corner_l2_nm2, dtype=np.float64
            ).tolist(),
            "corner_epe": [int(v) for v in np.asarray(self.corner_epe)],
            "band_nm2": self.band_nm2,
            "robust_loss": self.robust_loss,
            "runtime_s": self.runtime_s,
            "losses": np.asarray(self.losses, dtype=np.float64).tolist(),
            "corner_thresholds": [float(v) for v in self.corner_thresholds],
            "corner_weights": (
                None
                if self.corner_weights is None
                else np.asarray(self.corner_weights, dtype=np.float64).tolist()
            ),
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ProcessWindowRecord":
        weights = data.get("corner_weights")
        return cls(
            method=str(data["method"]),
            dataset=str(data["dataset"]),
            clip=str(data["clip"]),
            corner_labels=tuple(data["corner_labels"]),
            corner_loss=np.asarray(data["corner_loss"], dtype=np.float64),
            corner_l2_nm2=np.asarray(data["corner_l2_nm2"], dtype=np.float64),
            corner_epe=np.asarray(data["corner_epe"], dtype=np.int64),
            band_nm2=float(data["band_nm2"]),
            robust_loss=float(data["robust_loss"]),
            runtime_s=float(data["runtime_s"]),
            losses=np.asarray(data["losses"], dtype=np.float64),
            corner_thresholds=tuple(
                float(v) for v in data.get("corner_thresholds", [])
            ),
            corner_weights=(
                None if weights is None else np.asarray(weights, dtype=np.float64)
            ),
            status=str(data.get("status", "ok")),
            error=str(data.get("error", "")),
            attempts=int(data.get("attempts", 1)),
        )


def evaluate_process_window(
    result: SMOResult,
    clip: Clip,
    settings: RunSettings,
    window: Optional[ProcessWindow] = None,
    source_fallback: Optional[np.ndarray] = None,
    binary_mask: bool = True,
) -> ProcessWindowRecord:
    """Judge a finished run at every corner of ``window``.

    Mirrors :func:`repro.harness.evaluate_final` (lossless Abbe judge,
    hard-thresholded mask by default) but sweeps the whole corner grid:
    the per-corner resist images come from one fused condition-axis
    evaluation (shared mask spectrum across the window's pupil
    conditions — defocus and general Zernike aberrations alike — dose
    corners free), not C independent simulations.  Per-corner calibrated
    resist thresholds are honored and reported.  The robust column is
    reduced under the *settings'* regime (static window weights for
    ``"sum"`` / ``"max"``) so records judged with one settings object
    stay comparable across methods; only ``settings.robust="adaptive"``
    reduces with a run's final minimax weights — which ride the
    record's ``corner_weights`` either way for inspection.
    """
    cfg = settings.config
    window = window or settings.process_window or ProcessWindow.from_config(cfg)
    target = _target_image(clip, cfg)
    judge = ProcessWindowSMOObjective(
        cfg,
        target,
        window,
        robust=settings.robust,
        tau=settings.robust_tau,
    )
    theta_j = result.theta_j
    if theta_j is None:
        src = source_fallback if source_fallback is not None else _annular_source(cfg)
        theta_j = init_theta_source(src, cfg)
    theta_m = result.theta_m
    if binary_mask:
        # +/-1e3 drives the sigmoid to exactly 0/1 in float64.
        theta_m = np.where(theta_m >= 0.0, 1e3, -1e3)
    images = judge.images(theta_j, theta_m)
    resists = images["corner_resists"]  # (C, N, N)
    corner_l2 = np.array(
        [l2_error_nm2(z, target, cfg) for z in resists]
    )
    corner_epe = np.array(
        [epe_report(z, clip.rects, cfg).violations for z in resists]
    )
    # The corner-loss matrix comes straight from the resist stack the
    # judge already imaged — no second condition-axis pass.
    matrix = ((resists - target[None]) ** 2).sum(axis=(-2, -1))[:, None]
    final_weights = None
    if result.history and result.history[-1].corner_weights is not None:
        final_weights = np.asarray(result.history[-1].corner_weights)
    # The robust column is reduced under the *settings'* regime so rows
    # judged with one settings object stay comparable: only an
    # explicitly adaptive judging uses a run's trained final weights
    # (they ride the record either way for inspection).
    judge_weights = final_weights if settings.robust == "adaptive" else None
    robust = float(
        robust_tile_losses(
            matrix, window, settings.robust, settings.robust_tau,
            weights=judge_weights,
        )[0]
    )
    return ProcessWindowRecord(
        method=result.method,
        dataset="",
        clip=clip.name,
        corner_labels=window.labels,
        corner_loss=matrix[:, 0],
        corner_l2_nm2=corner_l2,
        corner_epe=corner_epe,
        band_nm2=pvb_band_nm2(resists, cfg),
        robust_loss=robust,
        corner_thresholds=tuple(window.intensity_thresholds(cfg)),
        corner_weights=final_weights,
    )


# One process-window cell: (method, dataset_name, clip) — a plain tuple
# so cells pickle cleanly if sharded over a pool.
_PWCell = Tuple[str, str, Clip]


def _run_pw_cell(
    cell: _PWCell, settings: RunSettings
) -> List[ProcessWindowRecord]:
    """Execute one (method, clip) process-window cell."""
    fault_point("harness.run_cell")
    method, dataset_name, clip = cell
    cfg = settings.config
    with obs.cell_scope(f"{dataset_name}/{clip.name}/{method}"):
        target = _target_image(clip, cfg)
        source = _annular_source(cfg)
        start = time.perf_counter()
        result = _dispatch(method, settings, target, source)
        runtime = time.perf_counter() - start
        rec = evaluate_process_window(
            result, clip, settings, source_fallback=source
        )
        rec.method = method
        rec.dataset = dataset_name
        rec.runtime_s = runtime
        rec.losses = result.losses
        return [rec]


def _pw_failure_records(
    cell: _PWCell, status: str, error: str, attempts: int
) -> List[ProcessWindowRecord]:
    method, dataset_name, clip = cell
    nan = math.nan
    return [
        ProcessWindowRecord(
            method=method,
            dataset=dataset_name,
            clip=clip.name,
            corner_labels=(),
            corner_loss=np.empty(0),
            corner_l2_nm2=np.empty(0),
            corner_epe=np.empty(0, dtype=np.int64),
            band_nm2=nan,
            robust_loss=nan,
            runtime_s=nan,
            status=status,
            error=error,
            attempts=attempts,
        )
    ]


def _pw_stamp_records(
    records: List[ProcessWindowRecord], status: str, attempts: int, error: str
) -> None:
    for rec in records:
        rec.status = status
        rec.attempts = attempts
        rec.error = error


#: Codec handing :class:`ProcessWindowRecord` lists to the executor.
PW_RECORD_CODEC = RecordCodec(
    encode=lambda records: [r.to_json() for r in records],
    decode=lambda payload: [ProcessWindowRecord.from_json(d) for d in payload],
    failure=_pw_failure_records,
    stamp=_pw_stamp_records,
)


def run_process_window(
    methods: Sequence[str],
    clips: Sequence[Clip],
    settings: RunSettings,
    dataset_name: str = "",
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    cell_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    progress: Optional[Any] = None,
    workers: int = 1,
) -> List[ProcessWindowRecord]:
    """Run each (method, clip) cell robustly and judge the full window.

    ``settings.process_window`` must be set: every solver optimizes the
    robust objective across it, and the report judges the same corners.

    With ``checkpoint`` set (or ``workers > 1``) the run goes through
    the fault-tolerant executor (:mod:`repro.harness.resilience`):
    completed cells are journaled as they finish and skipped on a
    resumed run, retries follow the same taxonomy as
    :func:`repro.harness.run_matrix`, and a cell that exhausts its
    budget yields a structured failure record.  ``workers > 1`` shards
    cells across processes like :func:`run_matrix` — same warm cache,
    worker-budget split, and obs-config forwarding — and records come
    back in the serial order.
    """
    if settings.process_window is None:
        raise ValueError("run_process_window needs settings.process_window")
    cells: List[_PWCell] = [
        (method, dataset_name, clip) for clip in clips for method in methods
    ]
    resilient = (
        workers > 1
        or checkpoint is not None
        or cell_timeout is not None
        or max_retries is not None
    )
    if not resilient:
        records: List[ProcessWindowRecord] = []
        for cell in cells:
            method, ds, clip = cell
            label = f"{ds}/{clip.name}/{method}"
            if progress:
                progress(CellProgress(label, "start", attempts=1))
            t0 = time.monotonic()
            cell_records = _run_pw_cell(cell, settings)
            if progress:
                progress(
                    CellProgress(
                        label, "ok", seconds=time.monotonic() - t0, attempts=1
                    )
                )
            records.extend(cell_records)
        return records
    labels = [f"{ds}/{clip.name}/{method}" for method, ds, clip in cells]
    policy = None if max_retries is None else RetryPolicy(max_retries=max_retries)
    worker_budget = max(1, (os.cpu_count() or 1) // max(1, workers))

    def pool_factory() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_warmup,
            initargs=(
                settings.config,
                worker_budget,
                settings.process_window,
                obs.export_config(),
            ),
        )

    outcomes = execute_cells(
        cells,
        labels,
        partial(_run_pw_cell, settings=settings),
        PW_RECORD_CODEC,
        workers=workers,
        pool_factory=pool_factory if workers > 1 else None,
        policy=policy,
        cell_timeout=cell_timeout,
        checkpoint=checkpoint,
        progress=progress,
    )
    return [rec for outcome in outcomes for rec in outcome.records]


def process_window_table(
    records: Sequence[ProcessWindowRecord], value: str = "l2"
) -> TableData:
    """Corner-matrix table: one row per (method, clip), one column per
    corner plus the window band and the robust loss.

    ``value`` picks the per-corner quantity: ``"l2"`` (nm^2 L2 error),
    ``"loss"`` (squared-error loss) or ``"epe"`` (violation counts).
    """
    fields = {
        "l2": ("corner_l2_nm2", "per-corner L2 (nm^2)"),
        "loss": ("corner_loss", "per-corner loss"),
        "epe": ("corner_epe", "per-corner EPE violations"),
    }
    if value not in fields:
        raise KeyError(f"unknown value {value!r}; choose from {sorted(fields)}")
    attr, caption = fields[value]
    # Failure records carry no corner data; the sweep-health table
    # (repro.harness.report) is where they surface.
    records = [rec for rec in records if rec.status == "ok"]
    if not records:
        raise ValueError("no records")
    labels = records[0].corner_labels
    columns = list(labels) + ["band_nm2", "robust"]
    rows = []
    for rec in records:
        if rec.corner_labels != labels:
            raise ValueError("records judge different windows")
        cells = [float(v) for v in getattr(rec, attr)]
        cells += [rec.band_nm2, rec.robust_loss]
        rows.append((f"{rec.clip}/{rec.method}", cells))
    return TableData(
        title=f"Process window — {caption}", columns=columns, rows=rows
    )
