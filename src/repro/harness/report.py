"""Plain-text and CSV rendering of harness outputs."""

from __future__ import annotations

import csv
import io
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from .figures import FigureSeries
from .tables import TableData

__all__ = [
    "render_table",
    "table_to_csv",
    "render_series",
    "ascii_plot",
    "sweep_health",
]


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def render_table(table: TableData, max_width: int = 14) -> str:
    """Monospace rendering of a :class:`TableData`."""
    headers = ["" ] + [c[:max_width] for c in table.columns]
    body = [[label] + [_fmt(v) for v in cells] for label, cells in table.rows]
    widths = [max(len(row[i]) for row in [headers] + body) for i in range(len(headers))]
    lines = [table.title, "-" * min(100, sum(widths) + 2 * len(widths))]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table_to_csv(table: TableData, path: Union[str, Path]) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([table.title])
        writer.writerow([""] + table.columns)
        for label, cells in table.rows:
            writer.writerow([label] + list(cells))


def sweep_health(records: Sequence) -> TableData:
    """Resilience accounting of a sweep: per (dataset, method) counts of
    ok / failed / timed-out records, how many needed retries, and the
    worst attempt count.

    Works on any record type carrying ``status`` / ``attempts`` fields
    (:class:`~repro.harness.RunRecord`,
    :class:`~repro.harness.ProcessWindowRecord`).  The metric tables
    silently skip non-``"ok"`` records; this table is where those cells
    stay visible.
    """
    grouped: Dict[str, List] = defaultdict(list)
    for rec in records:
        grouped[f"{rec.dataset}/{rec.method}"].append(rec)
    columns = ["records", "ok", "failed", "timeout", "retried", "max attempts"]
    rows: List = []
    for label in sorted(grouped):
        recs = grouped[label]
        statuses = [r.status for r in recs]
        rows.append(
            (
                label,
                [
                    float(len(recs)),
                    float(statuses.count("ok")),
                    float(statuses.count("failed")),
                    float(statuses.count("timeout")),
                    float(sum(1 for r in recs if r.attempts > 1)),
                    float(max((r.attempts for r in recs), default=0)),
                ],
            )
        )
    return TableData(title="Sweep health", columns=columns, rows=rows)


def render_series(series: Sequence[FigureSeries]) -> str:
    """Tabular text dump of figure series (step-indexed columns)."""
    buf = io.StringIO()
    n = max(len(s.values) for s in series)
    labels = [f"{s.label}[{s.style}]" for s in series]
    buf.write("step," + ",".join(labels) + "\n")
    for i in range(n):
        row = [str(i)]
        for s in series:
            row.append(f"{s.values[i]:.4f}" if i < len(s.values) else "")
        buf.write(",".join(row) + "\n")
    return buf.getvalue()


def ascii_plot(
    series: Sequence[FigureSeries], width: int = 72, height: int = 18
) -> str:
    """Quick terminal plot so convergence shapes are visible without
    matplotlib (which is unavailable offline)."""
    chars = "abcdefghijklmnopqrstuvwxyz"
    all_y = np.concatenate([s.values for s in series])
    all_x = np.concatenate([s.steps for s in series])
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    canvas = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        mark = chars[si % len(chars)]
        for x, y in zip(s.steps, s.values):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y_hi - y) / (y_hi - y_lo) * (height - 1))
            canvas[row][col] = mark
    lines = [f"{y_hi:+.2f} " + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 6 + "".join(row))
    lines.append(f"{y_lo:+.2f} " + "".join(canvas[-1]))
    legend = "  ".join(
        f"{chars[i % len(chars)]}={s.label}" for i, s in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
