"""Fault-tolerant harness execution: checkpoint journal, retry, watchdog.

``run_matrix(workers=N)`` shards deterministic cells over a
``ProcessPoolExecutor`` — and before this module existed, one OOM-killed
worker lost the whole sweep, and a crash at cell 199/200 of a paper-scale
run restarted from zero.  Because every cell is a *pure function* of
(method, clip, settings), all of that is recoverable:

* **Checkpoint journal** — completed cells are appended to a JSONL file
  as their futures finish, each line flushed and fsynced so a crash can
  tear at most the line being written (torn tails are ignored on load).
  Re-running with the same journal skips completed cells and reassembles
  the records in exactly the submission order, byte-identical to an
  uninterrupted run.
* **Retry with classification** — transient faults (a broken pool,
  ``MemoryError``, OS-level hiccups) are retried with exponential
  backoff and deterministic seeded jitter; a *deterministic* solver
  exception is retried once (to rule out environment noise) and then
  recorded as a structured failure record so the rest of the sweep
  finishes.
* **Watchdog timeouts** — a per-cell wall-clock budget.  A pool task
  cannot be cancelled, so an overdue cell costs a pool kill + rebuild;
  innocent in-flight cells are resubmitted without being charged an
  attempt.
* **Graceful degradation** — after ``max_pool_rebuilds`` pool breakages
  the executor falls back to serial in-process execution of the
  remaining cells (timeouts cannot be enforced in-process and are
  disabled there).

The executor is generic over the record type through a
:class:`RecordCodec`, so both the (method x clip) sweep and the
process-window report run through one resilient code path.  Worker
death, OOM and delays are *injectable* on demand via
:mod:`repro.utils.faultinject`, which is how the tests drive every path
deterministically.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Optional,
    Sequence,
    Union,
)

from .. import obs
from ..utils.seed import seeded_rng

__all__ = [
    "CellTimeout",
    "TRANSIENT_EXCEPTIONS",
    "classify_error",
    "RetryPolicy",
    "RecordCodec",
    "CellOutcome",
    "CellProgress",
    "CheckpointJournal",
    "JOURNAL_VERSION",
    "sweep_fingerprint",
    "execute_cells",
    "default_max_retries",
    "default_cell_timeout",
]

JOURNAL_VERSION = 1


# ----------------------------------------------------------------------
# env-var defaults (this module is a designated R2 raw reader)
# ----------------------------------------------------------------------
def default_max_retries() -> int:
    """Per-cell retry budget: ``REPRO_MAX_RETRIES`` (default 2)."""
    raw = os.environ.get("REPRO_MAX_RETRIES", "").strip()
    if not raw:
        return 2
    value = int(raw)
    if value < 0:
        raise ValueError(f"REPRO_MAX_RETRIES must be >= 0; got {value}")
    return value


def default_cell_timeout() -> float:
    """Per-cell wall-clock budget: ``REPRO_CELL_TIMEOUT`` seconds (0 = off)."""
    raw = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
    if not raw:
        return 0.0
    value = float(raw)
    if value < 0:
        raise ValueError(f"REPRO_CELL_TIMEOUT must be >= 0; got {value}")
    return value


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
class CellTimeout(RuntimeError):
    """Raised (synthetically, by the watchdog) for an overdue cell."""


#: Exception types worth retrying with the full budget: the fault lives
#: in the *environment* (dead worker, memory pressure, pipe hiccup), not
#: in the cell, so a retry on a fresh worker can genuinely succeed.
TRANSIENT_EXCEPTIONS = (BrokenExecutor, MemoryError, ConnectionError, EOFError, OSError)


def classify_error(exc: BaseException) -> str:
    """``"timeout"`` / ``"transient"`` / ``"deterministic"``.

    Deterministic exceptions (a solver ``ValueError``, a bad method
    name) will recur on every retry of a pure cell; they get one retry
    to rule out environmental coincidence, then a structured failure.
    """
    if isinstance(exc, CellTimeout):
        return "timeout"
    if isinstance(exc, TRANSIENT_EXCEPTIONS):
        return "transient"
    return "deterministic"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + exponential backoff with deterministic jitter."""

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    jitter_seed: int = 0

    def retries_for(self, kind: str) -> int:
        """Transient/timeout faults get the full budget; deterministic
        failures fail fast after at most one retry."""
        if kind == "deterministic":
            return min(1, self.max_retries)
        return self.max_retries

    def backoff(self, cell_index: int, attempt: int) -> float:
        """Delay before retry number ``attempt`` of ``cell_index``.

        The jitter is drawn from a generator seeded on (seed, cell,
        attempt): two runs of the same sweep sleep identically, but
        simultaneous retries of different cells still de-synchronize.
        """
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter <= 0.0:
            return base
        rng = seeded_rng(self.jitter_seed, "backoff", cell_index, attempt)
        return base * (1.0 + self.jitter * float(rng.random()))


# ----------------------------------------------------------------------
# record codec + outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordCodec:
    """How the executor serializes, revives and fabricates records.

    ``encode``/``decode`` must round-trip records *exactly* (python's
    ``json`` emits ``repr``-exact doubles, so float64 survives bitwise);
    ``failure`` builds the structured failure record(s) for a cell that
    exhausted its retries; ``stamp`` writes the bookkeeping fields
    (status / attempts / error) onto freshly computed records.
    """

    encode: Callable[[List[Any]], List[Dict[str, Any]]]
    decode: Callable[[List[Dict[str, Any]]], List[Any]]
    failure: Callable[[Any, str, str, int], List[Any]]
    stamp: Callable[[List[Any], str, int, str], None]


@dataclass(frozen=True)
class CellProgress:
    """One structured progress event from the executor.

    Callers used to receive bare label strings, which made it impossible
    to distinguish "cell started" from "cell finished" or to recover the
    wall-clock cost of a cell without re-deriving it.  Every progress
    emission is now one of these; ``str()`` renders the human-readable
    line the CLI prints, so string-minded consumers keep working.

    ``status`` is one of ``"start"`` / ``"ok"`` / ``"failed"`` /
    ``"timeout"`` / ``"retry"`` / ``"info"``; ``seconds`` is the
    measured wall clock of the attempt (terminal events only, ``None``
    when unknown); ``attempts`` counts attempts so far including the one
    being reported; ``error`` carries the abbreviated exception text
    (or the free-form message for ``"info"`` events).
    """

    label: str
    status: str
    seconds: Optional[float] = None
    attempts: int = 0
    error: str = ""

    @property
    def terminal(self) -> bool:
        return self.status in ("ok", "failed", "timeout")

    def __str__(self) -> str:
        if self.status == "info":
            return self.error or self.label
        if self.status == "start":
            return self.label
        tail = f" {self.seconds:.2f}s" if self.seconds is not None else ""
        if self.status == "ok":
            return f"{self.label} [ok{tail}]"
        if self.status == "retry":
            return f"{self.label} [retry {self.attempts} after {self.error}]"
        return f"{self.label} [{self.status}: {self.error}]"


@dataclass
class CellOutcome:
    """Terminal state of one sweep cell."""

    index: int
    label: str
    status: str  # "ok" | "failed" | "timeout"
    attempts: int
    records: List[Any] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# ----------------------------------------------------------------------
# the crash-safe journal
# ----------------------------------------------------------------------
def sweep_fingerprint(labels: Sequence[str]) -> str:
    """Stable identity of a sweep: the ordered cell labels, hashed."""
    h = sha256()
    for label in labels:
        h.update(label.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:16]


class CheckpointJournal:
    """Append-only JSONL checkpoint of completed sweep cells.

    Line 1 is a header carrying the journal version and the sweep
    fingerprint (hash of the ordered cell labels) — resuming against a
    *different* sweep raises instead of silently mixing records.  Every
    later line is one terminal cell outcome.  Appends are
    flush+fsync'ed, so a crash tears at most the line in progress; a
    torn final line is ignored on load.  Cells whose last entry is a
    failure are treated as *not done* — a resumed sweep re-runs them
    (the failure may have been environmental) and appends the fresh
    outcome, and the loader keeps the latest word per cell.

    The payload dialect is python's ``json`` (``NaN`` literals allowed),
    with doubles serialized via ``repr`` so records revive bitwise.
    """

    def __init__(self, path: Union[str, os.PathLike], labels: Sequence[str]):
        self.path = Path(path)
        self.labels = list(labels)
        self.fingerprint = sweep_fingerprint(self.labels)
        self.completed: Dict[int, Dict[str, Any]] = {}
        self._fh: Optional[IO[str]] = None
        had_header = self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        if not had_header:
            self._write_line(
                {
                    "journal": "repro-sweep",
                    "version": JOURNAL_VERSION,
                    "fingerprint": self.fingerprint,
                    "cells": len(self.labels),
                }
            )

    def _load(self) -> bool:
        if not self.path.exists() or self.path.stat().st_size == 0:
            return False
        lines = self.path.read_text(encoding="utf-8").splitlines()
        entries: List[Dict[str, Any]] = []
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append: ignore
                raise ValueError(
                    f"corrupt checkpoint journal {self.path} at line {i + 1}"
                )
        if not entries:
            return False
        header = entries[0]
        if not isinstance(header, dict) or header.get("journal") != "repro-sweep":
            raise ValueError(f"{self.path} is not a repro checkpoint journal")
        if header.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"journal version {header.get('version')} != {JOURNAL_VERSION}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"journal {self.path} belongs to a different sweep "
                f"(fingerprint {header.get('fingerprint')} != {self.fingerprint}); "
                "refusing to resume"
            )
        for entry in entries[1:]:
            idx = int(entry["cell"])
            if idx < 0 or idx >= len(self.labels):
                raise ValueError(f"journal cell index {idx} out of range")
            if entry.get("status") == "ok":
                self.completed[idx] = entry
            else:
                # a recorded failure is re-run on resume; forget any
                # stale success that can no longer be the latest word
                self.completed.pop(idx, None)
        return True

    def _write_line(self, obj: Dict[str, Any]) -> None:
        if self._fh is None:
            raise RuntimeError("journal is closed")
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, outcome: CellOutcome, codec: RecordCodec) -> None:
        """Journal one terminal cell outcome (atomic line append)."""
        self._write_line(
            {
                "cell": outcome.index,
                "label": outcome.label,
                "status": outcome.status,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "records": codec.encode(outcome.records),
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# the resilient executor
# ----------------------------------------------------------------------
def _stop_pool(pool: Optional[ProcessPoolExecutor], kill: bool) -> None:
    """Shut a pool down, optionally terminating its workers first (the
    only way to preempt a running cell)."""
    if pool is None:
        return
    if kill:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # a broken pool may refuse a clean shutdown
        pass


def _error_text(exc: BaseException, limit: int = 300) -> str:
    text = f"{type(exc).__name__}: {exc}"
    return text[:limit]


def execute_cells(
    cells: Sequence[Any],
    labels: Sequence[str],
    run_one: Callable[[Any], List[Any]],
    codec: RecordCodec,
    *,
    workers: int = 1,
    pool_factory: Optional[Callable[[], ProcessPoolExecutor]] = None,
    policy: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    progress: Optional[Callable[[CellProgress], None]] = None,
    max_pool_rebuilds: int = 3,
    poll_interval: float = 0.05,
) -> List[CellOutcome]:
    """Run every cell to a terminal outcome, in submission order.

    ``run_one`` must be picklable when ``workers > 1`` (it is shipped to
    the pool).  Outcomes come back indexed like ``cells`` regardless of
    completion order, so callers preserve the serial record order
    bit-for-bit.  ``cell_timeout`` of ``None`` resolves from
    ``REPRO_CELL_TIMEOUT`` (``0`` disables); ``policy`` of ``None``
    resolves ``max_retries`` from ``REPRO_MAX_RETRIES``.

    With ``checkpoint`` set, completed cells found in the journal are
    *not* re-run, and every cell reaching a terminal state is journaled
    the moment its future finishes.

    ``progress`` receives structured :class:`CellProgress` events: a
    ``"start"`` event when a cell is first attempted, a terminal
    ``"ok"`` / ``"failed"`` / ``"timeout"`` event carrying the measured
    wall seconds and attempt count, ``"retry"`` events in between, and
    ``"info"`` events for executor-level announcements.  ``str(event)``
    renders the human-readable line.
    """
    n = len(cells)
    if len(labels) != n:
        raise ValueError(f"{n} cells but {len(labels)} labels")
    if policy is None:
        policy = RetryPolicy(max_retries=default_max_retries())
    timeout = default_cell_timeout() if cell_timeout is None else float(cell_timeout)
    outcomes: List[Optional[CellOutcome]] = [None] * n
    attempts = [0] * n

    journal: Optional[CheckpointJournal] = None
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint, labels)
        for idx, entry in journal.completed.items():
            records = codec.decode(entry["records"])
            outcomes[idx] = CellOutcome(
                index=idx,
                label=labels[idx],
                status="ok",
                attempts=int(entry.get("attempts", 1)),
                records=records,
            )

    pending: List[int] = [i for i in range(n) if outcomes[i] is None]
    not_before: Dict[int, float] = {}

    def finish(outcome: CellOutcome) -> None:
        outcomes[outcome.index] = outcome
        if journal is not None:
            journal.append(outcome, codec)

    def finish_ok(
        idx: int,
        records: List[Any],
        announce: bool,
        seconds: Optional[float] = None,
    ) -> None:
        codec.stamp(records, "ok", attempts[idx], "")
        finish(CellOutcome(idx, labels[idx], "ok", attempts[idx], records))
        if progress and announce:
            progress(
                CellProgress(
                    labels[idx], "ok", seconds=seconds, attempts=attempts[idx]
                )
            )

    def handle_cell_error(
        idx: int, exc: BaseException, seconds: Optional[float] = None
    ) -> None:
        """Schedule a retry, or record the structured failure."""
        kind = classify_error(exc)
        err = _error_text(exc)
        if kind == "timeout":
            obs.counter("harness.timeouts").inc()
        if attempts[idx] <= policy.retries_for(kind):
            not_before[idx] = time.monotonic() + policy.backoff(idx, attempts[idx])
            pending.append(idx)
            obs.counter("harness.retries").inc()
            if progress:
                progress(
                    CellProgress(
                        labels[idx],
                        "retry",
                        seconds=seconds,
                        attempts=attempts[idx],
                        error=type(exc).__name__,
                    )
                )
            return
        status = "timeout" if kind == "timeout" else "failed"
        obs.counter("harness.failures").inc()
        records = codec.failure(cells[idx], status, err, attempts[idx])
        codec.stamp(records, status, attempts[idx], err)
        finish(CellOutcome(idx, labels[idx], status, attempts[idx], records, err))
        if progress:
            progress(
                CellProgress(
                    labels[idx],
                    status,
                    seconds=seconds,
                    attempts=attempts[idx],
                    error=err,
                )
            )

    def run_serial(enforce_backoff: bool = True) -> None:
        """In-process execution of everything still pending (timeouts
        cannot be enforced against the calling process)."""
        while pending:
            pending.sort()
            idx = pending.pop(0)
            if enforce_backoff:
                delay = not_before.get(idx, 0.0) - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            attempts[idx] += 1
            if progress and attempts[idx] == 1:
                progress(CellProgress(labels[idx], "start", attempts=1))
            t0 = time.monotonic()
            try:
                records = run_one(cells[idx])
            except Exception as exc:
                handle_cell_error(idx, exc, seconds=time.monotonic() - t0)
            else:
                finish_ok(idx, records, True, seconds=time.monotonic() - t0)

    try:
        if workers <= 1 or pool_factory is None:
            run_serial()
        else:
            _run_parallel(
                cells,
                labels,
                run_one,
                pool_factory=pool_factory,
                workers=workers,
                timeout=timeout,
                pending=pending,
                not_before=not_before,
                attempts=attempts,
                outcomes=outcomes,
                finish_ok=finish_ok,
                handle_cell_error=handle_cell_error,
                run_serial=run_serial,
                progress=progress,
                max_pool_rebuilds=max_pool_rebuilds,
                poll_interval=poll_interval,
            )
    finally:
        if journal is not None:
            journal.close()
    final = [o for o in outcomes if o is not None]
    if len(final) != n:
        raise RuntimeError("executor finished with unresolved cells")
    return final


def _run_parallel(
    cells: Sequence[Any],
    labels: Sequence[str],
    run_one: Callable[[Any], List[Any]],
    *,
    pool_factory: Callable[[], ProcessPoolExecutor],
    workers: int,
    timeout: float,
    pending: List[int],
    not_before: Dict[int, float],
    attempts: List[int],
    outcomes: List[Optional[CellOutcome]],
    finish_ok: Callable[..., None],
    handle_cell_error: Callable[..., None],
    run_serial: Callable[[], None],
    progress: Optional[Callable[[CellProgress], None]],
    max_pool_rebuilds: int,
    poll_interval: float,
) -> None:
    """Pool scheduling loop: bounded in-flight window, watchdog, rebuilds.

    At most ``workers`` cells are in flight, so a submitted cell starts
    (nearly) immediately and its wall-clock deadline can be measured
    from submission.  Pool breakage does not charge an attempt to the
    in-flight victims — the killer is unidentifiable — and is bounded by
    ``max_pool_rebuilds``, after which execution degrades to serial.
    """
    in_flight: Dict[Future, int] = {}
    deadlines: Dict[Future, float] = {}
    started: Dict[Future, float] = {}
    pool: Optional[ProcessPoolExecutor] = None
    rebuilds = 0

    def requeue_in_flight() -> None:
        """Victims of a pool kill/breakage go back unattempted."""
        for fut, idx in in_flight.items():
            attempts[idx] -= 1
            pending.append(idx)
        in_flight.clear()
        deadlines.clear()
        started.clear()

    def pop_ready(now: float) -> Optional[int]:
        pending.sort()
        for i, idx in enumerate(pending):
            if not_before.get(idx, 0.0) <= now:
                return pending.pop(i)
        return None

    try:
        while pending or in_flight:
            now = time.monotonic()
            # -- fill the in-flight window ------------------------------
            broke = False
            while len(in_flight) < workers:
                idx = pop_ready(now)
                if idx is None:
                    break
                if pool is None:
                    pool = pool_factory()
                attempts[idx] += 1
                try:
                    fut = pool.submit(run_one, cells[idx])
                except BrokenExecutor:
                    attempts[idx] -= 1
                    pending.append(idx)
                    broke = True
                    break
                in_flight[fut] = idx
                started[fut] = time.monotonic()
                if timeout > 0:
                    deadlines[fut] = time.monotonic() + timeout
                if progress and attempts[idx] == 1:
                    progress(CellProgress(labels[idx], "start", attempts=1))
            if broke:
                requeue_in_flight()
                _stop_pool(pool, kill=False)
                pool = None
                rebuilds += 1
                obs.counter("harness.pool_rebuilds").inc()
                if rebuilds > max_pool_rebuilds:
                    break
                continue
            if not in_flight:
                if not pending:
                    break
                soonest = min(not_before.get(i, 0.0) for i in pending)
                time.sleep(max(0.0, soonest - time.monotonic()))
                continue
            # -- wait for completions ----------------------------------
            wait_for = poll_interval
            if deadlines:
                wait_for = min(
                    wait_for, max(0.0, min(deadlines.values()) - time.monotonic())
                )
            done, _ = wait(
                set(in_flight), timeout=wait_for, return_when=FIRST_COMPLETED
            )
            for fut in done:
                idx = in_flight.pop(fut)
                deadlines.pop(fut, None)
                t_start = started.pop(fut, None)
                elapsed = (
                    None if t_start is None else time.monotonic() - t_start
                )
                try:
                    records = fut.result()
                except BrokenExecutor:
                    # a worker died; this future is a victim or the
                    # killer — nobody can tell, so nobody is charged
                    attempts[idx] -= 1
                    pending.append(idx)
                    broke = True
                except Exception as exc:
                    handle_cell_error(idx, exc, seconds=elapsed)
                else:
                    finish_ok(idx, records, True, seconds=elapsed)
            if broke:
                requeue_in_flight()
                _stop_pool(pool, kill=False)
                pool = None
                rebuilds += 1
                obs.counter("harness.pool_rebuilds").inc()
                if rebuilds > max_pool_rebuilds:
                    break
                continue
            # -- watchdog: overdue cells cost a pool kill ---------------
            now = time.monotonic()
            overdue = [fut for fut, dl in deadlines.items() if dl <= now]
            if overdue:
                for fut in overdue:
                    idx = in_flight.pop(fut)
                    t_start = started.pop(fut, None)
                    deadlines.pop(fut, None)
                    handle_cell_error(
                        idx,
                        CellTimeout(
                            f"cell {labels[idx]!r} exceeded the "
                            f"{timeout:g}s wall-clock budget"
                        ),
                        seconds=(
                            None if t_start is None else now - t_start
                        ),
                    )
                requeue_in_flight()
                _stop_pool(pool, kill=True)
                pool = None
                obs.counter("harness.pool_rebuilds").inc()
                # a deliberate watchdog kill is not pool *failure*; it
                # does not count toward the degradation limit
    finally:
        _stop_pool(pool, kill=False)
    if pending:
        if progress:
            progress(
                CellProgress(
                    "",
                    "info",
                    error=(
                        f"[resilience] pool broke {rebuilds}x; degrading to "
                        f"serial in-process execution for "
                        f"{len(pending)} remaining cells"
                    ),
                )
            )
        run_serial()
