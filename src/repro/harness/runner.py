"""Experiment runner: (method x clip) -> metric records.

This is the engine behind every table/figure reproduction: it rasterizes
a benchmark clip, runs one of the eight evaluated methods under a common
iteration budget, evaluates the final (source, mask) pair under the
*lossless Abbe* model (the common judge, as in the paper's evaluation),
and returns L2 / PVB / EPE / runtime records.

Two scale axes on top of the per-cell engine:

* **Joint multi-clip mode** (:func:`run_joint`, ``run_matrix(...,
  joint=True)``) — one solve per (method, dataset) optimizing a shared
  source against the whole clip stack through the fused batched forward,
  then judging every tile separately.
* **Process-parallel sweeps** (``run_matrix(..., workers=N)``) — the
  (method x clip) cells are sharded over a ``ProcessPoolExecutor``.
  Workers warm the optics cache once at start-up, every cell is a pure
  function of (method, clip, settings), and records are collected in
  submission order, so a parallel sweep returns the records in exactly
  the serial order with identical numeric content.

Parallel sweeps run through the fault-tolerant executor of
:mod:`repro.harness.resilience`: a dead worker costs a pool rebuild and
a resubmission, not the sweep; a deterministic solver failure becomes a
structured ``status="failed"`` record instead of an abort; and
``run_matrix(..., checkpoint=path)`` journals completed cells so an
interrupted sweep resumes where it crashed with byte-identical record
order.  Because cells are pure, retried and resumed cells reproduce
their records bitwise.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import autodiff as ad
from ..baselines import MultiLevelILT, NILTBaseline
from ..layouts import Clip, Dataset, tile_stack
from ..metrics import epe_report, l2_error_nm2, pvb_nm2
from ..optics import OpticalConfig, ProcessWindow, SourceGrid, annular
from ..smo import (
    AMSMO,
    AbbeMO,
    AbbeSMOObjective,
    BatchedSMOObjective,
    BiSMO,
    HopkinsMO,
    SMOResult,
    init_theta_source,
)
from .. import obs
from ..utils.faultinject import fault_point
from .resilience import CellProgress, RecordCodec, RetryPolicy, execute_cells

__all__ = [
    "RunRecord",
    "RunSettings",
    "METHOD_ORDER",
    "run_clip",
    "run_joint",
    "run_matrix",
    "batched_objective",
]

#: Column order of Table 3 (left to right).
METHOD_ORDER = (
    "NILT",
    "DAC23-MILT",
    "Abbe-MO",
    "AM-SMO(Abbe-Hopkins)",
    "AM-SMO(Abbe-Abbe)",
    "BiSMO-FD",
    "BiSMO-CG",
    "BiSMO-NMN",
)


@dataclass(frozen=True)
class RunSettings:
    """Common experimental knobs shared by a whole table/figure run."""

    config: OpticalConfig
    iterations: int = 30
    lr: float = 0.1
    optimizer: str = "adam"
    num_kernels: Optional[int] = None  # None -> config.socs_terms
    unroll_steps: int = 3
    terms: int = 5
    cg_damping: float = 1.0
    hvp_mode: str = "exact"
    #: Optional robust dose x aberration condition axis: when set, every
    #: dispatched solver optimizes the robust corner loss across it —
    #: the window's corners may carry arbitrary Zernike pupil
    #: aberrations and per-corner resist thresholds — and the
    #: process-window report judges the same corners.  ``robust`` picks
    #: the reduction (``"sum"`` / ``"max"`` / ``"adaptive"`` minimax
    #: ascent); ``robust_tau`` is the LSE temperature or EG rate.
    process_window: Optional["ProcessWindow"] = None
    robust: str = "sum"
    robust_tau: float = 1.0

    @classmethod
    def preset(cls, scale: str = "default", **overrides) -> "RunSettings":
        return cls(config=OpticalConfig.preset(scale), **overrides)


@dataclass
class RunRecord:
    """One (method, clip) evaluation.

    ``status`` is ``"ok"`` for a completed evaluation; a cell that
    exhausted its retry budget is recorded as ``"failed"`` (solver
    exception, details in ``error``) or ``"timeout"`` with NaN metrics,
    so one broken cell no longer aborts a whole sweep.  ``attempts``
    counts executions of the cell (1 = first try succeeded).  Table
    builders skip non-``"ok"`` records.
    """

    method: str
    dataset: str
    clip: str
    l2_nm2: float
    pvb_nm2: float
    epe_violations: int
    epe_mean_nm: float
    runtime_s: float
    final_loss: float
    losses: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))
    status: str = "ok"
    error: str = ""
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict[str, Any]:
        """Plain-``json`` form for the checkpoint journal.

        Python's ``json`` writes doubles via ``repr``, so every float —
        the loss trace included — revives bitwise in
        :meth:`from_json`.
        """
        return {
            "method": self.method,
            "dataset": self.dataset,
            "clip": self.clip,
            "l2_nm2": self.l2_nm2,
            "pvb_nm2": self.pvb_nm2,
            "epe_violations": self.epe_violations,
            "epe_mean_nm": self.epe_mean_nm,
            "runtime_s": self.runtime_s,
            "final_loss": self.final_loss,
            "losses": np.asarray(self.losses, dtype=np.float64).tolist(),
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            method=str(data["method"]),
            dataset=str(data["dataset"]),
            clip=str(data["clip"]),
            l2_nm2=float(data["l2_nm2"]),
            pvb_nm2=float(data["pvb_nm2"]),
            epe_violations=int(data["epe_violations"]),
            epe_mean_nm=float(data["epe_mean_nm"]),
            runtime_s=float(data["runtime_s"]),
            final_loss=float(data["final_loss"]),
            losses=np.asarray(data["losses"], dtype=np.float64),
            status=str(data.get("status", "ok")),
            error=str(data.get("error", "")),
            attempts=int(data.get("attempts", 1)),
        )


def _target_image(clip: Clip, config: OpticalConfig) -> np.ndarray:
    return tile_stack([clip], config)[0]


def batched_objective(
    clips: Sequence[Clip], settings: RunSettings
) -> BatchedSMOObjective:
    """Batched SMO objective over a clip suite, sharing the cached engine.

    One objective, one ``(B, N, N)`` target stack, one fused forward per
    loss evaluation — the harness entry point for multi-tile runs.
    """
    targets = tile_stack(clips, settings.config)
    return BatchedSMOObjective(settings.config, targets)


def _annular_source(config: OpticalConfig) -> np.ndarray:
    grid = SourceGrid.from_config(config)
    return annular(grid, config.sigma_out, config.sigma_in)


def _dispatch(
    method: str, settings: RunSettings, target: np.ndarray, source: np.ndarray
) -> SMOResult:
    cfg = settings.config
    iters = settings.iterations
    common = dict(lr=settings.lr, optimizer=settings.optimizer)
    robust = dict(
        process_window=settings.process_window,
        robust=settings.robust,
        robust_tau=settings.robust_tau,
    )
    if method == "NILT":
        return NILTBaseline(
            cfg, target, source, num_kernels=settings.num_kernels,
            **common, **robust,
        ).run(iterations=iters)
    if method == "DAC23-MILT":
        return MultiLevelILT(
            cfg, target, source, num_kernels=settings.num_kernels,
            **common, **robust,
        ).run(iterations=iters)
    if method == "Abbe-MO":
        return AbbeMO(cfg, target, source, **common, **robust).run(
            iterations=iters
        )
    if method == "Hopkins-MO":
        return HopkinsMO(
            cfg, target, source, num_kernels=settings.num_kernels,
            **common, **robust,
        ).run(iterations=iters)
    if method.startswith("AM-SMO"):
        mode = "abbe-hopkins" if "Hopkins" in method else "abbe-abbe"
        # Budget normalization: every method gets the same number of MASK
        # updates (the quantity that dominates final quality).  AM-SMO
        # additionally spends SO steps and TCC rebuilds per round — the
        # alternation overhead that Table 4 charges to its TAT.
        so_steps, mo_steps = 5, 10
        rounds = max(1, iters // mo_steps)
        return AMSMO(
            cfg,
            target,
            mode=mode,
            rounds=rounds,
            so_steps=so_steps,
            mo_steps=mo_steps,
            lr_so=settings.lr,
            lr_mo=settings.lr,
            mo_optimizer=settings.optimizer,
            num_kernels=settings.num_kernels,
            **robust,
        ).run(source)
    if method.startswith("BiSMO"):
        kind = method.split("-", 1)[1].lower()
        return BiSMO(
            cfg,
            target,
            method=kind,
            unroll_steps=settings.unroll_steps,
            terms=settings.terms,
            inner_lr=settings.lr,
            outer_lr=settings.lr,
            outer_optimizer=settings.optimizer,
            hvp_mode=settings.hvp_mode,
            damping=settings.cg_damping if kind == "cg" else 0.0,
            **robust,
        ).run(source, iterations=iters)
    raise KeyError(f"unknown method {method!r}")


def evaluate_final(
    result: SMOResult,
    clip: Clip,
    settings: RunSettings,
    source_fallback: Optional[np.ndarray] = None,
    objective: Optional[AbbeSMOObjective] = None,
    binary_mask: bool = True,
) -> Dict[str, float]:
    """Judge a finished run's (mask, source) under the lossless Abbe model.

    ``binary_mask=True`` hard-thresholds the optimized mask before the
    judging simulation: manufactured masks are binary (Section 3.1), so
    metrics are reported for the manufacturable mask, not the sigmoid
    relaxation.
    """
    cfg = settings.config
    target = _target_image(clip, cfg)
    # The default judge engine comes from the optics cache: one pupil
    # stack for every evaluation in a sweep, however many objectives exist.
    objective = objective or AbbeSMOObjective(cfg, target)
    theta_j = result.theta_j
    if theta_j is None:
        src = source_fallback if source_fallback is not None else _annular_source(cfg)
        theta_j = init_theta_source(src, cfg)
    theta_m = result.theta_m
    if binary_mask:
        # +/-1e3 drives the sigmoid to exactly 0/1 in float64.
        theta_m = np.where(theta_m >= 0.0, 1e3, -1e3)
    images = objective.images(theta_j, theta_m)
    l2 = l2_error_nm2(images["resist"], target, cfg)
    pvb = pvb_nm2(images["resist_min"], images["resist_max"], cfg)
    epe = epe_report(images["resist"], clip.rects, cfg)
    return {
        "l2_nm2": l2,
        "pvb_nm2": pvb,
        "epe_violations": epe.violations,
        "epe_mean_nm": epe.mean_abs_nm,
    }


def run_clip(
    method: str,
    clip: Clip,
    settings: RunSettings,
    dataset_name: str = "",
    objective: Optional[AbbeSMOObjective] = None,
) -> RunRecord:
    """Run one method on one clip and evaluate all paper metrics."""
    cfg = settings.config
    target = _target_image(clip, cfg)
    source = _annular_source(cfg)
    start = time.perf_counter()
    result = _dispatch(method, settings, target, source)
    runtime = time.perf_counter() - start
    metrics = evaluate_final(result, clip, settings, source, objective)
    return RunRecord(
        method=method,
        dataset=dataset_name,
        clip=clip.name,
        l2_nm2=metrics["l2_nm2"],
        pvb_nm2=metrics["pvb_nm2"],
        epe_violations=int(metrics["epe_violations"]),
        epe_mean_nm=metrics["epe_mean_nm"],
        runtime_s=runtime,
        final_loss=result.final_loss,
        losses=result.losses,
    )


def run_joint(
    method: str,
    clips: Sequence[Clip],
    settings: RunSettings,
    dataset_name: str = "",
) -> List[RunRecord]:
    """Jointly optimize one method over a whole clip suite.

    One solve: a shared source (``theta_J``) against the ``(B, N, N)``
    tile stack (per-clip ``theta_M``), evaluated through the engines'
    fused batched forward.  Every clip still gets its own
    :class:`RunRecord` — metrics come from judging that tile's final
    (mask, source) under the lossless Abbe model, the loss trace is the
    solver's per-tile loss history, and ``runtime_s`` is the joint
    wall-clock amortized over the batch (the per-clip share).
    """
    cfg = settings.config
    clips = list(clips)
    targets = tile_stack(clips, cfg)
    source = _annular_source(cfg)
    start = time.perf_counter()
    result = _dispatch(method, settings, targets, source)
    runtime = time.perf_counter() - start
    try:
        tile_matrix: Optional[np.ndarray] = result.tile_loss_matrix()  # (T, B)
    except ValueError:
        tile_matrix = None
    records: List[RunRecord] = []
    for i, clip in enumerate(clips):
        theta_m = result.theta_m[i] if result.theta_m.ndim == 3 else result.theta_m
        tile_result = SMOResult(
            method=result.method,
            theta_m=theta_m,
            theta_j=result.theta_j,
            history=result.history,
            runtime_seconds=result.runtime_seconds,
        )
        metrics = evaluate_final(tile_result, clip, settings, source)
        losses = tile_matrix[:, i] if tile_matrix is not None else result.losses
        records.append(
            RunRecord(
                method=method,
                dataset=dataset_name,
                clip=clip.name,
                l2_nm2=metrics["l2_nm2"],
                pvb_nm2=metrics["pvb_nm2"],
                epe_violations=int(metrics["epe_violations"]),
                epe_mean_nm=metrics["epe_mean_nm"],
                runtime_s=runtime / len(clips),
                final_loss=float(losses[-1]),
                losses=losses,
            )
        )
    return records


# One sweep cell: ("clip", method, dataset_name, clip) or
# ("joint", method, dataset_name, (clip, ...)).  Plain tuples so cells
# pickle cleanly across the process pool.
_Cell = Tuple[str, str, str, object]


def _cell_label(cell: _Cell) -> str:
    kind, method, ds_name, payload = cell
    if kind == "joint":
        return f"{ds_name}/joint[{len(payload)}]/{method}"
    return f"{ds_name}/{payload.name}/{method}"


def _run_cell(cell: _Cell, settings: RunSettings) -> List[RunRecord]:
    """Execute one sweep cell (also the process-pool task body)."""
    fault_point("harness.run_cell")
    kind, method, ds_name, payload = cell
    with obs.cell_scope(_cell_label(cell)):
        if kind == "joint":
            return run_joint(method, list(payload), settings, ds_name)
        return [run_clip(method, payload, settings, ds_name)]


def _cell_clip_names(cell: _Cell) -> List[str]:
    """Clip names a cell's records will carry (one per record)."""
    kind, _method, _ds_name, payload = cell
    if kind == "joint":
        return [clip.name for clip in payload]
    return [payload.name]


def _failure_records(
    cell: _Cell, status: str, error: str, attempts: int
) -> List[RunRecord]:
    """Structured NaN-metric records for a cell that exhausted retries."""
    _kind, method, ds_name, _payload = cell
    nan = math.nan
    return [
        RunRecord(
            method=method,
            dataset=ds_name,
            clip=clip_name,
            l2_nm2=nan,
            pvb_nm2=nan,
            epe_violations=0,
            epe_mean_nm=nan,
            runtime_s=nan,
            final_loss=nan,
            losses=np.empty(0),
            status=status,
            error=error,
            attempts=attempts,
        )
        for clip_name in _cell_clip_names(cell)
    ]


def _stamp_records(
    records: List[RunRecord], status: str, attempts: int, error: str
) -> None:
    for rec in records:
        rec.status = status
        rec.attempts = attempts
        rec.error = error


#: Codec handing :class:`RunRecord` lists to the resilient executor.
RUN_RECORD_CODEC = RecordCodec(
    encode=lambda records: [r.to_json() for r in records],
    decode=lambda payload: [RunRecord.from_json(d) for d in payload],
    failure=_failure_records,
    stamp=_stamp_records,
)


def _worker_warmup(
    config: OpticalConfig,
    worker_budget: Optional[int] = None,
    process_window: Optional[ProcessWindow] = None,
    obs_config: Optional[Dict[str, Any]] = None,
) -> None:
    """Process-pool initializer: pre-build the shared optics cache and
    hand each worker its share of the unified thread budget.

    With N worker processes each defaulting to one pocketfft thread per
    CPU, a sharded sweep would oversubscribe every core N-fold; the
    parent hands each worker ``cpu // N`` as its *budget*, and
    :mod:`repro.optics.fftlib` splits that between condition-axis
    threads and per-FFT pocketfft threads (``condition_workers x
    per-FFT workers <= budget``).  Results are bitwise identical for
    any split, so the sweep's byte-identical-records guarantee is
    unaffected.
    """
    fault_point("harness.worker_warmup")
    from ..optics import cache, fftlib

    if obs_config is not None:
        # The parent's tracing/metrics switches don't survive the fork/
        # spawn boundary as module state; re-apply them so every worker
        # writes its own telemetry shard for the parent to merge.
        obs.apply_config(obs_config)
    if worker_budget is not None:
        fftlib.set_worker_budget(worker_budget)
    cache.warmup(config, process_window=process_window)
    # Park the warmup spans in a dedicated shard record; otherwise they
    # would be swept into this worker's first cell and break the
    # worker-count-invariant canonical trace.
    obs.flush_shard()


def _matrix_cells(
    datasets: Sequence[Dataset],
    methods: Sequence[str],
    clips_per_dataset: Optional[int],
    joint: bool,
) -> List[_Cell]:
    cells: List[_Cell] = []
    for ds in datasets:
        clips = list(ds)[: clips_per_dataset or len(ds)]
        if joint:
            for method in methods:
                cells.append(("joint", method, ds.name, tuple(clips)))
        else:
            for clip in clips:
                for method in methods:
                    cells.append(("clip", method, ds.name, clip))
    return cells


def run_matrix(
    datasets: Sequence[Dataset],
    settings: RunSettings,
    methods: Sequence[str] = METHOD_ORDER,
    clips_per_dataset: Optional[int] = None,
    progress: Optional[Callable[[CellProgress], None]] = None,
    workers: int = 1,
    joint: bool = False,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    cell_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
) -> List[RunRecord]:
    """Full (method x dataset x clip) sweep — the shared input of
    Table 3 and Table 4.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (default) runs in-process;
        ``N > 1`` shards the cells over a ``ProcessPoolExecutor`` whose
        workers warm the optics cache once at start-up.  Record order
        and numeric content are identical to the serial sweep (cells are
        deterministic and reassembled in submission order); only
        wall-clock timing fields differ run-to-run.  Parallel sweeps are
        fault tolerant: dead workers are replaced and their cells
        resubmitted, and a cell whose retries are exhausted yields a
        structured ``status="failed"``/``"timeout"`` record instead of
        aborting the sweep.
    joint:
        Optimize each dataset's clips jointly (one shared source per
        (method, dataset) cell, see :func:`run_joint`) instead of one
        solve per clip.
    checkpoint:
        Path of a JSONL checkpoint journal.  Completed cells are
        appended as their futures finish; re-running with the same path
        skips them and reproduces the full record list in the original
        order, byte-identical to an uninterrupted run.
    cell_timeout:
        Per-cell wall-clock budget in seconds (parallel sweeps only; an
        in-process cell cannot be preempted).  ``None`` defers to
        ``REPRO_CELL_TIMEOUT``; ``0`` disables.
    max_retries:
        Per-cell retry budget for transient faults.  ``None`` defers to
        ``REPRO_MAX_RETRIES`` (default 2).  Deterministic solver
        exceptions always fail fast after at most one retry.

    A serial sweep with none of the resilience arguments set keeps the
    legacy contract: the first cell exception propagates.

    ``progress`` receives structured
    :class:`~repro.harness.resilience.CellProgress` events — a
    ``"start"`` when a cell begins and a terminal event carrying the
    measured wall seconds and attempt count when it ends (``str(event)``
    renders the printable line).
    """
    cells = _matrix_cells(datasets, methods, clips_per_dataset, joint)
    resilient = (
        workers > 1
        or checkpoint is not None
        or cell_timeout is not None
        or max_retries is not None
    )
    if not resilient:
        records: List[RunRecord] = []
        for cell in cells:
            label = _cell_label(cell)
            if progress:
                progress(CellProgress(label, "start", attempts=1))
            t0 = time.monotonic()
            cell_records = _run_cell(cell, settings)
            if progress:
                progress(
                    CellProgress(
                        label, "ok", seconds=time.monotonic() - t0, attempts=1
                    )
                )
            records.extend(cell_records)
        return records

    worker_budget = max(1, (os.cpu_count() or 1) // max(1, workers))

    def pool_factory() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_warmup,
            initargs=(
                settings.config,
                worker_budget,
                settings.process_window,
                obs.export_config(),
            ),
        )

    policy = None if max_retries is None else RetryPolicy(max_retries=max_retries)
    outcomes = execute_cells(
        cells,
        [_cell_label(cell) for cell in cells],
        partial(_run_cell, settings=settings),
        RUN_RECORD_CODEC,
        workers=workers,
        pool_factory=pool_factory if workers > 1 else None,
        policy=policy,
        cell_timeout=cell_timeout,
        checkpoint=checkpoint,
        progress=progress,
    )
    return [rec for outcome in outcomes for rec in outcome.records]
