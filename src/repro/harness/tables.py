"""Table 3 / Table 4 row generation from run records.

Table 3 reports per-dataset average L2 and PVB for the eight methods
plus a final "Ratio" row (every method's average normalized to
BiSMO-NMN).  Table 4 reports average EPE violations and turn-around
time with the same normalization.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .runner import METHOD_ORDER, RunRecord

__all__ = ["TableData", "table3", "table4"]

_REFERENCE_METHOD = "BiSMO-NMN"


@dataclass
class TableData:
    """A rendered-ready table: header, rows (label + cells), caption."""

    title: str
    columns: List[str]
    rows: List[Tuple[str, List[float]]]

    def column(self, name: str) -> List[float]:
        idx = self.columns.index(name)
        return [cells[idx] for _, cells in self.rows]

    def row(self, label: str) -> List[float]:
        for lbl, cells in self.rows:
            if lbl == label:
                return cells
        raise KeyError(label)


def _group(records: Sequence[RunRecord]) -> Dict[str, Dict[str, List[RunRecord]]]:
    """records -> {dataset: {method: [records]}}"""
    out: Dict[str, Dict[str, List[RunRecord]]] = defaultdict(lambda: defaultdict(list))
    for rec in records:
        out[rec.dataset][rec.method].append(rec)
    return out


def _methods_present(records: Sequence[RunRecord]) -> List[str]:
    present = {r.method for r in records}
    ordered = [m for m in METHOD_ORDER if m in present]
    ordered += sorted(present - set(ordered))
    return ordered


def _ok_only(records: Sequence[RunRecord]) -> List[RunRecord]:
    """Drop failure/timeout records: their NaN metrics would poison the
    table means.  Failures surface in the sweep-health table instead
    (:func:`repro.harness.report.sweep_health`)."""
    return [r for r in records if r.status == "ok"]


def table3(records: Sequence[RunRecord]) -> TableData:
    """Per-dataset average L2 / PVB (nm^2) + Average + Ratio rows."""
    records = _ok_only(records)
    grouped = _group(records)
    methods = _methods_present(records)
    columns: List[str] = []
    for m in methods:
        columns += [f"{m} L2", f"{m} PVB"]
    rows: List[Tuple[str, List[float]]] = []
    per_method_means: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
    for ds_name in sorted(grouped):
        cells: List[float] = []
        for m in methods:
            recs = grouped[ds_name].get(m, [])
            l2 = float(np.mean([r.l2_nm2 for r in recs])) if recs else float("nan")
            pvb = float(np.mean([r.pvb_nm2 for r in recs])) if recs else float("nan")
            cells += [l2, pvb]
            per_method_means[m].append((l2, pvb))
        rows.append((ds_name, cells))
    avg_cells: List[float] = []
    for m in methods:
        pairs = per_method_means[m]
        avg_cells += [
            float(np.nanmean([p[0] for p in pairs])),
            float(np.nanmean([p[1] for p in pairs])),
        ]
    rows.append(("Average", avg_cells))
    ref = _REFERENCE_METHOD if _REFERENCE_METHOD in methods else methods[-1]
    ref_idx = methods.index(ref)
    ref_l2, ref_pvb = avg_cells[2 * ref_idx], avg_cells[2 * ref_idx + 1]
    ratio_cells: List[float] = []
    for i, _ in enumerate(methods):
        ratio_cells += [
            avg_cells[2 * i] / ref_l2 if ref_l2 else float("nan"),
            avg_cells[2 * i + 1] / ref_pvb if ref_pvb else float("nan"),
        ]
    rows.append(("Ratio", ratio_cells))
    return TableData(
        title="Table 3: L2 / PVB (nm^2) comparison",
        columns=columns,
        rows=rows,
    )


def table4(records: Sequence[RunRecord]) -> TableData:
    """Average EPE violations and turn-around time (s) + ratios."""
    records = _ok_only(records)
    methods = _methods_present(records)
    by_method: Dict[str, List[RunRecord]] = defaultdict(list)
    for rec in records:
        by_method[rec.method].append(rec)
    epe = [float(np.mean([r.epe_violations for r in by_method[m]])) for m in methods]
    tat = [float(np.mean([r.runtime_s for r in by_method[m]])) for m in methods]
    ref = _REFERENCE_METHOD if _REFERENCE_METHOD in methods else methods[-1]
    ridx = methods.index(ref)
    epe_ref = epe[ridx] or 1.0
    tat_ref = tat[ridx] or 1.0
    rows = [
        ("EPE avg.", epe),
        ("EPE ratio", [e / epe_ref for e in epe]),
        ("TAT avg. (s)", tat),
        ("TAT ratio", [t / tat_ref for t in tat]),
    ]
    return TableData(
        title="Table 4: EPE and runtime comparison",
        columns=list(methods),
        rows=rows,
    )
