"""Benchmark layout substrate: GLP clip I/O, synthetic clip generation,
and dataset registries matching Table 2 of the paper."""

from .glp import dumps, loads, read_glp, write_glp
from .synth import ClipStyle, clip_area, generate_clip
from .datasets import (
    DATASET_NAMES,
    dataset_from_glp_dir,
    Clip,
    Dataset,
    dataset_by_name,
    iccad13,
    iccad_l,
    ispd19,
    tile_stack,
)

__all__ = [
    "read_glp",
    "write_glp",
    "loads",
    "dumps",
    "ClipStyle",
    "generate_clip",
    "clip_area",
    "Clip",
    "Dataset",
    "tile_stack",
    "iccad13",
    "iccad_l",
    "ispd19",
    "dataset_by_name",
    "dataset_from_glp_dir",
    "DATASET_NAMES",
]
