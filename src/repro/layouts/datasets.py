"""Benchmark dataset registries mirroring Table 2 of the paper.

=========  ============ ==========  ======  =========  =======
Dataset    Avg area     Test num.   Layer   CD         Tile
=========  ============ ==========  ======  =========  =======
ICCAD13    202655 nm^2  10          Metal   32 nm      4 um^2
ICCAD-L    475571 nm^2  10          Metal   32 nm      4 um^2
ISPD19     698743 nm^2  100         M+Via   28 nm      4 um^2
=========  ============ ==========  ======  =========  =======

Clips are generated deterministically (see :mod:`repro.layouts.synth`);
``Clip`` bundles the target rectangles with the metadata the harness
needs (CD, tile size, name).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..geometry import GridSpec, Rect, rasterize
from .synth import ClipStyle, clip_area, generate_clip

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from ..optics.config import OpticalConfig

__all__ = [
    "Clip",
    "Dataset",
    "tile_stack",
    "iccad13",
    "iccad_l",
    "ispd19",
    "dataset_by_name",
    "dataset_from_glp_dir",
    "DATASET_NAMES",
]


@dataclass(frozen=True)
class Clip:
    """One benchmark tile: target pattern + metadata."""

    name: str
    rects: Tuple[Rect, ...]
    cd_nm: int
    tile_nm: int

    @property
    def area_nm2(self) -> int:
        return clip_area(self.rects)


@dataclass(frozen=True)
class Dataset:
    """A named collection of clips (one row of Table 2)."""

    name: str
    clips: Tuple[Clip, ...]
    style: ClipStyle

    def __len__(self) -> int:
        return len(self.clips)

    def __iter__(self):
        return iter(self.clips)

    def __getitem__(self, idx: int) -> Clip:
        return self.clips[idx]

    @property
    def average_area_nm2(self) -> float:
        return sum(c.area_nm2 for c in self.clips) / len(self.clips)

    def tile_stack(self, config: "OpticalConfig") -> np.ndarray:
        """Rasterize every clip into one ``(B, N, N)`` target batch."""
        return tile_stack(self.clips, config)


def tile_stack(clips: Sequence[Clip], config: "OpticalConfig") -> np.ndarray:
    """Rasterize ``clips`` into a ``(B, N, N)`` binary target stack.

    This is the batched-run companion of the harness' per-clip target
    rasterization: the result feeds directly into
    :class:`repro.smo.BatchedSMOObjective` and the engines' multi-tile
    ``aerial`` path.  Every clip must match the optical tile size.
    """
    from ..optics.resist import binarize

    clips = list(clips)
    if not clips:
        raise ValueError("tile_stack needs at least one clip")
    grid = GridSpec(config.mask_size, config.pixel_nm)
    stack = np.empty((len(clips), config.mask_size, config.mask_size))
    for i, clip in enumerate(clips):
        if abs(clip.tile_nm - config.tile_nm) > 1e-9:
            raise ValueError(
                f"clip {clip.name!r} tile {clip.tile_nm} nm != optical tile "
                f"{config.tile_nm} nm"
            )
        stack[i] = binarize(rasterize(clip.rects, grid))
    return stack


_STYLES: Dict[str, ClipStyle] = {
    "ICCAD13": ClipStyle(
        name="ICCAD13",
        cd_nm=32,
        tile_nm=2000,
        target_area_nm2=202655,
    ),
    "ICCAD-L": ClipStyle(
        name="ICCAD-L",
        cd_nm=32,
        tile_nm=2000,
        target_area_nm2=475571,
        max_wire_len_nm=1400,
        wide_wire_prob=0.35,
    ),
    "ISPD19": ClipStyle(
        name="ISPD19",
        cd_nm=28,
        tile_nm=2000,
        target_area_nm2=698743,
        via_fraction=0.12,
        max_wire_len_nm=1400,
        wide_wire_prob=0.40,
    ),
}

DATASET_NAMES: Tuple[str, ...] = tuple(_STYLES)


def _build(style_name: str, num_clips: int, seed: int) -> Dataset:
    style = _STYLES[style_name]
    clips = []
    for i in range(num_clips):
        rects = generate_clip(style, seed=seed + i)
        clips.append(
            Clip(
                name=f"{style_name.lower()}_test{i + 1}",
                rects=tuple(rects),
                cd_nm=style.cd_nm,
                tile_nm=style.tile_nm,
            )
        )
    return Dataset(name=style_name, clips=tuple(clips), style=style)


@lru_cache(maxsize=None)
def iccad13(num_clips: int = 10, seed: int = 2013) -> Dataset:
    """ICCAD13-style Metal clips (CD 32 nm, ~202655 nm^2 average area)."""
    return _build("ICCAD13", num_clips, seed)


@lru_cache(maxsize=None)
def iccad_l(num_clips: int = 10, seed: int = 2020) -> Dataset:
    """ICCAD-L-style large Metal clips (~475571 nm^2 average area)."""
    return _build("ICCAD-L", num_clips, seed)


@lru_cache(maxsize=None)
def ispd19(num_clips: int = 100, seed: int = 2019) -> Dataset:
    """ISPD19-style Metal+Via clips (CD 28 nm, ~698743 nm^2 average)."""
    return _build("ISPD19", num_clips, seed)


def dataset_from_glp_dir(
    path, name: str, cd_nm: int, tile_nm: int = 2000
) -> Dataset:
    """Build a Dataset from a directory of ``.glp`` clip files.

    This is the drop-in path for the *real* contest benchmarks: place
    the ICCAD13 GLP clips in a directory and every harness entry point
    accepts the resulting dataset in place of the synthetic ones.
    Layers are merged (Metal+Via clips image all features together).
    """
    from pathlib import Path

    from .glp import read_glp

    directory = Path(path)
    files = sorted(directory.glob("*.glp"))
    if not files:
        raise FileNotFoundError(f"no .glp files in {directory}")
    clips = []
    for file in files:
        clip_name, layers = read_glp(file)
        rects = tuple(sorted(r for rs in layers.values() for r in rs))
        if not rects:
            raise ValueError(f"{file} contains no shapes")
        clips.append(
            Clip(name=clip_name, rects=rects, cd_nm=cd_nm, tile_nm=tile_nm)
        )
    style = ClipStyle(
        name=name, cd_nm=cd_nm, tile_nm=tile_nm, target_area_nm2=0
    )
    return Dataset(name=name, clips=tuple(clips), style=style)


def dataset_by_name(name: str, num_clips: int | None = None, seed: int | None = None) -> Dataset:
    """Look up a dataset factory by its Table 2 name."""
    factories: Dict[str, Callable[..., Dataset]] = {
        "ICCAD13": iccad13,
        "ICCAD-L": iccad_l,
        "ISPD19": ispd19,
    }
    key = name.upper().replace("_", "-")
    if key not in factories:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    kwargs = {}
    if num_clips is not None:
        kwargs["num_clips"] = num_clips
    if seed is not None:
        kwargs["seed"] = seed
    return factories[key](**kwargs)
