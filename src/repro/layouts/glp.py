"""Reader/writer for a GLP-style layout clip text format.

The ICCAD13 contest ships its mask-optimization clips in the "glp"
format; the public benchmarks are not redistributable here, so
:mod:`repro.layouts.synth` generates statistically matched clips — but
this module keeps the same on-disk interchange format so real contest
files can be dropped in:

.. code-block:: text

    BEGIN
    EQUIV 1 1000 MICRON +X,+Y
    CNAME clip_name
    LEVEL M1
      RECT 100 200 64 320
      PGON 0 0 100 0 100 50 50 50 50 100 0 100
    ENDMSG

``RECT x y w h`` uses lower-left corner + size; ``PGON`` lists the vertex
loop of a rectilinear polygon.  All coordinates are integer nanometres.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Tuple, Union

from ..geometry import Rect, RectilinearPolygon, decompose

__all__ = ["read_glp", "write_glp", "loads", "dumps"]


def loads(text: str) -> Tuple[str, dict[str, List[Rect]]]:
    """Parse GLP text; returns (clip_name, {layer: rects})."""
    name = "unnamed"
    layers: dict[str, List[Rect]] = {}
    current: List[Rect] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("BEGIN", "EQUIV", "ENDMSG", "#")):
            continue
        tokens = line.split()
        kind = tokens[0].upper()
        if kind == "CNAME":
            name = tokens[1] if len(tokens) > 1 else name
        elif kind == "LEVEL":
            layer = tokens[1] if len(tokens) > 1 else "M1"
            current = layers.setdefault(layer, [])
        elif kind == "RECT":
            if current is None:
                current = layers.setdefault("M1", [])
            try:
                x, y, w, h = (int(t) for t in tokens[1:5])
            except (ValueError, IndexError) as exc:
                raise ValueError(f"bad RECT on line {lineno}: {raw!r}") from exc
            current.append(Rect(x, y, x + w, y + h))
        elif kind == "PGON":
            if current is None:
                current = layers.setdefault("M1", [])
            coords = [int(t) for t in tokens[1:]]
            if len(coords) % 2:
                raise ValueError(f"odd coordinate count in PGON on line {lineno}")
            verts = list(zip(coords[::2], coords[1::2]))
            current.extend(decompose(RectilinearPolygon(verts)))
        else:
            raise ValueError(f"unknown GLP record {kind!r} on line {lineno}")
    return name, layers


def dumps(name: str, layers: dict[str, List[Rect]]) -> str:
    """Serialize layers to GLP text."""
    buf = io.StringIO()
    buf.write("BEGIN\n")
    buf.write("EQUIV 1 1000 MICRON +X,+Y\n")
    buf.write(f"CNAME {name}\n")
    for layer, rects in layers.items():
        buf.write(f"LEVEL {layer}\n")
        for r in sorted(rects):
            buf.write(f"  RECT {r.x1} {r.y1} {r.width} {r.height}\n")
    buf.write("ENDMSG\n")
    return buf.getvalue()


def read_glp(path: Union[str, Path]) -> Tuple[str, dict[str, List[Rect]]]:
    """Read a GLP clip file from disk."""
    return loads(Path(path).read_text())


def write_glp(path: Union[str, Path], name: str, layers: dict[str, List[Rect]]) -> None:
    """Write a GLP clip file to disk."""
    Path(path).write_text(dumps(name, layers))
