"""Synthetic benchmark clip generators.

The paper evaluates on ICCAD13 [17], an enlarged ICCAD-L variant, and
ISPD19 metal+via clips (Table 2).  Those GDS files cannot be shipped
offline, so this module generates deterministic, statistically matched
rectilinear clips instead: Manhattan wire segments (plus via squares for
ISPD19-style clips) with the published critical dimension, tile size and
average total feature area.  The substitution is documented in DESIGN.md:
the paper's comparisons are between *optimizers* on common targets, so
any realistic rectilinear target distribution exercises the same code
paths and preserves relative rankings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Rect, total_area

__all__ = ["ClipStyle", "generate_clip", "clip_area"]


@dataclass(frozen=True)
class ClipStyle:
    """Statistical recipe for one benchmark family.

    Parameters mirror Table 2 of the paper: ``cd_nm`` is the critical
    dimension (minimum feature width), ``tile_nm`` the square tile side
    (2000 nm -> 4 um^2 tiles), ``target_area_nm2`` the average total
    feature area per clip, and ``via_fraction`` the share of area spent
    on via squares (ISPD19 clips are Metal+Via).
    """

    name: str
    cd_nm: int
    tile_nm: int
    target_area_nm2: int
    via_fraction: float = 0.0
    max_wire_len_nm: int = 1200
    min_wire_len_nm: int = 120
    wide_wire_prob: float = 0.25
    margin_nm: int = 320

    @property
    def pitch_nm(self) -> int:
        """Placement grid pitch: CD-sized features on a 2x CD pitch."""
        return 2 * self.cd_nm


def generate_clip(style: ClipStyle, seed: int) -> List[Rect]:
    """Generate one deterministic clip for ``style``.

    Wires are placed greedily with rejection sampling, enforcing a
    minimum spacing of one CD between features, until the target area is
    reached (within one feature).  Vias, if requested, are CD x CD
    squares placed under the same spacing rule.
    """
    rng = _style_rng(style.name, seed)
    cd = style.cd_nm
    lo = style.margin_nm
    hi = style.tile_nm - style.margin_nm
    placed: List[Rect] = []
    area = 0
    via_budget = int(style.target_area_nm2 * style.via_fraction)
    wire_budget = style.target_area_nm2 - via_budget

    attempts = 0
    while area < wire_budget and attempts < 5000:
        attempts += 1
        rect = _random_wire(rng, style, lo, hi)
        if rect is None or not _spacing_ok(rect, placed, cd):
            continue
        placed.append(rect)
        area += rect.area

    via_area = 0
    while via_area < via_budget and attempts < 8000:
        attempts += 1
        rect = _random_via(rng, style, lo, hi)
        if not _spacing_ok(rect, placed, cd):
            continue
        placed.append(rect)
        via_area += rect.area

    if not placed:
        raise RuntimeError(f"failed to generate any feature for {style.name}/{seed}")
    return sorted(placed)


def _style_rng(name: str, seed: int) -> np.random.Generator:
    """Deterministic RNG from (style name, seed).

    Python's builtin ``hash`` is randomized per process, so a stable FNV
    hash keeps clips identical across runs.
    """
    acc = 2166136261
    for ch in name.encode():
        acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
    return np.random.default_rng(np.random.SeedSequence([acc, seed & 0xFFFFFFFF]))


def _snap(value: float, pitch: int) -> int:
    return int(round(value / pitch)) * pitch


def _random_wire(
    rng: np.random.Generator, style: ClipStyle, lo: int, hi: int
) -> Optional[Rect]:
    cd = style.cd_nm
    width = 2 * cd if rng.random() < style.wide_wire_prob else cd
    length = _snap(
        rng.uniform(style.min_wire_len_nm, style.max_wire_len_nm), cd
    )
    length = max(length, 2 * cd)
    horizontal = rng.random() < 0.5
    w, h = (length, width) if horizontal else (width, length)
    if hi - lo - w <= 0 or hi - lo - h <= 0:
        return None
    x = _snap(rng.uniform(lo, hi - w), style.pitch_nm)
    y = _snap(rng.uniform(lo, hi - h), style.pitch_nm)
    x = min(max(x, lo), hi - w)
    y = min(max(y, lo), hi - h)
    return Rect(x, y, x + w, y + h)


def _random_via(rng: np.random.Generator, style: ClipStyle, lo: int, hi: int) -> Rect:
    cd = style.cd_nm
    side = 2 * cd  # printable via pads are ~2x CD
    x = _snap(rng.uniform(lo, hi - side), style.pitch_nm)
    y = _snap(rng.uniform(lo, hi - side), style.pitch_nm)
    x = min(max(x, lo), hi - side)
    y = min(max(y, lo), hi - side)
    return Rect(x, y, x + side, y + side)


def _spacing_ok(rect: Rect, placed: Sequence[Rect], spacing: int) -> bool:
    inflated = rect.expanded(spacing)
    return not any(inflated.intersects(p) for p in placed)


def clip_area(rects: Sequence[Rect]) -> int:
    """Total feature area of a clip in nm^2 (union-safe)."""
    return total_area(list(rects))
