"""Mask post-processing and manufacturability analysis (SRAF extraction,
shot counting, mask-rule cleanup)."""

from .analysis import (
    MaskComponents,
    MaskStats,
    connected_components,
    mask_statistics,
    remove_small_features,
    split_main_and_sraf,
)

__all__ = [
    "MaskComponents",
    "MaskStats",
    "connected_components",
    "split_main_and_sraf",
    "mask_statistics",
    "remove_small_features",
]
