"""Mask manufacturability analysis: SRAF extraction, shot counting,
minimum-feature checks.

The paper's Table 1 notes that initializing theta_M from the target
"facilitates SRAF generation during MO": inverse lithography grows
sub-resolution assist features (SRAFs) around the main patterns.  A mask
house cares about what those cost — write shots, minimum features,
total figure count — so this module quantifies the optimized mask the
way a mask-prep flow would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..geometry import GridSpec, Rect, grid_to_rects, rasterize
from ..optics import OpticalConfig, binarize

__all__ = [
    "MaskComponents",
    "MaskStats",
    "connected_components",
    "split_main_and_sraf",
    "mask_statistics",
    "remove_small_features",
]


@dataclass(frozen=True)
class MaskComponents:
    """Mask shapes split into main (target-overlapping) and SRAF parts."""

    main: Tuple[Rect, ...]
    srafs: Tuple[Rect, ...]

    @property
    def num_srafs(self) -> int:
        return len(self.srafs)


@dataclass(frozen=True)
class MaskStats:
    """Manufacturability summary of a binary mask image."""

    shot_count: int             # rectangles in a VSB-style decomposition
    num_components: int         # connected mask figures
    num_srafs: int              # figures not touching the target
    min_feature_nm: float       # smallest rect side length
    mask_area_nm2: float
    sraf_area_nm2: float


def connected_components(image: np.ndarray) -> List[np.ndarray]:
    """4-connected components of a binary image (list of boolean masks).

    Implemented with an iterative flood fill; clip-scale grids are small
    enough that no union-find machinery is needed.
    """
    binary = np.asarray(image) >= 0.5
    visited = np.zeros_like(binary, dtype=bool)
    n_rows, n_cols = binary.shape
    components: List[np.ndarray] = []
    for r0, c0 in zip(*np.nonzero(binary & ~visited)):
        if visited[r0, c0]:
            continue
        stack = [(int(r0), int(c0))]
        comp = np.zeros_like(binary)
        visited[r0, c0] = True
        while stack:
            r, c = stack.pop()
            comp[r, c] = True
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < n_rows and 0 <= cc < n_cols:
                    if binary[rr, cc] and not visited[rr, cc]:
                        visited[rr, cc] = True
                        stack.append((rr, cc))
        components.append(comp)
    return components


def split_main_and_sraf(
    mask: np.ndarray, target: np.ndarray, grid: GridSpec
) -> MaskComponents:
    """Partition mask figures by target overlap.

    A figure that shares any pixel with the target is a main feature;
    everything else is a sub-resolution assist feature.
    """
    target_bin = np.asarray(target) >= 0.5
    main: List[Rect] = []
    srafs: List[Rect] = []
    for comp in connected_components(mask):
        rects = grid_to_rects(comp.astype(np.float64), grid)
        if (comp & target_bin).any():
            main.extend(rects)
        else:
            srafs.extend(rects)
    return MaskComponents(main=tuple(sorted(main)), srafs=tuple(sorted(srafs)))


def mask_statistics(
    mask: np.ndarray, target: np.ndarray, config: OpticalConfig
) -> MaskStats:
    """Compute the manufacturability summary for a (relaxed) mask image."""
    grid = GridSpec(config.mask_size, config.pixel_nm)
    mask_bin = binarize(mask)
    components = connected_components(mask_bin)
    parts = split_main_and_sraf(mask_bin, target, grid)
    all_rects = list(parts.main) + list(parts.srafs)
    min_side = (
        min(min(r.width, r.height) for r in all_rects) if all_rects else 0.0
    )
    from ..geometry import total_area

    return MaskStats(
        shot_count=len(all_rects),
        num_components=len(components),
        num_srafs=parts.num_srafs,
        min_feature_nm=float(min_side),
        mask_area_nm2=float(mask_bin.sum() * config.pixel_area_nm2),
        sraf_area_nm2=float(total_area(list(parts.srafs))),
    )


def remove_small_features(
    mask: np.ndarray, config: OpticalConfig, min_feature_nm: float
) -> np.ndarray:
    """Drop mask figures whose bounding box is below the mask-rule size.

    This is the standard post-ILT cleanup before handing the mask to
    fracture: figures below the mask writer's resolution cannot be
    manufactured and must be removed (their optical contribution is
    minor by construction).
    """
    binary = binarize(mask)
    out = np.zeros(binary.shape, dtype=bool)
    min_px = min_feature_nm / config.pixel_nm
    for comp in connected_components(binary):
        rows, cols = np.nonzero(comp)
        height = rows.max() - rows.min() + 1
        width = cols.max() - cols.min() + 1
        if min(width, height) >= min_px:
            out |= comp
    return out.astype(np.float64)
