"""Evaluation metrics (Definitions 1-3): squared L2 error, process
variation band, and edge placement error."""

from .l2 import l2_error_nm2, l2_error_pixels
from .pvb import pvb_band_nm2, pvb_band_pixels, pvb_nm2, pvb_pixels
from .epe import DEFAULT_EPE_TOLERANCE_NM, EPEReport, epe_report

__all__ = [
    "l2_error_nm2",
    "l2_error_pixels",
    "pvb_nm2",
    "pvb_pixels",
    "pvb_band_nm2",
    "pvb_band_pixels",
    "EPEReport",
    "epe_report",
    "DEFAULT_EPE_TOLERANCE_NM",
]

from .diagnostics import image_contrast, meef, nils_at_edges

__all__ += ["image_contrast", "nils_at_edges", "meef"]
