"""Aerial-image quality diagnostics: contrast, NILS, MEEF.

These are the standard lithographic quality numbers engineers read next
to L2/PVB/EPE.  They are not in the paper's tables but make the library
usable for real process-window studies:

* **contrast** — (Imax - Imin) / (Imax + Imin) over the image,
* **NILS** — normalized image log slope at target edges: the classic
  dose-latitude proxy; higher is better,
* **MEEF** — mask error enhancement factor: printed-CD change per
  mask-CD change, measured by finite differences of biased masks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry import EPESite, GridSpec, Rect, edge_sites
from ..optics import OpticalConfig

__all__ = ["image_contrast", "nils_at_edges", "meef"]


def image_contrast(aerial: np.ndarray, active: np.ndarray | None = None) -> float:
    """Michelson contrast of the aerial image.

    ``active`` optionally restricts the computation to a region of
    interest (e.g. near the features) so dark borders don't dominate.
    """
    img = np.asarray(aerial, dtype=np.float64)
    if active is not None:
        values = img[np.asarray(active) >= 0.5]
        if values.size == 0:
            raise ValueError("active region is empty")
    else:
        values = img.ravel()
    i_max, i_min = float(values.max()), float(values.min())
    if i_max + i_min == 0.0:
        return 0.0
    return (i_max - i_min) / (i_max + i_min)


def _directional_gradient(
    aerial: np.ndarray, grid: GridSpec, site: EPESite, step_nm: float
) -> float:
    """Central-difference intensity slope along the site's normal."""
    from ..geometry.edges import _sample  # shared bilinear sampler

    nx, ny = site.normal
    ip = _sample(aerial, grid, site.x_nm + nx * step_nm, site.y_nm + ny * step_nm)
    im = _sample(aerial, grid, site.x_nm - nx * step_nm, site.y_nm - ny * step_nm)
    return (ip - im) / (2.0 * step_nm)


def nils_at_edges(
    aerial: np.ndarray,
    target_rects: Sequence[Rect],
    config: OpticalConfig,
    feature_size_nm: float | None = None,
    spacing_nm: float = 40.0,
) -> np.ndarray:
    """Normalized image log slope at every target-edge site.

    NILS = CD * |dI/dx| / I at the edge, with CD the relevant feature
    size (defaults to the smallest rect side in the target).
    """
    from ..geometry.edges import _sample

    grid = GridSpec(config.mask_size, config.pixel_nm)
    sites = edge_sites(target_rects, spacing_nm=spacing_nm)
    if not sites:
        raise ValueError("no edge sites on target")
    if feature_size_nm is None:
        feature_size_nm = float(
            min(min(r.width, r.height) for r in target_rects)
        )
    out = np.empty(len(sites))
    step = grid.pixel_nm / 2.0
    for i, site in enumerate(sites):
        intensity = _sample(aerial, grid, site.x_nm, site.y_nm)
        slope = _directional_gradient(aerial, grid, site, step)
        out[i] = feature_size_nm * abs(slope) / max(intensity, 1e-12)
    return out


def meef(
    print_cd_fn,
    mask_bias_nm: float = 2.0,
) -> float:
    """Mask error enhancement factor via central differences.

    ``print_cd_fn(bias_nm)`` must return the printed CD (nm) when every
    mask edge is biased outward by ``bias_nm`` (at wafer scale).  MEEF is
    d(printed CD) / d(mask CD); a mask CD bias of ``b`` changes mask CD
    by ``2b`` (both edges move).
    """
    cd_plus = print_cd_fn(mask_bias_nm)
    cd_minus = print_cd_fn(-mask_bias_nm)
    return float((cd_plus - cd_minus) / (2.0 * 2.0 * mask_bias_nm))
