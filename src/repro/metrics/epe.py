"""Edge Placement Error — Definition 3 of the paper.

Following the ICCAD13 contest convention (reference [17] of the paper):
target edges are sampled into measurement sites; at each site the
printed contour's displacement along the edge normal is measured, and a
site whose |EPE| exceeds a tolerance counts as one violation.  Table 4
reports the average violation count per clip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import EPESite, GridSpec, Rect, edge_sites, measure_epe
from ..optics import OpticalConfig

__all__ = ["EPEReport", "epe_report", "DEFAULT_EPE_TOLERANCE_NM"]

DEFAULT_EPE_TOLERANCE_NM = 15.0  # ICCAD13 contest spec


@dataclass(frozen=True)
class EPEReport:
    """EPE statistics over all measurement sites of one clip."""

    violations: int
    num_sites: int
    mean_abs_nm: float
    max_abs_nm: float
    tolerance_nm: float

    @property
    def violation_rate(self) -> float:
        return self.violations / self.num_sites if self.num_sites else 0.0


def epe_report(
    resist: np.ndarray,
    target_rects: Sequence[Rect],
    config: OpticalConfig,
    grid: GridSpec | None = None,
    tolerance_nm: float = DEFAULT_EPE_TOLERANCE_NM,
    spacing_nm: float = 40.0,
) -> EPEReport:
    """Measure EPE of a printed resist image against the target layout.

    ``grid`` maps the resist image onto layout coordinates; it defaults
    to a tile-aligned grid derived from ``config``.
    """
    if grid is None:
        grid = GridSpec(config.mask_size, config.pixel_nm)
    sites = edge_sites(target_rects, spacing_nm=spacing_nm)
    if not sites:
        raise ValueError("no EPE sites found; target empty or all-internal edges")
    errors = measure_epe(resist, sites, grid)
    abs_err = np.abs(errors)
    return EPEReport(
        violations=int((abs_err > tolerance_nm).sum()),
        num_sites=len(sites),
        mean_abs_nm=float(abs_err.mean()),
        max_abs_nm=float(abs_err.max()),
        tolerance_nm=tolerance_nm,
    )
