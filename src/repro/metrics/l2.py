"""Squared L2 error — Definition 1 of the paper.

Reported in nm^2: the resist and target are binarized and the squared
L2 distance (= XOR pixel count for binary images) is scaled by the
pixel area, matching the units of Table 3.
"""

from __future__ import annotations

import numpy as np

from ..optics import OpticalConfig, binarize

__all__ = ["l2_error_nm2", "l2_error_pixels"]


def l2_error_pixels(resist: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> int:
    """|| Z - Z_t ||^2 on binarized images (pixel count)."""
    z = binarize(resist, threshold)
    zt = binarize(target, threshold)
    return int(((z - zt) ** 2).sum())


def l2_error_nm2(
    resist: np.ndarray,
    target: np.ndarray,
    config: OpticalConfig,
    threshold: float = 0.5,
) -> float:
    """Squared L2 error in nm^2 (Definition 1, Table 3 units)."""
    return l2_error_pixels(resist, target, threshold) * config.pixel_area_nm2
