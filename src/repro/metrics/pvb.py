"""Process Variation Band — Definition 2 of the paper.

PVB is the XOR area between the resist images printed at the extreme
process conditions (the +/-2 % dose corners in the paper's setup):
pixels that print at one corner but not the other, scaled to nm^2.
"""

from __future__ import annotations

import numpy as np

from ..optics import OpticalConfig, binarize

__all__ = ["pvb_nm2", "pvb_pixels", "pvb_band_pixels", "pvb_band_nm2"]


def pvb_pixels(
    resist_min: np.ndarray, resist_max: np.ndarray, threshold: float = 0.5
) -> int:
    """XOR pixel count between min- and max-condition resist images."""
    z_min = binarize(resist_min, threshold).astype(bool)
    z_max = binarize(resist_max, threshold).astype(bool)
    return int(np.logical_xor(z_min, z_max).sum())


def pvb_nm2(
    resist_min: np.ndarray,
    resist_max: np.ndarray,
    config: OpticalConfig,
    threshold: float = 0.5,
) -> float:
    """Process variation band area in nm^2 (Definition 2, Table 3 units)."""
    return pvb_pixels(resist_min, resist_max, threshold) * config.pixel_area_nm2


def pvb_band_pixels(resist_stack: np.ndarray, threshold: float = 0.5) -> int:
    """Variation band across a whole ``(C, N, N)`` corner resist stack.

    Generalizes the two-corner XOR of :func:`pvb_pixels` to an arbitrary
    process window: pixels that print at *some* corner but not at *all*
    corners (union minus intersection of the printed regions).  For two
    corners this reduces exactly to the XOR definition.
    """
    if resist_stack.ndim != 3:
        raise ValueError(
            f"resist_stack must be (C, N, N); got {resist_stack.shape}"
        )
    printed = resist_stack >= threshold
    union = printed.any(axis=0)
    intersection = printed.all(axis=0)
    return int((union & ~intersection).sum())


def pvb_band_nm2(
    resist_stack: np.ndarray,
    config: OpticalConfig,
    threshold: float = 0.5,
) -> float:
    """Process-window variation band area in nm^2 (all corners)."""
    return pvb_band_pixels(resist_stack, threshold) * config.pixel_area_nm2
