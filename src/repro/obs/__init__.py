"""repro.obs — opt-in observability: span tracing, metrics, exporters.

The profiling substrate for the whole stack.  Disabled by default with
near-zero overhead (every hook is a single branch); enable via the
``REPRO_TRACE`` / ``REPRO_METRICS`` environment variables, the
:func:`use` context manager, or the harness CLI's ``--trace PATH`` /
``--metrics`` flags.  Span and metric names are governed by
:mod:`repro.obs.registry` (lint rule R10), wall-clock reads go through
``utils.timing.tick``, and parallel harness runs merge per-process
JSONL shards into one Chrome trace-event JSON (Perfetto-loadable).

Typical programmatic session::

    from repro import obs

    with obs.use(trace=True, metrics=True):
        run_matrix(...)
        trace = obs.chrome_trace(obs.drain_events(), obs.snapshot())
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Iterator, Optional

from ..utils.timing import tick
from . import state as _state
from . import trace as _trace
from .export import (
    WARMUP_LABEL,
    canonical_trace,
    canonical_trace_bytes,
    chrome_trace,
    discover_shards,
    merge_shards,
    shard_path,
    summary_table,
    write_shard,
)
from .metrics import (
    counter,
    gauge,
    histogram,
    merge_metric_snapshots,
    metric_delta,
    reset_metrics,
    snapshot,
    values,
)
from .registry import DECLARED_METRICS, DECLARED_SPANS
from .state import (
    apply_config,
    disable,
    enable,
    enabled,
    export_config,
    memory_enabled,
    metrics_enabled,
    restore_config,
    shard_dir,
    trace_enabled,
    use,
)
from .trace import Span, current_span_name, drain_events, peek_events, span, traced


def flush_shard(label: str = WARMUP_LABEL) -> None:
    """Drain buffered span events into this process's shard now.

    Pool initializers call this after the optics-cache warmup so the
    warmup spans land in a dedicated shard record instead of being
    swept into the worker's first :func:`cell_scope` drain.  Without a
    configured shard directory the buffer is discarded (there is no
    sink, and leaving it would misattribute the events to the next
    cell).  A no-op while tracing is off.
    """
    if not _state.trace_enabled():
        return
    events = drain_events()
    directory = _state.shard_dir()
    if directory and events:
        write_shard(shard_path(directory, os.getpid()), label, events, {})


@contextlib.contextmanager
def cell_scope(label: str) -> Iterator[None]:
    """Wrap one harness cell: span it, meter it, and write its shard.

    The harness runs every sweep cell (serial, thread, or process
    worker) inside this scope.  When a shard directory is configured,
    the cell's completed spans and its metric *delta* are appended to
    this process's ``shard-<pid>.jsonl`` on exit — the unit the parent
    later merges into one coherent trace.  A no-op (single branch) while
    observability is disabled.
    """
    if not _state.enabled():
        yield
        return
    base = values() if _state.metrics_enabled() else {}
    t0 = tick()
    try:
        with _trace.span("harness.cell", label=label):
            yield
    finally:
        seconds = tick() - t0
        counter("harness.cells").inc()
        histogram("harness.cell_seconds").observe(seconds)
        directory = _state.shard_dir()
        if directory:
            events = drain_events() if _state.trace_enabled() else []
            delta = (
                metric_delta(base, values()) if _state.metrics_enabled() else {}
            )
            write_shard(
                shard_path(directory, os.getpid()), label, events, delta
            )


def observe_iteration(
    record: Any, grad: Optional[Any] = None, grad_norm: Optional[float] = None
) -> None:
    """Feed one solver ``IterationRecord`` into the metrics registry.

    Called by every solver loop right after it appends a record; a
    single branch while metrics are disabled.  ``grad`` may be any
    array-like (or an autodiff tensor with ``.data``) — its L2 norm is
    only computed when metrics are on, so the hook stays free in the
    default configuration.  Decoding journaled records must *not* call
    this (it would double-count a resumed run), which is why the hook
    lives at the construction sites rather than on the dataclass.
    """
    if not _state.metrics_enabled():
        return
    counter("solver.iterations").inc()
    loss = getattr(record, "loss", None)
    if loss is not None:
        gauge("solver.loss").set(float(loss))
    seconds = getattr(record, "seconds", None)
    if seconds is not None:
        histogram("solver.iter_seconds").observe(float(seconds))
    if grad_norm is None and grad is not None:
        import numpy as _np

        arr = getattr(grad, "data", grad)
        grad_norm = float(_np.linalg.norm(_np.asarray(arr)))
    if grad_norm is not None:
        gauge("solver.grad_norm").set(float(grad_norm))


__all__ = [
    "DECLARED_SPANS",
    "DECLARED_METRICS",
    "Span",
    "span",
    "traced",
    "current_span_name",
    "drain_events",
    "peek_events",
    "counter",
    "gauge",
    "histogram",
    "values",
    "reset_metrics",
    "metric_delta",
    "merge_metric_snapshots",
    "snapshot",
    "observe_iteration",
    "cell_scope",
    "flush_shard",
    "WARMUP_LABEL",
    "use",
    "enable",
    "disable",
    "enabled",
    "trace_enabled",
    "metrics_enabled",
    "memory_enabled",
    "shard_dir",
    "export_config",
    "restore_config",
    "apply_config",
    "shard_path",
    "write_shard",
    "discover_shards",
    "merge_shards",
    "chrome_trace",
    "canonical_trace",
    "canonical_trace_bytes",
    "summary_table",
]
