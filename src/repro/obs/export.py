"""Exporters: JSONL shards, Chrome trace-event JSON, text summary.

Worker processes append one JSON line per harness cell to a
``shard-<pid>.jsonl`` file in the configured shard directory (see
``repro.obs.cell_scope``); each line carries the cell label, the
producing PID, the span events completed during the cell, and the
cell's metric delta.  The parent merges the shards into a single
Chrome trace-event JSON (loadable in ``chrome://tracing`` / Perfetto)
deterministically: cells are emitted in submission order, PIDs are
normalized to worker indices in order of first appearance, and every
shard's timestamps are rebased to that process's first event.

:func:`canonical_trace` strips the volatile fields (timestamps,
durations, process/thread lanes, memory peaks) and sorts events within
each cell, so a workers=1 and a workers=2 run of the same sweep yield
byte-identical canonical forms — the determinism contract the harness
tests pin.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

# Span attributes that legitimately differ run-to-run (timing/memory).
_VOLATILE_ARG_KEYS = ("mem_peak_kb", "seconds")

#: Reserved shard label for pre-cell worker warmup records (see
#: ``repro.obs.flush_shard``).  One record per worker process; shown in
#: the merged trace, excluded from the canonical form because its count
#: tracks the worker count rather than the sweep.
WARMUP_LABEL = "@warmup"


def shard_path(directory: str, pid: int) -> str:
    """Canonical shard filename for a producing process."""
    return os.path.join(directory, f"shard-{pid}.jsonl")


def write_shard(
    path: str,
    label: str,
    events: Sequence[Dict[str, Any]],
    metrics: Dict[str, Any],
) -> None:
    """Append one cell record to a per-process shard file."""
    record = {
        "schema": SCHEMA_VERSION,
        "label": label,
        "pid": os.getpid(),
        "events": list(events),
        "metrics": metrics,
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_shards(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Load every record from the given shard files, in file order."""
    records: List[Dict[str, Any]] = []
    for path in sorted(paths):
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def discover_shards(directory: str) -> List[str]:
    """Shard files present in *directory*, sorted for determinism."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        os.path.join(directory, n)
        for n in names
        if n.startswith("shard-") and n.endswith(".jsonl")
    )


def merge_shards(
    shard_paths: Iterable[str],
    labels: Sequence[str],
) -> Dict[str, Any]:
    """Merge per-process shards into one Chrome trace-event object.

    *labels* is the sweep's submission order; it drives both cell order
    in the output and the PID -> worker-index normalization.  When a
    label appears in several records (a retried cell), the last record
    in shard-file order wins.  Labels with no record (failed before
    tracing) are listed in ``otherData.missing``.  ``@warmup`` records
    (one per worker, see ``repro.obs.flush_shard``) keep one entry per
    producing process and contribute no metrics.
    """
    records = read_shards(shard_paths)
    by_label: Dict[str, Dict[str, Any]] = {}
    warmups: List[Dict[str, Any]] = []
    for rec in records:
        if str(rec.get("label")) == WARMUP_LABEL:
            warmups.append(rec)
        else:
            by_label[str(rec.get("label"))] = rec

    ordered = [lbl for lbl in labels if lbl in by_label]
    extras = [lbl for lbl in by_label if lbl not in set(labels)]
    ordered.extend(sorted(extras))
    missing = [lbl for lbl in labels if lbl not in by_label]

    pid_index: Dict[int, int] = {}
    pid_base_ts: Dict[int, float] = {}
    # Cell submission order assigns the worker lanes; warmup records
    # only widen a lane's timestamp base (warmup precedes every cell)
    # or claim a lane for a worker that never ran a cell.
    for source in ([by_label[lbl] for lbl in ordered], warmups):
        for rec in source:
            pid = int(rec.get("pid", 0))
            if pid not in pid_index:
                pid_index[pid] = len(pid_index)
            for ev in rec.get("events", []):
                ts = float(ev.get("ts", 0.0))
                base = pid_base_ts.get(pid)
                if base is None or ts < base:
                    pid_base_ts[pid] = ts

    trace_events: List[Dict[str, Any]] = []
    for pid, idx in pid_index.items():
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": idx,
                "tid": 0,
                "args": {"name": f"worker-{idx}"},
            }
        )

    tid_index: Dict[Tuple[int, int], int] = {}

    def emit(rec: Dict[str, Any], lbl: str) -> None:
        pid = int(rec.get("pid", 0))
        base = pid_base_ts.get(pid, 0.0)
        for ev in rec.get("events", []):
            raw_tid = int(ev.get("tid", 0))
            key = (pid, raw_tid)
            if key not in tid_index:
                tid_index[key] = len([k for k in tid_index if k[0] == pid])
            args = dict(ev.get("args", {}))
            args["cell"] = lbl
            if ev.get("parent"):
                args["parent"] = ev["parent"]
            if ev.get("error"):
                args["error"] = ev["error"]
            trace_events.append(
                {
                    "name": ev.get("name", "?"),
                    "cat": ev.get("cat", "span"),
                    "ph": "X",
                    "ts": round((float(ev.get("ts", 0.0)) - base) * 1e6, 3),
                    "dur": round(float(ev.get("dur", 0.0)) * 1e6, 3),
                    "pid": pid_index[pid],
                    "tid": tid_index[key],
                    "args": args,
                }
            )

    for rec in warmups:
        emit(rec, WARMUP_LABEL)
    for lbl in ordered:
        emit(by_label[lbl], lbl)

    merged_metrics = _merged_metrics(by_label, ordered)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SCHEMA_VERSION,
            "labels": list(ordered),
            "missing": missing,
            "workers": len(pid_index),
            "warmups": len(warmups),
            "metrics": merged_metrics,
        },
    }


def _merged_metrics(
    by_label: Dict[str, Dict[str, Any]], ordered: Sequence[str]
) -> Dict[str, Any]:
    from .metrics import merge_metric_snapshots

    snaps = [
        by_label[lbl].get("metrics", {})
        for lbl in ordered
        if isinstance(by_label[lbl].get("metrics"), dict)
    ]
    return merge_metric_snapshots(snaps)


def chrome_trace(
    events: Sequence[Dict[str, Any]],
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Chrome trace-event object for one in-process event buffer.

    The single-process counterpart of :func:`merge_shards`, for
    programmatic ``obs.use()`` sessions that never touch shard files.
    """
    base = min((float(ev.get("ts", 0.0)) for ev in events), default=0.0)
    tid_index: Dict[int, int] = {}
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "main"},
        }
    ]
    for ev in events:
        raw_tid = int(ev.get("tid", 0))
        if raw_tid not in tid_index:
            tid_index[raw_tid] = len(tid_index)
        args = dict(ev.get("args", {}))
        if ev.get("parent"):
            args["parent"] = ev["parent"]
        if ev.get("error"):
            args["error"] = ev["error"]
        out.append(
            {
                "name": ev.get("name", "?"),
                "cat": ev.get("cat", "span"),
                "ph": "X",
                "ts": round((float(ev.get("ts", 0.0)) - base) * 1e6, 3),
                "dur": round(float(ev.get("dur", 0.0)) * 1e6, 3),
                "pid": 0,
                "tid": tid_index[raw_tid],
                "args": args,
            }
        )
    other: Dict[str, Any] = {"schema": SCHEMA_VERSION}
    if metrics is not None:
        other["metrics"] = metrics
    return {"traceEvents": out, "displayTimeUnit": "ms", "otherData": other}


def canonical_trace(trace: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce a merged trace to its run-invariant canonical form.

    Drops timestamps, durations, process/thread lanes, and volatile
    attributes, then groups events by cell and sorts them by
    (name, serialized args).  Two runs of the same sweep — regardless
    of worker count or thread interleaving — must produce identical
    canonical forms; ``tests/test_obs_harness.py`` pins this.
    """
    cells: Dict[str, List[Dict[str, Any]]] = {}
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        cell = str(args.pop("cell", ""))
        if cell == WARMUP_LABEL:
            continue  # one record per worker: not sweep-invariant
        for key in _VOLATILE_ARG_KEYS:
            args.pop(key, None)
        cells.setdefault(cell, []).append(
            {"name": ev.get("name"), "cat": ev.get("cat"), "args": args}
        )
    for evs in cells.values():
        evs.sort(key=lambda e: (str(e["name"]), json.dumps(e["args"], sort_keys=True)))
    other = trace.get("otherData", {})
    return {
        "schema": other.get("schema", SCHEMA_VERSION),
        "labels": other.get("labels", sorted(cells)),
        "cells": cells,
    }


def canonical_trace_bytes(trace: Dict[str, Any]) -> bytes:
    """Stable byte serialization of :func:`canonical_trace`."""
    return json.dumps(canonical_trace(trace), sort_keys=True).encode("utf-8")


def summary_table(snap: Dict[str, Any]) -> str:
    """Fixed-width text rendering of a :func:`metrics.snapshot` dict."""
    lines: List[str] = []

    def section(title: str, rows: List[Tuple[str, str]]) -> None:
        if not rows:
            return
        lines.append(title)
        width = max(len(k) for k, _ in rows)
        for key, val in rows:
            lines.append(f"  {key.ljust(width)}  {val}")

    metric_rows: List[Tuple[str, str]] = []
    for name in sorted(snap.get("metrics", {})):
        val = snap["metrics"][name]
        if isinstance(val, dict):
            rendered = (
                f"count={val.get('count')} mean={val.get('mean')} "
                f"min={val.get('min')} max={val.get('max')}"
            )
        else:
            rendered = str(val)
        metric_rows.append((name, rendered))
    section("metrics", metric_rows)

    cache = snap.get("cache")
    if isinstance(cache, dict):
        rows = []
        for category in sorted(cache):
            stats = cache[category]
            hits = int(stats.get("hits", 0))
            misses = int(stats.get("misses", 0))
            total = hits + misses
            rate = f"{hits / total:.2%}" if total else "n/a"
            rows.append((category, f"hits={hits} misses={misses} hit_rate={rate}"))
        section("cache", rows)

    fft = snap.get("fftlib")
    if isinstance(fft, dict):
        section("fftlib", [(k, str(fft[k])) for k in sorted(fft)])

    backend_counters = snap.get("backend_counters")
    if isinstance(backend_counters, dict):
        section(
            "backend_counters",
            [(k, str(backend_counters[k])) for k in sorted(backend_counters)],
        )

    return "\n".join(lines) if lines else "(no observability data)"


__all__ = [
    "SCHEMA_VERSION",
    "WARMUP_LABEL",
    "shard_path",
    "write_shard",
    "read_shards",
    "discover_shards",
    "merge_shards",
    "chrome_trace",
    "canonical_trace",
    "canonical_trace_bytes",
    "summary_table",
]
