"""Typed metrics registry: counters, gauges, and histograms.

Metric names are *declared* in :mod:`repro.obs.registry` (the R10 lint
rule enforces it at call sites, this module enforces it at runtime), so
the project has one governed metric namespace instead of bespoke
counters per subsystem.  While metrics are disabled the accessors
return shared no-op instruments after a single branch.

:func:`snapshot` is the unified telemetry read: it folds in the
subsystem counters that predate this registry — the optics cache
hit/miss table, the fftlib worker-budget policy, and the active array
backend's transfer/FFT counters — so one call captures everything a
bench fingerprint or a shard needs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Union

from .registry import DECLARED_METRICS, metric_kind
from . import state

_LOCK = threading.Lock()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram while metrics are disabled."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL = _NullInstrument()


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with _LOCK:
            self.value += n


class Gauge:
    """Last-written float value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        with _LOCK:
            self.value = float(value)


class Histogram:
    """Streaming summary (count/total/min/max) of observed values."""

    __slots__ = ("name", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        v = float(value)
        with _LOCK:
            self.count += 1
            self.total += v
            self.vmin = v if self.vmin is None else min(self.vmin, v)
            self.vmax = v if self.vmax is None else max(self.vmax, v)


Instrument = Union[Counter, Gauge, Histogram]
_REGISTRY: Dict[str, Instrument] = {}

_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _get(name: str, kind: str) -> Instrument:
    declared = metric_kind(name)
    if declared is None:
        raise ValueError(
            f"metric name {name!r} is not declared in repro.obs.registry"
        )
    if declared != kind:
        raise ValueError(
            f"metric {name!r} is declared as a {declared}, not a {kind}"
        )
    with _LOCK:
        inst = _REGISTRY.get(name)
        if inst is None:
            inst = _CLASSES[kind](name)
            _REGISTRY[name] = inst
    return inst


def counter(name: str) -> Union[Counter, _NullInstrument]:
    """The declared counter *name*, or a no-op while metrics are off."""
    if not state.metrics_enabled():
        return _NULL
    inst = _get(name, "counter")
    return inst


def gauge(name: str) -> Union[Gauge, _NullInstrument]:
    """The declared gauge *name*, or a no-op while metrics are off."""
    if not state.metrics_enabled():
        return _NULL
    return _get(name, "gauge")


def histogram(name: str) -> Union[Histogram, _NullInstrument]:
    """The declared histogram *name*, or a no-op while metrics are off."""
    if not state.metrics_enabled():
        return _NULL
    return _get(name, "histogram")


def values() -> Dict[str, Any]:
    """Plain-data snapshot of every instrument touched so far."""
    out: Dict[str, Any] = {}
    with _LOCK:
        items = list(_REGISTRY.items())
    for name, inst in items:
        if isinstance(inst, Counter):
            out[name] = inst.value
        elif isinstance(inst, Gauge):
            out[name] = inst.value
        else:
            mean = inst.total / inst.count if inst.count else 0.0
            out[name] = {
                "count": inst.count,
                "total": round(inst.total, 9),
                "min": inst.vmin,
                "max": inst.vmax,
                "mean": round(mean, 9),
            }
    return out


def reset_metrics() -> None:
    """Drop every instrument (tests and benchmark harnesses)."""
    with _LOCK:
        _REGISTRY.clear()


def metric_delta(base: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, Any]:
    """Per-window delta between two :func:`values` snapshots.

    Counters and histogram count/total subtract; gauges and histogram
    min/max take the current value (a windowed min/max would need full
    sample retention, which the streaming summary deliberately avoids).
    """
    out: Dict[str, Any] = {}
    for name, cur in current.items():
        kind = metric_kind(name)
        prev = base.get(name)
        if kind == "counter":
            out[name] = cur - (prev if isinstance(prev, int) else 0)
        elif kind == "histogram" and isinstance(cur, dict):
            prev_d = prev if isinstance(prev, dict) else {}
            count = cur["count"] - int(prev_d.get("count", 0))
            total = cur["total"] - float(prev_d.get("total", 0.0))
            mean = total / count if count else 0.0
            out[name] = {
                "count": count,
                "total": round(total, 9),
                "min": cur["min"],
                "max": cur["max"],
                "mean": round(mean, 9),
            }
        else:
            out[name] = cur
    return {k: v for k, v in out.items() if not _is_empty_delta(v)}


def _is_empty_delta(value: Any) -> bool:
    if isinstance(value, int):
        return value == 0
    if isinstance(value, dict):
        return value.get("count") == 0
    return value is None


def merge_metric_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-shard metric snapshots into run totals.

    Counters and histogram count/total sum across shards; histogram
    min/max widen; gauges take the last shard's value (shards arrive in
    deterministic submission order, so this is reproducible).
    """
    out: Dict[str, Any] = {}
    for snap in snapshots:
        for name, val in snap.items():
            kind = metric_kind(name)
            if kind == "counter" and isinstance(val, int):
                out[name] = int(out.get(name, 0)) + val
            elif kind == "histogram" and isinstance(val, dict):
                acc = out.get(name)
                if not isinstance(acc, dict):
                    out[name] = dict(val)
                else:
                    count = int(acc["count"]) + int(val["count"])
                    total = float(acc["total"]) + float(val["total"])
                    mins = [m for m in (acc["min"], val["min"]) if m is not None]
                    maxs = [m for m in (acc["max"], val["max"]) if m is not None]
                    out[name] = {
                        "count": count,
                        "total": round(total, 9),
                        "min": min(mins) if mins else None,
                        "max": max(maxs) if maxs else None,
                        "mean": round(total / count, 9) if count else 0.0,
                    }
            else:
                out[name] = val
    return out


def snapshot() -> Dict[str, Any]:
    """Unified telemetry snapshot: registry values + subsystem counters.

    Imports the optics modules lazily so this package stays importable
    (and cheap) in contexts that never touch the imaging stack.
    """
    out: Dict[str, Any] = {"metrics": values()}
    try:
        from ..optics import cache as _cache

        out["cache"] = _cache.stats()
    except ImportError:  # optics stack unavailable (stripped installs)
        pass
    try:
        from ..optics import fftlib as _fftlib

        out["fftlib"] = _fftlib.describe()
    except ImportError:
        pass
    try:
        from ..optics import backend as _backend

        out["backend"] = _backend.describe()
        counters = _backend.counters_snapshot()
        if counters is not None:
            out["backend_counters"] = counters
    except ImportError:
        pass
    return out


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "counter",
    "gauge",
    "histogram",
    "values",
    "reset_metrics",
    "metric_delta",
    "merge_metric_snapshots",
    "snapshot",
]
