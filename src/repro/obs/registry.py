"""Declared span and metric names for the observability layer.

Every span or metric name the project uses outside :mod:`repro.obs`
must be declared here, mirroring how :mod:`repro.analysis.registry`
governs ``REPRO_*`` environment variables.  The reprolint R10
``metrics-registry`` rule imports this module at lint time and flags
literal names that are not declared (or non-literal names it cannot
check), so the name space cannot silently fragment into ad-hoc
strings — the same discipline R2 applies to env vars.

This module is pure data with zero side effects and no imports from
the rest of the package, so the linter (and the docs) can load it
without touching numpy or the optics stack.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# Span taxonomy, outermost first.  ``cat`` in exported traces is the
# first dotted segment (harness / solver / engine / imaging / fft).
DECLARED_SPANS: Dict[str, str] = {
    "harness.cell": "one harness sweep cell (run_matrix or process-window)",
    "harness.warmup": "optics cache warm-up for a sweep configuration",
    "solver.iter": "one outer solver iteration (all SMO/ILT loops)",
    "engine.conditions": "aerial_conditions_fast fan-out over process conditions",
    "engine.condition": "a single process-condition imaging pass",
    "imaging.forward": "fused incoherent-image forward pass",
    "imaging.vjp": "streamed incoherent-image backward pass",
    "fft.chunk": "one streamed FFT chunk inside a fused primitive",
}

# name -> (kind, description); kind is counter | gauge | histogram.
DECLARED_METRICS: Dict[str, Tuple[str, str]] = {
    "solver.iterations": ("counter", "outer solver iterations completed"),
    "solver.loss": ("gauge", "latest outer-loop loss value"),
    "solver.grad_norm": ("gauge", "latest outer-loop gradient norm"),
    "solver.iter_seconds": ("histogram", "wall-clock seconds per solver iteration"),
    "harness.cells": ("counter", "harness sweep cells executed"),
    "harness.cell_seconds": ("histogram", "wall-clock seconds per harness cell"),
    "harness.retries": ("counter", "harness cell retries after transient faults"),
    "harness.timeouts": ("counter", "harness cells killed by the watchdog timeout"),
    "harness.pool_rebuilds": ("counter", "process-pool rebuilds after worker death"),
    "harness.failures": ("counter", "harness cells that exhausted their retry budget"),
    "imaging.chunks": ("counter", "streamed FFT chunks processed by fused primitives"),
    "imaging.fft2": ("counter", "forward 2-D FFT batches issued by fused primitives"),
    "imaging.ifft2": ("counter", "inverse 2-D FFT batches issued by fused primitives"),
}


def is_declared_span(name: str) -> bool:
    """Return True if *name* is a registered span name."""
    return name in DECLARED_SPANS


def is_declared_metric(name: str) -> bool:
    """Return True if *name* is a registered metric name."""
    return name in DECLARED_METRICS


def metric_kind(name: str) -> Optional[str]:
    """Return the declared kind of *name* (``counter``/``gauge``/``histogram``)."""
    entry = DECLARED_METRICS.get(name)
    return entry[0] if entry is not None else None


__all__ = [
    "DECLARED_SPANS",
    "DECLARED_METRICS",
    "is_declared_span",
    "is_declared_metric",
    "metric_kind",
]
