"""Enable/disable state for tracing and metrics.

Observability is off by default and every hot-path hook reduces to a
single module-attribute check while disabled.  It turns on three ways:

* environment — ``REPRO_TRACE=1`` (or ``mem`` to add tracemalloc span
  peaks) and ``REPRO_METRICS=1``, read once at import;
* programmatically — :func:`enable` / the :func:`use` context manager,
  which composes with ``fftlib.use()`` / ``use_backend()``;
* cross-process — the harness forwards :func:`export_config` through
  its worker initializer and workers call :func:`apply_config`.

This module is the designated raw reader for ``REPRO_TRACE`` /
``REPRO_METRICS`` (declared in :mod:`repro.analysis.registry`; the R2
rule permits raw ``os.environ`` access here only).
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterator, Optional, Tuple


def _parse_trace(raw: str) -> Tuple[bool, bool]:
    """Map a ``REPRO_TRACE`` value to ``(trace, memory)`` flags."""
    val = raw.strip().lower()
    if val in ("", "0", "off", "false", "no"):
        return (False, False)
    if val in ("mem", "memory"):
        return (True, True)
    return (True, False)


def _parse_flag(raw: str) -> bool:
    return raw.strip().lower() not in ("", "0", "off", "false", "no")


_TRACE, _MEMORY = _parse_trace(os.environ.get("REPRO_TRACE", ""))
_METRICS: bool = _parse_flag(os.environ.get("REPRO_METRICS", ""))
_SHARD_DIR: Optional[str] = None


def trace_enabled() -> bool:
    """True while span tracing is on (the single hot-path branch)."""
    return _TRACE


def metrics_enabled() -> bool:
    """True while the metrics registry records values."""
    return _METRICS


def memory_enabled() -> bool:
    """True while spans also record tracemalloc peak deltas."""
    return _MEMORY


def shard_dir() -> Optional[str]:
    """Directory cell scopes write per-process JSONL shards to, if any."""
    return _SHARD_DIR


def enabled() -> bool:
    """True if any observability channel is on."""
    return _TRACE or _METRICS


def enable(
    *,
    trace: Optional[bool] = None,
    metrics: Optional[bool] = None,
    memory: Optional[bool] = None,
    shard_dir: Optional[str] = None,
) -> None:
    """Set observability flags; ``None`` leaves a flag unchanged."""
    global _TRACE, _METRICS, _MEMORY, _SHARD_DIR
    if trace is not None:
        _TRACE = bool(trace)
    if metrics is not None:
        _METRICS = bool(metrics)
    if memory is not None:
        _MEMORY = bool(memory)
    if shard_dir is not None:
        _SHARD_DIR = shard_dir or None


def disable() -> None:
    """Turn every observability channel off."""
    global _TRACE, _METRICS, _MEMORY, _SHARD_DIR
    _TRACE = False
    _METRICS = False
    _MEMORY = False
    _SHARD_DIR = None


@contextlib.contextmanager
def use(
    *,
    trace: Optional[bool] = None,
    metrics: Optional[bool] = None,
    memory: Optional[bool] = None,
    shard_dir: Optional[str] = None,
) -> Iterator[None]:
    """Scoped observability override, restoring prior state on exit.

    Mirrors ``fftlib.use()``: flags left at ``None`` keep their current
    value, and the whole state (including the shard directory) is
    restored when the block exits, even on error.
    """
    global _SHARD_DIR
    saved = (_TRACE, _METRICS, _MEMORY, _SHARD_DIR)
    try:
        enable(trace=trace, metrics=metrics, memory=memory)
        if shard_dir is not None:
            _SHARD_DIR = shard_dir or None
        yield
    finally:
        restore_config(
            {
                "trace": saved[0],
                "metrics": saved[1],
                "memory": saved[2],
                "shard_dir": saved[3],
            }
        )


def export_config() -> Dict[str, object]:
    """Snapshot the current flags for forwarding to worker processes."""
    return {
        "trace": _TRACE,
        "metrics": _METRICS,
        "memory": _MEMORY,
        "shard_dir": _SHARD_DIR,
    }


def restore_config(config: Dict[str, object]) -> None:
    """Overwrite every flag from an :func:`export_config` snapshot."""
    global _TRACE, _METRICS, _MEMORY, _SHARD_DIR
    _TRACE = bool(config.get("trace", False))
    _METRICS = bool(config.get("metrics", False))
    _MEMORY = bool(config.get("memory", False))
    raw_dir = config.get("shard_dir")
    _SHARD_DIR = str(raw_dir) if raw_dir else None


def apply_config(config: Dict[str, object]) -> None:
    """Worker-side hook: adopt the parent process's observability state."""
    restore_config(config)


__all__ = [
    "trace_enabled",
    "metrics_enabled",
    "memory_enabled",
    "shard_dir",
    "enabled",
    "enable",
    "disable",
    "use",
    "export_config",
    "restore_config",
    "apply_config",
]
