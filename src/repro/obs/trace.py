"""Contextvar-scoped span tracer.

A span is a named wall-clock interval (via :func:`repro.utils.timing.tick`,
the project's sanctioned clock seam) with optional attributes and an
optional tracemalloc peak delta.  Nesting is tracked through a
:class:`contextvars.ContextVar`, so spans opened inside
``fftlib.map_conditions`` worker threads still know their parent: the
fan-out captures ``contextvars.copy_context()`` per task group and runs
the group inside that context.

While tracing is disabled, :func:`span` returns a shared no-op object
after a single module-attribute check — the hot paths pay one branch.
Completed spans append one event dict to a process-global buffer;
:func:`drain_events` hands the buffer to the exporters
(:mod:`repro.obs.export`).
"""

from __future__ import annotations

import contextvars
import functools
import threading
import tracemalloc
from typing import Any, Callable, Dict, List, Optional, TypeVar, Union

from ..utils.timing import tick
from . import state
from .registry import DECLARED_SPANS

F = TypeVar("F", bound=Callable[..., Any])

_EVENTS: List[Dict[str, Any]] = []
_BUFFER_LOCK = threading.Lock()
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """A live span; use as a context manager (returned by :func:`span`)."""

    __slots__ = ("name", "args", "_t0", "_mem0", "_token", "_parent")

    def __init__(self, name: str, args: Dict[str, Any]) -> None:
        self.name = name
        self.args = args
        self._t0 = 0.0
        self._mem0: Optional[int] = None
        self._token: Optional["contextvars.Token[Optional[Span]]"] = None
        self._parent: Optional["Span"] = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        self._parent = _CURRENT.get()
        self._token = _CURRENT.set(self)
        if state.memory_enabled():
            if not tracemalloc.is_tracing():
                tracemalloc.start()
            self._mem0 = tracemalloc.get_traced_memory()[0]
        self._t0 = tick()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        dur = tick() - self._t0
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        args = self.args
        if self._mem0 is not None:
            _, peak = tracemalloc.get_traced_memory()
            args = dict(args)
            # Peak-since-entry upper bound: tracemalloc's peak is global,
            # so concurrent spans may attribute shared allocations twice.
            args["mem_peak_kb"] = round(max(0, peak - self._mem0) / 1024.0, 3)
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": self.name.split(".", 1)[0],
            "ph": "X",
            "ts": self._t0,
            "dur": dur,
            "tid": threading.get_ident(),
            "parent": self._parent.name if self._parent is not None else None,
        }
        if exc_type is not None:
            event["error"] = getattr(exc_type, "__name__", str(exc_type))
        if args:
            event["args"] = args
        with _BUFFER_LOCK:
            _EVENTS.append(event)


SpanLike = Union[Span, _NullSpan]


def span(name: str, **attrs: Any) -> SpanLike:
    """Open a span named *name* (must be declared in the registry).

    Returns a context manager; while tracing is disabled this is a
    shared no-op singleton and the call costs one branch.
    """
    if not state.trace_enabled():
        return _NULL_SPAN
    if name not in DECLARED_SPANS:
        raise ValueError(
            f"span name {name!r} is not declared in repro.obs.registry"
        )
    return Span(name, dict(attrs))


def traced(name: str, **attrs: Any) -> Callable[[F], F]:
    """Decorator form of :func:`span` for whole-function spans."""

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*a: Any, **kw: Any) -> Any:
            if not state.trace_enabled():
                return fn(*a, **kw)
            with span(name, **attrs):
                return fn(*a, **kw)

        return wrapper  # type: ignore[return-value]

    return deco


def current_span_name() -> Optional[str]:
    """Name of the innermost open span in this context, if any."""
    cur = _CURRENT.get()
    return cur.name if cur is not None else None


def drain_events() -> List[Dict[str, Any]]:
    """Return and clear the completed-span buffer."""
    with _BUFFER_LOCK:
        out = list(_EVENTS)
        _EVENTS.clear()
    return out


def peek_events() -> List[Dict[str, Any]]:
    """Return a copy of the buffer without clearing it."""
    with _BUFFER_LOCK:
        return list(_EVENTS)


__all__ = [
    "Span",
    "SpanLike",
    "span",
    "traced",
    "current_span_name",
    "drain_events",
    "peek_events",
]
