"""Optimization substrate: first-order optimizers, a CG linear solver and
the truncated Neumann inverse-Hessian application used by BiSMO."""

from .optimizers import Adam, Optimizer, SGD, make_optimizer
from .cg import CGResult, conjugate_gradient
from .neumann import neumann_inverse_hvp
from .lr_schedule import ConstantLR, CosineLR, StepLR, apply_schedule

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "make_optimizer",
    "CGResult",
    "conjugate_gradient",
    "neumann_inverse_hvp",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "apply_schedule",
]
