"""Conjugate-gradient linear solver driven by a matrix-vector callback.

Used by BiSMO-CG (Section 3.2.3) to solve ``H w = v`` where ``H`` is the
inner-SO Hessian, available only through Hessian-vector products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Solution plus convergence diagnostics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    max_iter: int = 5,
    tol: float = 1e-8,
    damping: float = 0.0,
) -> CGResult:
    """Solve ``(A + damping*I) x = b`` with at most ``max_iter`` CG steps.

    ``matvec`` must implement ``A @ x`` for a symmetric (ideally PSD)
    operator; ``damping`` regularizes indefinite Hessians.  Warm starts
    (``x0``) are used by Algorithm 2's ``w0 <- wK`` re-initialization.
    """
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64, copy=True)

    def apply(vec: np.ndarray) -> np.ndarray:
        out = matvec(vec)
        if damping:
            out = out + damping * vec
        return out

    r = b - apply(x)
    p = r.copy()
    rs_old = float(np.vdot(r, r).real)
    b_norm = float(np.linalg.norm(b))
    threshold = tol * max(b_norm, 1e-30)
    if np.sqrt(rs_old) <= threshold:
        return CGResult(x=x, iterations=0, residual_norm=np.sqrt(rs_old), converged=True)

    it = 0
    for it in range(1, max_iter + 1):
        ap = apply(p)
        denom = float(np.vdot(p, ap).real)
        if denom <= 0:
            # Non-PSD direction: bail out with the current iterate rather
            # than amplify a negative-curvature direction (CG instability
            # the paper observes as BiSMO-CG's larger variance, Fig. 5).
            break
        alpha = rs_old / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(np.vdot(r, r).real)
        if np.sqrt(rs_new) <= threshold:
            rs_old = rs_new
            return CGResult(x=x, iterations=it, residual_norm=np.sqrt(rs_new), converged=True)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return CGResult(x=x, iterations=it, residual_norm=np.sqrt(rs_old), converged=False)
