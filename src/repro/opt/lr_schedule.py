"""Learning-rate schedules for the SMO optimizers.

Schedules are plain callables ``step -> lr`` plus a small helper that
applies them to an :class:`repro.opt.Optimizer` in place, so any solver
loop can decay its step size without changing its structure.
"""

from __future__ import annotations

import math
from typing import Protocol

from .optimizers import Optimizer

__all__ = ["ConstantLR", "StepLR", "CosineLR", "apply_schedule"]


class Schedule(Protocol):  # pragma: no cover - typing only
    def __call__(self, step: int) -> float: ...


class ConstantLR:
    """lr(step) = base (identity schedule, useful as a default)."""

    def __init__(self, base: float) -> None:
        if base <= 0:
            raise ValueError("base lr must be positive")
        self.base = float(base)

    def __call__(self, step: int) -> float:
        return self.base


class StepLR:
    """Multiply the rate by ``gamma`` every ``period`` steps."""

    def __init__(self, base: float, period: int, gamma: float = 0.5) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.base = float(base)
        self.period = period
        self.gamma = float(gamma)

    def __call__(self, step: int) -> float:
        return self.base * self.gamma ** (step // self.period)


class CosineLR:
    """Cosine annealing from ``base`` to ``floor`` over ``total`` steps."""

    def __init__(self, base: float, total: int, floor: float = 0.0) -> None:
        if total < 1:
            raise ValueError("total must be >= 1")
        if floor < 0 or floor > base:
            raise ValueError("need 0 <= floor <= base")
        self.base = float(base)
        self.total = total
        self.floor = float(floor)

    def __call__(self, step: int) -> float:
        t = min(step, self.total) / self.total
        return self.floor + 0.5 * (self.base - self.floor) * (1 + math.cos(math.pi * t))


def apply_schedule(optimizer: Optimizer, schedule: Schedule, step: int) -> float:
    """Set ``optimizer.lr`` from the schedule; returns the applied rate."""
    lr = float(schedule(step))
    if lr <= 0:
        raise ValueError(f"schedule produced non-positive lr {lr} at step {step}")
    optimizer.lr = lr
    return lr
