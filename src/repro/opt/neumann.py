"""Truncated Neumann-series application of an inverse Hessian.

Lemma 2 of the paper: for ``||I - A|| < 1``, ``A^{-1} = sum_k (I - A)^k``.
With ``A = xi * H`` (xi the inner-loop learning rate, small enough that
the spectral condition holds near a minimum), the inverse-Hessian-vector
product is approximated by

    H^{-1} v  ~=  xi * sum_{k=0}^{K} (I - xi H)^k v

(Lorraine et al. 2020), evaluated with K Hessian-vector products.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["neumann_inverse_hvp"]


def neumann_inverse_hvp(
    hvp: Callable[[np.ndarray], np.ndarray],
    v: np.ndarray,
    terms: int,
    lr: float,
) -> np.ndarray:
    """Approximate ``H^{-1} v`` with ``terms`` Neumann-series terms.

    ``terms == 0`` degenerates to ``lr * v`` — the identity-scaled
    approximation that makes BiSMO-NMN coincide with BiSMO-FD
    (Section 3.2.4).
    """
    if terms < 0:
        raise ValueError("terms must be >= 0")
    v = np.asarray(v, dtype=np.float64)
    p = v.copy()
    acc = v.copy()
    for _ in range(terms):
        p = p - lr * hvp(p)
        acc = acc + p
    return lr * acc
