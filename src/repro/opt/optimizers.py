"""First-order optimizers over raw parameter ndarrays.

The SMO solvers keep their parameters (theta_J, theta_M) as plain numpy
arrays between iterations and only wrap them in autodiff tensors for
loss/gradient evaluation, so the optimizers here are array-in/array-out
(like ``torch.optim`` with a single param group).  Algorithm 2 of the
paper allows either plain gradient steps or Adam; both are provided.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "make_optimizer"]


class Optimizer:
    """Base class: stateful update rule ``param <- step(param, grad)``."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def step(self, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (moments, step counters)."""


class SGD(Optimizer):
    """Gradient descent with optional heavy-ball momentum."""

    def __init__(self, lr: float, momentum: float = 0.0) -> None:
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: Optional[np.ndarray] = None

    def step(self, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self.momentum == 0.0:
            return param - self.lr * grad
        if self._velocity is None or self._velocity.shape != param.shape:
            self._velocity = np.zeros_like(param)
        self._velocity = self.momentum * self._velocity + grad
        return param - self.lr * self._velocity

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the paper's "// Or Adam" option in Alg. 2."""

    def __init__(
        self,
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(lr)
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._t = 0

    def step(self, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._m is None or self._m.shape != param.shape:
            self._m = np.zeros_like(param)
            self._v = np.zeros_like(param)
            self._t = 0
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad * grad
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return param - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0


def make_optimizer(name: str, lr: float, **kwargs) -> Optimizer:
    """Factory: ``"sgd"``, ``"momentum"`` or ``"adam"``."""
    key = name.lower()
    if key == "sgd":
        return SGD(lr, **kwargs)
    if key == "momentum":
        kwargs.setdefault("momentum", 0.9)
        return SGD(lr, **kwargs)
    if key == "adam":
        return Adam(lr, **kwargs)
    raise KeyError(f"unknown optimizer {name!r}")
