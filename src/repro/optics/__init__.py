"""Lithography simulation substrate: optical configuration, source
templates, pupil, the unified :class:`ImagingEngine` protocol with its
Abbe and Hopkins/SOCS implementations, the shared optics cache, the
unified FFT dispatch (:mod:`repro.optics.fftlib`), and the resist
model."""

from . import fftlib
from . import backend
from .config import OpticalConfig, ProcessCorner, ProcessWindow
from .source import (
    SourceGrid,
    annular,
    coherent_point,
    conventional,
    dipole,
    quasar,
)
from .zernike import (
    NOLL_INDICES,
    ZERNIKE_TERMS,
    PupilAberration,
    defocus_to_wavefront_nm,
    parse_aberration_spec,
    term_parity,
    wavefront_to_defocus_nm,
    zernike_polynomial,
    zernike_radial,
)
from .pupil import (
    aberrated_pupil_stack,
    conj_pair_indices,
    defocus_phase,
    defocused_pupil_stack,
    pupil,
    shifted_pupil_stack,
)
from .engine import ImagingEngine, as_tile_batch, engine_for, incoherent_sum_fast
from .abbe import AbbeImaging
from .hopkins import HopkinsImaging, build_tcc, socs_kernels
from .resist import binarize, calibrate_threshold, printed_area_nm2, resist_image
from . import cache

__all__ = [
    "OpticalConfig",
    "ProcessCorner",
    "ProcessWindow",
    "SourceGrid",
    "annular",
    "quasar",
    "dipole",
    "conventional",
    "coherent_point",
    "pupil",
    "shifted_pupil_stack",
    "defocus_phase",
    "defocused_pupil_stack",
    "aberrated_pupil_stack",
    "conj_pair_indices",
    "PupilAberration",
    "ZERNIKE_TERMS",
    "NOLL_INDICES",
    "zernike_polynomial",
    "zernike_radial",
    "term_parity",
    "parse_aberration_spec",
    "defocus_to_wavefront_nm",
    "wavefront_to_defocus_nm",
    "ImagingEngine",
    "as_tile_batch",
    "engine_for",
    "incoherent_sum_fast",
    "AbbeImaging",
    "HopkinsImaging",
    "build_tcc",
    "socs_kernels",
    "resist_image",
    "binarize",
    "printed_area_nm2",
    "calibrate_threshold",
    "cache",
    "fftlib",
    "backend",
]
