"""Lithography simulation substrate: optical configuration, source
templates, pupil, Abbe and Hopkins/SOCS imaging engines, resist model."""

from .config import OpticalConfig
from .source import (
    SourceGrid,
    annular,
    coherent_point,
    conventional,
    dipole,
    quasar,
)
from .pupil import defocus_phase, defocused_pupil_stack, pupil, shifted_pupil_stack
from .abbe import AbbeImaging
from .hopkins import HopkinsImaging, build_tcc, socs_kernels
from .resist import binarize, calibrate_threshold, printed_area_nm2, resist_image

__all__ = [
    "OpticalConfig",
    "SourceGrid",
    "annular",
    "quasar",
    "dipole",
    "conventional",
    "coherent_point",
    "pupil",
    "shifted_pupil_stack",
    "defocus_phase",
    "defocused_pupil_stack",
    "AbbeImaging",
    "HopkinsImaging",
    "build_tcc",
    "socs_kernels",
    "resist_image",
    "binarize",
    "printed_area_nm2",
    "calibrate_threshold",
]
