"""Differentiable Abbe forward imaging — Equation (2) of the paper.

Abbe's model discretizes the source into points and sums each point's
coherent image intensity:

    I(x, y) = sum_s  j_s * | IFFT( H(f + f_s, g + g_s) * FFT(M) ) |^2

Because every source point's contribution is independent, the whole sum
is evaluated as ONE fused graph node — the same structure the paper
exploits on a GPU (Section 3.1 "Abbe acceleration").  Since PR 3 that
node is :func:`repro.autodiff.functional.incoherent_image`: the forward
streams over source-axis chunks and the hand-written VJP recomputes the
per-chunk coherent fields, so neither direction retains a ``(B, S, N,
N)`` stack; all transforms dispatch through
:mod:`repro.optics.fftlib`.  For real masks the engine additionally
hands the primitive its verified ``+/-sigma`` conjugate pairing
(``F_{-sigma} = conj(F_{+sigma})`` when the pupils are real), halving
the FFT work in both directions.  A per-point Python loop
(:meth:`AbbeImaging.aerial_loop`) is kept for the acceleration
benchmark, and ``fused=False`` restores the composed-op graph.

Total intensity is normalized by the summed source weight so a clear
field images at intensity 1 for any source shape; this keeps a single
resist threshold meaningful while the source is being optimized.

``AbbeImaging`` implements the :class:`repro.optics.engine.ImagingEngine`
protocol; pupil stacks come from the shared :mod:`repro.optics.cache`
unless a custom source grid is supplied.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..obs import span as obs_span
from .config import OpticalConfig
from .engine import MaskLike, as_tile_batch, incoherent_sum_fast
from .source import SourceGrid

__all__ = ["AbbeImaging"]

_EPS = 1e-12


class AbbeImaging:
    """Batched, autodiff-compatible Abbe imaging engine.

    Parameters
    ----------
    config:
        Optical configuration; grids are derived from it.
    source_grid:
        Optional pre-built :class:`SourceGrid`.  When omitted, the grid
        and the shifted pupil stack are fetched from the shared optics
        cache, so engines with equal configs share one stack.

    fused:
        When True (default) :meth:`aerial` is one fused
        :func:`repro.autodiff.functional.incoherent_image` node with a
        streamed hand-written VJP; ``False`` selects the pre-fusion
        composed-op graph (kept as the parity/benchmark reference —
        see ``benchmarks/bench_fused_imaging.py``).

    Both :meth:`aerial` arguments are autodiff tensors, so gradients flow
    to the mask *and* the source — the property that Hopkins/SOCS lacks
    and that enables joint SMO (Section 2.1 discussion).
    """

    def __init__(
        self,
        config: OpticalConfig,
        source_grid: Optional[SourceGrid] = None,
        defocus_nm: float = 0.0,
        fused: bool = True,
        aberration=None,
    ):
        from .zernike import PupilAberration

        config.validate_sampling()
        self.config = config
        self.fused = bool(fused)
        # The engine's own pupil condition: the legacy defocus knob plus
        # an optional general aberration spec, canonicalized into one
        # PupilAberration (Z4 == wafer defocus).
        own = PupilAberration.coerce(aberration)
        if float(defocus_nm) != 0.0:
            own = own.add_defocus(float(defocus_nm))
        self.aberration = own
        self.defocus_nm = float(own.defocus_nm)
        self._custom_grid = source_grid is not None
        if source_grid is None:
            from . import cache

            self.source_grid = cache.source_grid(config)
            self._pupil_stack, self._valid_index = cache.pupil_stack(
                config, own
            )
            self._conj_pairs = cache.conj_pairs(config, own)
        else:
            from .pupil import aberrated_pupil_stack, conj_pair_indices

            self.source_grid = source_grid
            stack, valid_index = aberrated_pupil_stack(
                config, self.source_grid, own
            )
            self._pupil_stack = ad.Tensor(stack)
            self._valid_index = valid_index
            self._conj_pairs = conj_pair_indices(
                stack, valid_index, self.source_grid
            )
        self.num_source_points = self._pupil_stack.shape[0]
        #: Per-condition (stack, conj_pairs) memo for custom-grid engines
        #: (cache-backed engines resolve through repro.optics.cache).
        #: Guarded by a lock: cached engines are shared across threads,
        #: and the condition axis now fans out concurrently.
        self._condition_memo: dict = {}
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    def condition_stacks(self, conditions):
        """Per-condition ``(pupil_stack_tensor, conj_pairs)`` pairs.

        The condition axis of a process window: one entry per distinct
        pupil aberration, shared through :mod:`repro.optics.cache` (or a
        per-engine memo when a custom source grid is in play).  Entries
        of ``conditions`` are anything
        :meth:`repro.optics.zernike.PupilAberration.coerce` accepts —
        plain defocus floats keep working.  The null condition keeps its
        real stack and verified ``+/-sigma`` pairing; aberrated stacks
        are complex and opt out of pairing.
        """
        from .zernike import PupilAberration

        out = []
        for condition in conditions:
            ab = PupilAberration.coerce(condition)
            if ab.cache_key == self.aberration.cache_key:
                out.append((self._pupil_stack, self._conj_pairs))
            elif not self._custom_grid:
                from . import cache

                stack_t, _ = cache.pupil_stack(self.config, ab)
                out.append((stack_t, cache.conj_pairs(self.config, ab)))
            else:
                key = ab.cache_key
                with self._memo_lock:
                    entry = self._condition_memo.get(key)
                if entry is None:
                    from .engine import CONDITION_MEMO_MAX
                    from .pupil import aberrated_pupil_stack, conj_pair_indices

                    # Build outside the lock (stacks are heavy); insert
                    # under it, first build wins (values are
                    # deterministic, so concurrent builders agree).
                    stack, valid_index = aberrated_pupil_stack(
                        self.config, self.source_grid, ab
                    )
                    built = (
                        ad.Tensor(stack),
                        conj_pair_indices(stack, valid_index, self.source_grid),
                    )
                    with self._memo_lock:
                        entry = self._condition_memo.get(key)
                        if entry is None:
                            if len(self._condition_memo) >= CONDITION_MEMO_MAX:
                                # Bounded FIFO: cached engines are shared,
                                # so the memo must not grow with every
                                # condition ever seen.
                                del self._condition_memo[
                                    next(iter(self._condition_memo))
                                ]
                            self._condition_memo[key] = built
                            entry = built
                out.append(entry)
        return out

    def source_weights(self, source: ad.Tensor) -> ad.Tensor:
        """Extract the valid-point weight vector ``j_s`` from a source image."""
        return F.getitem(source, self._valid_index)

    def aerial(self, mask: ad.Tensor, source: Optional[ad.Tensor] = None) -> ad.Tensor:
        """Aerial image intensity for mask(s) and source (N_j, N_j).

        ``mask`` is a single ``(N, N)`` tile or a ``(B, N, N)`` tile
        batch (a batch returns ``(B, N, N)`` intensities).  Differentiable
        w.r.t. both arguments; intensity is normalized by the total
        source weight (clear field -> 1.0).
        """
        if source is None:
            raise ValueError("AbbeImaging.aerial requires a source image")
        j = self.source_weights(source)
        # Normalizing the (S,) weight vector instead of the (B, N, N)
        # output keeps the division off the big array.
        jn = F.div(j, F.add(F.sum(j), _EPS))
        if self.fused:
            return F.incoherent_image(
                mask, self._pupil_stack, jn, conj_pairs=self._conj_pairs
            )
        return F.incoherent_image_composed(mask, self._pupil_stack, jn)

    def aerial_fast(
        self, mask: MaskLike, source: Optional[MaskLike] = None
    ) -> np.ndarray:
        """Inference fast path: no autodiff graph, zero-weight points pruned.

        Numerically matches :meth:`aerial` (pruning a source point whose
        weight is exactly zero is exact), operates on plain numpy arrays
        and returns one.  This is the path behind ``images()``, metric
        evaluation and the harness judge.
        """
        if source is None:
            raise ValueError("AbbeImaging.aerial_fast requires a source image")
        src = source.data if isinstance(source, ad.Tensor) else np.asarray(source)
        src = np.asarray(src, dtype=np.float64)
        tiles, single = as_tile_batch(mask, self.config.mask_size)
        j = src[self._valid_index]
        out = incoherent_sum_fast(
            tiles, self._pupil_stack.data, j, float(j.sum()) + _EPS
        )
        return out[0] if single else out

    # ------------------------------------------------------------------
    # process-condition axis
    # ------------------------------------------------------------------
    def aerial_conditions(
        self,
        mask: ad.Tensor,
        source: ad.Tensor,
        conditions=(0.0,),
        *,
        focus_values=None,
    ) -> ad.Tensor:
        """Aerial stack across pupil conditions: ``(F, B, N, N)``.

        One fused :func:`repro.autodiff.functional.incoherent_image_stack`
        node evaluates every distinct aberration of a process window
        against a single shared mask-spectrum FFT; dose corners never
        reach this layer (dose is an exact post-aerial ``dose**2``
        scaling applied by the resist model).  ``conditions`` entries
        are defocus floats or any
        :meth:`repro.optics.zernike.PupilAberration.coerce` argument
        (``focus_values`` is the legacy keyword alias).  Single
        ``(N, N)`` masks return ``(F, N, N)``.  Differentiable w.r.t.
        mask and source exactly like :meth:`aerial` (including
        second-order products through the primitive's composed-op
        ``create_graph`` fallback).  As with :meth:`aerial`,
        ``fused=False`` engines build the composed-op reference graph
        instead (one :func:`incoherent_image_composed` per condition,
        scattered into the condition stack).
        """
        if focus_values is not None:
            conditions = focus_values
        if source is None:
            raise ValueError("AbbeImaging.aerial_conditions requires a source")
        j = self.source_weights(source)
        jn = F.div(j, F.add(F.sum(j), _EPS))
        stacks_pairs = self.condition_stacks(conditions)
        if not self.fused:
            aerials = [
                F.incoherent_image_composed(mask, stack, jn)
                for stack, _ in stacks_pairs
            ]
            shape = (len(aerials),) + aerials[0].shape
            total = None
            for fi, aerial in enumerate(aerials):
                part = F.scatter(aerial, fi, shape)
                total = part if total is None else F.add(total, part)
            return total
        return F.incoherent_image_stack(
            mask,
            [stack for stack, _ in stacks_pairs],
            jn,
            conj_pairs=[pairs for _, pairs in stacks_pairs],
        )

    def aerial_conditions_fast(
        self,
        mask: MaskLike,
        source: MaskLike,
        conditions=(0.0,),
        *,
        focus_values=None,
    ) -> np.ndarray:
        """Graph-free condition-axis forward, matching
        :meth:`aerial_conditions` numerically (inference/judge path).
        Per-condition passes fan out across the
        :func:`repro.optics.fftlib.map_conditions` thread pool."""
        from . import fftlib

        if focus_values is not None:
            conditions = focus_values
        if source is None:
            raise ValueError(
                "AbbeImaging.aerial_conditions_fast requires a source"
            )
        src = source.data if isinstance(source, ad.Tensor) else np.asarray(source)
        src = np.asarray(src, dtype=np.float64)
        tiles, single = as_tile_batch(mask, self.config.mask_size)
        j = src[self._valid_index]
        norm = float(j.sum()) + _EPS
        stacks_pairs = self.condition_stacks(conditions)

        def _one_condition(fi: int) -> np.ndarray:
            with obs_span("engine.condition", index=fi):
                return incoherent_sum_fast(
                    tiles, stacks_pairs[fi][0].data, j, norm
                )

        with obs_span(
            "engine.conditions", engine="abbe", n=len(stacks_pairs)
        ):
            out = np.stack(
                fftlib.map_conditions(_one_condition, len(stacks_pairs))
            )
        return out[:, 0] if single else out

    def source_intensity_basis(
        self, masks: np.ndarray, pupil_stack: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-source-point intensity basis ``X[b, s] = |IFFT(H_s FFT(M_b))|^2``.

        Abbe's aerial image is *linear* in the normalized source weights:
        ``A[b] = sum_s (j_s / sum j) X[b, s]`` with ``X`` independent of
        the source.  At a fixed mask the basis is therefore a constant,
        and any source-only quantity (SO losses, inner-Hessian products
        in bilevel SMO) can be rebuilt from it without touching an FFT.
        Returns a ``(B, S, N, N)`` numpy array.  The decomposition is
        mathematically exact; numerically it matches the fused
        :meth:`aerial` to floating-point rounding (~1e-16 relative — the
        fused forward accumulates in conjugate-paired chunks, so the
        summation order differs).

        ``pupil_stack`` substitutes a different kernel stack (e.g. one
        focus condition's defocused pupils from
        :meth:`condition_stacks`) for the engine's own — the
        process-window objective builds one basis per focus value this
        way.
        """
        from . import backend as abk

        bk = abk.active_backend()
        tiles, _ = as_tile_batch(masks, self.config.mask_size)
        kernels = self._pupil_stack.data if pupil_stack is None else pupil_stack
        fm = bk.fft2(bk.from_host(tiles))  # (B, N, N)
        kern = bk.from_host(kernels)
        out = abk.HOST.empty((tiles.shape[0],) + kernels.shape, np.float64)
        # Tile-at-a-time keeps the working set cache-sized; per-tile
        # results are bitwise identical to the full-stack transform.
        for b in range(tiles.shape[0]):
            fields = bk.ifft2(kern * fm[b], overwrite_x=True)
            out[b] = bk.to_host(bk.abs2(fields))
        return out  # (B, S, N, N)

    def aerial_from_basis(self, basis: ad.Tensor, source: ad.Tensor) -> ad.Tensor:
        """Differentiable aerial from a fixed intensity basis (FFT-free).

        Equal to the batched :meth:`aerial` at the mask that produced
        ``basis`` as a *function* of the source (same derivatives, hence
        exact inner-Hessian oracles) and numerically to fp rounding, but
        the graph touches only the source parameters — the cheap path
        for source-only gradients.
        """
        j = self.source_weights(source)
        norm = F.add(F.sum(j), _EPS)
        s = self.num_source_points
        jw = F.reshape(F.div(j, norm), (1, s, 1, 1))
        return F.sum(F.mul(jw, basis), axis=1)  # (B, N, N)

    def aerial_loop(self, mask: ad.Tensor, source: ad.Tensor) -> ad.Tensor:
        """Reference per-source-point loop (slow path).

        Mathematically identical to :meth:`aerial`; exists to demonstrate
        the batching speed-up measured by ``benchmarks/bench_abbe_accel``.
        """
        j = self.source_weights(source)
        fm = F.fft2(mask)
        total: Optional[ad.Tensor] = None
        for s in range(self.num_source_points):
            h_s = F.getitem(self._pupil_stack, s)
            field = F.ifft2(F.mul(h_s, fm))
            contrib = F.mul(F.getitem(j, s), F.abs2(field))
            total = contrib if total is None else F.add(total, contrib)
        if total is None:
            raise RuntimeError(
                "aerial_loop accumulated no source points; "
                "num_source_points must be >= 1"
            )
        return F.div(total, F.add(F.sum(j), _EPS))

    # ------------------------------------------------------------------
    def clear_field_intensity(self, source: np.ndarray) -> float:
        """Nominal intensity of a fully open mask (sanity-check helper)."""
        img = self.aerial_fast(
            np.ones((self.config.mask_size,) * 2), np.asarray(source)
        )
        return float(img.mean())
