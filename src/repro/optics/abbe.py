"""Differentiable Abbe forward imaging — Equation (2) of the paper.

Abbe's model discretizes the source into points and sums each point's
coherent image intensity:

    I(x, y) = sum_s  j_s * | IFFT( H(f + f_s, g + g_s) * FFT(M) ) |^2

Because every source point's contribution is independent, the whole sum
is evaluated as ONE batched FFT over a ``(S, N, N)`` stack — the same
structure the paper exploits on a GPU (Section 3.1 "Abbe acceleration").
The engine extends that idea across layout tiles: a ``(B, N, N)`` mask
batch is imaged as a single fused ``(B*S, N, N)`` FFT stack instead of B
independent passes.  A per-point Python loop
(:meth:`AbbeImaging.aerial_loop`) is kept for the acceleration benchmark.

Total intensity is normalized by the summed source weight so a clear
field images at intensity 1 for any source shape; this keeps a single
resist threshold meaningful while the source is being optimized.

``AbbeImaging`` implements the :class:`repro.optics.engine.ImagingEngine`
protocol; pupil stacks come from the shared :mod:`repro.optics.cache`
unless a custom source grid is supplied.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from .config import OpticalConfig
from .engine import MaskLike, as_tile_batch, incoherent_sum_fast
from .source import SourceGrid

__all__ = ["AbbeImaging"]

_EPS = 1e-12


class AbbeImaging:
    """Batched, autodiff-compatible Abbe imaging engine.

    Parameters
    ----------
    config:
        Optical configuration; grids are derived from it.
    source_grid:
        Optional pre-built :class:`SourceGrid`.  When omitted, the grid
        and the shifted pupil stack are fetched from the shared optics
        cache, so engines with equal configs share one stack.

    Both :meth:`aerial` arguments are autodiff tensors, so gradients flow
    to the mask *and* the source — the property that Hopkins/SOCS lacks
    and that enables joint SMO (Section 2.1 discussion).
    """

    def __init__(
        self,
        config: OpticalConfig,
        source_grid: Optional[SourceGrid] = None,
        defocus_nm: float = 0.0,
    ):
        config.validate_sampling()
        self.config = config
        self.defocus_nm = float(defocus_nm)
        if source_grid is None:
            from . import cache

            self.source_grid = cache.source_grid(config)
            self._pupil_stack, self._valid_index = cache.pupil_stack(
                config, self.defocus_nm
            )
        else:
            self.source_grid = source_grid
            if self.defocus_nm == 0.0:
                from .pupil import shifted_pupil_stack

                stack, valid_index = shifted_pupil_stack(config, self.source_grid)
            else:
                from .pupil import defocused_pupil_stack

                stack, valid_index = defocused_pupil_stack(
                    config, self.source_grid, self.defocus_nm
                )
            self._pupil_stack = ad.Tensor(stack)
            self._valid_index = valid_index
        self.num_source_points = self._pupil_stack.shape[0]

    # ------------------------------------------------------------------
    def source_weights(self, source: ad.Tensor) -> ad.Tensor:
        """Extract the valid-point weight vector ``j_s`` from a source image."""
        return F.getitem(source, self._valid_index)

    def aerial(self, mask: ad.Tensor, source: Optional[ad.Tensor] = None) -> ad.Tensor:
        """Aerial image intensity for mask(s) and source (N_j, N_j).

        ``mask`` is a single ``(N, N)`` tile or a ``(B, N, N)`` tile
        batch (a batch returns ``(B, N, N)`` intensities).  Differentiable
        w.r.t. both arguments; intensity is normalized by the total
        source weight (clear field -> 1.0).
        """
        if source is None:
            raise ValueError("AbbeImaging.aerial requires a source image")
        j = self.source_weights(source)
        norm = F.add(F.sum(j), _EPS)
        s = self.num_source_points
        if mask.ndim == 2:
            fm = F.fft2(mask)
            fields = F.ifft2(F.mul(self._pupil_stack, fm))  # (S, N, N)
            intensities = F.abs2(fields)
            jw = F.reshape(j, (s, 1, 1))
            total = F.sum(F.mul(jw, intensities), axis=0)
            return F.div(total, norm)
        if mask.ndim != 3:
            raise ValueError(f"mask must be (N, N) or (B, N, N); got {mask.shape}")
        b, n = mask.shape[0], mask.shape[-1]
        fm = F.fft2(mask)  # (B, N, N)
        spectra = F.mul(
            F.reshape(self._pupil_stack, (1, s, n, n)),
            F.reshape(fm, (b, 1, n, n)),
        )
        # One fused (B, S, N, N) stack: the whole batch rides a single
        # vectorized inverse FFT (last-two-axes transform) instead of B
        # independent passes, with no flatten/unflatten graph nodes.
        intensities = F.abs2(F.ifft2(spectra))
        # Normalizing the (S,) weight vector instead of the (B, N, N)
        # output keeps the division off the big array.
        jw = F.reshape(F.div(j, norm), (1, s, 1, 1))
        return F.sum(F.mul(jw, intensities), axis=1)  # (B, N, N)

    def aerial_fast(
        self, mask: MaskLike, source: Optional[MaskLike] = None
    ) -> np.ndarray:
        """Inference fast path: no autodiff graph, zero-weight points pruned.

        Numerically matches :meth:`aerial` (pruning a source point whose
        weight is exactly zero is exact), operates on plain numpy arrays
        and returns one.  This is the path behind ``images()``, metric
        evaluation and the harness judge.
        """
        if source is None:
            raise ValueError("AbbeImaging.aerial_fast requires a source image")
        src = source.data if isinstance(source, ad.Tensor) else np.asarray(source)
        src = np.asarray(src, dtype=np.float64)
        tiles, single = as_tile_batch(mask, self.config.mask_size)
        j = src[self._valid_index]
        out = incoherent_sum_fast(
            tiles, self._pupil_stack.data, j, float(j.sum()) + _EPS
        )
        return out[0] if single else out

    def source_intensity_basis(self, masks: np.ndarray) -> np.ndarray:
        """Per-source-point intensity basis ``X[b, s] = |IFFT(H_s FFT(M_b))|^2``.

        Abbe's aerial image is *linear* in the normalized source weights:
        ``A[b] = sum_s (j_s / sum j) X[b, s]`` with ``X`` independent of
        the source.  At a fixed mask the basis is therefore a constant,
        and any source-only quantity (SO losses, inner-Hessian products
        in bilevel SMO) can be rebuilt from it without touching an FFT.
        Returns a ``(B, S, N, N)`` numpy array computed with exactly the
        ops of :meth:`aerial` (bitwise-matching intensities).
        """
        tiles, _ = as_tile_batch(masks, self.config.mask_size)
        kernels = self._pupil_stack.data
        fm = np.fft.fft2(tiles)  # (B, N, N)
        out = np.empty((tiles.shape[0],) + kernels.shape)
        # Tile-at-a-time keeps the working set cache-sized; per-tile
        # results are bitwise identical to the full-stack transform.
        for b in range(tiles.shape[0]):
            fields = np.fft.ifft2(kernels * fm[b])
            out[b] = (fields * np.conj(fields)).real
        return out  # (B, S, N, N)

    def aerial_from_basis(self, basis: ad.Tensor, source: ad.Tensor) -> ad.Tensor:
        """Differentiable aerial from a fixed intensity basis (FFT-free).

        Numerically identical to the batched :meth:`aerial` at the mask
        that produced ``basis``, but the graph touches only the source
        parameters — the cheap path for source-only gradients and exact
        inner-Hessian oracles.
        """
        j = self.source_weights(source)
        norm = F.add(F.sum(j), _EPS)
        s = self.num_source_points
        jw = F.reshape(F.div(j, norm), (1, s, 1, 1))
        return F.sum(F.mul(jw, basis), axis=1)  # (B, N, N)

    def aerial_loop(self, mask: ad.Tensor, source: ad.Tensor) -> ad.Tensor:
        """Reference per-source-point loop (slow path).

        Mathematically identical to :meth:`aerial`; exists to demonstrate
        the batching speed-up measured by ``benchmarks/bench_abbe_accel``.
        """
        j = self.source_weights(source)
        fm = F.fft2(mask)
        total: Optional[ad.Tensor] = None
        for s in range(self.num_source_points):
            h_s = F.getitem(self._pupil_stack, s)
            field = F.ifft2(F.mul(h_s, fm))
            contrib = F.mul(F.getitem(j, s), F.abs2(field))
            total = contrib if total is None else F.add(total, contrib)
        assert total is not None
        return F.div(total, F.add(F.sum(j), _EPS))

    # ------------------------------------------------------------------
    def clear_field_intensity(self, source: np.ndarray) -> float:
        """Nominal intensity of a fully open mask (sanity-check helper)."""
        img = self.aerial_fast(
            np.ones((self.config.mask_size,) * 2), np.asarray(source)
        )
        return float(img.mean())
