"""Differentiable Abbe forward imaging — Equation (2) of the paper.

Abbe's model discretizes the source into points and sums each point's
coherent image intensity:

    I(x, y) = sum_s  j_s * | IFFT( H(f + f_s, g + g_s) * FFT(M) ) |^2

Because every source point's contribution is independent, the whole sum
is evaluated as ONE batched FFT over a ``(S, N, N)`` stack — the same
structure the paper exploits on a GPU (Section 3.1 "Abbe acceleration").
A per-point Python loop (:meth:`AbbeImaging.aerial_loop`) is kept for the
acceleration benchmark.

Total intensity is normalized by the summed source weight so a clear
field images at intensity 1 for any source shape; this keeps a single
resist threshold meaningful while the source is being optimized.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from .config import OpticalConfig
from .pupil import shifted_pupil_stack
from .source import SourceGrid

__all__ = ["AbbeImaging"]

_EPS = 1e-12


class AbbeImaging:
    """Batched, autodiff-compatible Abbe imaging engine.

    Parameters
    ----------
    config:
        Optical configuration; grids are derived from it.
    source_grid:
        Optional pre-built :class:`SourceGrid` (defaults to the config's).

    Both :meth:`aerial` arguments are autodiff tensors, so gradients flow
    to the mask *and* the source — the property that Hopkins/SOCS lacks
    and that enables joint SMO (Section 2.1 discussion).
    """

    def __init__(
        self,
        config: OpticalConfig,
        source_grid: Optional[SourceGrid] = None,
        defocus_nm: float = 0.0,
    ):
        config.validate_sampling()
        self.config = config
        self.defocus_nm = float(defocus_nm)
        self.source_grid = source_grid or SourceGrid.from_config(config)
        if self.defocus_nm == 0.0:
            stack, valid_index = shifted_pupil_stack(config, self.source_grid)
        else:
            from .pupil import defocused_pupil_stack

            stack, valid_index = defocused_pupil_stack(
                config, self.source_grid, self.defocus_nm
            )
        self._pupil_stack = ad.Tensor(stack)
        self._valid_index = valid_index
        self.num_source_points = stack.shape[0]

    # ------------------------------------------------------------------
    def source_weights(self, source: ad.Tensor) -> ad.Tensor:
        """Extract the valid-point weight vector ``j_s`` from a source image."""
        return F.getitem(source, self._valid_index)

    def aerial(self, mask: ad.Tensor, source: ad.Tensor) -> ad.Tensor:
        """Aerial image intensity for mask (N,N) and source (N_j,N_j).

        Differentiable w.r.t. both arguments.  Intensity is normalized by
        the total source weight (clear field -> 1.0).
        """
        j = self.source_weights(source)
        fm = F.fft2(mask)
        fields = F.ifft2(F.mul(self._pupil_stack, fm))  # (S, N, N)
        intensities = F.abs2(fields)
        jw = F.reshape(j, (self.num_source_points, 1, 1))
        total = F.sum(F.mul(jw, intensities), axis=0)
        return F.div(total, F.add(F.sum(j), _EPS))

    def aerial_loop(self, mask: ad.Tensor, source: ad.Tensor) -> ad.Tensor:
        """Reference per-source-point loop (slow path).

        Mathematically identical to :meth:`aerial`; exists to demonstrate
        the batching speed-up measured by ``benchmarks/bench_abbe_accel``.
        """
        j = self.source_weights(source)
        fm = F.fft2(mask)
        total: Optional[ad.Tensor] = None
        for s in range(self.num_source_points):
            h_s = F.getitem(self._pupil_stack, s)
            field = F.ifft2(F.mul(h_s, fm))
            contrib = F.mul(F.getitem(j, s), F.abs2(field))
            total = contrib if total is None else F.add(total, contrib)
        assert total is not None
        return F.div(total, F.add(F.sum(j), _EPS))

    # ------------------------------------------------------------------
    def clear_field_intensity(self, source: np.ndarray) -> float:
        """Nominal intensity of a fully open mask (sanity-check helper)."""
        with ad.no_grad():
            mask = ad.Tensor(np.ones((self.config.mask_size,) * 2))
            img = self.aerial(mask, ad.Tensor(source))
        return float(img.data.mean())
