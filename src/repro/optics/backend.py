"""Pluggable array-backend seam for the imaging hot paths.

:class:`ArrayBackend` is the single surface through which the fused
incoherent-imaging primitives (:func:`repro.autodiff.functional.
incoherent_image` / ``incoherent_image_stack``), the engines' fast
paths, ``source_intensity_basis`` and the optics cache's grid builders
allocate arrays, run FFTs and move data between the host and a compute
device.  The kernels themselves are written with plain Python operators
(slicing, broadcasting, ``@``, ``+=``) that numpy arrays and torch /
cupy tensors implement identically, so one backend object — supplying
allocation, elementwise ``|x|^2``, reductions, FFT dispatch and
host/device transfer — is all that changes between a CPU run and a GPU
run.

Backends
--------
``numpy`` (default)
    Delegates every transform to :mod:`repro.optics.fftlib`, so the
    scipy/numpy FFT choice, worker counts and the compute-precision
    policy keep applying unchanged.  ``from_host``/``to_host`` are
    identity views: routing the numpy path through the seam executes
    the exact same numpy calls in the same order as before the seam
    existed (bitwise-identical results).

``torch``
    Optional; CPU now, CUDA when :func:`torch.cuda.is_available`.
    Activation caps torch's intra-op threads at the fftlib worker
    budget so ``use_backend("torch")`` composes with
    ``fftlib.use(budget=...)`` instead of oversubscribing cores.
    Frozen cached constants (read-only arrays such as pupil stacks)
    are transferred once and memoized per backend instance.

``cupy``
    Availability-gated stub with the same method set; every array op
    is routed, but it is exercised only where cupy (and a GPU) exist.

``strict``
    A test double wrapping numpy: every array produced by the seam is
    tagged with an ``ndarray`` subclass, FFT entry points **raise**
    :class:`BackendSeamError` when handed an untagged (raw host) array,
    and counters record allocations, transfer calls and the exact
    number of 2-D transforms executed.  The seam test suite uses it to
    prove the BiSMO hot path performs zero out-of-seam array ops and
    that conjugate-pair FFT halving has not regressed.

Selection is per-run via ``REPRO_BACKEND=numpy|torch|cupy|strict`` (read
once at import; this module is a registered raw env reader) or scoped
with the :func:`use_backend` context manager.  ``HOST`` is the numpy
backend singleton, importable by hot-path modules for declared
host-side allocations (graph leaves, gradient accumulators, output
buffers) so the R9 backend-seam lint can tell routed allocations from
raw ``np.zeros``/``np.empty`` calls.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from . import fftlib

__all__ = [
    "Array",
    "ArrayBackend",
    "NumpyBackend",
    "TorchBackend",
    "CupyBackend",
    "StrictBackend",
    "BackendSeamError",
    "HOST",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "active_backend",
    "set_backend",
    "use_backend",
    "env_default_backend",
    "describe",
    "counters_snapshot",
]

#: Backend-native array handle: ``np.ndarray`` for numpy/strict,
#: ``torch.Tensor`` for torch, ``cupy.ndarray`` for cupy.
Array = Any


class BackendSeamError(RuntimeError):
    """A raw host array reached a seam FFT without entering the seam."""


# ----------------------------------------------------------------------
# the backend protocol (base class with shared host-policy defaults)
# ----------------------------------------------------------------------
class ArrayBackend:
    """Allocation, elementwise ops, reductions, FFTs and transfer.

    Subclasses implement the device-side methods; the base class owns
    the *host* policies every backend shares: graph storage coercion
    (``float64``/``complex128`` numpy arrays) and the host-prep dtype
    pair from the fftlib precision policy.
    """

    name: str = "base"

    # -- availability / activation -------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can be constructed in this environment."""
        return True

    def activate(self) -> None:
        """Hook run when the backend becomes active (thread caps etc.)."""
        return None

    def synchronize(self) -> None:
        """Block until outstanding device work completes (no-op on CPU)."""
        return None

    # -- host policy (shared) ------------------------------------------
    def coerce_host(self, data: Any) -> np.ndarray:
        """Coerce arbitrary array-likes to a float64/complex128 ndarray.

        This is the :class:`repro.autodiff.tensor.Tensor` storage
        policy: the autodiff graph lives on the host in double
        precision regardless of the active compute backend.
        """
        arr = np.asarray(data)
        if np.iscomplexobj(arr):
            if arr.dtype != np.complex128:
                arr = arr.astype(np.complex128)
        elif arr.dtype != np.float64:
            arr = arr.astype(np.float64)
        return arr

    def compute_dtypes(self) -> Tuple[np.dtype, np.dtype]:
        """Host-prep (float, complex) dtype pair per the fftlib policy."""
        return fftlib.compute_dtypes()

    # -- dtype handles (backend-native) --------------------------------
    @property
    def float64(self) -> Any:
        raise NotImplementedError

    @property
    def complex128(self) -> Any:
        raise NotImplementedError

    # -- host/device transfer ------------------------------------------
    def from_host(self, x: Any) -> Array:
        """Move a host array into the backend's native representation."""
        raise NotImplementedError

    def to_host(self, x: Array) -> np.ndarray:
        """Move a backend array back to a host ndarray."""
        raise NotImplementedError

    # -- allocation ----------------------------------------------------
    def zeros(self, shape: Any, dtype: Any) -> Array:
        raise NotImplementedError

    def empty(self, shape: Any, dtype: Any) -> Array:
        raise NotImplementedError

    def asarray(self, x: Any, dtype: Any = None) -> Array:
        raise NotImplementedError

    # -- elementwise / reductions --------------------------------------
    def abs2(self, x: Array) -> Array:
        """Squared magnitude ``|x|^2`` as a real array."""
        raise NotImplementedError

    def conj(self, x: Array) -> Array:
        raise NotImplementedError

    def astype(self, x: Array, dtype: Any) -> Array:
        raise NotImplementedError

    def iscomplex(self, x: Array) -> bool:
        raise NotImplementedError

    def sum(self, x: Array, axis: Optional[int] = None) -> Array:
        raise NotImplementedError

    def einsum(self, spec: str, *operands: Array) -> Array:
        raise NotImplementedError

    # -- FFTs (always over the last two axes) --------------------------
    def fft2(self, x: Array, overwrite_x: bool = False) -> Array:
        raise NotImplementedError

    def ifft2(self, x: Array, overwrite_x: bool = False) -> Array:
        raise NotImplementedError

    def fftfreq(self, n: int, d: float = 1.0) -> Array:
        raise NotImplementedError

    def freq_reverse(self, x: Array) -> Array:
        """Map samples of ``f`` to samples of ``-f`` on the FFT grid."""
        raise NotImplementedError

    # -- introspection -------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Environment fingerprint for bench records and debugging."""
        return {"backend": self.name}


# ----------------------------------------------------------------------
# numpy (default) — delegates transforms to fftlib, transfer is identity
# ----------------------------------------------------------------------
class NumpyBackend(ArrayBackend):
    """Default host backend; the pre-seam numpy semantics, verbatim."""

    name = "numpy"

    @property
    def float64(self) -> Any:
        return np.float64

    @property
    def complex128(self) -> Any:
        return np.complex128

    def from_host(self, x: Any) -> np.ndarray:
        return np.asarray(x)

    def to_host(self, x: Any) -> np.ndarray:
        return np.asarray(x)

    def zeros(self, shape: Any, dtype: Any) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape: Any, dtype: Any) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def asarray(self, x: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(x, dtype=dtype)

    def abs2(self, x: Any) -> np.ndarray:
        if np.iscomplexobj(x):
            # square(re) += square(im): bitwise-identical to both the
            # historical hot-path idioms (split squares and
            # ``(f * conj(f)).real`` round the same three operations).
            out = np.square(x.real)
            out += np.square(x.imag)
            return out
        return np.square(x)

    def conj(self, x: Any) -> np.ndarray:
        return np.conj(x)

    def astype(self, x: Any, dtype: Any) -> np.ndarray:
        return np.asarray(x).astype(dtype, copy=False)

    def iscomplex(self, x: Any) -> bool:
        return bool(np.iscomplexobj(x))

    def sum(self, x: Any, axis: Optional[int] = None) -> Any:
        return np.sum(x, axis=axis)

    def einsum(self, spec: str, *operands: Any) -> np.ndarray:
        return np.einsum(spec, *operands)

    def fft2(self, x: Any, overwrite_x: bool = False) -> np.ndarray:
        return fftlib.fft2(x, overwrite_x=overwrite_x)

    def ifft2(self, x: Any, overwrite_x: bool = False) -> np.ndarray:
        return fftlib.ifft2(x, overwrite_x=overwrite_x)

    def fftfreq(self, n: int, d: float = 1.0) -> np.ndarray:
        return fftlib.fftfreq(n, d=d)

    def freq_reverse(self, x: Any) -> np.ndarray:
        return fftlib.freq_reverse(x)

    def describe(self) -> Dict[str, Any]:
        info = {"backend": self.name, "device": "cpu"}
        info.update({"fft_" + k: v for k, v in fftlib.describe().items()})
        return info


# ----------------------------------------------------------------------
# torch — CPU now, CUDA when present; availability-gated import
# ----------------------------------------------------------------------
class TorchBackend(ArrayBackend):
    """Torch tensors with :mod:`torch.fft` transforms.

    Read-only host arrays (the optics cache freezes every shared
    constant) are copied to the device once and memoized per instance;
    writable arrays transfer fresh each call (they are transient).
    """

    name = "torch"

    def __init__(self) -> None:
        import torch

        self._torch = torch
        self._device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu"
        )
        self._lock = threading.Lock()
        self._transfer_memo: Dict[int, Tuple[np.ndarray, Any]] = {}

    _TRANSFER_MEMO_MAX = 32

    @classmethod
    def is_available(cls) -> bool:
        try:
            import torch  # noqa: F401
        except Exception:
            return False
        return True

    def activate(self) -> None:
        # Compose with the unified worker budget: torch's intra-op
        # threads get the same global cap the FFT dispatch honors.
        budget = int(fftlib.effective_budget())
        if budget >= 1:
            self._torch.set_num_threads(budget)

    def synchronize(self) -> None:
        if self._device.type == "cuda":
            self._torch.cuda.synchronize()

    @property
    def float64(self) -> Any:
        return self._torch.float64

    @property
    def complex128(self) -> Any:
        return self._torch.complex128

    def from_host(self, x: Any) -> Array:
        torch = self._torch
        if isinstance(x, torch.Tensor):
            return x
        arr = np.asarray(x)
        if not arr.flags.writeable:
            key = id(arr)
            with self._lock:
                hit = self._transfer_memo.get(key)
            if hit is not None and hit[0] is arr:
                return hit[1]
            dev = torch.as_tensor(arr.copy()).to(self._device)
            with self._lock:
                if len(self._transfer_memo) >= self._TRANSFER_MEMO_MAX:
                    self._transfer_memo.pop(next(iter(self._transfer_memo)))
                self._transfer_memo[key] = (arr, dev)
            return dev
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        return torch.as_tensor(arr).to(self._device)

    def to_host(self, x: Array) -> np.ndarray:
        if isinstance(x, self._torch.Tensor):
            return x.detach().resolve_conj().cpu().numpy()
        return np.asarray(x)

    def zeros(self, shape: Any, dtype: Any) -> Array:
        return self._torch.zeros(tuple(shape), dtype=dtype, device=self._device)

    def empty(self, shape: Any, dtype: Any) -> Array:
        return self._torch.empty(tuple(shape), dtype=dtype, device=self._device)

    def asarray(self, x: Any, dtype: Any = None) -> Array:
        return self._torch.as_tensor(x, dtype=dtype, device=self._device)

    def abs2(self, x: Array) -> Array:
        torch = self._torch
        if torch.is_complex(x):
            out = torch.square(torch.real(x))
            out += torch.square(torch.imag(x))
            return out
        return torch.square(x)

    def conj(self, x: Array) -> Array:
        # resolve_conj materializes the lazy conj bit so downstream
        # einsum/matmul kernels never see a conj view.
        return self._torch.conj(x).resolve_conj()

    def astype(self, x: Array, dtype: Any) -> Array:
        return x.to(dtype)

    def iscomplex(self, x: Array) -> bool:
        return bool(self._torch.is_complex(x))

    def sum(self, x: Array, axis: Optional[int] = None) -> Array:
        if axis is None:
            return self._torch.sum(x)
        return self._torch.sum(x, dim=axis)

    def einsum(self, spec: str, *operands: Array) -> Array:
        return self._torch.einsum(spec, *operands)

    def fft2(self, x: Array, overwrite_x: bool = False) -> Array:
        return self._torch.fft.fft2(x)

    def ifft2(self, x: Array, overwrite_x: bool = False) -> Array:
        return self._torch.fft.ifft2(x)

    def fftfreq(self, n: int, d: float = 1.0) -> Array:
        return self._torch.fft.fftfreq(
            n, d=d, dtype=self._torch.float64, device=self._device
        )

    def freq_reverse(self, x: Array) -> Array:
        torch = self._torch
        return torch.roll(
            torch.flip(x, dims=(-2, -1)), shifts=(1, 1), dims=(-2, -1)
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "device": self._device.type,
            "torch_version": str(self._torch.__version__),
            "torch_threads": int(self._torch.get_num_threads()),
        }


# ----------------------------------------------------------------------
# cupy — stub with the full method set, exercised only where cupy exists
# ----------------------------------------------------------------------
class CupyBackend(ArrayBackend):
    """CuPy device arrays; every op routed, gated on cupy availability."""

    name = "cupy"

    def __init__(self) -> None:
        import cupy

        self._cp = cupy

    @classmethod
    def is_available(cls) -> bool:
        try:
            import cupy  # noqa: F401
        except Exception:
            return False
        return True

    def synchronize(self) -> None:
        self._cp.cuda.get_current_stream().synchronize()

    @property
    def float64(self) -> Any:
        return self._cp.float64

    @property
    def complex128(self) -> Any:
        return self._cp.complex128

    def from_host(self, x: Any) -> Array:
        return self._cp.asarray(np.asarray(x))

    def to_host(self, x: Array) -> np.ndarray:
        return np.asarray(self._cp.asnumpy(x))

    def zeros(self, shape: Any, dtype: Any) -> Array:
        return self._cp.zeros(tuple(shape), dtype=dtype)

    def empty(self, shape: Any, dtype: Any) -> Array:
        return self._cp.empty(tuple(shape), dtype=dtype)

    def asarray(self, x: Any, dtype: Any = None) -> Array:
        return self._cp.asarray(x, dtype=dtype)

    def abs2(self, x: Array) -> Array:
        cp = self._cp
        if x.dtype.kind == "c":
            out = cp.square(x.real)
            out += cp.square(x.imag)
            return out
        return cp.square(x)

    def conj(self, x: Array) -> Array:
        return self._cp.conj(x)

    def astype(self, x: Array, dtype: Any) -> Array:
        return x.astype(dtype, copy=False)

    def iscomplex(self, x: Array) -> bool:
        return bool(x.dtype.kind == "c")

    def sum(self, x: Array, axis: Optional[int] = None) -> Array:
        return self._cp.sum(x, axis=axis)

    def einsum(self, spec: str, *operands: Array) -> Array:
        return self._cp.einsum(spec, *operands)

    def fft2(self, x: Array, overwrite_x: bool = False) -> Array:
        return self._cp.fft.fft2(x, axes=(-2, -1))

    def ifft2(self, x: Array, overwrite_x: bool = False) -> Array:
        return self._cp.fft.ifft2(x, axes=(-2, -1))

    def fftfreq(self, n: int, d: float = 1.0) -> Array:
        return self._cp.fft.fftfreq(n, d=d)

    def freq_reverse(self, x: Array) -> Array:
        return self._cp.roll(x[..., ::-1, ::-1], shift=(1, 1), axis=(-2, -1))

    def describe(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "device": "cuda",
            "cupy_version": str(self._cp.__version__),
        }


# ----------------------------------------------------------------------
# strict — instrumented numpy wrapper proving seam discipline in tests
# ----------------------------------------------------------------------
class _StrictArray(np.ndarray):
    """Tag subclass marking arrays that entered through the seam.

    Numpy propagates the subclass through views, slicing, ufuncs and
    arithmetic, so any array descending from a seam transfer or seam
    allocation stays tagged all the way to the next FFT — and any raw
    host array smuggled into the hot path arrives untagged.
    """


class StrictBackend(NumpyBackend):
    """Numpy semantics plus seam enforcement and op accounting.

    ``fft2``/``ifft2`` raise :class:`BackendSeamError` unless the
    operand is tagged, and ``counters`` tracks transfer/allocation
    calls, FFT calls, and the exact number of 2-D transforms each call
    performed (``fft2_transforms``/``ifft2_transforms``) — the number
    the conjugate-pair streaming optimisation halves, so a pairing
    regression fails an exact-count assertion instead of only a bench.
    Results are bitwise identical to the numpy backend (tagging is a
    zero-copy ndarray view).
    """

    name = "strict"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        """Zero all counters (call at the start of a measured region)."""
        self.counters = {
            "from_host": 0,
            "to_host": 0,
            "alloc": 0,
            "fft2_calls": 0,
            "ifft2_calls": 0,
            "fft2_transforms": 0,
            "ifft2_transforms": 0,
        }

    @staticmethod
    def _tag(x: Any) -> np.ndarray:
        return np.asarray(x).view(_StrictArray)

    @staticmethod
    def _transforms(x: np.ndarray) -> int:
        if x.ndim <= 2:
            return 1
        return int(np.prod(x.shape[:-2]))

    def _require_tagged(self, x: Any, op: str) -> None:
        if not isinstance(x, _StrictArray):
            raise BackendSeamError(
                f"StrictBackend.{op} received a raw host array that did "
                "not enter through the seam (from_host/zeros/empty)"
            )

    def from_host(self, x: Any) -> np.ndarray:
        self.counters["from_host"] += 1
        return self._tag(x)

    def to_host(self, x: Any) -> np.ndarray:
        self.counters["to_host"] += 1
        return np.asarray(x)

    def zeros(self, shape: Any, dtype: Any) -> np.ndarray:
        self.counters["alloc"] += 1
        return self._tag(np.zeros(shape, dtype=dtype))

    def empty(self, shape: Any, dtype: Any) -> np.ndarray:
        self.counters["alloc"] += 1
        return self._tag(np.empty(shape, dtype=dtype))

    def asarray(self, x: Any, dtype: Any = None) -> np.ndarray:
        return self._tag(np.asarray(x, dtype=dtype))

    def fft2(self, x: Any, overwrite_x: bool = False) -> np.ndarray:
        self._require_tagged(x, "fft2")
        self.counters["fft2_calls"] += 1
        self.counters["fft2_transforms"] += self._transforms(x)
        return self._tag(
            fftlib.fft2(np.asarray(x), overwrite_x=overwrite_x)
        )

    def ifft2(self, x: Any, overwrite_x: bool = False) -> np.ndarray:
        self._require_tagged(x, "ifft2")
        self.counters["ifft2_calls"] += 1
        self.counters["ifft2_transforms"] += self._transforms(x)
        return self._tag(
            fftlib.ifft2(np.asarray(x), overwrite_x=overwrite_x)
        )

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["backend"] = self.name
        return info


# ----------------------------------------------------------------------
# registry and per-run selection
# ----------------------------------------------------------------------
_LOCK = threading.Lock()
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_PROBES: Dict[str, Callable[[], bool]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
_STATE: Dict[str, str] = {"backend": "numpy"}


def register_backend(
    name: str,
    factory: Callable[[], ArrayBackend],
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend ``factory`` under ``name``.

    ``available`` is an optional cheap probe (e.g. an import check) run
    by :func:`available_backends`; construction errors from ``factory``
    surface at first :func:`get_backend` call either way.
    """
    with _LOCK:
        _FACTORIES[name] = factory
        _PROBES[name] = available if available is not None else (lambda: True)
        _INSTANCES.pop(name, None)


def registered_backends() -> Tuple[str, ...]:
    """All registered backend names (available or not)."""
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def available_backends() -> Tuple[str, ...]:
    """Registered backend names whose availability probe passes."""
    with _LOCK:
        items = list(_PROBES.items())
    return tuple(sorted(name for name, probe in items if probe()))


def get_backend(name: str) -> ArrayBackend:
    """Return the (memoized) backend instance registered under ``name``."""
    with _LOCK:
        inst = _INSTANCES.get(name)
        if inst is not None:
            return inst
        factory = _FACTORIES.get(name)
    if factory is None:
        raise KeyError(
            f"unknown array backend {name!r}; registered: "
            f"{', '.join(registered_backends())}"
        )
    try:
        built = factory()
    except ImportError as exc:
        raise RuntimeError(
            f"array backend {name!r} is registered but not available in "
            f"this environment ({exc}); available: "
            f"{', '.join(available_backends())}"
        ) from exc
    with _LOCK:
        inst = _INSTANCES.setdefault(name, built)
    return inst


def active_backend() -> ArrayBackend:
    """The backend instance the hot paths currently route through."""
    return get_backend(_STATE["backend"])


def set_backend(name: str) -> None:
    """Select the active backend by name (raises on unknown names)."""
    inst = get_backend(name)
    _STATE["backend"] = name
    inst.activate()


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[ArrayBackend]:
    """Scoped backend selection, composing with ``fftlib.use(...)``.

    Nest inside ``fftlib.use(budget=...)`` to run a backend under a
    specific worker budget — activation re-reads the budget, so the
    torch thread cap follows it.
    """
    saved = _STATE["backend"]
    set_backend(name)
    try:
        yield active_backend()
    finally:
        set_backend(saved)


def env_default_backend() -> str:
    """Resolve ``REPRO_BACKEND`` (default ``numpy``), validating the name."""
    raw = os.environ.get("REPRO_BACKEND", "numpy").strip().lower() or "numpy"
    if raw not in _FACTORIES:
        raise ValueError(
            f"REPRO_BACKEND={raw!r} is not a registered backend; choose "
            f"from {', '.join(registered_backends())}"
        )
    return raw


def describe() -> Dict[str, Any]:
    """Environment fingerprint of the active backend."""
    return active_backend().describe()


def counters_snapshot() -> Optional[Dict[str, int]]:
    """Copy of the active backend's transfer/FFT counters, if it keeps any.

    Only the instrumented ``strict`` backend counts today; the telemetry
    snapshot in :mod:`repro.obs.metrics` reads through this seam so any
    future counting backend is picked up without obs changes.
    """
    counters = getattr(active_backend(), "counters", None)
    if isinstance(counters, dict):
        return dict(counters)
    return None


#: Host-side numpy backend singleton.  Hot-path modules use it for
#: declared host allocations (graph leaves, gradient accumulators,
#: host output buffers) — the allocations the R9 backend-seam rule
#: would otherwise flag as raw ``np.zeros``/``np.empty``.
HOST = NumpyBackend()

register_backend("numpy", lambda: HOST)
register_backend("strict", StrictBackend)
register_backend("torch", TorchBackend, TorchBackend.is_available)
register_backend("cupy", CupyBackend, CupyBackend.is_available)
_STATE["backend"] = env_default_backend()
