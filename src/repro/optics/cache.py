"""Shared optics cache — one build per :class:`OpticalConfig`, everywhere.

Every imaging consumer (Abbe / Hopkins engines, SMO objectives, the
baselines, the harness) used to rebuild pupil stacks, frequency grids
and SOCS decompositions per instance.  Because :class:`OpticalConfig` is
a hashable frozen dataclass, all of those derived quantities can be
memoized at module level and shared across engine instances: a second
engine for an identical configuration performs no recomputation.

Keys are restricted to the *physically relevant* fields (two configs
differing only in loss weights share one pupil stack).  Cached arrays
are returned read-only so a consumer cannot corrupt another's view, and
SOCS entries — whose key includes the source pixels — live in a bounded
LRU so alternating-minimization source rebuilds cannot grow the cache
without limit.

Hit/miss counters per category are exposed through :func:`stats` and
asserted by the cache tests; :func:`clear` resets everything (used by
benchmarks to measure cold-start costs).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from .config import OpticalConfig
from .source import SourceGrid

__all__ = [
    "freq_axes",
    "freq_grid",
    "source_grid",
    "zernike_map",
    "pupil_stack",
    "conj_pairs",
    "socs",
    "abbe_engine",
    "hopkins_engine",
    "warmup",
    "stats",
    "reset_stats",
    "clear",
    "CACHE_MAXSIZE",
]

#: Per-category LRU capacity (entry count).  Config-keyed categories
#: stay tiny in practice; the bound matters for source-keyed entries.
CACHE_MAXSIZE = 32

#: Byte budget for SOCS kernel stacks, the one category whose entries
#: are both large and keyed on transient data (AM-style source rebuilds
#: hit it with a fresh source every round).  The newest entry is always
#: retained, so a single decomposition larger than the budget behaves
#: like the uncached pre-sharing code: one live copy, no pile-up.
SOCS_BUDGET_BYTES = 256 * 1024**2

_LOCK = threading.RLock()
_CACHES: Dict[str, "OrderedDict[Hashable, Tuple[Any, int]]"] = {}
_STATS: Dict[str, Dict[str, int]] = {}
#: In-flight builds (single-flight): concurrent lookups of one key wait
#: on the first builder's event instead of duplicating the work.
_BUILDING: Dict[Tuple[str, Hashable], threading.Event] = {}


def _lookup(
    category: str,
    key: Hashable,
    build: Callable[[], Any],
    weigh: Optional[Callable[[Any], int]] = None,
    budget: int = CACHE_MAXSIZE,
) -> Any:
    """LRU get-or-build with per-category hit/miss accounting.

    Entries weigh 1 against an entry-count budget unless ``weigh`` maps
    a value to its cost (e.g. bytes) against a matching ``budget``.
    ``build`` runs outside the lock so a slow miss (a TCC
    eigendecomposition takes seconds at scale) cannot stall unrelated
    categories.  Builds are *single-flight*: concurrent lookups of one
    key park on the first builder's event and read its insert (counted
    as a hit), so a condition-axis fan-out never duplicates a
    pupil-stack build.  A builder that raises wakes the waiters, and the
    first of them retries the build.
    """
    while True:
        with _LOCK:
            cache = _CACHES.setdefault(category, OrderedDict())
            stat = _STATS.setdefault(category, {"hits": 0, "misses": 0})
            if key in cache:
                stat["hits"] += 1
                cache.move_to_end(key)
                return cache[key][0]
            event = _BUILDING.get((category, key))
            if event is None:
                event = threading.Event()
                _BUILDING[(category, key)] = event
                stat["misses"] += 1
                break
        event.wait()
    try:
        value = build()
        weight = weigh(value) if weigh is not None else 1
        with _LOCK:
            # ``clear()`` may have replaced the category dict while
            # ``build`` ran outside the lock; re-resolve so the insert
            # lands in the *live* dict (not an orphaned one) and the
            # entry actually caches.
            cache = _CACHES.setdefault(category, OrderedDict())
            _STATS.setdefault(category, {"hits": 0, "misses": 0})
            if key not in cache:
                cache[key] = (value, weight)
                total = sum(w for _, w in cache.values())
                while total > budget and len(cache) > 1:
                    _, (_, evicted) = cache.popitem(last=False)
                    total -= evicted
            return cache[key][0]
    finally:
        with _LOCK:
            _BUILDING.pop((category, key), None)
        event.set()


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Mark a cached array read-only (shared across consumers)."""
    arr.setflags(write=False)
    return arr


# ----------------------------------------------------------------------
# cache keys: only the fields the cached quantity actually depends on
# ----------------------------------------------------------------------
def _grid_key(config: OpticalConfig) -> Tuple:
    return (config.mask_size, config.tile_nm)


def _pupil_key(config: OpticalConfig) -> Tuple:
    return (
        config.mask_size,
        config.tile_nm,
        config.source_size,
        config.wavelength_nm,
        config.na,
    )


def _source_key(source: np.ndarray) -> Tuple:
    arr = np.ascontiguousarray(source, dtype=np.float64)
    return (arr.shape, arr.tobytes())


# ----------------------------------------------------------------------
# frequency grids
# ----------------------------------------------------------------------
def freq_axes(config: OpticalConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized FFT frequency axes (1/nm) for the mask grid."""

    def build() -> Tuple[np.ndarray, np.ndarray]:
        from . import backend

        bk = backend.active_backend()
        f = _freeze(
            bk.to_host(bk.fftfreq(config.mask_size, d=config.pixel_nm))
        )
        return f, f

    return _lookup("freq_axes", _grid_key(config), build)


def freq_grid(config: OpticalConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized meshed (fx, fy) frequency grids, shape (N_m, N_m)."""

    def build() -> Tuple[np.ndarray, np.ndarray]:
        f, g = freq_axes(config)
        fx, fy = np.meshgrid(f, g, indexing="xy")
        return _freeze(fx), _freeze(fy)

    return _lookup("freq_grid", _grid_key(config), build)


def source_grid(config: OpticalConfig) -> SourceGrid:
    """Memoized default :class:`SourceGrid` for a configuration."""
    return _lookup(
        "source_grid",
        (config.source_size,),
        lambda: SourceGrid.from_config(config),
    )


def zernike_map(config: OpticalConfig, term: str) -> np.ndarray:
    """Memoized Zernike polynomial sampled on the mask frequency grid.

    One ``(N, N)`` map per (grid, optics, term); every aberration spec
    naming the term reuses it (the per-spec work is then a scalar
    multiply-accumulate plus one ``exp``).
    """
    from .zernike import _build_freq_map

    key = _grid_key(config) + (config.wavelength_nm, config.na, str(term))
    return _lookup(
        "zernike_map", key, lambda: _freeze(_build_freq_map(config, term))
    )


# ----------------------------------------------------------------------
# pupil stacks (Abbe) and SOCS decompositions (Hopkins)
# ----------------------------------------------------------------------
def pupil_stack(config: OpticalConfig, aberration=0.0):
    """Memoized (aberrated) shifted pupil stack as an autodiff leaf tensor.

    Returns ``(stack_tensor, valid_index)`` exactly as
    :func:`repro.optics.pupil.aberrated_pupil_stack` does, but the
    tensor object itself is shared: every :class:`AbbeImaging` built for
    an equivalent config holds the *same* ``(S, N, N)`` stack.

    ``aberration`` is anything
    :meth:`repro.optics.zernike.PupilAberration.coerce` accepts; a plain
    float keeps the legacy ``defocus_nm`` meaning.  Keys are the spec's
    canonical identity, so ``ProcessCorner(defocus_nm=f)`` and
    ``ProcessCorner(aberrations={"Z4": f})`` resolve to one cache entry
    — the same array object, hence bitwise-identical stacks.
    """
    from .. import autodiff as ad
    from .zernike import PupilAberration

    ab = PupilAberration.coerce(aberration)

    def build():
        from .pupil import aberrated_pupil_stack

        grid = source_grid(config)
        stack, valid_index = aberrated_pupil_stack(config, grid, ab)
        _freeze(stack)
        return ad.Tensor(stack), tuple(_freeze(ix) for ix in valid_index)

    return _lookup("pupil_stack", _pupil_key(config) + (ab.cache_key,), build)


def conj_pairs(config: OpticalConfig, aberration=0.0):
    """Memoized ``+/-sigma`` conjugate pairing of a cached pupil stack.

    Returns the verified involution array (see
    :func:`repro.optics.pupil.conj_pair_indices`) or ``None`` — complex
    (aberrated) stacks opt out of the conjugate *field* identity even
    when the phase is even in frequency (defocus, astigmatism,
    spherical); odd terms (coma, trefoil) additionally break the
    structural reversal.  Cached so every engine / condition-axis
    evaluation for one config shares a single verification pass.
    """
    from .pupil import conj_pair_indices
    from .zernike import PupilAberration

    ab = PupilAberration.coerce(aberration)

    def build():
        stack_t, valid_index = pupil_stack(config, ab)
        pairs = conj_pair_indices(stack_t.data, valid_index, source_grid(config))
        if pairs is not None:
            _freeze(pairs)
        return pairs

    return _lookup("conj_pairs", _pupil_key(config) + (ab.cache_key,), build)


def socs(
    config: OpticalConfig,
    source: np.ndarray,
    num_kernels: Optional[int] = None,
):
    """Memoized SOCS decomposition ``(weights, kernel_tensor, tcc_trace)``.

    The key includes the source pixels, so AM-SMO style source rebuilds
    create new entries (bounded by ``SOCS_BUDGET_BYTES``, newest entry
    always kept) while repeated construction for a fixed source — e.g.
    every Hopkins baseline in a harness sweep — decomposes the TCC once.
    """
    from .. import autodiff as ad
    from .hopkins import socs_kernels

    q = num_kernels or config.socs_terms
    key = _pupil_key(config) + (q,) + _source_key(source)

    def build():
        weights, kernels, tcc_trace = socs_kernels(config, source, q, source_grid(config))
        return _freeze(weights), ad.Tensor(_freeze(kernels)), tcc_trace

    return _lookup(
        "socs",
        key,
        build,
        weigh=lambda entry: entry[1].data.nbytes,
        budget=SOCS_BUDGET_BYTES,
    )


# ----------------------------------------------------------------------
# shared engine instances
# ----------------------------------------------------------------------
def abbe_engine(config: OpticalConfig, defocus_nm: float = 0.0):
    """Shared :class:`AbbeImaging` instance for a configuration.

    Engines are stateless after construction, so one instance can back
    any number of objectives / harness evaluations concurrently.
    """
    from .abbe import AbbeImaging

    return _lookup(
        "abbe_engine",
        (config, float(defocus_nm)),
        lambda: AbbeImaging(config, defocus_nm=defocus_nm),
    )


def hopkins_engine(
    config: OpticalConfig,
    source: np.ndarray,
    num_kernels: Optional[int] = None,
    defocus_nm: float = 0.0,
):
    """Shared :class:`HopkinsImaging` for (config, source, Q, defocus)."""
    from .hopkins import HopkinsImaging

    q = num_kernels or config.socs_terms
    # Engines pin their kernel stacks, so they share the SOCS byte
    # budget — otherwise evicted decompositions would stay alive here.
    return _lookup(
        "hopkins_engine",
        (config, q, float(defocus_nm)) + _source_key(source),
        lambda: HopkinsImaging(config, source, q, defocus_nm=defocus_nm),
        weigh=lambda engine: engine._kernel_stack.data.nbytes,
        budget=SOCS_BUDGET_BYTES,
    )


def warmup(
    config: OpticalConfig, defocus_nm: float = 0.0, process_window=None
) -> None:
    """Pre-build every config-keyed entry (grids, pupil stack, engine).

    Parallel harness workers call this once at start-up so all
    subsequent solves in the process hit a warm cache instead of paying
    the pupil-stack build inside their first timed iteration.  SOCS
    entries are source-keyed and cannot be warmed here; they populate on
    first use per (config, source, Q).

    ``process_window`` (a :class:`repro.optics.config.ProcessWindow`)
    additionally pre-builds the per-condition aberrated pupil stacks and
    conjugate pairings of its condition axis, fanned out across the
    :func:`repro.optics.fftlib.map_conditions` pool (the single-flight
    ``_lookup`` guarantees each stack is still built exactly once).
    """
    from ..obs import span
    from ..utils.faultinject import fault_point

    fault_point("cache.warmup")
    with span("harness.warmup", mask_size=config.mask_size):
        freq_axes(config)
        freq_grid(config)
        source_grid(config)
        pupil_stack(config, defocus_nm)
        conj_pairs(config, defocus_nm)
        abbe_engine(config, defocus_nm)
        if process_window is not None:
            from . import fftlib

            conditions = list(process_window.conditions())

            def _build_condition(fi: int) -> None:
                pupil_stack(config, conditions[fi])
                conj_pairs(config, conditions[fi])

            fftlib.map_conditions(_build_condition, len(conditions))


# ----------------------------------------------------------------------
# introspection / control
# ----------------------------------------------------------------------
def stats() -> Dict[str, Dict[str, int]]:
    """Copy of the per-category hit/miss counters."""
    with _LOCK:
        return {k: dict(v) for k, v in _STATS.items()}


def reset_stats() -> None:
    """Zero the counters without dropping cached entries."""
    with _LOCK:
        for stat in _STATS.values():
            stat["hits"] = 0
            stat["misses"] = 0


def clear() -> None:
    """Drop every cached entry and reset the counters."""
    with _LOCK:
        _CACHES.clear()
        _STATS.clear()
