"""Optical / numerical configuration for the lithography models.

The paper's settings (Section 4): wavelength 193 nm, NA 1.35, annular
source with sigma_out 0.95 / sigma_in 0.63, source grid N_j = 35, mask
grid N_m = 2048 over a 4 um^2 tile, SOCS truncation Q = 24, sigmoid
steepnesses alpha_m = 9, alpha_j = 2, beta = 30, initial magnitudes
m0 = 1, j0 = 5, loss weights gamma = 1000, eta = 3000, dose +/-2 %.

The paper ran those sizes on an RTX 4090.  This reproduction runs on one
CPU core, so :func:`OpticalConfig.preset` offers scaled-down grids with
the *same physics* (identical tile size, wavelength, NA, source shape);
the paper-scale preset remains available.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # import cycle: zernike imports OpticalConfig
    from .zernike import PupilAberration

__all__ = ["OpticalConfig", "ProcessCorner", "ProcessWindow"]


@dataclass(frozen=True)
class OpticalConfig:
    """All knobs of the forward model and SMO losses in one place."""

    # --- optics -------------------------------------------------------
    wavelength_nm: float = 193.0
    na: float = 1.35
    # --- grids --------------------------------------------------------
    mask_size: int = 128           # N_m (paper: 2048)
    tile_nm: float = 2000.0        # 2 um side -> 4 um^2 tile as in Table 2
    source_size: int = 13          # N_j (paper: 35)
    # --- source template ---------------------------------------------
    sigma_out: float = 0.95
    sigma_in: float = 0.63
    # --- parametrization (Table 1) -------------------------------------
    alpha_m: float = 9.0
    alpha_j: float = 2.0
    m0: float = 1.0
    j0: float = 5.0
    # --- resist (Eq. (6)) ----------------------------------------------
    beta: float = 30.0
    intensity_threshold: float = 0.225
    # --- process window (Eq. (8)) --------------------------------------
    dose_min: float = 0.98
    dose_max: float = 1.02
    # --- loss weights (Eq. (9)) -----------------------------------------
    gamma: float = 1000.0
    eta: float = 3000.0
    # --- Hopkins / SOCS -------------------------------------------------
    socs_terms: int = 24           # Q

    def __post_init__(self) -> None:
        if self.mask_size <= 0 or self.source_size <= 0:
            raise ValueError("grid sizes must be positive")
        if not 0 < self.sigma_in < self.sigma_out <= 1.0:
            raise ValueError("need 0 < sigma_in < sigma_out <= 1")
        if self.dose_min > 1.0 or self.dose_max < 1.0:
            raise ValueError("dose range must bracket the nominal dose 1.0")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def pixel_nm(self) -> float:
        """Mask pixel pitch in nanometres."""
        return self.tile_nm / self.mask_size

    @property
    def cutoff_freq(self) -> float:
        """Pupil cutoff NA / lambda in 1/nm (Eq. (5))."""
        return self.na / self.wavelength_nm

    @property
    def pixel_area_nm2(self) -> float:
        return self.pixel_nm**2

    def freq_axes(self) -> Tuple[np.ndarray, np.ndarray]:
        """FFT frequency axes (1/nm) for the mask grid (fftfreq order).

        Memoized through :mod:`repro.optics.cache` (the axes are hit on
        every pupil build, TCC assembly and geometry rasterization); the
        returned arrays are shared and read-only.
        """
        from .cache import freq_axes

        return freq_axes(self)

    def freq_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshed (fx, fy) frequency grids, shape (N_m, N_m).

        Memoized through :mod:`repro.optics.cache`; shared read-only arrays.
        """
        from .cache import freq_grid

        return freq_grid(self)

    def source_sigma_axes(self) -> np.ndarray:
        """Normalized source coordinates sigma in [-1, 1] (length N_j)."""
        return np.linspace(-1.0, 1.0, self.source_size)

    def validate_sampling(self) -> None:
        """Raise if the mask grid cannot represent the optical band.

        The aerial image is bandlimited to 2 * NA/lambda; the grid Nyquist
        frequency 1/(2*pixel) must exceed that (with a small safety
        factor for the shifted pupils).
        """
        nyquist = 1.0 / (2.0 * self.pixel_nm)
        if nyquist < 2.0 * self.cutoff_freq:
            raise ValueError(
                f"mask grid too coarse: Nyquist {nyquist:.2e} < 2*NA/lambda "
                f"{2 * self.cutoff_freq:.2e}; increase mask_size"
            )

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def preset(cls, name: str = "default") -> "OpticalConfig":
        """Named configurations.

        * ``"paper"`` — the full DAC'24 settings (2048 px, N_j=35); very
          slow on CPU, provided for completeness.
        * ``"default"`` — 128 px / N_j=13; the reproduction scale used by
          the benchmark harness.
        * ``"small"`` — 64 px / N_j=9 for integration tests and examples.
        * ``"tiny"`` — 32 px / N_j=7, 500 nm tile, for unit tests.
        """
        presets = {
            "paper": cls(mask_size=2048, source_size=35),
            "default": cls(mask_size=128, source_size=13),
            "small": cls(mask_size=64, source_size=9),
            "tiny": cls(mask_size=32, source_size=7, tile_nm=500.0),
        }
        if name not in presets:
            raise KeyError(f"unknown preset {name!r}; choose from {sorted(presets)}")
        return presets[name]

    def with_(self, **kwargs: Any) -> "OpticalConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)

    def process_window(self) -> "ProcessWindow":
        """The paper's dose-only window (Eq. (8)) for this configuration."""
        return ProcessWindow.from_config(self)


# ----------------------------------------------------------------------
# process windows — the dose x focus condition axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessCorner:
    """One process condition: (dose, pupil aberration) with a loss weight.

    ``dose`` multiplies the mask transmission (the paper's +/-2 %
    corners); because aerial intensity is quadratic in the mask, its
    effect is an exact ``dose**2`` scaling of the aerial image applied
    *post-imaging* in the resist model — corners that share an
    aberration therefore share the entire imaging pass.

    ``aberrations`` is the pupil-phase condition: anything
    :meth:`repro.optics.zernike.PupilAberration.coerce` accepts (a
    ``{term: nm}`` mapping over Zernike terms Z4-Z11, a raw radian
    phase map, or a spec object).  ``defocus_nm`` is backward-compatible
    sugar for the Z4 (wafer defocus) term: at construction it is folded
    into the canonical spec, so ``ProcessCorner(defocus_nm=f)`` and
    ``ProcessCorner(aberrations={"Z4": f})`` are *equal* corners
    compiling to one shared, bitwise-identical pupil stack.  Each
    distinct aberration spec costs one imaging pass.

    ``weight`` is the corner's absolute loss weight (the paper's gamma /
    eta are the dose-corner weights); under ``robust="adaptive"`` the
    weights seed the minimax ascent.  ``intensity_threshold`` optionally
    overrides the config's resist threshold for this corner (per-corner
    resist calibration — real process models calibrate ``I_tr`` per
    condition); ``None`` keeps the shared config value.
    """

    dose: float = 1.0
    defocus_nm: float = 0.0
    weight: float = 1.0
    label: str = ""
    aberrations: Any = None
    intensity_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        from .zernike import PupilAberration

        if self.dose <= 0.0:
            raise ValueError(f"corner dose must be positive; got {self.dose}")
        if self.weight <= 0.0:
            raise ValueError(f"corner weight must be positive; got {self.weight}")
        if self.intensity_threshold is not None:
            thr = float(self.intensity_threshold)
            if thr <= 0.0:
                raise ValueError(
                    f"corner intensity_threshold must be positive; got {thr}"
                )
            object.__setattr__(self, "intensity_threshold", thr)
        # Canonicalize: fold the defocus sugar into the aberration spec,
        # then mirror the spec's Z4 component back so both spellings are
        # equal dataclasses with one cache identity.
        ab = PupilAberration.coerce(self.aberrations)
        if float(self.defocus_nm) != 0.0:
            ab = ab.add_defocus(float(self.defocus_nm))
        object.__setattr__(self, "aberrations", ab)
        object.__setattr__(self, "defocus_nm", float(ab.defocus_nm))
        if not self.label:
            object.__setattr__(self, "label", f"d{self.dose:g}/{ab.label}")

    @property
    def name(self) -> str:
        return self.label


@dataclass(frozen=True)
class ProcessWindow:
    """A weighted dose x pupil-aberration corner grid — the condition axis.

    The window is what robust objectives
    (:class:`repro.smo.objective.ProcessWindowSMOObjective`) optimize
    across and what the harness process-window report sweeps.  It is a
    hashable frozen value object, so it rides inside
    :class:`repro.harness.RunSettings` and pickles across the parallel
    sweep's process pool.

    Corners are grouped by aberration for evaluation:
    :meth:`conditions` returns the distinct
    :class:`~repro.optics.zernike.PupilAberration` specs (one imaging
    pass each) and :meth:`condition_index` maps every corner to its
    pass, so a C-corner window with F distinct specs costs F aerial
    evaluations — dose corners are free (an exact post-aerial
    ``dose**2`` scaling).  :meth:`focus_values` / :meth:`focus_index`
    are the legacy defocus-only views, valid while every condition is a
    pure-defocus spec.
    """

    corners: Tuple[ProcessCorner, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "corners", tuple(self.corners))
        if not self.corners:
            raise ValueError("a ProcessWindow needs at least one corner")

    # ------------------------------------------------------------------
    @property
    def num_corners(self) -> int:
        return len(self.corners)

    @property
    def doses(self) -> np.ndarray:
        """Per-corner dose factors, shape ``(C,)``."""
        return np.array([c.dose for c in self.corners])

    @property
    def weights(self) -> np.ndarray:
        """Per-corner loss weights, shape ``(C,)``."""
        return np.array([c.weight for c in self.corners])

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(c.label for c in self.corners)

    def conditions(self) -> Tuple["PupilAberration", ...]:
        """Distinct pupil-aberration specs in first-appearance order.

        Each entry is one imaging pass (one aberrated pupil stack,
        shared through :mod:`repro.optics.cache`); all corners are
        resolved against this tuple by :meth:`condition_index`.
        """
        seen: Dict[Any, "PupilAberration"] = {}
        for c in self.corners:
            seen.setdefault(c.aberrations.cache_key, c.aberrations)
        return tuple(seen.values())

    def condition_index(self) -> np.ndarray:
        """Corner -> index into :meth:`conditions`, shape ``(C,)``."""
        order = {ab.cache_key: i for i, ab in enumerate(self.conditions())}
        return np.array([order[c.aberrations.cache_key] for c in self.corners])

    def focus_values(self) -> Tuple[float, ...]:
        """Distinct defocus settings — the legacy defocus-only view.

        Valid while every condition is a pure-defocus spec; windows with
        astigmatism / coma / spherical (or raw-map) conditions raise a
        pointer to :meth:`conditions`.
        """
        vals: List[float] = []
        for ab in self.conditions():
            if not ab.is_pure_defocus:
                raise ValueError(
                    "window has non-defocus aberration conditions "
                    f"({ab.label}); use conditions()/condition_index()"
                )
            vals.append(float(ab.defocus_nm))
        return tuple(vals)

    def focus_index(self) -> np.ndarray:
        """Corner -> index into :meth:`focus_values`, shape ``(C,)``."""
        self.focus_values()  # validate the defocus-only view applies
        return self.condition_index()

    def intensity_thresholds(self, config: OpticalConfig) -> np.ndarray:
        """Per-corner resist thresholds ``(C,)``, resolved against the
        config default for corners without a calibrated override."""
        return np.array(
            [
                config.intensity_threshold
                if c.intensity_threshold is None
                else c.intensity_threshold
                for c in self.corners
            ]
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: OpticalConfig) -> "ProcessWindow":
        """The paper's Eq. (8) window: nominal + dose corners, one focus.

        Weighted so that the robust weighted-sum objective over this
        window *is* the classic SMO loss ``gamma * L2 + eta * L_pvb``:
        the nominal corner carries ``gamma``, each +/-2 % dose corner
        carries ``eta``.
        """
        return cls(
            corners=(
                ProcessCorner(1.0, 0.0, config.gamma, "nominal"),
                ProcessCorner(config.dose_min, 0.0, config.eta, "dose-"),
                ProcessCorner(config.dose_max, 0.0, config.eta, "dose+"),
            )
        )

    @classmethod
    def from_grid(
        cls,
        doses: Sequence[float],
        focus_nm: Sequence[float] = (0.0,),
        weights: Optional[Sequence[float]] = None,
        aberrations: Sequence[Any] = (),
    ) -> "ProcessWindow":
        """Full dose x condition grid, dose-major corner order.

        The condition axis is the focus values (as pure-defocus specs)
        followed by any extra ``aberrations`` — each entry anything
        :meth:`repro.optics.zernike.PupilAberration.coerce` accepts
        (``{"Z5": 20, "Z7": -10}``-style mappings, raw radian phase
        maps, or spec objects).  ``weights`` is a flat per-corner
        sequence of length ``len(doses) * num_conditions`` (matching the
        dose-major order) or ``None`` for uniform weights.
        """
        from .zernike import PupilAberration

        doses = tuple(float(d) for d in doses)
        conditions = tuple(
            PupilAberration.defocus(float(f)) for f in focus_nm
        ) + tuple(PupilAberration.coerce(a) for a in aberrations)
        if not doses or not conditions:
            raise ValueError("need at least one dose and one condition")
        seen: Dict[Any, "PupilAberration"] = {}
        for ab in conditions:
            if ab.cache_key in seen:
                # A duplicate would silently double the condition's
                # effective weight in every robust reduction (e.g.
                # focus_nm=(40,) plus aberrations=({"Z4": 40},), or a
                # zero-coefficient spec duplicating the nominal corner).
                raise ValueError(
                    f"duplicate process condition {ab.label!r}: the "
                    "focus_nm and aberrations axes canonicalize to the "
                    "same spec; list each condition once"
                )
            seen[ab.cache_key] = ab
        count = len(doses) * len(conditions)
        if weights is None:
            weights = (1.0,) * count
        weights = tuple(float(w) for w in weights)
        if len(weights) != count:
            raise ValueError(
                f"need {count} weights for a {len(doses)}x{len(conditions)} "
                f"grid; got {len(weights)}"
            )
        corners = tuple(
            ProcessCorner(
                d,
                weight=weights[i * len(conditions) + j],
                aberrations=ab,
            )
            for i, d in enumerate(doses)
            for j, ab in enumerate(conditions)
        )
        return cls(corners=corners)
