"""Optical / numerical configuration for the lithography models.

The paper's settings (Section 4): wavelength 193 nm, NA 1.35, annular
source with sigma_out 0.95 / sigma_in 0.63, source grid N_j = 35, mask
grid N_m = 2048 over a 4 um^2 tile, SOCS truncation Q = 24, sigmoid
steepnesses alpha_m = 9, alpha_j = 2, beta = 30, initial magnitudes
m0 = 1, j0 = 5, loss weights gamma = 1000, eta = 3000, dose +/-2 %.

The paper ran those sizes on an RTX 4090.  This reproduction runs on one
CPU core, so :func:`OpticalConfig.preset` offers scaled-down grids with
the *same physics* (identical tile size, wavelength, NA, source shape);
the paper-scale preset remains available.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["OpticalConfig", "ProcessCorner", "ProcessWindow"]


@dataclass(frozen=True)
class OpticalConfig:
    """All knobs of the forward model and SMO losses in one place."""

    # --- optics -------------------------------------------------------
    wavelength_nm: float = 193.0
    na: float = 1.35
    # --- grids --------------------------------------------------------
    mask_size: int = 128           # N_m (paper: 2048)
    tile_nm: float = 2000.0        # 2 um side -> 4 um^2 tile as in Table 2
    source_size: int = 13          # N_j (paper: 35)
    # --- source template ---------------------------------------------
    sigma_out: float = 0.95
    sigma_in: float = 0.63
    # --- parametrization (Table 1) -------------------------------------
    alpha_m: float = 9.0
    alpha_j: float = 2.0
    m0: float = 1.0
    j0: float = 5.0
    # --- resist (Eq. (6)) ----------------------------------------------
    beta: float = 30.0
    intensity_threshold: float = 0.225
    # --- process window (Eq. (8)) --------------------------------------
    dose_min: float = 0.98
    dose_max: float = 1.02
    # --- loss weights (Eq. (9)) -----------------------------------------
    gamma: float = 1000.0
    eta: float = 3000.0
    # --- Hopkins / SOCS -------------------------------------------------
    socs_terms: int = 24           # Q

    def __post_init__(self) -> None:
        if self.mask_size <= 0 or self.source_size <= 0:
            raise ValueError("grid sizes must be positive")
        if not 0 < self.sigma_in < self.sigma_out <= 1.0:
            raise ValueError("need 0 < sigma_in < sigma_out <= 1")
        if self.dose_min > 1.0 or self.dose_max < 1.0:
            raise ValueError("dose range must bracket the nominal dose 1.0")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def pixel_nm(self) -> float:
        """Mask pixel pitch in nanometres."""
        return self.tile_nm / self.mask_size

    @property
    def cutoff_freq(self) -> float:
        """Pupil cutoff NA / lambda in 1/nm (Eq. (5))."""
        return self.na / self.wavelength_nm

    @property
    def pixel_area_nm2(self) -> float:
        return self.pixel_nm**2

    def freq_axes(self) -> Tuple[np.ndarray, np.ndarray]:
        """FFT frequency axes (1/nm) for the mask grid (fftfreq order).

        Memoized through :mod:`repro.optics.cache` (the axes are hit on
        every pupil build, TCC assembly and geometry rasterization); the
        returned arrays are shared and read-only.
        """
        from .cache import freq_axes

        return freq_axes(self)

    def freq_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshed (fx, fy) frequency grids, shape (N_m, N_m).

        Memoized through :mod:`repro.optics.cache`; shared read-only arrays.
        """
        from .cache import freq_grid

        return freq_grid(self)

    def source_sigma_axes(self) -> np.ndarray:
        """Normalized source coordinates sigma in [-1, 1] (length N_j)."""
        return np.linspace(-1.0, 1.0, self.source_size)

    def validate_sampling(self) -> None:
        """Raise if the mask grid cannot represent the optical band.

        The aerial image is bandlimited to 2 * NA/lambda; the grid Nyquist
        frequency 1/(2*pixel) must exceed that (with a small safety
        factor for the shifted pupils).
        """
        nyquist = 1.0 / (2.0 * self.pixel_nm)
        if nyquist < 2.0 * self.cutoff_freq:
            raise ValueError(
                f"mask grid too coarse: Nyquist {nyquist:.2e} < 2*NA/lambda "
                f"{2 * self.cutoff_freq:.2e}; increase mask_size"
            )

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def preset(cls, name: str = "default") -> "OpticalConfig":
        """Named configurations.

        * ``"paper"`` — the full DAC'24 settings (2048 px, N_j=35); very
          slow on CPU, provided for completeness.
        * ``"default"`` — 128 px / N_j=13; the reproduction scale used by
          the benchmark harness.
        * ``"small"`` — 64 px / N_j=9 for integration tests and examples.
        * ``"tiny"`` — 32 px / N_j=7, 500 nm tile, for unit tests.
        """
        presets = {
            "paper": cls(mask_size=2048, source_size=35),
            "default": cls(mask_size=128, source_size=13),
            "small": cls(mask_size=64, source_size=9),
            "tiny": cls(mask_size=32, source_size=7, tile_nm=500.0),
        }
        if name not in presets:
            raise KeyError(f"unknown preset {name!r}; choose from {sorted(presets)}")
        return presets[name]

    def with_(self, **kwargs) -> "OpticalConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)

    def process_window(self) -> "ProcessWindow":
        """The paper's dose-only window (Eq. (8)) for this configuration."""
        return ProcessWindow.from_config(self)


# ----------------------------------------------------------------------
# process windows — the dose x focus condition axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessCorner:
    """One process condition: a (dose, focus) pair with a loss weight.

    ``dose`` multiplies the mask transmission (the paper's +/-2 %
    corners); because aerial intensity is quadratic in the mask, its
    effect is an exact ``dose**2`` scaling of the aerial image applied
    *post-imaging* in the resist model — corners that share a focus
    value therefore share the entire imaging pass.  ``defocus_nm`` is a
    wafer-plane focus offset realized as a pupil phase
    (:func:`repro.optics.pupil.defocus_phase`); each distinct focus
    value costs one imaging pass.  ``weight`` is the corner's absolute
    loss weight (the paper's gamma / eta are the dose-corner weights).
    """

    dose: float = 1.0
    defocus_nm: float = 0.0
    weight: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.dose <= 0.0:
            raise ValueError(f"corner dose must be positive; got {self.dose}")
        if self.weight <= 0.0:
            raise ValueError(f"corner weight must be positive; got {self.weight}")
        if not self.label:
            object.__setattr__(
                self, "label", f"d{self.dose:g}/f{self.defocus_nm:g}nm"
            )

    @property
    def name(self) -> str:
        return self.label


@dataclass(frozen=True)
class ProcessWindow:
    """A weighted dose x focus corner grid — the process-condition axis.

    The window is what robust objectives
    (:class:`repro.smo.objective.ProcessWindowSMOObjective`) optimize
    across and what the harness process-window report sweeps.  It is a
    hashable frozen value object, so it rides inside
    :class:`repro.harness.RunSettings` and pickles across the parallel
    sweep's process pool.

    Corners are grouped by focus for evaluation: :meth:`focus_values`
    returns the distinct defocus settings (one imaging pass each) and
    :meth:`focus_index` maps every corner to its pass, so a C-corner
    window with F distinct focus values costs F aerial evaluations —
    dose corners are free (an exact post-aerial ``dose**2`` scaling).
    """

    corners: Tuple[ProcessCorner, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "corners", tuple(self.corners))
        if not self.corners:
            raise ValueError("a ProcessWindow needs at least one corner")

    # ------------------------------------------------------------------
    @property
    def num_corners(self) -> int:
        return len(self.corners)

    @property
    def doses(self) -> np.ndarray:
        """Per-corner dose factors, shape ``(C,)``."""
        return np.array([c.dose for c in self.corners])

    @property
    def weights(self) -> np.ndarray:
        """Per-corner loss weights, shape ``(C,)``."""
        return np.array([c.weight for c in self.corners])

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(c.label for c in self.corners)

    def focus_values(self) -> Tuple[float, ...]:
        """Distinct defocus settings in first-appearance order.

        Each entry is one imaging pass; all corners are resolved against
        this tuple by :meth:`focus_index`.
        """
        seen: dict = {}
        for c in self.corners:
            seen.setdefault(float(c.defocus_nm), None)
        return tuple(seen)

    def focus_index(self) -> np.ndarray:
        """Corner -> index into :meth:`focus_values`, shape ``(C,)``."""
        order = {f: i for i, f in enumerate(self.focus_values())}
        return np.array([order[float(c.defocus_nm)] for c in self.corners])

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: OpticalConfig) -> "ProcessWindow":
        """The paper's Eq. (8) window: nominal + dose corners, one focus.

        Weighted so that the robust weighted-sum objective over this
        window *is* the classic SMO loss ``gamma * L2 + eta * L_pvb``:
        the nominal corner carries ``gamma``, each +/-2 % dose corner
        carries ``eta``.
        """
        return cls(
            corners=(
                ProcessCorner(1.0, 0.0, config.gamma, "nominal"),
                ProcessCorner(config.dose_min, 0.0, config.eta, "dose-"),
                ProcessCorner(config.dose_max, 0.0, config.eta, "dose+"),
            )
        )

    @classmethod
    def from_grid(
        cls,
        doses: Sequence[float],
        focus_nm: Sequence[float] = (0.0,),
        weights: Optional[Sequence[float]] = None,
    ) -> "ProcessWindow":
        """Full dose x focus grid, dose-major corner order.

        ``weights`` is a flat per-corner sequence of length
        ``len(doses) * len(focus_nm)`` (matching the dose-major order)
        or ``None`` for uniform weights.
        """
        doses = tuple(float(d) for d in doses)
        focus_nm = tuple(float(f) for f in focus_nm)
        if not doses or not focus_nm:
            raise ValueError("need at least one dose and one focus value")
        count = len(doses) * len(focus_nm)
        if weights is None:
            weights = (1.0,) * count
        weights = tuple(float(w) for w in weights)
        if len(weights) != count:
            raise ValueError(
                f"need {count} weights for a {len(doses)}x{len(focus_nm)} "
                f"grid; got {len(weights)}"
            )
        corners = tuple(
            ProcessCorner(d, f, weights[i * len(focus_nm) + j])
            for i, d in enumerate(doses)
            for j, f in enumerate(focus_nm)
        )
        return cls(corners=corners)
