"""Unified imaging-engine interface with batched multi-tile evaluation.

Every forward-model consumer in the codebase — the SMO objectives, the
MO baselines, the benchmark harness — talks to a lithography simulator
through the same small surface, the :class:`ImagingEngine` protocol:

``aerial(mask, source=None)``
    Differentiable aerial intensity.  ``mask`` may be a single ``(N, N)``
    tile or a ``(B, N, N)`` stack of tiles; the batched form is evaluated
    as one fused FFT stack rather than B independent passes (the paper's
    Abbe batching, extended across tiles).  Engines whose source is baked
    in (Hopkins/SOCS) take ``source=None``.

``aerial_fast(mask, source=None)``
    Inference-only fast path operating directly on numpy arrays: no
    autodiff graph, no per-op tensor wrapping, and kernels/source points
    with exactly zero weight are skipped (an *exact* reduction — a zero
    weight contributes nothing to the incoherent sum).  Used by
    ``images()``, metric evaluation and the harness judge.

``aerial_conditions(mask, source, conditions)`` /
``aerial_conditions_fast(...)``
    The process-condition axis: a ``(F, B, N, N)`` aerial stack across
    the distinct pupil conditions of a :class:`~repro.optics.config.
    ProcessWindow` — defocus floats or general
    :class:`~repro.optics.zernike.PupilAberration` specs (astigmatism,
    coma, spherical, raw phase maps) — evaluated as one fused
    ``incoherent_image_stack`` node that shares a single mask-spectrum
    FFT across all conditions.  Dose corners never reach the engines —
    dose is an exact post-aerial ``dose**2`` scaling applied by the
    resist model, so corners sharing an aberration share the entire
    imaging pass.

Routing every consumer through this protocol is what lets batching and
caching (:mod:`repro.optics.cache`) land everywhere at once.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from .. import autodiff as ad
from . import backend as abk
from . import fftlib
from .config import OpticalConfig

__all__ = [
    "ImagingEngine",
    "MaskLike",
    "as_tile_batch",
    "incoherent_sum_fast",
    "engine_for",
    "CONDITION_MEMO_MAX",
]

MaskLike = Union[np.ndarray, "ad.Tensor"]

#: Per-engine bound on memoized per-focus kernel/pupil stacks.  Cached
#: engine instances are shared module-wide, so an unbounded memo would
#: grow outside the optics cache's byte accounting; real windows use a
#: handful of focus values, so a small FIFO (an engine's own focus is
#: never evicted) keeps memory flat without thrashing.
CONDITION_MEMO_MAX = 8


@runtime_checkable
class ImagingEngine(Protocol):
    """Structural type implemented by :class:`AbbeImaging` and
    :class:`HopkinsImaging` (and any future backend)."""

    config: OpticalConfig

    def aerial(
        self, mask: "ad.Tensor", source: Optional["ad.Tensor"] = None
    ) -> "ad.Tensor":
        """Differentiable aerial image for ``(N, N)`` or ``(B, N, N)`` masks."""
        ...

    def aerial_fast(
        self, mask: MaskLike, source: Optional[MaskLike] = None
    ) -> np.ndarray:
        """Graph-free inference path, numerically matching :meth:`aerial`."""
        ...

    def aerial_conditions(
        self,
        mask: "ad.Tensor",
        source: Optional["ad.Tensor"] = None,
        conditions=(0.0,),
    ) -> "ad.Tensor":
        """Differentiable ``(F, [B,] N, N)`` aerial stack across pupil
        conditions (defocus floats or aberration specs), sharing one
        mask-spectrum FFT."""
        ...

    def aerial_conditions_fast(
        self,
        mask: MaskLike,
        source: Optional[MaskLike] = None,
        conditions=(0.0,),
    ) -> np.ndarray:
        """Graph-free counterpart of :meth:`aerial_conditions`."""
        ...


def as_tile_batch(mask: MaskLike, mask_size: int) -> Tuple[np.ndarray, bool]:
    """Normalize a mask argument to a ``(B, N, N)`` float64 batch.

    Returns ``(batch, was_single)`` so callers can unwrap single-tile
    results; raises on any shape other than ``(N, N)`` / ``(B, N, N)``.
    """
    arr = mask.data if isinstance(mask, ad.Tensor) else np.asarray(mask)
    arr = np.asarray(arr, dtype=np.float64)
    if arr.ndim == 2:
        single = True
        arr = arr[None, :, :]
    elif arr.ndim == 3:
        single = False
    else:
        raise ValueError(
            f"mask must be (N, N) or (B, N, N); got shape {arr.shape}"
        )
    if arr.shape[-2:] != (mask_size, mask_size):
        raise ValueError(
            f"mask tiles must be ({mask_size}, {mask_size}); got {arr.shape[-2:]}"
        )
    return arr, single


def incoherent_sum_fast(
    tiles: np.ndarray,
    kernel_stack: np.ndarray,
    weights: np.ndarray,
    norm: float,
) -> np.ndarray:
    """Shared numpy kernel of both engines' fast paths.

    Computes ``sum_k w_k |IFFT(kernel_k * FFT(tile))|^2 / norm`` for a
    ``(B, N, N)`` tile batch.  Kernels with exactly zero weight are
    pruned (exact), and tiles are processed one at a time so the working
    set stays cache-sized instead of materializing a ``(B*K, N, N)``
    intermediate.

    All array ops route through the active
    :mod:`repro.optics.backend` seam; the default numpy backend
    dispatches transforms through :mod:`repro.optics.fftlib` (backend
    and worker count are env/config-controlled), and this inference-only
    path honors the fftlib compute-precision policy: under
    ``fftlib.set_precision("single")`` the transforms run in
    complex64 (scipy backend) and the result is cast back to float64.
    """
    bk = abk.active_backend()
    active = np.nonzero(weights)[0]
    if active.size < weights.size:
        kernel_stack = kernel_stack[active]
        weights = weights[active]
    out = abk.HOST.empty(tiles.shape, np.float64)
    if active.size == 0:
        out.fill(0.0)
        return out
    ftype, ctype = bk.compute_dtypes()
    tiles = tiles.astype(ctype if np.iscomplexobj(tiles) else ftype, copy=False)
    kernel_stack = kernel_stack.astype(
        ctype if np.iscomplexobj(kernel_stack) else ftype, copy=False
    )
    weights = weights.astype(ftype, copy=False)
    flat = weights.size
    n2 = tiles.shape[-2] * tiles.shape[-1]
    kernels = bk.from_host(kernel_stack)
    w = bk.from_host(weights)
    spectra = bk.fft2(bk.from_host(tiles))  # (B, N, N)
    for b in range(tiles.shape[0]):
        fields = bk.ifft2(kernels * spectra[b], overwrite_x=True)
        intensity = bk.abs2(fields)
        out[b] = bk.to_host(
            (w @ intensity.reshape(flat, n2)).reshape(tiles.shape[1:])
        )
    out /= norm
    return out


def engine_for(
    config: OpticalConfig,
    model: str = "abbe",
    source: Optional[np.ndarray] = None,
    num_kernels: Optional[int] = None,
    defocus_nm: float = 0.0,
) -> "ImagingEngine":
    """Resolve a shared engine instance from the module-level optics cache.

    ``model="abbe"`` ignores ``source``/``num_kernels`` (the source stays
    a free, differentiable input); ``model="hopkins"`` requires the
    ``source`` it bakes into the TCC.
    """
    from . import cache

    if model == "abbe":
        return cache.abbe_engine(config, defocus_nm=defocus_nm)
    if model == "hopkins":
        if source is None:
            raise ValueError("hopkins engines require a fixed source image")
        return cache.hopkins_engine(config, source, num_kernels, defocus_nm)
    raise KeyError(f"unknown imaging model {model!r}; choose 'abbe' or 'hopkins'")
