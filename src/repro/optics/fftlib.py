"""Unified FFT dispatch for every transform in the codebase.

Before this module existed the differentiable ops in
:mod:`repro.autodiff.functional` went through single-threaded
``np.fft`` while the inference fast path used a module-local scipy
import — two backends, one of them pinned to the slowest option on the
hottest path.  ``fftlib`` centralizes the choice:

* **Backend** — scipy's pocketfft (``scipy.fft``) when importable,
  ``np.fft`` otherwise.  Override with ``REPRO_FFT_BACKEND`` in
  ``{"auto", "scipy", "numpy"}`` or :func:`set_backend`.  Requesting
  scipy without scipy installed falls back to numpy (documented,
  silent: the results are identical, only speed differs).
* **Workers** — pocketfft releases the GIL and threads across the
  batch of independent 2-D transforms; ``REPRO_FFT_WORKERS`` /
  :func:`set_workers` control the thread count (``0`` = one worker per
  CPU).  Per-transform results carry no cross-thread reductions, so
  multi-worker output is bitwise identical to serial output — the
  parallel-harness determinism guarantees survive.
* **Precision** — an opt-in float32/complex64 compute policy for
  *inference* paths (``REPRO_FFT_PRECISION`` in ``{"double",
  "single"}`` / :func:`set_precision`).  Only consumers that
  explicitly ask via :func:`compute_dtypes` (the graph-free
  ``incoherent_sum_fast``) honor it; differentiable ops always run in
  double so gradients and parity tests are unaffected.  With the numpy
  backend single precision is best-effort (``np.fft`` computes in
  double internally).
* **Streaming chunk** — the source-axis chunk size used by the fused
  :func:`repro.autodiff.functional.incoherent_image` primitive
  (``REPRO_FFT_CHUNK`` / :func:`set_stream_chunk`).

This module deliberately imports nothing from :mod:`repro` so the
autodiff layer can depend on it without import cycles.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional, Tuple

import numpy as np

try:  # scipy's pocketfft: multi-threaded, in-place capable
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - scipy is a baseline dependency
    _scipy_fft = None

__all__ = [
    "fft2",
    "ifft2",
    "fftfreq",
    "get_backend",
    "set_backend",
    "available_backends",
    "get_workers",
    "set_workers",
    "effective_workers",
    "get_precision",
    "set_precision",
    "compute_dtypes",
    "get_stream_chunk",
    "set_stream_chunk",
    "use",
    "describe",
]

_BACKENDS = ("scipy", "numpy")
_PRECISIONS = ("double", "single")


def _env_backend() -> str:
    name = os.environ.get("REPRO_FFT_BACKEND", "auto").strip().lower()
    if name in ("auto", ""):
        return "scipy" if _scipy_fft is not None else "numpy"
    if name not in _BACKENDS:
        raise ValueError(
            f"REPRO_FFT_BACKEND={name!r}; choose from {('auto',) + _BACKENDS}"
        )
    if name == "scipy" and _scipy_fft is None:
        return "numpy"
    return name


def _env_int(var: str, default: int, minimum: int) -> int:
    raw = os.environ.get(var, "").strip()
    if not raw:
        return default
    value = int(raw)
    if value < minimum:
        raise ValueError(f"{var} must be >= {minimum}; got {value}")
    return value


#: Mutable module state (one process-wide policy, like the optics cache).
_STATE = {
    "backend": _env_backend(),
    "workers": _env_int("REPRO_FFT_WORKERS", 0, 0),  # 0 = one per CPU
    "precision": os.environ.get("REPRO_FFT_PRECISION", "double").strip().lower()
    or "double",
    "chunk": _env_int("REPRO_FFT_CHUNK", 16, 1),
}
if _STATE["precision"] not in _PRECISIONS:
    raise ValueError(
        f"REPRO_FFT_PRECISION={_STATE['precision']!r}; choose from {_PRECISIONS}"
    )


# ----------------------------------------------------------------------
# policy accessors
# ----------------------------------------------------------------------
def available_backends() -> Tuple[str, ...]:
    """Backends importable in this environment."""
    return _BACKENDS if _scipy_fft is not None else ("numpy",)


def get_backend() -> str:
    return _STATE["backend"]


def set_backend(name: str) -> None:
    """Select ``"scipy"`` or ``"numpy"`` (``"auto"`` re-resolves)."""
    name = name.strip().lower()
    if name == "auto":
        name = "scipy" if _scipy_fft is not None else "numpy"
    if name not in _BACKENDS:
        raise ValueError(f"unknown FFT backend {name!r}; choose from {_BACKENDS}")
    if name == "scipy" and _scipy_fft is None:
        raise ValueError("scipy backend requested but scipy is not installed")
    _STATE["backend"] = name


def get_workers() -> int:
    """Configured worker count (``0`` means one per CPU)."""
    return _STATE["workers"]


def set_workers(n: int) -> None:
    if n < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto); got {n}")
    _STATE["workers"] = int(n)


_CPU_COUNT = os.cpu_count() or 1


def effective_workers() -> int:
    """The worker count actually handed to pocketfft (always >= 1)."""
    n = _STATE["workers"]
    if n == 0:
        n = _CPU_COUNT
    return max(1, n)


def get_precision() -> str:
    return _STATE["precision"]


def set_precision(precision: str) -> None:
    """``"double"`` (default) or ``"single"`` — inference paths only."""
    precision = precision.strip().lower()
    if precision not in _PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; choose from {_PRECISIONS}"
        )
    _STATE["precision"] = precision


def compute_dtypes() -> Tuple[np.dtype, np.dtype]:
    """``(float_dtype, complex_dtype)`` of the inference compute policy."""
    if _STATE["precision"] == "single":
        return np.dtype(np.float32), np.dtype(np.complex64)
    return np.dtype(np.float64), np.dtype(np.complex128)


def get_stream_chunk() -> int:
    """Source-axis chunk size for the streamed fused primitive."""
    return _STATE["chunk"]


def set_stream_chunk(n: int) -> None:
    if n < 1:
        raise ValueError(f"stream chunk must be >= 1; got {n}")
    _STATE["chunk"] = int(n)


@contextlib.contextmanager
def use(
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    precision: Optional[str] = None,
    chunk: Optional[int] = None,
) -> Iterator[None]:
    """Temporarily override any subset of the dispatch policy."""
    saved = dict(_STATE)
    try:
        if backend is not None:
            set_backend(backend)
        if workers is not None:
            set_workers(workers)
        if precision is not None:
            set_precision(precision)
        if chunk is not None:
            set_stream_chunk(chunk)
        yield
    finally:
        _STATE.update(saved)


def describe() -> dict:
    """Snapshot of the live policy (for bench metadata / debugging)."""
    return {
        "backend": get_backend(),
        "workers": get_workers(),
        "effective_workers": effective_workers(),
        "precision": get_precision(),
        "stream_chunk": get_stream_chunk(),
    }


# ----------------------------------------------------------------------
# transforms (always over the last two axes, numpy "backward" norm)
# ----------------------------------------------------------------------
def fft2(x: np.ndarray, overwrite_x: bool = False) -> np.ndarray:
    """2-D FFT over the last two axes via the selected backend.

    ``overwrite_x`` lets pocketfft reuse ``x`` as scratch (the caller
    must own ``x``); the numpy backend ignores it.
    """
    if _STATE["backend"] == "scipy":
        return _scipy_fft.fft2(
            x, workers=effective_workers(), overwrite_x=overwrite_x
        )
    return np.fft.fft2(x)


def ifft2(x: np.ndarray, overwrite_x: bool = False) -> np.ndarray:
    """2-D inverse FFT over the last two axes via the selected backend.

    ``overwrite_x`` lets pocketfft reuse ``x`` as scratch (the caller
    must own ``x``); the numpy backend ignores it.
    """
    if _STATE["backend"] == "scipy":
        return _scipy_fft.ifft2(
            x, workers=effective_workers(), overwrite_x=overwrite_x
        )
    return np.fft.ifft2(x)


def fftfreq(n: int, d: float = 1.0) -> np.ndarray:
    """FFT sample frequencies (identical across backends)."""
    if _STATE["backend"] == "scipy":
        return _scipy_fft.fftfreq(n, d=d)
    return np.fft.fftfreq(n, d=d)


def freq_reverse(x: np.ndarray) -> np.ndarray:
    """Frequency reversal ``x(f) -> x(-f)`` on the last two axes.

    Index map ``i -> (-i) mod n`` in fftfreq layout; used by the
    conjugate-pair streaming of the fused incoherent-imaging primitive
    (for a real signal, ``FFT(x)(-f) = conj(FFT(x)(f))``).
    """
    return np.roll(x[..., ::-1, ::-1], shift=(1, 1), axis=(-2, -1))
