"""Unified FFT dispatch for every transform in the codebase.

Before this module existed the differentiable ops in
:mod:`repro.autodiff.functional` went through single-threaded
``np.fft`` while the inference fast path used a module-local scipy
import — two backends, one of them pinned to the slowest option on the
hottest path.  ``fftlib`` centralizes the choice:

* **Backend** — scipy's pocketfft (``scipy.fft``) when importable,
  ``np.fft`` otherwise.  Override with ``REPRO_FFT_BACKEND`` in
  ``{"auto", "scipy", "numpy"}`` or :func:`set_backend`.  Requesting
  scipy without scipy installed falls back to numpy (documented,
  silent: the results are identical, only speed differs).
* **Workers** — pocketfft releases the GIL and threads across the
  batch of independent 2-D transforms; ``REPRO_FFT_WORKERS`` /
  :func:`set_workers` control the thread count (``0`` = one worker per
  CPU).  Per-transform results carry no cross-thread reductions, so
  multi-worker output is bitwise identical to serial output — the
  parallel-harness determinism guarantees survive.
* **Precision** — an opt-in float32/complex64 compute policy for
  *inference* paths (``REPRO_FFT_PRECISION`` in ``{"double",
  "single"}`` / :func:`set_precision`).  Only consumers that
  explicitly ask via :func:`compute_dtypes` (the graph-free
  ``incoherent_sum_fast``) honor it; differentiable ops always run in
  double so gradients and parity tests are unaffected.  With the numpy
  backend single precision is best-effort (``np.fft`` computes in
  double internally).
* **Streaming chunk** — the source-axis chunk size used by the fused
  :func:`repro.autodiff.functional.incoherent_image` primitive
  (``REPRO_FFT_CHUNK`` / :func:`set_stream_chunk`).
* **Condition workers** — the thread fan-out across *process-condition*
  kernel stacks (``REPRO_COND_WORKERS`` / :func:`set_condition_workers`;
  ``0`` = fill the worker budget).  The fused condition-axis primitive
  and the engines' graph-free condition fast paths run their independent
  per-stack passes on a persistent, lazily-created
  ``ThreadPoolExecutor`` via :func:`map_conditions`; pocketfft releases
  the GIL, so the passes genuinely overlap.
* **Unified worker budget** — one cap coordinating the three parallelism
  layers (harness worker *processes* x condition *threads* x per-FFT
  pocketfft threads): within a process, ``condition_workers x per-FFT
  workers <= effective_budget()``.  :func:`map_conditions` hands every
  pool thread its share of the budget through a thread-local override,
  and ``run_matrix(workers=N)`` gives each worker process
  ``cpu // N`` of the machine via :func:`set_worker_budget`, so sweeps
  never oversubscribe the cores however the layers compose.

This module deliberately imports nothing from :mod:`repro` so the
autodiff layer can depend on it without import cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, cast

import numpy as np

try:  # scipy's pocketfft: multi-threaded, in-place capable
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - scipy is a baseline dependency
    _scipy_fft = None

__all__ = [
    "fft2",
    "ifft2",
    "fftfreq",
    "get_backend",
    "set_backend",
    "available_backends",
    "get_workers",
    "set_workers",
    "effective_workers",
    "get_condition_workers",
    "set_condition_workers",
    "effective_condition_workers",
    "get_worker_budget",
    "set_worker_budget",
    "effective_budget",
    "map_conditions",
    "get_precision",
    "set_precision",
    "compute_dtypes",
    "get_stream_chunk",
    "set_stream_chunk",
    "run_with_chunk_fallback",
    "use",
    "describe",
]

_BACKENDS = ("scipy", "numpy")
_PRECISIONS = ("double", "single")


def _env_backend() -> str:
    name = os.environ.get("REPRO_FFT_BACKEND", "auto").strip().lower()
    if name in ("auto", ""):
        return "scipy" if _scipy_fft is not None else "numpy"
    if name not in _BACKENDS:
        raise ValueError(
            f"REPRO_FFT_BACKEND={name!r}; choose from {('auto',) + _BACKENDS}"
        )
    if name == "scipy" and _scipy_fft is None:
        return "numpy"
    return name


def _env_int(var: str, default: int, minimum: int) -> int:
    raw = os.environ.get(var, "").strip()
    if not raw:
        return default
    value = int(raw)
    if value < minimum:
        raise ValueError(f"{var} must be >= {minimum}; got {value}")
    return value


#: Mutable module state (one process-wide policy, like the optics cache).
_STATE: Dict[str, Any] = {
    "backend": _env_backend(),
    "workers": _env_int("REPRO_FFT_WORKERS", 0, 0),  # 0 = one per CPU
    "precision": os.environ.get("REPRO_FFT_PRECISION", "double").strip().lower()
    or "double",
    "chunk": _env_int("REPRO_FFT_CHUNK", 16, 1),
    # Condition-axis thread fan-out (0 = fill the worker budget) and the
    # unified per-process thread budget (0 = one per CPU).
    "cond_workers": _env_int("REPRO_COND_WORKERS", 0, 0),
    "budget": _env_int("REPRO_WORKER_BUDGET", 0, 0),
}
if _STATE["precision"] not in _PRECISIONS:
    raise ValueError(
        f"REPRO_FFT_PRECISION={_STATE['precision']!r}; choose from {_PRECISIONS}"
    )


# ----------------------------------------------------------------------
# policy accessors
# ----------------------------------------------------------------------
def available_backends() -> Tuple[str, ...]:
    """Backends importable in this environment."""
    return _BACKENDS if _scipy_fft is not None else ("numpy",)


def get_backend() -> str:
    return str(_STATE["backend"])


def set_backend(name: str) -> None:
    """Select ``"scipy"`` or ``"numpy"`` (``"auto"`` re-resolves)."""
    name = name.strip().lower()
    if name == "auto":
        name = "scipy" if _scipy_fft is not None else "numpy"
    if name not in _BACKENDS:
        raise ValueError(f"unknown FFT backend {name!r}; choose from {_BACKENDS}")
    if name == "scipy" and _scipy_fft is None:
        raise ValueError("scipy backend requested but scipy is not installed")
    _STATE["backend"] = name


def get_workers() -> int:
    """Configured worker count (``0`` means one per CPU)."""
    return int(_STATE["workers"])


def set_workers(n: int) -> None:
    if n < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto); got {n}")
    _STATE["workers"] = int(n)


_CPU_COUNT = os.cpu_count() or 1

#: Thread-local overrides: :func:`map_conditions` hands each pool thread
#: its slice of the worker budget here so nested FFTs cannot
#: oversubscribe, and marks pool threads so nested fan-outs run inline.
_TLS = threading.local()


def effective_workers() -> int:
    """The worker count actually handed to pocketfft (always >= 1).

    Inside a condition-pool thread this returns that thread's share of
    the unified budget (set by :func:`map_conditions`); otherwise the
    configured count, capped by :func:`effective_budget`.
    """
    override = getattr(_TLS, "fft_workers", None)
    if override is not None:
        return max(1, int(override))
    n = int(_STATE["workers"])
    if n == 0:
        n = _CPU_COUNT
    return max(1, min(n, effective_budget()))


def get_worker_budget() -> int:
    """Configured per-process thread budget (``0`` = one per CPU)."""
    return int(_STATE["budget"])


def set_worker_budget(n: int) -> None:
    """Cap the total threads this process may use across FFT and
    condition workers (``0`` = auto: one per CPU).

    ``run_matrix(workers=N)`` hands each worker process ``cpu // N`` so
    process-parallel sweeps never oversubscribe the machine however the
    per-process thread layers compose.
    """
    if n < 0:
        raise ValueError(f"worker budget must be >= 0 (0 = auto); got {n}")
    _STATE["budget"] = int(n)


def effective_budget() -> int:
    """The live per-process thread budget (always >= 1)."""
    n = int(_STATE["budget"])
    if n == 0:
        n = _CPU_COUNT
    return max(1, n)


def get_condition_workers() -> int:
    """Configured condition-axis fan-out (``0`` = fill the budget)."""
    return int(_STATE["cond_workers"])


def set_condition_workers(n: int) -> None:
    """Thread count for per-condition kernel-stack passes
    (``0`` = auto: fill the worker budget; ``1`` = serial)."""
    if n < 0:
        raise ValueError(
            f"condition workers must be >= 0 (0 = auto); got {n}"
        )
    _STATE["cond_workers"] = int(n)


def effective_condition_workers(num_tasks: Optional[int] = None) -> int:
    """Condition threads a fan-out of ``num_tasks`` stacks would use.

    Always >= 1, never more than the budget, never more than the task
    count (a 3-stack window cannot use a fourth thread).
    """
    n = int(_STATE["cond_workers"])
    if n == 0:
        n = effective_budget()
    n = max(1, min(n, effective_budget()))
    if num_tasks is not None:
        n = min(n, max(1, int(num_tasks)))
    return n


def get_precision() -> str:
    return str(_STATE["precision"])


def set_precision(precision: str) -> None:
    """``"double"`` (default) or ``"single"`` — inference paths only."""
    precision = precision.strip().lower()
    if precision not in _PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; choose from {_PRECISIONS}"
        )
    _STATE["precision"] = precision


def compute_dtypes() -> Tuple[np.dtype, np.dtype]:
    """``(float_dtype, complex_dtype)`` of the inference compute policy."""
    if _STATE["precision"] == "single":
        return np.dtype(np.float32), np.dtype(np.complex64)
    return np.dtype(np.float64), np.dtype(np.complex128)


def get_stream_chunk() -> int:
    """Source-axis chunk size for the streamed fused primitive."""
    return int(_STATE["chunk"])


def set_stream_chunk(n: int) -> None:
    if n < 1:
        raise ValueError(f"stream chunk must be >= 1; got {n}")
    _STATE["chunk"] = int(n)


def run_with_chunk_fallback(fn: Callable[[int], Any], csize: int) -> Any:
    """Call ``fn(csize)``; on ``MemoryError`` halve the chunk and retry once.

    The streamed fused primitive's peak transient is the ``(B, chunk, N,
    N)`` transform block, so halving the chunk roughly halves the
    allocation that just failed.  The result is chunk-invariant (atol ~
    1e-13, see the fused-imaging tests), so a degraded retry is
    numerically equivalent — callers that need a *bitwise* contract
    should pin the chunk and let the error propagate instead.  A second
    ``MemoryError`` (or one at ``chunk == 1``) propagates: memory
    pressure that survives halving is genuine exhaustion.
    """
    # Lazy import: fftlib deliberately imports nothing from repro at
    # module scope so it stays usable before the package is fully built.
    from ..utils.faultinject import fault_point

    try:
        fault_point("fftlib.stream_chunk")
        return fn(int(csize))
    except MemoryError:
        if csize <= 1:
            raise
        fault_point("fftlib.stream_chunk")  # the retry allocates again
        return fn(max(1, int(csize) // 2))


@contextlib.contextmanager
def use(
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    precision: Optional[str] = None,
    chunk: Optional[int] = None,
    condition_workers: Optional[int] = None,
    budget: Optional[int] = None,
) -> Iterator[None]:
    """Temporarily override any subset of the dispatch policy."""
    saved = dict(_STATE)
    try:
        if backend is not None:
            set_backend(backend)
        if workers is not None:
            set_workers(workers)
        if precision is not None:
            set_precision(precision)
        if chunk is not None:
            set_stream_chunk(chunk)
        if condition_workers is not None:
            set_condition_workers(condition_workers)
        if budget is not None:
            set_worker_budget(budget)
        yield
    finally:
        _STATE.update(saved)


def describe() -> Dict[str, Any]:
    """Snapshot of the live policy (for bench metadata / debugging)."""
    return {
        "backend": get_backend(),
        "workers": get_workers(),
        "effective_workers": effective_workers(),
        "precision": get_precision(),
        "stream_chunk": get_stream_chunk(),
        "condition_workers": get_condition_workers(),
        "effective_condition_workers": effective_condition_workers(),
        "worker_budget": get_worker_budget(),
        "effective_budget": effective_budget(),
        "cpu_count": _CPU_COUNT,
    }


# ----------------------------------------------------------------------
# the condition-axis thread pool
# ----------------------------------------------------------------------
_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()


def _condition_pool() -> ThreadPoolExecutor:
    """The persistent, lazily-created condition-axis executor.

    Sized once to the CPU count (the most threads that could ever help);
    the *live* concurrency of a fan-out is bounded by how many group
    tasks :func:`map_conditions` submits, so policy changes never force
    a pool rebuild.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=_CPU_COUNT, thread_name_prefix="repro-cond"
            )
        return _POOL


def _partition(num_tasks: int, num_groups: int) -> List[range]:
    """Split ``range(num_tasks)`` into <= ``num_groups`` contiguous runs."""
    base, extra = divmod(num_tasks, num_groups)
    groups: List[range] = []
    start = 0
    for i in range(num_groups):
        size = base + (1 if i < extra else 0)
        if size:
            groups.append(range(start, start + size))
            start += size
    return groups


def map_conditions(fn: Callable[[int], object], num_tasks: int) -> list:
    """Run ``fn(0) .. fn(num_tasks - 1)`` with the condition-axis fan-out.

    Returns ``[fn(0), ..., fn(num_tasks - 1)]`` — results in index
    order, so callers control their reduction order (and hence bitwise
    determinism) regardless of the thread count.  The tasks are
    partitioned into ``effective_condition_workers(num_tasks)``
    contiguous groups, one pool task per group; each pool thread runs
    its group serially with ``effective_budget() // groups`` pocketfft
    workers (the unified-budget split), so condition threads times
    per-FFT threads never exceed the budget.

    Fan-outs of one task, a one-thread policy, or a call made *from* a
    pool thread (a nested fan-out would deadlock-wait on its own
    executor) run inline on the caller's thread.
    """
    if num_tasks <= 0:
        return []
    w = effective_condition_workers(num_tasks)
    if w <= 1 or num_tasks <= 1 or getattr(_TLS, "in_condition_pool", False):
        return [fn(i) for i in range(num_tasks)]
    fft_share = max(1, effective_budget() // w)

    def run_group(indices: range) -> List[Tuple[int, object]]:
        _TLS.in_condition_pool = True
        _TLS.fft_workers = fft_share
        try:
            return [(i, fn(i)) for i in indices]
        finally:
            _TLS.fft_workers = None
            _TLS.in_condition_pool = False

    pool = _condition_pool()
    # Pool threads outlive any one fan-out, so contextvars (notably the
    # repro.obs span parent chain) do not flow into them by default.
    # Each group runs inside a fresh copy of the caller's context — one
    # copy per group, because a Context can only host one concurrent run.
    futures = [
        pool.submit(contextvars.copy_context().run, run_group, g)
        for g in _partition(num_tasks, w)
    ]
    results: list = [None] * num_tasks
    for future in futures:
        for i, value in future.result():
            results[i] = value
    return results


# ----------------------------------------------------------------------
# transforms (always over the last two axes, numpy "backward" norm)
# ----------------------------------------------------------------------
def fft2(x: np.ndarray, overwrite_x: bool = False) -> np.ndarray:
    """2-D FFT over the last two axes via the selected backend.

    ``overwrite_x`` lets pocketfft reuse ``x`` as scratch (the caller
    must own ``x``); the numpy backend ignores it.
    """
    if _STATE["backend"] == "scipy":
        return cast(
            np.ndarray,
            _scipy_fft.fft2(x, workers=effective_workers(), overwrite_x=overwrite_x),
        )
    return np.fft.fft2(x)


def ifft2(x: np.ndarray, overwrite_x: bool = False) -> np.ndarray:
    """2-D inverse FFT over the last two axes via the selected backend.

    ``overwrite_x`` lets pocketfft reuse ``x`` as scratch (the caller
    must own ``x``); the numpy backend ignores it.
    """
    if _STATE["backend"] == "scipy":
        return cast(
            np.ndarray,
            _scipy_fft.ifft2(x, workers=effective_workers(), overwrite_x=overwrite_x),
        )
    return np.fft.ifft2(x)


def fftfreq(n: int, d: float = 1.0) -> np.ndarray:
    """FFT sample frequencies (identical across backends)."""
    if _STATE["backend"] == "scipy":
        return cast(np.ndarray, _scipy_fft.fftfreq(n, d=d))
    return np.fft.fftfreq(n, d=d)


def freq_reverse(x: np.ndarray) -> np.ndarray:
    """Frequency reversal ``x(f) -> x(-f)`` on the last two axes.

    Index map ``i -> (-i) mod n`` in fftfreq layout; used by the
    conjugate-pair streaming of the fused incoherent-imaging primitive
    (for a real signal, ``FFT(x)(-f) = conj(FFT(x)(f))``).
    """
    return np.roll(x[..., ::-1, ::-1], shift=(1, 1), axis=(-2, -1))
