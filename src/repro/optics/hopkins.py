"""Hopkins imaging via TCC + SOCS decomposition — Equations (3)-(4).

Hopkins' approach folds the source and projector into the transmission
cross-coefficients (TCC) and approximates the resulting quadratic form
with its top-Q eigenpairs (Sum of Coherent Systems, SOCS).  The source is
*baked into* the TCC: gradients w.r.t. the source are unavailable, which
is exactly why the paper's SO and BiSMO require Abbe.  The class here is
autodiff-differentiable w.r.t. the mask only and powers the MO-only
baselines (NILT-style, DAC23-MILT-style) plus the hybrid Abbe-Hopkins
AM-SMO comparator [13].

Normalization matches :class:`repro.optics.abbe.AbbeImaging` (TCC divided
by the total source weight), so a *full-rank* SOCS reproduces Abbe's
aerial image to machine precision — a property the test-suite asserts.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np
import scipy.linalg
import scipy.sparse.linalg

from .. import autodiff as ad
from ..autodiff import functional as F
from ..obs import span as obs_span
from .config import OpticalConfig
from .engine import (
    CONDITION_MEMO_MAX,
    MaskLike,
    as_tile_batch,
    incoherent_sum_fast,
)
from .source import SourceGrid

__all__ = ["HopkinsImaging", "build_tcc", "socs_kernels"]

_EPS = 1e-12


def _support_indices(config: OpticalConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Frequency samples that can pass any shifted pupil (|f| <= 2 fc)."""
    fx, fy = config.freq_grid()
    mask = np.hypot(fx, fy) <= 2.0 * config.cutoff_freq + 1e-15
    return np.nonzero(mask)


def build_tcc(
    config: OpticalConfig,
    source: np.ndarray,
    source_grid: Optional[SourceGrid] = None,
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Assemble the (real symmetric PSD) TCC matrix on the support points.

    Returns ``(tcc, support_idx)`` where ``tcc[p, q] =
    (1/sum j) * sum_s j_s H(f_p + f_s) H(f_q + f_s)`` and ``support_idx``
    indexes the mask frequency grid.
    """
    grid = source_grid or SourceGrid.from_config(config)
    if source.shape != grid.shape:
        raise ValueError(f"source shape {source.shape} != grid {grid.shape}")
    sup_r, sup_c = _support_indices(config)
    fx, fy = config.freq_grid()
    fp_x = fx[sup_r, sup_c]  # (P,)
    fp_y = fy[sup_r, sup_c]
    off_x, off_y = grid.freq_offsets(config)  # (S,)
    j = source[grid.valid].astype(np.float64)
    fc = config.cutoff_freq
    # B[s, p] = H(f_p + f_s): does support point p pass the pupil shifted by s?
    dist_sq = (fp_x[None, :] + off_x[:, None]) ** 2 + (fp_y[None, :] + off_y[:, None]) ** 2
    b = (dist_sq <= (fc + 1e-15) ** 2).astype(np.float64)
    tcc = (b.T * j) @ b / (j.sum() + _EPS)
    return tcc, (sup_r, sup_c)


def socs_kernels(
    config: OpticalConfig,
    source: np.ndarray,
    num_kernels: Optional[int] = None,
    source_grid: Optional[SourceGrid] = None,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Top-Q SOCS eigenpairs of the TCC, embedded on the full freq grid.

    Returns ``(weights, kernels, tcc_trace)``: ``weights`` are the
    eigenvalues ``kappa_q`` (descending), ``kernels`` is a real
    ``(Q, N, N)`` array of eigenvector frequency spectra ``Phi_q`` in
    fftfreq layout, and ``tcc_trace`` is the full TCC trace (total
    imaging energy, for truncation-loss diagnostics).
    """
    q = num_kernels or config.socs_terms
    tcc, (sup_r, sup_c) = build_tcc(config, source, source_grid)
    tcc_trace = float(np.trace(tcc))
    p = tcc.shape[0]
    q = min(q, p)
    if q >= p - 1:
        vals, vecs = scipy.linalg.eigh(tcc)
        vals, vecs = vals[::-1], vecs[:, ::-1]
        vals, vecs = vals[:q], vecs[:, :q]
    else:
        vals, vecs = scipy.sparse.linalg.eigsh(tcc, k=q, which="LA")
        order = np.argsort(vals)[::-1]
        vals, vecs = vals[order], vecs[:, order]
    vals = np.clip(vals, 0.0, None)  # PSD up to numerical noise
    n = config.mask_size
    from . import backend as abk

    kernels = abk.HOST.zeros((q, n, n), np.float64)
    kernels[:, sup_r, sup_c] = vecs.T
    return vals, kernels, tcc_trace


class HopkinsImaging:
    """SOCS-truncated Hopkins imaging engine (mask-differentiable only).

    Implements the :class:`repro.optics.engine.ImagingEngine` protocol
    with a baked-in source (``aerial`` rejects a ``source`` argument).

    Parameters
    ----------
    config:
        Optical configuration (``config.socs_terms`` is the default Q).
    source:
        Fixed source magnitude image, shape ``(N_j, N_j)``.  Changing the
        source requires rebuilding the TCC (the inefficiency the paper's
        Abbe framework removes).  The decomposition itself is shared
        through :mod:`repro.optics.cache` unless a custom grid is given.
    num_kernels:
        SOCS truncation order Q; ``None`` uses ``config.socs_terms``;
        pass the full support size for a lossless (test) decomposition.
    defocus_nm:
        Wafer-plane focus offset.  For *any* unit-modulus pupil-phase
        factor ``D`` (defocus, astigmatism, coma, spherical, or a raw
        map — see :class:`repro.optics.zernike.PupilAberration`) the
        aberrated TCC is the nominal TCC conjugated by ``D``:
        ``TCC_D[p, q] = D(f_p) conj(D(f_q)) TCC_0[p, q]`` — a unitary
        diagonal congruence, so the eigenvalues are unchanged and the
        aberrated SOCS kernels are exactly ``Phi_q * D``.  An aberration
        condition therefore costs one elementwise phase multiply, never
        a TCC re-assembly or re-decomposition (the identity behind
        :meth:`condition_kernels`).
    fused:
        When True (default) :meth:`aerial` is one fused
        :func:`repro.autodiff.functional.incoherent_image` node
        (streamed forward, hand-written VJP); ``False`` selects the
        pre-fusion composed-op graph kept as the parity/benchmark
        reference.
    """

    def __init__(
        self,
        config: OpticalConfig,
        source: np.ndarray,
        num_kernels: Optional[int] = None,
        source_grid: Optional[SourceGrid] = None,
        fused: bool = True,
        defocus_nm: float = 0.0,
    ):
        from .zernike import PupilAberration

        config.validate_sampling()
        self.config = config
        self.fused = bool(fused)
        self.aberration = PupilAberration.defocus(float(defocus_nm))
        self.defocus_nm = float(defocus_nm)
        if source_grid is None:
            from . import cache

            self.weights, self._base_kernel_stack, self.tcc_trace = cache.socs(
                config, source, num_kernels
            )
        else:
            weights, kernels, tcc_trace = socs_kernels(
                config, source, num_kernels, source_grid
            )
            self.weights = weights
            self.tcc_trace = tcc_trace
            self._base_kernel_stack = ad.Tensor(kernels)  # (Q, N, N), fftfreq
        self._kernel_stack = self._aberrated_kernels(self.aberration)
        self.num_kernels = self._kernel_stack.shape[0]
        self._weight_tensor = ad.Tensor(self.weights)
        #: Per-condition kernel-stack memo for the condition axis.
        self._condition_memo: dict = {
            self.aberration.cache_key: self._kernel_stack
        }
        #: Guards the memo against concurrent condition-axis builds.
        self._memo_lock = threading.Lock()

    def _aberrated_kernels(self, aberration) -> "ad.Tensor":
        """Nominal SOCS kernels phased to an aberration condition (exact
        for any unit-modulus ``D``, see class docstring); the null spec
        shares the cached base stack."""
        from .zernike import PupilAberration

        ab = PupilAberration.coerce(aberration)
        if ab.is_null:
            return self._base_kernel_stack
        phase = ab.phase(self.config)
        return ad.Tensor(self._base_kernel_stack.data * phase[None, :, :])

    def condition_kernels(self, conditions):
        """Per-condition SOCS kernel tensors (memoized phase multiplies,
        bounded by ``CONDITION_MEMO_MAX``).  Entries are defocus floats
        or any :meth:`PupilAberration.coerce` argument."""
        from .zernike import PupilAberration

        out = []
        for condition in conditions:
            ab = PupilAberration.coerce(condition)
            key = ab.cache_key
            with self._memo_lock:
                entry = self._condition_memo.get(key)
            if entry is None:
                built = self._aberrated_kernels(ab)
                with self._memo_lock:
                    entry = self._condition_memo.get(key)
                    if entry is None:
                        if len(self._condition_memo) >= CONDITION_MEMO_MAX:
                            for memo_key in self._condition_memo:
                                if memo_key != self.aberration.cache_key:
                                    del self._condition_memo[memo_key]
                                    break
                        self._condition_memo[key] = built
                        entry = built
            out.append(entry)
        return out

    def aerial(self, mask: ad.Tensor, source: Optional[ad.Tensor] = None) -> ad.Tensor:
        """Aerial image I = sum_q kappa_q |IFFT(Phi_q * FFT(M))|^2 (Eq. (4)).

        ``mask`` is a single ``(N, N)`` tile or a ``(B, N, N)`` batch;
        both ride one fused ``incoherent_image`` node (streamed over the
        kernel axis, hand-written VJP).  ``source`` must be None: the
        source is frozen into the TCC at construction.
        """
        if source is not None:
            raise ValueError(
                "HopkinsImaging bakes the source into the TCC; "
                "rebuild the engine to change it"
            )
        if self.fused:
            return F.incoherent_image(
                mask, self._kernel_stack, self._weight_tensor
            )
        return F.incoherent_image_composed(
            mask, self._kernel_stack, self._weight_tensor
        )

    def aerial_fast(
        self, mask: MaskLike, source: Optional[MaskLike] = None
    ) -> np.ndarray:
        """Graph-free inference path; zero eigenvalues are pruned (exact)."""
        if source is not None:
            raise ValueError(
                "HopkinsImaging bakes the source into the TCC; "
                "rebuild the engine to change it"
            )
        tiles, single = as_tile_batch(mask, self.config.mask_size)
        out = incoherent_sum_fast(
            tiles, self._kernel_stack.data, self.weights, 1.0
        )
        return out[0] if single else out

    # ------------------------------------------------------------------
    # process-condition axis
    # ------------------------------------------------------------------
    def aerial_conditions(
        self,
        mask: ad.Tensor,
        source: Optional[ad.Tensor] = None,
        conditions=(0.0,),
        *,
        focus_values=None,
    ) -> ad.Tensor:
        """Aerial stack across pupil conditions: ``(F, B, N, N)``.

        One fused ``incoherent_image_stack`` node over the per-condition
        phased SOCS kernel stacks (arbitrary aberrations — the
        rank-preserving phase identity, see the class docstring),
        sharing a single mask-spectrum FFT.  ``conditions`` entries are
        defocus floats or any :meth:`PupilAberration.coerce` argument
        (``focus_values`` is the legacy keyword alias).  ``source`` must
        be None (baked into the TCC); SOCS kernels carry no
        ``+/-sigma`` pairing, so no ``conj_pairs`` are passed.
        ``fused=False`` engines build the composed-op reference graph
        instead (one :func:`incoherent_image_composed` per condition,
        scattered into the condition stack) — the same A/B oracle
        switch as :meth:`aerial`.
        """
        if focus_values is not None:
            conditions = focus_values
        if source is not None:
            raise ValueError(
                "HopkinsImaging bakes the source into the TCC; "
                "rebuild the engine to change it"
            )
        kernels = self.condition_kernels(conditions)
        if not self.fused:
            aerials = [
                F.incoherent_image_composed(mask, kern, self._weight_tensor)
                for kern in kernels
            ]
            shape = (len(aerials),) + aerials[0].shape
            total = None
            for fi, aerial in enumerate(aerials):
                part = F.scatter(aerial, fi, shape)
                total = part if total is None else F.add(total, part)
            return total
        return F.incoherent_image_stack(mask, kernels, self._weight_tensor)

    def aerial_conditions_fast(
        self,
        mask: MaskLike,
        source: Optional[MaskLike] = None,
        conditions=(0.0,),
        *,
        focus_values=None,
    ) -> np.ndarray:
        """Graph-free condition-axis forward (inference/judge path).
        Per-condition passes fan out across the
        :func:`repro.optics.fftlib.map_conditions` thread pool."""
        from . import fftlib

        if focus_values is not None:
            conditions = focus_values
        if source is not None:
            raise ValueError(
                "HopkinsImaging bakes the source into the TCC; "
                "rebuild the engine to change it"
            )
        tiles, single = as_tile_batch(mask, self.config.mask_size)
        kernels = self.condition_kernels(conditions)

        def _one_condition(fi: int) -> np.ndarray:
            with obs_span("engine.condition", index=fi):
                return incoherent_sum_fast(
                    tiles, kernels[fi].data, self.weights, 1.0
                )

        with obs_span("engine.conditions", engine="hopkins", n=len(kernels)):
            out = np.stack(
                fftlib.map_conditions(_one_condition, len(kernels))
            )
        return out[:, 0] if single else out

    @property
    def truncation_energy(self) -> float:
        """Fraction of TCC trace captured by the retained eigenvalues.

        (Diagnostic for the accuracy loss that Table 3 attributes to
        Hopkins truncation.)
        """
        return float(self.weights.sum() / (self.tcc_trace + _EPS))
