"""Projection pupil (optical transfer function) — Equation (5).

The projector is modelled as an ideal circular low-pass filter with
cutoff ``NA / lambda``.  For Abbe imaging, each source point sees the
pupil shifted by its own spatial frequency; :func:`shifted_pupil_stack`
builds all shifted pupils at once so the imaging engine can batch the
per-source FFTs (the paper's parallel acceleration, Section 3.1).

Aberrations multiply the shifted stack by a unit-modulus phase factor
on the mask frequency grid: :func:`defocus_phase` is the classic
Fresnel focus term, and :func:`aberrated_pupil_stack` generalizes it to
any :class:`repro.optics.zernike.PupilAberration` (Zernike terms Z4-Z11
or a raw phase map) — the pupil-phase condition axis of a process
window.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .config import OpticalConfig
from .source import SourceGrid
from .zernike import PupilAberration, defocus_exponent

__all__ = [
    "pupil",
    "shifted_pupil_stack",
    "defocus_phase",
    "defocused_pupil_stack",
    "aberrated_pupil_stack",
    "conj_pair_indices",
]


def pupil(config: OpticalConfig) -> np.ndarray:
    """Unshifted pupil H(f, g) on the mask frequency grid (fftfreq order)."""
    fx, fy = config.freq_grid()
    return (np.hypot(fx, fy) <= config.cutoff_freq + 1e-15).astype(np.float64)


def shifted_pupil_stack(
    config: OpticalConfig, grid: SourceGrid
) -> Tuple[np.ndarray, np.ndarray]:
    """Pupils shifted by every valid source point's frequency offset.

    Returns
    -------
    stack:
        ``(S, N_m, N_m)`` float array; ``stack[s] = H(f + f_s, g + g_s)``
        for the s-th valid source point.
    valid_index:
        Tuple of index arrays selecting the valid source points in the
        ``(N_j, N_j)`` source image (row-major order matching ``stack``).
    """
    fx, fy = config.freq_grid()
    off_x, off_y = grid.freq_offsets(config)
    fc = config.cutoff_freq
    # (S, N, N) via broadcasting; bool -> float64 for autodiff multiplies.
    shifted_sq = (fx[None, :, :] + off_x[:, None, None]) ** 2 + (
        fy[None, :, :] + off_y[:, None, None]
    ) ** 2
    stack = (shifted_sq <= (fc + 1e-15) ** 2).astype(np.float64)
    valid_index = np.nonzero(grid.valid)
    return stack, valid_index


def defocus_phase(config: OpticalConfig, defocus_nm: float) -> np.ndarray:
    """Paraxial defocus phase factor exp(-i pi lambda z (f^2 + g^2)).

    Multiplying the pupil by this complex factor models a wafer-plane
    focus offset of ``defocus_nm`` (Fresnel approximation).  This is the
    focus axis of the process-window subsystem: every focus value of a
    :class:`repro.optics.config.ProcessWindow` images through one such
    defocused pupil stack (cached per focus in
    :mod:`repro.optics.cache` and streamed through the fused
    ``incoherent_image_stack`` primitive); the paper's own PVB (Eq. (8))
    uses the dose corners only, which share the zero-defocus pass.

    Note the phase is *even* in (f, g): frequency reversal leaves it
    unchanged, so the ``+/-sigma`` structural pairing of the shifted
    pupils survives defocus (see :func:`conj_pair_indices`).  The
    exponent lives in :func:`repro.optics.zernike.defocus_exponent` —
    the same array a ``{"Z4": z}`` aberration spec exponentiates, which
    is what makes the ``defocus_nm`` sugar bitwise-exact.
    """
    return np.exp(1j * defocus_exponent(config, defocus_nm))


def defocused_pupil_stack(
    config: OpticalConfig, grid: SourceGrid, defocus_nm: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Shifted pupils with a defocus aberration applied (complex stack)."""
    return aberrated_pupil_stack(config, grid, PupilAberration.defocus(defocus_nm))


def aberrated_pupil_stack(
    config: OpticalConfig, grid: SourceGrid, aberration
) -> Tuple[np.ndarray, np.ndarray]:
    """Shifted pupils under an arbitrary pupil-phase aberration.

    ``aberration`` is anything :meth:`PupilAberration.coerce` accepts (a
    defocus float, a ``{term: nm}`` mapping, a radian phase map or a
    spec).  The null spec returns the plain *real* stack — keeping the
    verified ``+/-sigma`` conjugate-field streaming available — while
    any non-null spec multiplies in the complex unit-modulus phase
    factor (one elementwise multiply; the stack geometry never
    changes).
    """
    stack, valid_index = shifted_pupil_stack(config, grid)
    ab = PupilAberration.coerce(aberration)
    if ab.is_null:
        return stack, valid_index
    return stack * ab.phase(config)[None, :, :], valid_index


def conj_pair_indices(
    stack: np.ndarray, valid_index, grid: SourceGrid
) -> Optional[np.ndarray]:
    """Frequency-reversal pairing of a shifted pupil stack, if usable.

    The source grid is point-symmetric, so the pupil shifted by
    ``sigma`` is the frequency reversal of the one shifted by
    ``-sigma`` — the structure the fused primitives exploit to evaluate
    only one coherent field per ``+/-sigma`` pair on real masks.  The
    candidate pairing (from the source coordinates) is verified against
    the actual pupil samples, so asymmetric custom stacks simply opt
    out (``None``).  Complex (defocused) stacks also return ``None``:
    the *structural* pairing survives defocus (the defocus phase is
    even in frequency), but the conjugate *field* identity
    ``F_{-sigma} = conj(F_{+sigma})`` needs real kernels, so streaming
    cannot halve the FFT work there.
    """
    from . import fftlib

    if np.iscomplexobj(stack):
        return None
    rows, cols = valid_index
    sx = grid.sigma_x[rows, cols]
    sy = grid.sigma_y[rows, cols]
    index = {
        (round(float(x), 9), round(float(y), 9)): i
        for i, (x, y) in enumerate(zip(sx, sy))
    }
    pairs = np.empty(sx.size, dtype=np.intp)
    for i, (x, y) in enumerate(zip(sx, sy)):
        j = index.get((round(float(-x), 9), round(float(-y), 9)))
        if j is None:
            return None
        pairs[i] = j
    # Pupils are exact 0/1 indicators, so the reversal identity can
    # be checked bitwise (one-time cost per build).
    reps = np.nonzero(pairs > np.arange(pairs.size))[0]
    if not np.array_equal(stack[pairs[reps]], fftlib.freq_reverse(stack[reps])):
        return None
    return pairs
