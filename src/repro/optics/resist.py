"""Resist model — Equation (6): a differentiable sigmoid threshold.

The printed (resist) pattern is ``Z = sigmoid(beta * (I - I_tr))``:
a constant-threshold resist with steepness ``beta`` keeping the model
differentiable for gradient-based SMO.  Dose variation for the process
window enters by scaling the *mask transmission* before imaging
(Section 3.1: ``M_min = d_min * sigma(alpha_m * theta_M)``), handled by
the SMO objective; this module only maps aerial intensity to resist.
"""

from __future__ import annotations

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from .config import OpticalConfig

__all__ = ["resist_image", "binarize", "printed_area_nm2", "calibrate_threshold"]


def resist_image(
    aerial: ad.Tensor, config: OpticalConfig, threshold: float | None = None
) -> ad.Tensor:
    """Differentiable resist pattern Z = sigmoid(beta * (I - I_tr))."""
    tr = config.intensity_threshold if threshold is None else float(threshold)
    return F.sigmoid(F.mul(F.sub(aerial, tr), config.beta))


def binarize(image: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Hard-threshold a (resist or mask) image to {0, 1}."""
    return (np.asarray(image) >= threshold).astype(np.float64)


def printed_area_nm2(resist: np.ndarray, config: OpticalConfig) -> float:
    """Printed feature area implied by a resist image."""
    return float(binarize(resist).sum() * config.pixel_area_nm2)


def calibrate_threshold(
    aerial: np.ndarray,
    target: np.ndarray,
    lo: float = 0.05,
    hi: float = 0.8,
    iters: int = 40,
) -> float:
    """Bisection for the intensity threshold whose printed area matches
    the target area.

    A convenience for non-paper optical setups; the paper's experiments
    use a fixed threshold, but sanity tests use this to confirm the
    default is reasonable.
    """
    target_area = float((np.asarray(target) >= 0.5).sum())
    if target_area == 0:
        raise ValueError("target pattern is empty")
    a, b = lo, hi
    for _ in range(iters):
        mid = (a + b) / 2.0
        area = float((aerial >= mid).sum())
        if area > target_area:
            a = mid
        else:
            b = mid
    return (a + b) / 2.0
