"""Pixelated illumination source grids and parametric templates.

The source is an ``N_j x N_j`` grid of points in normalized pupil
coordinates ``(sigma_x, sigma_y) in [-1, 1]^2``; each point carries a
grayscale magnitude ``j in [0, 1]`` (Section 3.1 "freeform
illumination").  Points outside the unit disc are physically invalid and
are excluded from imaging.

Initial shapes come from the parametric templates the paper mentions:
annular (the experimental setting, sigma_out 0.95 / sigma_in 0.63),
quasar, dipole, plus conventional/coherent for testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .config import OpticalConfig

__all__ = ["SourceGrid", "annular", "quasar", "dipole", "conventional", "coherent_point"]


@dataclass(frozen=True)
class SourceGrid:
    """Geometry of the discretized source plane.

    ``sigma_x``/``sigma_y`` are the meshed normalized coordinates, and
    ``valid`` marks grid points inside the unit disc (usable emitters).
    """

    sigma_x: np.ndarray
    sigma_y: np.ndarray
    valid: np.ndarray

    @classmethod
    def from_config(cls, config: OpticalConfig) -> "SourceGrid":
        ax = config.source_sigma_axes()
        sx, sy = np.meshgrid(ax, ax, indexing="xy")
        radius = np.hypot(sx, sy)
        return cls(sigma_x=sx, sigma_y=sy, valid=radius <= 1.0 + 1e-12)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.sigma_x.shape

    @property
    def num_valid(self) -> int:
        return int(self.valid.sum())

    def freq_offsets(self, config: OpticalConfig) -> Tuple[np.ndarray, np.ndarray]:
        """Physical frequency offsets (1/nm) of the *valid* source points.

        A source point at sigma shifts the pupil by ``sigma * NA/lambda``
        (Equation (1): ``H(f + f', ...)`` with f the source frequency).
        """
        fc = config.cutoff_freq
        return self.sigma_x[self.valid] * fc, self.sigma_y[self.valid] * fc

    def radius(self) -> np.ndarray:
        return np.hypot(self.sigma_x, self.sigma_y)


def _empty(grid: SourceGrid) -> np.ndarray:
    return np.zeros(grid.shape, dtype=np.float64)


def annular(grid: SourceGrid, sigma_out: float, sigma_in: float) -> np.ndarray:
    """Annular (ring) illumination: 1 for sigma_in <= r <= sigma_out."""
    r = grid.radius()
    out = _empty(grid)
    out[(r >= sigma_in) & (r <= sigma_out) & grid.valid] = 1.0
    if not out.any():
        raise ValueError("annulus contains no source grid points; refine N_j")
    return out


def quasar(
    grid: SourceGrid,
    sigma_out: float,
    sigma_in: float,
    opening_deg: float = 45.0,
) -> np.ndarray:
    """Quasar illumination: annulus restricted to four diagonal wedges."""
    r = grid.radius()
    theta = np.degrees(np.arctan2(grid.sigma_y, grid.sigma_x))
    half = opening_deg / 2.0
    wedge = np.zeros_like(r, dtype=bool)
    for center in (45.0, 135.0, -45.0, -135.0):
        delta = (theta - center + 180.0) % 360.0 - 180.0
        wedge |= np.abs(delta) <= half
    out = _empty(grid)
    out[(r >= sigma_in) & (r <= sigma_out) & wedge & grid.valid] = 1.0
    if not out.any():
        raise ValueError("quasar template is empty; widen opening or refine N_j")
    return out


def dipole(
    grid: SourceGrid,
    sigma_out: float,
    sigma_in: float,
    axis: str = "x",
    opening_deg: float = 60.0,
) -> np.ndarray:
    """Dipole illumination: two opposing poles along ``axis``."""
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")
    r = grid.radius()
    theta = np.degrees(np.arctan2(grid.sigma_y, grid.sigma_x))
    centers = (0.0, 180.0) if axis == "x" else (90.0, -90.0)
    half = opening_deg / 2.0
    wedge = np.zeros_like(r, dtype=bool)
    for center in centers:
        delta = (theta - center + 180.0) % 360.0 - 180.0
        wedge |= np.abs(delta) <= half
    out = _empty(grid)
    out[(r >= sigma_in) & (r <= sigma_out) & wedge & grid.valid] = 1.0
    if not out.any():
        raise ValueError("dipole template is empty; widen opening or refine N_j")
    return out


def conventional(grid: SourceGrid, sigma_out: float) -> np.ndarray:
    """Conventional (disc) illumination of partial coherence sigma_out."""
    r = grid.radius()
    out = _empty(grid)
    out[(r <= sigma_out) & grid.valid] = 1.0
    return out


def coherent_point(grid: SourceGrid) -> np.ndarray:
    """Single on-axis point (coherent limit) — used by model sanity tests."""
    out = _empty(grid)
    n = grid.shape[0]
    r = grid.radius()
    centre = np.unravel_index(np.argmin(r), r.shape)
    out[centre] = 1.0
    return out
