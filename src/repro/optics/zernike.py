"""Zernike aberration subsystem — generalized pupil-phase conditions.

``defocus_phase`` (PR 4) models one aberration: the paraxial Fresnel
defocus.  Real scanners drift in astigmatism, coma and spherical
aberration too, and every one of them is — exactly like defocus — a
*unit-modulus phase factor* multiplying the pupil on the mask frequency
grid.  The fused condition-axis machinery (``condition_stacks``,
``incoherent_image_stack``, the aberration-keyed optics cache) handles
arbitrary complex stacks, so the marginal cost of an extra aberration
condition is one streamed kernel pass sharing the mask-spectrum FFT.

This module provides

* :func:`zernike_polynomial` — Noll-normalized Zernike polynomials
  Z4..Z11 (defocus, astigmatism, coma, trefoil, spherical) evaluated on
  the pupil's normalized frequency disk;
* :class:`PupilAberration` — a frozen, hashable, picklable spec (a
  ``{term: coefficient-nm}`` mapping and/or a raw phase map in radians)
  that compiles into the complex pupil-phase factor;
* :func:`parse_aberration_spec` — the CLI string form
  (``"Z5=20,Z7=-10"``).

Coefficient conventions
-----------------------
``Z4`` is the focus axis and keeps the process-window unit: its
coefficient is **wafer defocus in nm**, and its phase map is *exactly*
the Fresnel factor of :func:`repro.optics.pupil.defocus_phase` — so
``ProcessCorner(defocus_nm=f)`` is pure sugar for
``ProcessCorner(aberrations={"Z4": f})`` and both compile to
bitwise-identical pupil stacks (they canonicalize to one spec and share
one cached stack).  On the unit disk the Fresnel map is the Noll Z4
polynomial plus a piston term (a global phase, invisible in intensity);
:func:`defocus_to_wavefront_nm` converts to the Noll wavefront
coefficient when needed.  Every other term's coefficient is **nm of
wavefront error** under the Noll normalization, entering the pupil as
``exp(-i 2 pi c Z(rho, theta) / lambda)`` — the same retardation sign as
defocus.

Frequency parity matters for the fused streaming: terms with even
azimuthal order m (Z4 defocus, Z5/Z6 astigmatism, Z11 spherical) are
even under frequency reversal, so the *structural* ``+/-sigma`` pairing
of the shifted pupils survives; odd-m terms (Z7/Z8 coma, Z9/Z10
trefoil) flip sign — ``D(-f) = conj(D(f))`` — which breaks even the
structural pairing.  Either way the conjugate *field* identity
``F_{-sigma} = conj(F_{+sigma})`` needs real kernels, so aberrated
(complex) stacks always opt out of half-FFT streaming (see
:func:`repro.optics.pupil.conj_pair_indices`); the streamed fallback is
exact.

The polynomials are evaluated on the *mask* frequency grid with
``rho = |f| * lambda / NA``; shifted-pupil support reaches ``rho <= 2``,
where the polynomials extrapolate smoothly — consistent with the
Fresnel defocus factor, which has always been evaluated on the full
grid.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from math import factorial
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from .config import OpticalConfig

__all__ = [
    "ZERNIKE_TERMS",
    "NOLL_INDICES",
    "zernike_radial",
    "zernike_polynomial",
    "term_parity",
    "defocus_exponent",
    "defocus_to_wavefront_nm",
    "wavefront_to_defocus_nm",
    "PupilAberration",
    "parse_aberration_spec",
]

#: Noll index -> (n, m) for the supported terms.  Noll's convention:
#: even j pairs with cos(m theta), odd j with sin(m theta) (encoded here
#: by the sign of m).
NOLL_INDICES: Dict[str, Tuple[int, int]] = {
    "Z4": (2, 0),     # defocus
    "Z5": (2, -2),    # oblique astigmatism
    "Z6": (2, 2),     # vertical astigmatism
    "Z7": (3, -1),    # vertical coma
    "Z8": (3, 1),     # horizontal coma
    "Z9": (3, -3),    # vertical trefoil
    "Z10": (3, 3),    # oblique trefoil
    "Z11": (4, 0),    # primary spherical
}

#: Supported term names in Noll order.
ZERNIKE_TERMS: Tuple[str, ...] = tuple(NOLL_INDICES)

_TERM_ORDER = {name: i for i, name in enumerate(ZERNIKE_TERMS)}


def _canonical_term(name: str) -> str:
    key = str(name).strip().upper()
    if key not in NOLL_INDICES:
        raise KeyError(
            f"unknown Zernike term {name!r}; choose from {ZERNIKE_TERMS}"
        )
    return key


def zernike_radial(n: int, m: int, rho: np.ndarray) -> np.ndarray:
    """Radial polynomial R_n^|m|(rho) (standard factorial series)."""
    m = abs(m)
    if (n - m) % 2:
        raise ValueError(f"R_n^m needs n - |m| even; got n={n}, m={m}")
    rho = np.asarray(rho, dtype=np.float64)
    out = np.zeros_like(rho)
    for k in range((n - m) // 2 + 1):
        coeff = (
            (-1.0) ** k
            * factorial(n - k)
            / (factorial(k) * factorial((n + m) // 2 - k) * factorial((n - m) // 2 - k))
        )
        out += coeff * rho ** (n - 2 * k)
    return out


def zernike_polynomial(
    term: str, rho: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """Noll-normalized Zernike polynomial on (rho, theta).

    Normalization: ``mean(Z^2) = 1`` over the unit disk (so coefficients
    are RMS wavefront); ``m < 0`` selects the ``sin`` harmonic, ``m > 0``
    the ``cos`` one (Noll's sign convention, see :data:`NOLL_INDICES`).
    """
    n, m = NOLL_INDICES[_canonical_term(term)]
    radial = zernike_radial(n, m, rho)
    if m == 0:
        return np.sqrt(n + 1.0) * radial
    trig = np.sin(abs(m) * theta) if m < 0 else np.cos(abs(m) * theta)
    return np.sqrt(2.0 * (n + 1.0)) * radial * trig


def term_parity(term: str) -> int:
    """+1 when Z(-f) == Z(f) (even azimuthal order), -1 otherwise.

    Even terms preserve the structural ``+/-sigma`` pupil pairing under
    aberration; odd terms (coma, trefoil) break it — the parity the
    conjugate-pair opt-out tests assert.
    """
    _, m = NOLL_INDICES[_canonical_term(term)]
    return 1 if m % 2 == 0 else -1


def defocus_exponent(config: OpticalConfig, defocus_nm: float) -> np.ndarray:
    """Fresnel defocus phase exponent ``-pi lambda z (f^2 + g^2)``.

    The single source of truth for the focus axis:
    :func:`repro.optics.pupil.defocus_phase` and the ``Z4`` term of a
    :class:`PupilAberration` both exponentiate exactly this array, which
    is what makes ``defocus_nm`` sugar bitwise-exact.
    """
    fx, fy = config.freq_grid()
    return -np.pi * config.wavelength_nm * defocus_nm * (fx**2 + fy**2)


def defocus_to_wavefront_nm(config: OpticalConfig, defocus_nm: float) -> float:
    """Noll-Z4 RMS wavefront coefficient equivalent to a wafer defocus.

    The Fresnel map restricted to the unit pupil disk is ``W(rho) =
    z NA^2 rho^2 / 2 = c4 * Z4(rho) + piston`` with ``c4 = z NA^2 /
    (4 sqrt(3))``; the piston is a global phase with no effect on
    intensity.
    """
    return float(defocus_nm) * config.na**2 / (4.0 * np.sqrt(3.0))


def wavefront_to_defocus_nm(config: OpticalConfig, c4_nm: float) -> float:
    """Inverse of :func:`defocus_to_wavefront_nm`."""
    return float(c4_nm) * 4.0 * np.sqrt(3.0) / config.na**2


def _build_freq_map(config: OpticalConfig, term: str) -> np.ndarray:
    """Zernike polynomial sampled on the mask frequency grid.

    ``rho`` is the frequency radius normalized by the pupil cutoff
    ``NA/lambda`` (fftfreq layout, like every pupil quantity).  Used for
    every term except ``Z4``, whose map is the Fresnel exponent.
    """
    fx, fy = config.freq_grid()
    rho = np.hypot(fx, fy) / config.cutoff_freq
    theta = np.arctan2(fy, fx)
    return zernike_polynomial(term, rho, theta)


def parse_aberration_spec(spec: str) -> Dict[str, float]:
    """Parse the CLI form ``"Z5=20,Z7=-10"`` into a coefficient dict.

    Coefficients are nm (``Z4``: wafer defocus; others: Noll RMS
    wavefront).  Whitespace is ignored; empty specs are rejected.
    """
    out: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad aberration term {part!r}; expected e.g. 'Z5=20'"
            )
        name, value = part.split("=", 1)
        key = _canonical_term(name)
        out[key] = out.get(key, 0.0) + float(value)
    if not out:
        raise ValueError(f"empty aberration spec {spec!r}")
    return out


def _coerce_terms(terms: Any) -> Tuple[Tuple[str, float], ...]:
    """Canonical term tuple: validated names, zeros dropped, Noll order."""
    if terms is None:
        return ()
    items = terms.items() if isinstance(terms, Mapping) else terms
    merged: Dict[str, float] = {}
    for name, coeff in items:
        key = _canonical_term(name)
        merged[key] = merged.get(key, 0.0) + float(coeff)
    return tuple(
        sorted(
            ((k, v) for k, v in merged.items() if v != 0.0),
            key=lambda kv: _TERM_ORDER[kv[0]],
        )
    )


@dataclass(frozen=True, eq=False)
class PupilAberration:
    """Immutable pupil-phase specification for one process condition.

    ``terms`` maps Zernike names to coefficients in nm (see the module
    docstring for the per-term unit convention); ``custom`` is an
    optional raw phase-exponent map in **radians** on the mask frequency
    grid (fftfreq layout), added on top of the terms.  The object is
    hashable (equality/hash ride the canonical :attr:`cache_key`, with
    the custom map keyed by digest) and picklable, so it can sit inside
    :class:`repro.optics.config.ProcessCorner` and ride
    ``RunSettings`` across the harness process pool.
    """

    #: The shared nominal (no-aberration) spec; assigned after the class
    #: body (it needs a constructed instance).
    NULL: ClassVar["PupilAberration"]

    terms: Tuple[Tuple[str, float], ...] = ()
    custom: Optional[np.ndarray] = None
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", _coerce_terms(self.terms))
        if self.custom is not None:
            arr = np.ascontiguousarray(self.custom, dtype=np.float64)
            if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
                raise ValueError(
                    f"custom phase map must be square (N, N); got {arr.shape}"
                )
            arr.setflags(write=False)
            object.__setattr__(self, "custom", arr)
            object.__setattr__(
                self, "_digest", hashlib.sha1(arr.tobytes()).hexdigest()
            )
        else:
            object.__setattr__(self, "_digest", None)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def coerce(
        cls, value: Union[None, float, int, Mapping, np.ndarray, "PupilAberration"]
    ) -> "PupilAberration":
        """Normalize any accepted aberration argument to a spec.

        ``None`` -> null; a scalar -> pure defocus of that many nm
        (legacy ``defocus_nm`` call sites); a mapping -> Zernike terms; a
        2-D array -> raw radian phase map; a spec passes through.
        """
        if isinstance(value, PupilAberration):
            return value
        if value is None:
            return _NULL
        if isinstance(value, (float, int, np.floating, np.integer)):
            return cls.defocus(float(value))
        if isinstance(value, Mapping):
            return cls(terms=tuple(value.items()))
        if isinstance(value, np.ndarray):
            return cls(custom=value)
        raise TypeError(
            f"cannot interpret {type(value).__name__} as a pupil aberration; "
            "pass a defocus float, a {term: nm} mapping, a radian phase map "
            "or a PupilAberration"
        )

    @classmethod
    def defocus(cls, defocus_nm: float) -> "PupilAberration":
        """Pure wafer-defocus spec (the legacy focus axis)."""
        if float(defocus_nm) == 0.0:
            return _NULL
        return cls(terms=(("Z4", float(defocus_nm)),))

    def add_defocus(self, defocus_nm: float) -> "PupilAberration":
        """This spec with ``defocus_nm`` folded into the Z4 coefficient."""
        if float(defocus_nm) == 0.0:
            return self
        return PupilAberration(
            terms=self.terms + (("Z4", float(defocus_nm)),), custom=self.custom
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def cache_key(self) -> Tuple[Tuple[Tuple[str, float], ...], Optional[str]]:
        """Hashable canonical identity (terms + custom-map digest)."""
        return (self.terms, self._digest)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PupilAberration):
            return NotImplemented
        return self.cache_key == other.cache_key

    def __hash__(self) -> int:
        return hash(self.cache_key)

    @property
    def is_null(self) -> bool:
        return not self.terms and self.custom is None

    @property
    def is_pure_defocus(self) -> bool:
        """True for the null spec or a lone Z4 term (the legacy axis)."""
        if self.custom is not None:
            return False
        return len(self.terms) == 0 or (
            len(self.terms) == 1 and self.terms[0][0] == "Z4"
        )

    @property
    def defocus_nm(self) -> float:
        """The Z4 (wafer defocus) component in nm."""
        for name, coeff in self.terms:
            if name == "Z4":
                return coeff
        return 0.0

    def magnitude_nm(self, config: Optional[OpticalConfig] = None) -> float:
        """Heuristic distance from the nominal (null) condition.

        Sum of absolute term coefficients in a common unit, plus the
        custom map's RMS; used only to pick the "most nominal" condition
        of a window for the legacy single-condition image keys.  With a
        ``config`` every contribution is RMS wavefront nm (the Z4
        wafer-defocus coefficient converted via
        :func:`defocus_to_wavefront_nm`, the radian map scaled by
        ``lambda / 2 pi``); without one the raw coefficients are summed
        (exact for comparing pure-defocus conditions).
        """
        total = 0.0
        for name, coeff in self.terms:
            if name == "Z4" and config is not None:
                total += abs(defocus_to_wavefront_nm(config, coeff))
            else:
                total += abs(coeff)
        if self.custom is not None:
            rms_rad = float(np.sqrt(np.mean(self.custom**2)))
            if config is not None:
                rms_rad *= config.wavelength_nm / (2.0 * np.pi)
            total += rms_rad
        return total

    @property
    def label(self) -> str:
        """Compact human label, matching the legacy focus form when
        possible (``f40nm``) so existing corner labels are preserved."""
        if self.is_pure_defocus:
            return f"f{self.defocus_nm:g}nm"
        parts = [f"{name}{coeff:+g}" for name, coeff in self.terms]
        if self.custom is not None:
            parts.append("custom")
        return ",".join(parts)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def phase_exponent(self, config: OpticalConfig) -> np.ndarray:
        """Real phase exponent (radians) on the mask frequency grid."""
        from . import cache

        n = config.mask_size
        out = np.zeros((n, n), dtype=np.float64)
        for name, coeff in self.terms:
            if name == "Z4":
                out += defocus_exponent(config, coeff)
            else:
                out += (
                    -2.0 * np.pi * coeff / config.wavelength_nm
                ) * cache.zernike_map(config, name)
        if self.custom is not None:
            if self.custom.shape != (n, n):
                raise ValueError(
                    f"custom phase map shape {self.custom.shape} != grid "
                    f"({n}, {n})"
                )
            out += self.custom
        return out

    def phase(self, config: OpticalConfig) -> np.ndarray:
        """Complex unit-modulus pupil-phase factor ``exp(i W)``.

        Pure-defocus specs exponentiate :func:`defocus_exponent`
        directly — the identical computation as
        :func:`repro.optics.pupil.defocus_phase`, giving bitwise parity
        between ``defocus_nm`` sugar and an explicit ``{"Z4": c}`` spec.
        """
        if self.is_pure_defocus:
            return np.exp(1j * defocus_exponent(config, self.defocus_nm))
        return np.exp(1j * self.phase_exponent(config))


#: The shared nominal (no-aberration) spec.
_NULL = PupilAberration()
PupilAberration.NULL = _NULL
