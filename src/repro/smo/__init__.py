"""The paper's core contribution: the unified Abbe-based SMO objective
(Eqs. (7)-(10)) and the bilevel BiSMO solvers (Section 3.2), plus the
AM-SMO / MO-only / SO-only baselines the paper compares against."""

from .parametrization import (
    cosine_activation,
    init_theta_mask,
    init_theta_source,
    mask_from_theta,
    mask_from_theta_cosine,
    source_from_theta,
)
from .objective import (
    ROBUST_MODES,
    AbbeSMOObjective,
    AdaptiveCornerWeights,
    adaptive_corner_update,
    BatchedSMOObjective,
    HopkinsMOObjective,
    LoopedSMOObjective,
    ProcessWindowSMOObjective,
    dose_resist,
    robust_corner_loss,
    smo_loss_from_aerial,
)
from .state import IterationRecord, SMOResult
from .mo_only import AbbeMO, HopkinsMO
from .so_only import SourceOptimizer
from .am import AMSMO
from .bismo import BiSMO, HypergradientContext
from .convergence import (
    GradientNormStopper,
    PlateauStopper,
    RelativeImprovementStopper,
)
from .unroll import unrolled_hypergradient
from .fd import fd_hypergradient
from .nmn import neumann_hypergradient
from .cg import cg_hypergradient

__all__ = [
    "mask_from_theta",
    "source_from_theta",
    "init_theta_mask",
    "init_theta_source",
    "cosine_activation",
    "mask_from_theta_cosine",
    "AbbeSMOObjective",
    "BatchedSMOObjective",
    "HopkinsMOObjective",
    "LoopedSMOObjective",
    "ProcessWindowSMOObjective",
    "ROBUST_MODES",
    "AdaptiveCornerWeights",
    "adaptive_corner_update",
    "dose_resist",
    "robust_corner_loss",
    "smo_loss_from_aerial",
    "IterationRecord",
    "SMOResult",
    "AbbeMO",
    "HopkinsMO",
    "SourceOptimizer",
    "AMSMO",
    "BiSMO",
    "HypergradientContext",
    "fd_hypergradient",
    "unrolled_hypergradient",
    "PlateauStopper",
    "RelativeImprovementStopper",
    "GradientNormStopper",
    "neumann_hypergradient",
    "cg_hypergradient",
]
