"""AM-SMO — Algorithm 1: alternating-minimization SMO baselines.

Two published flavors are reproduced:

* ``"abbe-abbe"``  [12] — both SO and MO phases run on the Abbe model.
* ``"abbe-hopkins"`` [13] — SO on Abbe, MO on Hopkins/SOCS.  After every
  SO phase the TCC must be re-assembled and re-decomposed for the new
  source, which dominates this variant's runtime (the ~19.5x slowdown in
  Table 4).

The zigzag convergence the paper shows in Figure 3 comes directly from
this phase alternation; history records are tagged "so"/"mo" so the
figure harness can reproduce it.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import autodiff as ad
from ..obs import observe_iteration
from ..obs import span as obs_span
from ..opt import make_optimizer
from ..utils.timing import tick
from ..optics import OpticalConfig, ProcessWindow
from .objective import (
    AbbeSMOObjective,
    BatchedSMOObjective,
    HopkinsMOObjective,
    ProcessWindowSMOObjective,
    adaptive_corner_update,
)
from .parametrization import init_theta_mask, init_theta_source, source_from_theta
from .state import IterationRecord, SMOResult

__all__ = ["AMSMO"]


class AMSMO:
    """Alternating-minimization SMO (Algorithm 1).

    Parameters
    ----------
    target:
        Binary target image ``(N, N)``, or a ``(B, N, N)`` stack for
        joint multi-clip AM-SMO (one shared source, a ``theta_M``
        stack; both phases then ride the fused batched forward and
        records carry per-tile losses).
    mode:
        ``"abbe-abbe"`` or ``"abbe-hopkins"`` (MO engine choice).
    rounds:
        Number of SO->MO alternations (the ``k`` loop).
    so_steps / mo_steps:
        Gradient steps per phase ("local epochs" in Figure 2(a)).
    num_kernels:
        SOCS truncation for the Hopkins MO phase.
    objective:
        Optional pre-built SMO objective (single-tile or batched);
        overrides the default built from ``target``.
    process_window:
        Optional :class:`repro.optics.ProcessWindow`: both phases then
        alternate on the robust dose x aberration loss
        (:class:`ProcessWindowSMOObjective` for the Abbe phases, the
        windowed :class:`HopkinsMOObjective` for the Hopkins MO phase);
        ``robust`` / ``robust_tau`` select the corner reduction.  Under
        ``robust="adaptive"`` one :class:`AdaptiveCornerWeights` ascent
        is shared across both phases (and across Hopkins TCC rebuilds),
        stepping once per recorded iteration.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        mode: str = "abbe-abbe",
        rounds: int = 4,
        so_steps: int = 10,
        mo_steps: int = 15,
        lr_so: float = 0.1,
        lr_mo: float = 0.1,
        so_optimizer: str = "sgd",
        mo_optimizer: str = "adam",
        num_kernels: Optional[int] = None,
        objective: Optional[AbbeSMOObjective] = None,
        process_window: Optional[ProcessWindow] = None,
        robust: str = "sum",
        robust_tau: float = 1.0,
    ):
        if mode not in ("abbe-abbe", "abbe-hopkins"):
            raise ValueError(f"unknown AM-SMO mode {mode!r}")
        self.config = config
        self.target = np.asarray(target, dtype=np.float64)
        self.mode = mode
        self.rounds = rounds
        self.so_steps = so_steps
        self.mo_steps = mo_steps
        self.so_optimizer = so_optimizer
        self.mo_optimizer = mo_optimizer
        self.lr_so = lr_so
        self.lr_mo = lr_mo
        self.num_kernels = num_kernels
        self.process_window = process_window
        self.robust = robust
        self.robust_tau = robust_tau
        if objective is not None:
            self.objective = objective
        elif process_window is not None:
            self.objective = ProcessWindowSMOObjective(
                config, self.target, process_window, robust=robust, tau=robust_tau
            )
        elif self.target.ndim == 3:
            self.objective = BatchedSMOObjective(config, self.target)
        else:
            self.objective = AbbeSMOObjective(config, self.target)
        self.method_name = (
            "AM-SMO(Abbe-Abbe)" if mode == "abbe-abbe" else "AM-SMO(Abbe-Hopkins)"
        )

    def _stashed_tile_losses(self) -> Optional[np.ndarray]:
        """Per-tile losses stashed by the objective's latest ``loss()``."""
        return getattr(self.objective, "last_tile_losses", None)

    # ------------------------------------------------------------------
    def run(
        self,
        source_template: np.ndarray,
        theta_m0: Optional[np.ndarray] = None,
        theta_j0: Optional[np.ndarray] = None,
        callback: Optional[Callable[[IterationRecord], Optional[bool]]] = None,
    ) -> SMOResult:
        cfg = self.config
        theta_m = (
            init_theta_mask(self.target, cfg)
            if theta_m0 is None
            else np.array(theta_m0, dtype=np.float64, copy=True)
        )
        theta_j = (
            init_theta_source(source_template, cfg)
            if theta_j0 is None
            else np.array(theta_j0, dtype=np.float64, copy=True)
        )
        history = []
        start = tick()
        step = 0
        tcc_seconds = 0.0
        stop = False  # callback early-stop, breaks all nested loops
        for _ in range(self.rounds):
            if stop:
                break
            # ---- SO phase (theta_M fixed) — Algorithm 1 line 3 --------
            opt_j = make_optimizer(self.so_optimizer, self.lr_so)
            tm_fixed = ad.Tensor(theta_m)
            for _ in range(self.so_steps):
                t0 = tick()
                with obs_span(
                    "solver.iter", solver=self.method_name, iteration=step
                ):
                    tj = ad.Tensor(theta_j, requires_grad=True)
                    loss = self.objective.loss(tj, tm_fixed)
                    (gj,) = ad.grad(loss, [tj])
                    tiles = self._stashed_tile_losses()
                    theta_j = opt_j.step(theta_j, gj.data)
                    corner_w = adaptive_corner_update(self.objective)
                rec = IterationRecord(
                    step,
                    float(loss.data),
                    tick() - t0,
                    "so",
                    tile_losses=tiles,
                    corner_weights=corner_w,
                )
                observe_iteration(rec, grad=gj)
                history.append(rec)
                step += 1
                if callback and callback(rec):
                    stop = True
                    break
            # ---- MO phase (theta_J fixed) — Algorithm 1 line 5 --------
            if stop:
                break
            opt_m = make_optimizer(self.mo_optimizer, self.lr_mo)
            if self.mode == "abbe-hopkins":
                with ad.no_grad():
                    source = source_from_theta(ad.Tensor(theta_j), cfg).data
                t0 = tick()
                hop = HopkinsMOObjective(
                    cfg,
                    self.target,
                    source,
                    self.num_kernels,
                    window=self.process_window,
                    robust=self.robust,
                    robust_tau=self.robust_tau,
                    # Share the minimax dual variable across phases and
                    # TCC rebuilds (robust="adaptive" only; None otherwise).
                    adaptive_weights=getattr(
                        self.objective, "adaptive_weights", None
                    ),
                )
                tcc_seconds += tick() - t0
                for _ in range(self.mo_steps):
                    t0 = tick()
                    with obs_span(
                        "solver.iter", solver=self.method_name, iteration=step
                    ):
                        tm = ad.Tensor(theta_m, requires_grad=True)
                        loss = hop.loss(tm)
                        (gm,) = ad.grad(loss, [tm])
                        tiles = hop.last_tile_losses
                        theta_m = opt_m.step(theta_m, gm.data)
                        corner_w = adaptive_corner_update(hop)
                    rec = IterationRecord(
                        step,
                        float(loss.data),
                        tick() - t0,
                        "mo",
                        tile_losses=tiles,
                        corner_weights=corner_w,
                    )
                    observe_iteration(rec, grad=gm)
                    history.append(rec)
                    step += 1
                    if callback and callback(rec):
                        stop = True
                        break
            else:
                tj_fixed = ad.Tensor(theta_j)
                for _ in range(self.mo_steps):
                    t0 = tick()
                    with obs_span(
                        "solver.iter", solver=self.method_name, iteration=step
                    ):
                        tm = ad.Tensor(theta_m, requires_grad=True)
                        loss = self.objective.loss(tj_fixed, tm)
                        (gm,) = ad.grad(loss, [tm])
                        tiles = self._stashed_tile_losses()
                        theta_m = opt_m.step(theta_m, gm.data)
                        corner_w = adaptive_corner_update(self.objective)
                    rec = IterationRecord(
                        step,
                        float(loss.data),
                        tick() - t0,
                        "mo",
                        tile_losses=tiles,
                        corner_weights=corner_w,
                    )
                    observe_iteration(rec, grad=gm)
                    history.append(rec)
                    step += 1
                    if callback and callback(rec):
                        stop = True
                        break
        return SMOResult(
            method=self.method_name,
            theta_m=theta_m,
            theta_j=theta_j,
            history=history,
            runtime_seconds=tick() - start,
            extra={"tcc_seconds": tcc_seconds},
        )
