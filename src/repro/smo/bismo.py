"""BiSMO — bilevel SMO (Section 3.2, Algorithm 2).

SMO is posed as the bilevel program (Eq. (11))

    min_{theta_M}  L_mo(theta_J*(theta_M), theta_M)
    s.t.  theta_J*(theta_M) = argmin_{theta_J} L_so(theta_J, theta_M)

The outer (MO) gradient is the *hypergradient* (Eq. (12)): the direct
term plus the best-response term through theta_J*.  Three approximations
of the inverse inner Hessian are implemented (FD / Neumann / CG, see
:mod:`repro.smo.fd`, :mod:`repro.smo.nmn`, :mod:`repro.smo.cg`); each
outer iteration

1. unrolls ``T`` inner SO steps to track theta_J* (Alg. 2 line 2),
2. builds a :class:`HypergradientContext` — one differentiable forward/
   backward giving the direct gradients plus exact HVP / mixed-JVP
   oracles via double backward,
3. forms the hypergradient and updates theta_M (Alg. 2 line 13).

Since the paper sets ``L_so := L_mo := L_smo`` (Eq. (9)), one loss graph
serves both levels.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..opt import make_optimizer
from ..optics import OpticalConfig
from .objective import AbbeSMOObjective
from .parametrization import init_theta_mask, init_theta_source
from .state import IterationRecord, SMOResult

__all__ = ["HypergradientContext", "BiSMO"]


class HypergradientContext:
    """Differentiable first-order state at (theta_J, theta_M).

    Wraps one loss evaluation with ``create_graph=True`` and exposes:

    * ``grad_j`` / ``grad_m`` — direct gradients (numpy copies),
    * :meth:`hvp` — exact inner Hessian-vector products
      ``(d^2 L_so / d theta_J^2) @ p``,
    * :meth:`mixed_vjp` — exact mixed products
      ``(d^2 L_so / d theta_M d theta_J) @ w`` (shape of theta_M),

    both computed by a second backward pass through the gradient graph
    (``hvp_mode="exact"``), or by central differences of fresh gradient
    evaluations (``hvp_mode="fd"``, cheaper in memory — the DARTS trick).
    """

    def __init__(
        self,
        objective: AbbeSMOObjective,
        theta_j: np.ndarray,
        theta_m: np.ndarray,
        hvp_mode: str = "exact",
        fd_eps: float = 1e-2,
    ):
        if hvp_mode not in ("exact", "fd"):
            raise ValueError(f"unknown hvp_mode {hvp_mode!r}")
        self.objective = objective
        self.hvp_mode = hvp_mode
        self.fd_eps = fd_eps
        self._tj = ad.Tensor(theta_j, requires_grad=True)
        self._tm = ad.Tensor(theta_m, requires_grad=True)
        loss = objective.loss(self._tj, self._tm)
        self.loss_value = float(loss.data)
        create = hvp_mode == "exact"
        gj, gm = ad.grad(loss, [self._tj, self._tm], create_graph=create)
        self._gj_graph = gj if create else None
        self.grad_j = gj.data.copy()
        self.grad_m = gm.data.copy()

    # -- second-order oracles -------------------------------------------
    def hvp(self, p: np.ndarray) -> np.ndarray:
        """(d^2 L_so / d theta_J^2) @ p."""
        if self.hvp_mode == "exact":
            inner = F.dot(self._gj_graph, ad.Tensor(p))
            (h,) = ad.grad(inner, [self._tj], allow_unused=True)
            return np.zeros_like(p) if h is None else h.data
        return self._fd_second_order(p, wrt="j")

    def mixed_vjp(self, w: np.ndarray) -> np.ndarray:
        """(d^2 L_so / d theta_M d theta_J) @ w — gradient-fusion term."""
        if self.hvp_mode == "exact":
            inner = F.dot(self._gj_graph, ad.Tensor(w))
            (m,) = ad.grad(inner, [self._tm], allow_unused=True)
            return np.zeros_like(self._tm.data) if m is None else m.data
        return self._fd_second_order(w, wrt="m")

    def _fd_second_order(self, vec: np.ndarray, wrt: str) -> np.ndarray:
        """Central difference of the relevant first-order gradient while
        perturbing theta_J along ``vec`` (DARTS-style step scaling)."""
        norm = float(np.linalg.norm(vec.ravel()))
        if norm == 0.0:
            return np.zeros_like(vec if wrt == "j" else self._tm.data)
        h = self.fd_eps / norm
        outs = []
        for sign in (1.0, -1.0):
            tj = ad.Tensor(self._tj.data + sign * h * vec, requires_grad=True)
            tm = ad.Tensor(self._tm.data, requires_grad=True)
            loss = self.objective.loss(tj, tm)
            target = tj if wrt == "j" else tm
            (g,) = ad.grad(loss, [target])
            outs.append(g.data)
        return (outs[0] - outs[1]) / (2.0 * h)


HypergradientFn = Callable[
    [HypergradientContext, float, int, float, Optional[np.ndarray]],
    Tuple[np.ndarray, Optional[np.ndarray]],
]


def _resolve_method(method: str) -> Optional[HypergradientFn]:
    from .cg import cg_hypergradient
    from .fd import fd_hypergradient
    from .nmn import neumann_hypergradient

    table = {"fd": fd_hypergradient, "nmn": neumann_hypergradient, "cg": cg_hypergradient}
    key = method.lower()
    if key == "unroll":
        return None  # handled structurally in BiSMO.run (RMD path)
    if key not in table:
        raise KeyError(
            f"unknown BiSMO method {method!r}; choose from "
            f"{sorted(table) + ['unroll']}"
        )
    return table[key]


class BiSMO:
    """Bilevel SMO driver (Algorithm 2).

    Parameters
    ----------
    method:
        ``"fd"`` (Eq. (13)), ``"nmn"`` (Eq. (16)) or ``"cg"`` (Eq. (18)).
    unroll_steps:
        Inner SO steps ``T`` per outer iteration (paper: 3).
    terms:
        Neumann terms / CG iterations ``K`` (paper: 5).
    inner_lr / outer_lr:
        Step sizes ``xi_J`` and ``xi_M`` (paper: 0.1 each).
    inner_optimizer / outer_optimizer:
        ``"sgd"`` or ``"adam"`` ("// Or Adam" in Alg. 2).
    hvp_mode:
        ``"exact"`` (double backward) or ``"fd"`` (finite differences).
    damping:
        Tikhonov damping added to the inner Hessian in the CG solve.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        method: str = "nmn",
        unroll_steps: int = 3,
        terms: int = 5,
        inner_lr: float = 0.1,
        outer_lr: float = 0.1,
        inner_optimizer: str = "sgd",
        outer_optimizer: str = "adam",
        hvp_mode: str = "exact",
        damping: float = 0.0,
        objective: Optional[AbbeSMOObjective] = None,
    ):
        self.config = config
        self.target = np.asarray(target, dtype=np.float64)
        self.objective = objective or AbbeSMOObjective(config, self.target)
        self.method = method.lower()
        self._hyper_fn = _resolve_method(method)
        self.unroll_steps = unroll_steps
        self.terms = terms
        self.inner_lr = inner_lr
        self.outer_lr = outer_lr
        self.inner_optimizer = inner_optimizer
        self.outer_optimizer = outer_optimizer
        self.hvp_mode = hvp_mode
        self.damping = damping
        self.method_name = f"BiSMO-{self.method.upper()}"

    def run(
        self,
        source_template: np.ndarray,
        iterations: int = 40,
        theta_m0: Optional[np.ndarray] = None,
        theta_j0: Optional[np.ndarray] = None,
        callback: Optional[Callable[[IterationRecord], None]] = None,
    ) -> SMOResult:
        cfg = self.config
        theta_m = (
            init_theta_mask(self.target, cfg)
            if theta_m0 is None
            else np.array(theta_m0, dtype=np.float64, copy=True)
        )
        theta_j = (
            init_theta_source(source_template, cfg)
            if theta_j0 is None
            else np.array(theta_j0, dtype=np.float64, copy=True)
        )
        inner_opt = make_optimizer(self.inner_optimizer, self.inner_lr)
        outer_opt = make_optimizer(self.outer_optimizer, self.outer_lr)
        warm: Optional[np.ndarray] = None
        history = []
        start = time.perf_counter()
        for it in range(iterations):
            t0 = time.perf_counter()
            if self._hyper_fn is None:
                # BiSMO-UNROLL: reverse-mode differentiation through the
                # inner loop (the memory-heavy reference strategy).
                from .unroll import unrolled_hypergradient

                hyper, theta_j, loss_value = unrolled_hypergradient(
                    self.objective,
                    theta_j,
                    theta_m,
                    steps=self.unroll_steps,
                    inner_lr=self.inner_lr,
                )
                theta_m = outer_opt.step(theta_m, hyper)
                rec = IterationRecord(
                    it, loss_value, time.perf_counter() - t0, "bilevel"
                )
                history.append(rec)
                if callback:
                    callback(rec)
                continue
            # ---- Alg. 2 line 2: unroll T inner SO steps ---------------
            tm_fixed = ad.Tensor(theta_m)
            for _ in range(self.unroll_steps):
                tj = ad.Tensor(theta_j, requires_grad=True)
                loss_so = self.objective.loss(tj, tm_fixed)
                (gj,) = ad.grad(loss_so, [tj])
                theta_j = inner_opt.step(theta_j, gj.data)
            # ---- Alg. 2 lines 5-12: hypergradient ---------------------
            ctx = HypergradientContext(
                self.objective, theta_j, theta_m, hvp_mode=self.hvp_mode
            )
            hyper, warm = self._hyper_fn(
                ctx, self.inner_lr, self.terms, self.damping, warm
            )
            # ---- Alg. 2 line 13: outer MO step ------------------------
            theta_m = outer_opt.step(theta_m, hyper)
            rec = IterationRecord(
                it, ctx.loss_value, time.perf_counter() - t0, "bilevel"
            )
            history.append(rec)
            if callback:
                callback(rec)
        return SMOResult(
            method=self.method_name,
            theta_m=theta_m,
            theta_j=theta_j,
            history=history,
            runtime_seconds=time.perf_counter() - start,
        )
