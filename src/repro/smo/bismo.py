"""BiSMO — bilevel SMO (Section 3.2, Algorithm 2).

SMO is posed as the bilevel program (Eq. (11))

    min_{theta_M}  L_mo(theta_J*(theta_M), theta_M)
    s.t.  theta_J*(theta_M) = argmin_{theta_J} L_so(theta_J, theta_M)

The outer (MO) gradient is the *hypergradient* (Eq. (12)): the direct
term plus the best-response term through theta_J*.  Three approximations
of the inverse inner Hessian are implemented, keyed ``"fd"`` /
``"nmn"`` / ``"cg"`` — finite-difference (:mod:`repro.smo.fd`),
truncated Neumann series (:mod:`repro.smo.nmn`) and conjugate gradient
(:mod:`repro.smo.cg`); each outer iteration

1. unrolls ``T`` inner SO steps to track theta_J* (Alg. 2 line 2),
2. builds a :class:`HypergradientContext` — one differentiable forward/
   backward giving the direct gradients plus exact HVP / mixed-JVP
   oracles via double backward,
3. forms the hypergradient and updates theta_M (Alg. 2 line 13).

Since the paper sets ``L_so := L_mo := L_smo`` (Eq. (9)), one loss graph
serves both levels.

Joint multi-clip SMO: passing a ``(B, N, N)`` target stack (or a
:class:`repro.smo.objective.BatchedSMOObjective`) optimizes one shared
``theta_J`` against a ``(B, N, N)`` ``theta_M`` stack; hypergradients
and HVPs flow through the fused batched forward and every
:class:`IterationRecord` carries the per-tile loss vector.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..obs import observe_iteration
from ..obs import span as obs_span
from ..opt import make_optimizer
from ..optics import OpticalConfig, ProcessWindow
from ..utils.timing import tick
from .objective import (
    AbbeSMOObjective,
    BatchedSMOObjective,
    ProcessWindowSMOObjective,
    adaptive_corner_update,
)
from .parametrization import init_theta_mask, init_theta_source
from .state import IterationRecord, SMOResult

__all__ = ["HypergradientContext", "BiSMO"]


class HypergradientContext:
    """Differentiable first-order state at (theta_J, theta_M).

    Wraps one loss evaluation with ``create_graph=True`` and exposes:

    * ``grad_j`` / ``grad_m`` — direct gradients (numpy copies),
    * :meth:`hvp` — exact inner Hessian-vector products
      ``(d^2 L_so / d theta_J^2) @ p``,
    * :meth:`mixed_vjp` — exact mixed products
      ``(d^2 L_so / d theta_M d theta_J) @ w`` (shape of theta_M),

    both computed by a second backward pass through the gradient graph
    (``hvp_mode="exact"``), or by central differences of fresh gradient
    evaluations (``hvp_mode="fd"``, cheaper in memory — the DARTS trick).
    The oracles feed every hypergradient strategy: finite-difference
    (:mod:`repro.smo.fd`), truncated Neumann series (:mod:`repro.smo.nmn`)
    and conjugate gradient (:mod:`repro.smo.cg`).

    ``objective`` is any SMO objective exposing ``loss(theta_j,
    theta_m)`` — single-tile :class:`AbbeSMOObjective` or a batched
    multi-clip objective, in which case ``theta_m`` is a ``(B, N, N)``
    stack and every oracle flows through the fused batched graph.
    """

    def __init__(
        self,
        objective: AbbeSMOObjective,
        theta_j: np.ndarray,
        theta_m: np.ndarray,
        hvp_mode: str = "exact",
        fd_eps: float = 1e-2,
        so_loss_fn: Optional[Callable[[ad.Tensor], ad.Tensor]] = None,
    ):
        if hvp_mode not in ("exact", "fd"):
            raise ValueError(f"unknown hvp_mode {hvp_mode!r}")
        self.objective = objective
        self.hvp_mode = hvp_mode
        self.fd_eps = fd_eps
        self._tj = ad.Tensor(theta_j, requires_grad=True)
        self._tm = ad.Tensor(theta_m, requires_grad=True)
        loss = objective.loss(self._tj, self._tm)
        self.loss_value = float(loss.data)
        create = hvp_mode == "exact"
        gj, gm = ad.grad(loss, [self._tj, self._tm], create_graph=create)
        self._gj_graph = gj if create else None
        self.grad_j = gj.data.copy()
        self.grad_m = gm.data.copy()
        # Source-only HVP oracle: objectives that can express the loss as
        # a function of theta_J alone through a fixed intensity basis
        # (Abbe is linear in the source weights) provide a far cheaper,
        # FFT-free graph for the inner Hessian.  Exact — same function of
        # theta_J, so identical second derivatives.  ``so_loss_fn`` lets
        # the driver share one basis across the whole outer iteration;
        # otherwise the objective's ``source_only_loss`` factory is used.
        if so_loss_fn is None:
            factory = getattr(objective, "source_only_loss", None)
            so_loss_fn = factory(theta_m) if factory is not None else None
        self._so_loss_fn = so_loss_fn
        self._so_tj: Optional[ad.Tensor] = None
        self._so_gj_graph: Optional[ad.Tensor] = None
        if create and so_loss_fn is not None:
            so_tj = ad.Tensor(theta_j, requires_grad=True)
            (so_gj,) = ad.grad(so_loss_fn(so_tj), [so_tj], create_graph=True)
            self._so_tj, self._so_gj_graph = so_tj, so_gj

    # -- second-order oracles -------------------------------------------
    def hvp(self, p: np.ndarray) -> np.ndarray:
        """(d^2 L_so / d theta_J^2) @ p."""
        if self.hvp_mode == "exact":
            if self._so_gj_graph is not None:
                inner = F.dot(self._so_gj_graph, ad.Tensor(p))
                (h,) = ad.grad(inner, [self._so_tj], allow_unused=True)
                return np.zeros_like(p) if h is None else h.data
            inner = F.dot(self._gj_graph, ad.Tensor(p))
            (h,) = ad.grad(inner, [self._tj], allow_unused=True)
            return np.zeros_like(p) if h is None else h.data
        return self._fd_second_order(p, wrt="j")

    def mixed_vjp(self, w: np.ndarray) -> np.ndarray:
        """(d^2 L_so / d theta_M d theta_J) @ w — gradient-fusion term."""
        if self.hvp_mode == "exact":
            inner = F.dot(self._gj_graph, ad.Tensor(w))
            (m,) = ad.grad(inner, [self._tm], allow_unused=True)
            return np.zeros_like(self._tm.data) if m is None else m.data
        return self._fd_second_order(w, wrt="m")

    def _fd_second_order(self, vec: np.ndarray, wrt: str) -> np.ndarray:
        """Central difference of the relevant first-order gradient while
        perturbing theta_J along ``vec`` (DARTS-style step scaling)."""
        norm = float(np.linalg.norm(vec.ravel()))
        if norm == 0.0:
            return np.zeros_like(vec if wrt == "j" else self._tm.data)
        h = self.fd_eps / norm
        outs = []
        for sign in (1.0, -1.0):
            tj = ad.Tensor(self._tj.data + sign * h * vec, requires_grad=True)
            if wrt == "j" and self._so_loss_fn is not None:
                # theta_M is fixed along this perturbation: the FFT-free
                # source-only graph gives the same gradient, cheaper.
                (g,) = ad.grad(self._so_loss_fn(tj), [tj])
            else:
                tm = ad.Tensor(self._tm.data, requires_grad=True)
                loss = self.objective.loss(tj, tm)
                target = tj if wrt == "j" else tm
                (g,) = ad.grad(loss, [target])
            outs.append(g.data)
        return (outs[0] - outs[1]) / (2.0 * h)


HypergradientFn = Callable[
    [HypergradientContext, float, int, float, Optional[np.ndarray]],
    Tuple[np.ndarray, Optional[np.ndarray]],
]


def _resolve_method(method: str) -> Optional[HypergradientFn]:
    from .cg import cg_hypergradient
    from .fd import fd_hypergradient
    from .nmn import neumann_hypergradient

    table = {"fd": fd_hypergradient, "nmn": neumann_hypergradient, "cg": cg_hypergradient}
    key = method.lower()
    if key == "unroll":
        return None  # handled structurally in BiSMO.run (RMD path)
    if key not in table:
        raise KeyError(
            f"unknown BiSMO method {method!r}; choose from "
            f"{sorted(table) + ['unroll']}"
        )
    return table[key]


class BiSMO:
    """Bilevel SMO driver (Algorithm 2).

    Parameters
    ----------
    target:
        Binary target image ``(N, N)``, or a ``(B, N, N)`` stack for
        joint multi-clip SMO (one shared source, a ``theta_M`` stack;
        the default objective becomes :class:`BatchedSMOObjective`).
    method:
        ``"fd"`` (Eq. (13)), ``"nmn"`` (truncated Neumann, Eq. (16)),
        ``"cg"`` (Eq. (18)) or ``"unroll"`` (reverse-mode reference).
    unroll_steps:
        Inner SO steps ``T`` per outer iteration (paper: 3).
    terms:
        Neumann terms / CG iterations ``K`` (paper: 5).
    inner_lr / outer_lr:
        Step sizes ``xi_J`` and ``xi_M`` (paper: 0.1 each).
    inner_optimizer / outer_optimizer:
        ``"sgd"`` or ``"adam"`` ("// Or Adam" in Alg. 2).  The
        ``"unroll"`` method differentiates through plain SGD inner
        updates, so it accepts ``inner_optimizer="sgd"`` only.
    hvp_mode:
        ``"exact"`` (double backward) or ``"fd"`` (finite differences).
    damping:
        Tikhonov damping added to the inner Hessian in the CG solve.
    process_window:
        Optional :class:`repro.optics.ProcessWindow`: both bilevel
        levels then optimize the robust loss across the dose x
        aberration corner grid (:class:`ProcessWindowSMOObjective`; one
        fused condition stack per evaluation, hypergradients and HVPs
        flow through the condition axis).  ``robust`` / ``robust_tau``
        select the corner reduction — weighted sum, smooth worst case,
        or ``"adaptive"``: an outer exponentiated-gradient ascent on the
        corner weights (one step per outer iteration, trajectory in the
        records) that closes the loop on true worst-case SMO.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        method: str = "nmn",
        unroll_steps: int = 3,
        terms: int = 5,
        inner_lr: float = 0.1,
        outer_lr: float = 0.1,
        inner_optimizer: str = "sgd",
        outer_optimizer: str = "adam",
        hvp_mode: str = "exact",
        damping: float = 0.0,
        objective: Optional[AbbeSMOObjective] = None,
        process_window: Optional[ProcessWindow] = None,
        robust: str = "sum",
        robust_tau: float = 1.0,
        seed: int = 0,
    ):
        self.config = config
        self.target = np.asarray(target, dtype=np.float64)
        if objective is not None:
            self.objective = objective
        elif process_window is not None:
            self.objective = ProcessWindowSMOObjective(
                config, self.target, process_window, robust=robust, tau=robust_tau
            )
        elif self.target.ndim == 3:
            self.objective = BatchedSMOObjective(config, self.target)
        else:
            self.objective = AbbeSMOObjective(config, self.target)
        self.method = method.lower()
        self.seed = int(seed)
        self._hyper_fn = _resolve_method(method)
        if self.method == "nmn" and self._hyper_fn is not None:
            # nmn's safeguard draws a power-iteration start vector; key
            # it on the solver's seed (routed via repro.utils.seed).
            self._hyper_fn = partial(self._hyper_fn, seed=self.seed)
        if self._hyper_fn is None and inner_optimizer.lower() != "sgd":
            raise ValueError(
                "BiSMO-UNROLL differentiates through plain SGD inner "
                f"updates; inner_optimizer={inner_optimizer!r} is not "
                "supported on the unroll path (use 'sgd' or an IFT method)"
            )
        self.unroll_steps = unroll_steps
        self.terms = terms
        self.inner_lr = inner_lr
        self.outer_lr = outer_lr
        self.inner_optimizer = inner_optimizer
        self.outer_optimizer = outer_optimizer
        self.hvp_mode = hvp_mode
        self.damping = damping
        self.method_name = f"BiSMO-{self.method.upper()}"

    def _stashed_tile_losses(self) -> Optional[np.ndarray]:
        """Per-tile losses of the objective's latest evaluation (joint
        runs only; None for single tiles).  Batched objectives stash the
        vector during ``loss()`` at no extra imaging cost."""
        return getattr(self.objective, "last_tile_losses", None)

    def run(
        self,
        source_template: np.ndarray,
        iterations: int = 40,
        theta_m0: Optional[np.ndarray] = None,
        theta_j0: Optional[np.ndarray] = None,
        callback: Optional[Callable[[IterationRecord], Optional[bool]]] = None,
    ) -> SMOResult:
        cfg = self.config
        theta_m = (
            init_theta_mask(self.target, cfg)
            if theta_m0 is None
            else np.array(theta_m0, dtype=np.float64, copy=True)
        )
        theta_j = (
            init_theta_source(source_template, cfg)
            if theta_j0 is None
            else np.array(theta_j0, dtype=np.float64, copy=True)
        )
        inner_opt = make_optimizer(self.inner_optimizer, self.inner_lr)
        outer_opt = make_optimizer(self.outer_optimizer, self.outer_lr)
        warm: Optional[np.ndarray] = None
        history = []
        start = tick()
        for it in range(iterations):
            t0 = tick()
            if self._hyper_fn is None:
                # BiSMO-UNROLL: reverse-mode differentiation through the
                # inner loop (the memory-heavy reference strategy).
                from .unroll import unrolled_hypergradient

                with obs_span(
                    "solver.iter", solver=self.method_name, iteration=it
                ):
                    hyper, theta_j, loss_value = unrolled_hypergradient(
                        self.objective,
                        theta_j,
                        theta_m,
                        steps=self.unroll_steps,
                        inner_lr=self.inner_lr,
                        inner_optimizer=self.inner_optimizer,
                    )
                    tile_losses = self._stashed_tile_losses()
                    theta_m = outer_opt.step(theta_m, hyper)
                    corner_w = adaptive_corner_update(self.objective)
                rec = IterationRecord(
                    it,
                    loss_value,
                    tick() - t0,
                    "bilevel",
                    tile_losses=tile_losses,
                    corner_weights=corner_w,
                )
                observe_iteration(rec, grad=hyper)
                history.append(rec)
                if callback and callback(rec):
                    break
                continue
            with obs_span(
                "solver.iter", solver=self.method_name, iteration=it
            ):
                # ---- Alg. 2 line 2: unroll T inner SO steps -----------
                # theta_M is fixed for the whole outer iteration, so a
                # batched objective's FFT-free source-only closure (one
                # intensity basis, shared with the HVP oracle below)
                # carries every inner step and Hessian product of this
                # iteration.
                so_factory = getattr(self.objective, "source_only_loss", None)
                so_loss = (
                    so_factory(theta_m) if so_factory is not None else None
                )
                if so_loss is not None:
                    for _ in range(self.unroll_steps):
                        tj = ad.Tensor(theta_j, requires_grad=True)
                        (gj,) = ad.grad(so_loss(tj), [tj])
                        theta_j = inner_opt.step(theta_j, gj.data)
                else:
                    tm_fixed = ad.Tensor(theta_m)
                    for _ in range(self.unroll_steps):
                        tj = ad.Tensor(theta_j, requires_grad=True)
                        loss_so = self.objective.loss(tj, tm_fixed)
                        (gj,) = ad.grad(loss_so, [tj])
                        theta_j = inner_opt.step(theta_j, gj.data)
                # ---- Alg. 2 lines 5-12: hypergradient -----------------
                ctx = HypergradientContext(
                    self.objective,
                    theta_j,
                    theta_m,
                    hvp_mode=self.hvp_mode,
                    so_loss_fn=so_loss,
                )
                # Capture per-tile losses and the corner matrix now: they
                # belong to ctx's loss evaluation, and FD-mode
                # hypergradients re-evaluate the objective at perturbed
                # points below (clobbering the stashed diagnostics).
                tile_losses = self._stashed_tile_losses()
                corner_matrix = getattr(
                    self.objective, "last_corner_losses", None
                )
                hyper, warm = self._hyper_fn(
                    ctx, self.inner_lr, self.terms, self.damping, warm
                )
                # ---- Alg. 2 line 13: outer MO step --------------------
                theta_m = outer_opt.step(theta_m, hyper)
                # Minimax ascent on the corner weights (robust="adaptive"):
                # one EG step per outer iteration, from the corner losses
                # of ctx's evaluation at the pre-step parameters.
                corner_w = adaptive_corner_update(self.objective, corner_matrix)
            rec = IterationRecord(
                it,
                ctx.loss_value,
                tick() - t0,
                "bilevel",
                tile_losses=tile_losses,
                corner_weights=corner_w,
            )
            observe_iteration(rec, grad=hyper)
            history.append(rec)
            if callback and callback(rec):
                break
        return SMOResult(
            method=self.method_name,
            theta_m=theta_m,
            theta_j=theta_j,
            history=history,
            runtime_seconds=tick() - start,
        )
