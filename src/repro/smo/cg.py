"""BiSMO-CG hypergradient — Equations (17)-(18).

Instead of a series expansion, solve the linear system

    [d^2 L_so / dtheta_J^2] w = dL_mo/dtheta_J

with K conjugate-gradient steps (each one Hessian-vector product), then
fuse: ``hyper = dL_mo/dtheta_M - mixed_vjp(w)``.  Algorithm 2 line 10
warm-starts each solve from the previous outer iteration's ``w``, which
is propagated through the ``warm`` in/out argument.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..opt import conjugate_gradient
from .bismo import HypergradientContext

__all__ = ["cg_hypergradient"]


def cg_hypergradient(
    ctx: HypergradientContext,
    inner_lr: float,
    terms: int,
    damping: float,
    warm: Optional[np.ndarray],
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Eq. (18): CG solve of the inverse-Hessian application.

    Returns the hypergradient and the final ``w`` (the warm start for the
    next outer iteration).  ``inner_lr`` is unused: CG needs no step-size
    scaling, one source of its occasional edge over NMN (Fig. 3(d)) — and
    its instability on indefinite Hessians explains its larger variance
    (Fig. 5); ``damping`` mitigates that.
    """
    del inner_lr
    v = ctx.grad_j
    flat_shape = v.shape

    def matvec(p: np.ndarray) -> np.ndarray:
        return ctx.hvp(p.reshape(flat_shape)).ravel()

    x0 = None if warm is None else warm.ravel()
    result = conjugate_gradient(
        matvec, v.ravel(), x0=x0, max_iter=terms, damping=damping
    )
    w = result.x.reshape(flat_shape)
    hyper = ctx.grad_m - ctx.mixed_vjp(w)
    return hyper, w
