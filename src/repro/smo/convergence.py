"""Stopping criteria for SMO runs.

Section 3.2's critique of AM-SMO includes that "the absence of global
gradient guidance complicates establishing effective early stopping
criteria".  BiSMO's hypergradient gives a principled signal; these
helpers package the common rules so runs can stop when converged
instead of exhausting a fixed budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["PlateauStopper", "RelativeImprovementStopper", "GradientNormStopper"]


class PlateauStopper:
    """Stop when the best loss hasn't improved for ``patience`` steps."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = float(min_delta)
        self._best = np.inf
        self._stale = 0

    def update(self, loss: float) -> bool:
        """Record a loss; returns True when optimization should stop."""
        if loss < self._best - self.min_delta:
            self._best = loss
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience

    def reset(self) -> None:
        self._best = np.inf
        self._stale = 0


class RelativeImprovementStopper:
    """Stop when the relative per-step improvement drops below ``rtol``
    for ``patience`` consecutive steps."""

    def __init__(self, rtol: float = 1e-3, patience: int = 3) -> None:
        self.rtol = float(rtol)
        self.patience = patience
        self._prev: Optional[float] = None
        self._slow = 0

    def update(self, loss: float) -> bool:
        if self._prev is not None:
            if self._prev > 0:
                rel = (self._prev - loss) / self._prev
                self._slow = self._slow + 1 if rel < self.rtol else 0
            else:
                # A zero (or negative) loss cannot shrink by any relative
                # margin: count the step as plateau progress so a run
                # that bottoms out at exactly 0 still stops.
                self._slow += 1
        self._prev = loss
        return self._slow >= self.patience

    def reset(self) -> None:
        self._prev = None
        self._slow = 0


class GradientNormStopper:
    """Stop when the (hyper)gradient norm falls below a threshold.

    Feed it the hypergradient from a BiSMO callback; this is the
    "global gradient guidance" stopping rule AM-SMO cannot have.
    """

    def __init__(self, threshold: float) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)
        self.last_norm: Optional[float] = None

    def update(self, gradient: np.ndarray) -> bool:
        self.last_norm = float(np.linalg.norm(np.asarray(gradient).ravel()))
        return self.last_norm < self.threshold
