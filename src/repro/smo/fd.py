"""BiSMO-FD hypergradient — Equation (13).

The finite-difference strategy approximates the best response with a
single inner SO step ``theta_J* = theta_J - xi * grad_J L_so``, which
replaces the inverse inner Hessian by ``xi * I``:

    hyper = dL_mo/dtheta_M - xi * (dL_mo/dtheta_J) @ (d^2 L_so / dtheta_M dtheta_J)

This is the DARTS-style approximation; it equals BiSMO-NMN with K = 0
(Section 3.2.4), a fact the test-suite checks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .bismo import HypergradientContext

__all__ = ["fd_hypergradient"]


def fd_hypergradient(
    ctx: HypergradientContext,
    inner_lr: float,
    terms: int,
    damping: float,
    warm: Optional[np.ndarray],
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Eq. (13): direct gradient minus xi-scaled mixed second-order term.

    ``terms``, ``damping`` and ``warm`` are accepted for interface parity
    with the NMN/CG strategies but unused.
    """
    del terms, damping  # not used by the FD strategy
    v = ctx.grad_j  # dL_mo/dtheta_J
    correction = ctx.mixed_vjp(v)
    hyper = ctx.grad_m - inner_lr * correction
    return hyper, warm
