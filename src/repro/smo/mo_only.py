"""Mask-only optimization (MO / ILT) solvers.

Two engines, one loop:

* :class:`AbbeMO` — the paper's "Abbe-MO": lossless Abbe imaging with a
  fixed source, mask parameters optimized by gradient descent/Adam.
* :class:`HopkinsMO` — conventional SOCS-truncated ILT (the substrate of
  the NILT / DAC23-MILT comparators).

Both minimize the same process-window-aware loss (Eq. (9)) with the
source held fixed, so their gap isolates the Hopkins truncation error
discussed in Section 4.1.  Both ride their engine's fused
``incoherent_image`` forward (streamed, hand-written VJP), single-tile
or batched.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import autodiff as ad
from ..obs import observe_iteration
from ..obs import span as obs_span
from ..opt import make_optimizer
from ..utils.timing import tick
from ..optics import OpticalConfig, ProcessWindow
from .objective import (
    AbbeSMOObjective,
    BatchedSMOObjective,
    HopkinsMOObjective,
    ProcessWindowSMOObjective,
    adaptive_corner_update,
)
from .parametrization import init_theta_mask, init_theta_source
from .state import IterationRecord, SMOResult

__all__ = ["AbbeMO", "HopkinsMO"]

#: Per-iteration observer; a truthy return requests an early stop
#: (time-to-target benchmarking), ``None`` keeps the legacy behavior.
Callback = Callable[[IterationRecord], Optional[bool]]


class AbbeMO:
    """Abbe-model inverse lithography with a fixed source.

    ``target`` may be a single ``(N, N)`` tile or a ``(B, N, N)`` stack;
    a stack optimizes a ``theta_M`` batch jointly through the fused
    multi-tile forward, and records carry per-tile losses.

    ``process_window`` switches the loss to the robust dose x aberration
    reduction across a :class:`repro.optics.ProcessWindow`
    (:class:`ProcessWindowSMOObjective`); ``robust`` / ``robust_tau``
    pick weighted-sum, smooth worst-case, or the adaptive minimax
    ascent — ``robust="adaptive"`` EG-steps the corner weights once per
    iteration and stashes the trajectory in the records.
    """

    method_name = "Abbe-MO"

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        lr: float = 0.1,
        optimizer: str = "adam",
        objective: Optional[AbbeSMOObjective] = None,
        process_window: Optional[ProcessWindow] = None,
        robust: str = "sum",
        robust_tau: float = 1.0,
    ):
        self.config = config
        target = np.asarray(target, dtype=np.float64)
        if objective is not None:
            self.objective = objective
        elif process_window is not None:
            self.objective = ProcessWindowSMOObjective(
                config, target, process_window, robust=robust, tau=robust_tau
            )
        elif target.ndim == 3:
            self.objective = BatchedSMOObjective(config, target)
        else:
            self.objective = AbbeSMOObjective(config, target)
        self._theta_j_fixed = ad.Tensor(init_theta_source(source, config))
        self._opt = make_optimizer(optimizer, lr)
        self.target = target

    def run(
        self,
        iterations: int = 50,
        theta_m0: Optional[np.ndarray] = None,
        callback: Optional[Callback] = None,
    ) -> SMOResult:
        theta_m = (
            init_theta_mask(self.target, self.config)
            if theta_m0 is None
            else np.array(theta_m0, dtype=np.float64, copy=True)
        )
        self._opt.reset()
        history = []
        start = tick()
        for it in range(iterations):
            t0 = tick()
            with obs_span(
                "solver.iter", solver=self.method_name, iteration=it
            ):
                tm = ad.Tensor(theta_m, requires_grad=True)
                loss = self.objective.loss(self._theta_j_fixed, tm)
                (gm,) = ad.grad(loss, [tm])
                tiles = getattr(self.objective, "last_tile_losses", None)
                theta_m = self._opt.step(theta_m, gm.data)
                corner_w = adaptive_corner_update(self.objective)
            rec = IterationRecord(
                it,
                float(loss.data),
                tick() - t0,
                "mo",
                tile_losses=tiles,
                corner_weights=corner_w,
            )
            observe_iteration(rec, grad=gm)
            history.append(rec)
            if callback and callback(rec):
                break
        return SMOResult(
            method=self.method_name,
            theta_m=theta_m,
            theta_j=self._theta_j_fixed.data.copy(),
            history=history,
            runtime_seconds=tick() - start,
        )


class HopkinsMO:
    """SOCS-truncated Hopkins ILT with a fixed source (MO baseline).

    Accepts a ``(B, N, N)`` target stack for joint batched ILT (the
    Hopkins objective fuses the batch into one SOCS FFT stack).
    """

    method_name = "Hopkins-MO"

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        lr: float = 0.1,
        optimizer: str = "adam",
        num_kernels: Optional[int] = None,
        process_window: Optional[ProcessWindow] = None,
        robust: str = "sum",
        robust_tau: float = 1.0,
    ):
        self.config = config
        self.objective = HopkinsMOObjective(
            config,
            target,
            source,
            num_kernels,
            window=process_window,
            robust=robust,
            robust_tau=robust_tau,
        )
        self._opt = make_optimizer(optimizer, lr)
        self.target = target

    def run(
        self,
        iterations: int = 50,
        theta_m0: Optional[np.ndarray] = None,
        callback: Optional[Callback] = None,
    ) -> SMOResult:
        theta_m = (
            init_theta_mask(self.target, self.config)
            if theta_m0 is None
            else np.array(theta_m0, dtype=np.float64, copy=True)
        )
        self._opt.reset()
        history = []
        start = tick()
        for it in range(iterations):
            t0 = tick()
            with obs_span(
                "solver.iter", solver=self.method_name, iteration=it
            ):
                tm = ad.Tensor(theta_m, requires_grad=True)
                loss = self.objective.loss(tm)
                (gm,) = ad.grad(loss, [tm])
                tiles = self.objective.last_tile_losses
                theta_m = self._opt.step(theta_m, gm.data)
                corner_w = adaptive_corner_update(self.objective)
            rec = IterationRecord(
                it,
                float(loss.data),
                tick() - t0,
                "mo",
                tile_losses=tiles,
                corner_weights=corner_w,
            )
            observe_iteration(rec, grad=gm)
            history.append(rec)
            if callback and callback(rec):
                break
        return SMOResult(
            method=self.method_name,
            theta_m=theta_m,
            theta_j=None,
            history=history,
            runtime_seconds=tick() - start,
        )
