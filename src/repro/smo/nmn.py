"""BiSMO-NMN hypergradient — Equation (16).

The IFT hypergradient (Eq. (14)) needs the inverse inner Hessian
``[d^2 L_so / dtheta_J^2]^{-1}``; the Neumann strategy expands it as a
truncated geometric series (Lemma 2), evaluated with K Hessian-vector
products:

    H^{-1} v ~= xi * sum_{k=0}^{K} (I - xi H)^k v

then fuses through the mixed Jacobian: ``hyper = dL_mo/dtheta_M -
mixed_vjp(H^{-1} v)`` with ``v = dL_mo/dtheta_J``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..opt import neumann_inverse_hvp
from ..utils.seed import seeded_rng
from .bismo import HypergradientContext

__all__ = ["neumann_hypergradient"]


def _safe_series_lr(
    ctx: HypergradientContext,
    inner_lr: float,
    power_iters: int = 3,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Largest safe Neumann step: min(xi, 0.9 / lambda_max(H)).

    Lemma 2 requires ``||I - xi H|| < 1``; the paper assumes a "small
    enough learning rate".  The SMO loss (gamma=1000, eta=3000, sum over
    pixels) develops curvature well above 2/xi during optimization, which
    would make the raw series diverge, so the spectral radius is
    estimated with a few power iterations and the step clipped.

    The starting vector comes from a generator derived per call (via
    :func:`repro.utils.seed.seeded_rng`, keyed on ``seed``) so every
    call with the same seed draws the identical ``v`` regardless of how
    many hypergradients ran before it; pass ``rng`` to override.
    """
    if rng is None:
        rng = seeded_rng("bismo", "nmn", "power-iteration", seed)
    v = rng.standard_normal(ctx.grad_j.shape)
    norm = float(np.linalg.norm(v))
    if norm == 0.0:
        return inner_lr
    v /= norm
    lam = 0.0
    for _ in range(power_iters):
        hv = ctx.hvp(v)
        lam = abs(float(np.vdot(v.ravel(), hv.ravel())))
        hv_norm = float(np.linalg.norm(hv))
        if hv_norm <= 1e-30:
            return inner_lr
        v = hv / hv_norm
    lam = max(lam, float(np.linalg.norm(ctx.hvp(v))))
    if lam <= 0.0:
        return inner_lr
    return min(inner_lr, 0.9 / lam)


def neumann_hypergradient(
    ctx: HypergradientContext,
    inner_lr: float,
    terms: int,
    damping: float,
    warm: Optional[np.ndarray],
    seed: int = 0,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Eq. (16): truncated-Neumann inverse-Hessian hypergradient.

    With ``terms == 0`` the series degenerates to ``xi * v`` and this
    reduces exactly to :func:`repro.smo.fd.fd_hypergradient`
    (Section 3.2.4).  ``damping``/``warm`` unused (interface parity).
    ``seed`` keys the power-iteration start vector of the safeguard
    (``BiSMO(seed=...)`` threads it through).
    """
    del damping
    v = ctx.grad_j
    lr = _safe_series_lr(ctx, inner_lr, seed=seed) if terms > 0 else inner_lr
    inv_hvp = neumann_inverse_hvp(ctx.hvp, v, terms=terms, lr=lr)
    hyper = ctx.grad_m - ctx.mixed_vjp(inv_hvp)
    return hyper, warm
