"""SMO objectives — Equations (7)-(9) of the paper.

``L_smo := L_so := L_mo = gamma * L2 + eta * L_pvb`` where

* ``L2``   = || Z - Z_t ||^2 at nominal dose (Eq. (7)),
* ``L_pvb`` = || Z_max - Z_t ||^2 + || Z_min - Z_t ||^2 at the +/-2 %
  dose corners (Eq. (8)).

Dose handling: the paper substitutes ``M_min = d_min * sigma(alpha_m
theta_M)`` into the forward model.  Because Abbe/Hopkins intensity is a
quadratic form in the mask transmission, scaling the mask by ``d``
scales the whole aerial image by ``d^2`` *exactly*; we therefore image
once and evaluate the three dose corners as ``sigmoid(beta * (d^2 * I -
I_tr))``, which is algebraically identical to three forward passes but
3x cheaper.

All objectives consume any :class:`repro.optics.ImagingEngine`; default
engines come from the shared optics cache, and every inference-only
entry point (``images()``) rides the engines' graph-free fast path.
:class:`BatchedSMOObjective` evaluates a whole ``(B, N, N)`` layout
batch as one loss through the engines' fused multi-tile forward — since
PR 3 a single :func:`repro.autodiff.functional.incoherent_image` node
per evaluation (streamed forward, hand-written VJP), so neither the
loss nor its backward retains a ``(B, S, N, N)`` field stack.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..optics import ImagingEngine, OpticalConfig, SourceGrid, engine_for
from ..optics.abbe import AbbeImaging
from .parametrization import mask_from_theta, source_from_theta

__all__ = [
    "dose_resist",
    "smo_loss_from_aerial",
    "AbbeSMOObjective",
    "HopkinsMOObjective",
    "BatchedSMOObjective",
    "LoopedSMOObjective",
]


def dose_resist(aerial: ad.Tensor, config: OpticalConfig, dose: float) -> ad.Tensor:
    """Resist image at a given dose: sigmoid(beta * (dose^2 * I - I_tr))."""
    scaled = F.mul(aerial, dose * dose) if dose != 1.0 else aerial
    return F.sigmoid(F.mul(F.sub(scaled, config.intensity_threshold), config.beta))


def smo_loss_from_aerial(
    aerial: ad.Tensor, target: ad.Tensor, config: OpticalConfig
) -> ad.Tensor:
    """gamma * L2 + eta * L_pvb evaluated from one aerial image.

    Shapes broadcast: a ``(B, N, N)`` aerial/target pair yields the summed
    loss over the whole batch (one scalar, one graph).
    """
    z_nom = dose_resist(aerial, config, 1.0)
    z_min = dose_resist(aerial, config, config.dose_min)
    z_max = dose_resist(aerial, config, config.dose_max)
    l2 = F.sum(F.power(F.sub(z_nom, target), 2.0))
    pvb = F.add(
        F.sum(F.power(F.sub(z_max, target), 2.0)),
        F.sum(F.power(F.sub(z_min, target), 2.0)),
    )
    return F.add(F.mul(l2, config.gamma), F.mul(pvb, config.eta))


def _resist_images_fast(
    aerial_np: np.ndarray, config: OpticalConfig
) -> Dict[str, np.ndarray]:
    """Dose-corner resist images from a numpy aerial (no graph)."""
    with ad.no_grad():
        aerial = ad.Tensor(aerial_np)
        return {
            "aerial": aerial_np,
            "resist": dose_resist(aerial, config, 1.0).data,
            "resist_min": dose_resist(aerial, config, config.dose_min).data,
            "resist_max": dose_resist(aerial, config, config.dose_max).data,
        }


def _tile_loss_vector(
    images: Dict[str, np.ndarray], targets: np.ndarray, config: OpticalConfig
) -> np.ndarray:
    """Per-tile ``gamma * L2 + eta * L_pvb`` from batched resist images."""
    axes = (1, 2)
    l2 = ((images["resist"] - targets) ** 2).sum(axis=axes)
    pvb = ((images["resist_max"] - targets) ** 2).sum(axis=axes) + (
        (images["resist_min"] - targets) ** 2
    ).sum(axis=axes)
    return config.gamma * l2 + config.eta * pvb


def _tile_losses_from_aerial(
    aerial: np.ndarray, targets: np.ndarray, config: OpticalConfig
) -> np.ndarray:
    """Per-tile losses straight from a ``(B, N, N)`` aerial (no graph).

    This is how batched objectives deliver per-tile diagnostics *for
    free*: the aerial was already computed for the scalar loss, so the
    per-tile split costs three resist sigmoids and a few sums — no extra
    imaging forward.
    """
    with ad.no_grad():
        images = _resist_images_fast(aerial, config)
    return _tile_loss_vector(images, targets, config)


class AbbeSMOObjective:
    """The unified Abbe-based SMO loss ``L_smo(theta_J, theta_M)``.

    This single callable backs SO, MO and all BiSMO levels (the paper
    uses the same objective at both levels, Eq. (9)); which parameter a
    solver differentiates decides the role.
    """

    num_tiles: int = 1
    #: Single-tile objectives never stash per-tile losses.
    last_tile_losses: Optional[np.ndarray] = None

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        source_grid: Optional[SourceGrid] = None,
    ):
        self.config = config
        if target.shape != (config.mask_size, config.mask_size):
            raise ValueError(
                f"target shape {target.shape} != mask grid "
                f"({config.mask_size}, {config.mask_size})"
            )
        self.target = ad.Tensor(np.asarray(target, dtype=np.float64))
        if engine is not None:
            self.engine = engine
        elif source_grid is not None:
            self.engine = AbbeImaging(config, source_grid)
        else:
            self.engine = engine_for(config, "abbe")

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """L_smo as an autodiff scalar (differentiable in both thetas)."""
        source = source_from_theta(theta_j, self.config)
        mask = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(mask, source)
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        """All intermediate images at the current parameters.

        Inference-only: the aerial image comes from the engine's
        graph-free fast path.
        """
        with ad.no_grad():
            source = source_from_theta(ad.Tensor(theta_j), self.config).data
            mask = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(
            self.engine.aerial_fast(mask, source), self.config
        )
        images.update(source=source, mask=mask, target=self.target.data)
        return images


class HopkinsMOObjective:
    """Hopkins/SOCS mask-only objective (for MO baselines & hybrid AM-SMO).

    The source is frozen into the TCC at construction;
    :meth:`rebuild_source` re-assembles the TCC after an SO phase — the
    expensive, non-differentiable step that motivates the paper's
    Abbe-only framework.  Engines resolve through the shared optics
    cache, so a repeated (config, source, Q) triple decomposes once.

    ``target`` may be a single ``(N, N)`` tile or a ``(B, N, N)`` stack;
    a stack makes the objective joint over the batch (``theta_m`` must
    then be a matching ``(B, N, N)`` parameter stack and the loss is the
    sum over tiles, riding the engine's fused multi-tile forward).
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        num_kernels: Optional[int] = None,
        source_grid: Optional[SourceGrid] = None,
        engine: Optional[ImagingEngine] = None,
    ):
        self.config = config
        target = np.asarray(target, dtype=np.float64)
        n = config.mask_size
        if target.ndim not in (2, 3) or target.shape[-2:] != (n, n):
            raise ValueError(
                f"target must be ({n}, {n}) or (B, {n}, {n}); got {target.shape}"
            )
        self.num_tiles = target.shape[0] if target.ndim == 3 else 1
        self._batched = target.ndim == 3
        self.target = ad.Tensor(target)
        self._source_grid = source_grid
        self._num_kernels = num_kernels
        self.engine = engine or self._build_engine(source)
        #: Per-tile losses of the latest :meth:`loss` call (batched only).
        self.last_tile_losses: Optional[np.ndarray] = None

    def _build_engine(self, source: np.ndarray) -> ImagingEngine:
        if self._source_grid is not None:
            from ..optics.hopkins import HopkinsImaging

            return HopkinsImaging(
                self.config, source, self._num_kernels, self._source_grid
            )
        return engine_for(
            self.config, "hopkins", source=source, num_kernels=self._num_kernels
        )

    def rebuild_source(self, source: np.ndarray) -> None:
        """Re-derive TCC + SOCS kernels for a new source (slow path)."""
        self.engine = self._build_engine(source)

    def loss(self, theta_m: ad.Tensor) -> ad.Tensor:
        if self._batched and (
            theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles
        ):
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )
        mask = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(mask)
        if self._batched:
            self.last_tile_losses = _tile_losses_from_aerial(
                aerial.data, self.target.data, self.config
            )
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def tile_losses(self, theta_m: np.ndarray) -> np.ndarray:
        """Per-tile loss vector ``(B,)`` via the inference fast path."""
        if not self._batched:
            raise ValueError("tile_losses needs a (B, N, N) target stack")
        images = self.images(theta_m)
        return _tile_loss_vector(images, self.target.data, self.config)

    def images(self, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        with ad.no_grad():
            mask = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(self.engine.aerial_fast(mask), self.config)
        images.update(mask=mask, target=self.target.data)
        return images


class BatchedSMOObjective:
    """Joint SMO loss over a batch of layout tiles sharing one source.

    Evaluating B tiles through one engine call turns the whole layout
    suite into a single fused FFT stack (and a single autodiff graph)
    instead of a Python loop over per-tile objectives — the multi-tile
    extension of the paper's Abbe batching.

    Parameters
    ----------
    targets:
        ``(B, N, N)`` stack of binary target tiles (see
        :func:`repro.layouts.tile_stack`).
    reduction:
        ``"sum"`` (default) or ``"mean"`` over the batch.
    """

    def __init__(
        self,
        config: OpticalConfig,
        targets: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        reduction: str = "sum",
    ):
        targets = np.asarray(targets, dtype=np.float64)
        n = config.mask_size
        if targets.ndim != 3 or targets.shape[-2:] != (n, n):
            raise ValueError(
                f"targets must be (B, {n}, {n}); got shape {targets.shape}"
            )
        if reduction not in ("sum", "mean"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.config = config
        self.reduction = reduction
        self.num_tiles = targets.shape[0]
        self.targets = ad.Tensor(targets)
        self.engine = engine or engine_for(config, "abbe")
        #: Per-tile loss vector of the most recent :meth:`loss` call,
        #: derived from that call's aerial at no extra imaging cost.
        self.last_tile_losses: Optional[np.ndarray] = None

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """Batch SMO loss; ``theta_m`` is a ``(B, N, N)`` parameter stack."""
        if theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles:
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )
        source = source_from_theta(theta_j, self.config)
        masks = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(masks, source)  # (B, N, N), one fused stack
        self.last_tile_losses = _tile_losses_from_aerial(
            aerial.data, self.targets.data, self.config
        )
        total = smo_loss_from_aerial(aerial, self.targets, self.config)
        if self.reduction == "mean":
            total = F.div(total, float(self.num_tiles))
        return total

    def tile_losses(self, theta_j: np.ndarray, theta_m: np.ndarray) -> np.ndarray:
        """Per-tile loss vector ``(B,)`` via the inference fast path."""
        images = self.images(theta_j, theta_m)
        return _tile_loss_vector(images, self.targets.data, self.config)

    def source_only_loss(self, theta_m: np.ndarray):
        """FFT-free source-only loss closure at a fixed ``theta_M`` stack.

        Abbe's aerial is linear in the normalized source weights, so at
        fixed masks the per-source-point intensity basis ``X[b, s]`` is a
        constant; the returned closure rebuilds ``L_smo(theta_J)`` from
        ``X`` with a graph that never touches an FFT.  Exactly equal to
        ``loss(theta_j, theta_m)`` as a function of ``theta_j`` — this is
        the cheap inner-Hessian (HVP) oracle BiSMO uses in joint mode.
        Returns ``None`` when the engine cannot expose the basis
        (e.g. Hopkins, where the source is baked into the TCC).
        """
        if not hasattr(self.engine, "source_intensity_basis") or not hasattr(
            self.engine, "aerial_from_basis"
        ):
            return None
        with ad.no_grad():
            masks = mask_from_theta(ad.Tensor(theta_m), self.config).data
        basis = ad.Tensor(self.engine.source_intensity_basis(masks))

        def loss_j(theta_j: ad.Tensor) -> ad.Tensor:
            source = source_from_theta(theta_j, self.config)
            aerial = self.engine.aerial_from_basis(basis, source)
            total = smo_loss_from_aerial(aerial, self.targets, self.config)
            if self.reduction == "mean":
                total = F.div(total, float(self.num_tiles))
            return total

        return loss_j

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        """Batched intermediate images, all ``(B, N, N)`` (no graph)."""
        with ad.no_grad():
            source = source_from_theta(ad.Tensor(theta_j), self.config).data
            masks = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(
            self.engine.aerial_fast(masks, source), self.config
        )
        images.update(source=source, mask=masks, target=self.targets.data)
        return images


class LoopedSMOObjective:
    """Reference joint SMO loss: a Python loop over per-tile objectives.

    Mathematically identical to :class:`BatchedSMOObjective` (same shared
    ``theta_J``, same summed loss over the ``(B, N, N)`` ``theta_M``
    stack) but each tile builds its own single-tile graph — the
    pre-batching consumer pattern.  Each per-tile graph still rides the
    engine's fused ``incoherent_image`` node, so the loop-vs-batch gap
    it measures isolates graph-count overhead, not op fusion.  It also deliberately omits the
    FFT-free ``source_only_loss`` HVP oracle, exactly as the per-clip
    code it stands in for.  Kept as the equivalence oracle for the
    batched solver tests and the wall-clock baseline of
    ``benchmarks/bench_joint_smo.py``; production code should use the
    fused batched objective.
    """

    def __init__(
        self,
        config: OpticalConfig,
        targets: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        reduction: str = "sum",
    ):
        self._batched = BatchedSMOObjective(config, targets, engine, reduction)
        self.config = config
        self.reduction = reduction
        self.num_tiles = self._batched.num_tiles
        self.targets = self._batched.targets
        self.engine = self._batched.engine
        self._per_tile = [
            AbbeSMOObjective(config, t, engine=self.engine)
            for t in self.targets.data
        ]
        #: Per-tile loss vector of the most recent :meth:`loss` call.
        self.last_tile_losses: Optional[np.ndarray] = None

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """Sum of B independent single-tile graphs (the slow path)."""
        if theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles:
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )
        total: Optional[ad.Tensor] = None
        per_tile = np.empty(self.num_tiles)
        for i, objective in enumerate(self._per_tile):
            li = objective.loss(theta_j, F.getitem(theta_m, i))
            per_tile[i] = float(li.data)
            total = li if total is None else F.add(total, li)
        assert total is not None
        self.last_tile_losses = per_tile
        if self.reduction == "mean":
            total = F.div(total, float(self.num_tiles))
        return total

    def tile_losses(self, theta_j: np.ndarray, theta_m: np.ndarray) -> np.ndarray:
        return self._batched.tile_losses(theta_j, theta_m)

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        return self._batched.images(theta_j, theta_m)
