"""SMO objectives — Equations (7)-(9) of the paper.

``L_smo := L_so := L_mo = gamma * L2 + eta * L_pvb`` where

* ``L2``   = || Z - Z_t ||^2 at nominal dose (Eq. (7)),
* ``L_pvb`` = || Z_max - Z_t ||^2 + || Z_min - Z_t ||^2 at the +/-2 %
  dose corners (Eq. (8)).

Dose handling: the paper substitutes ``M_min = d_min * sigma(alpha_m
theta_M)`` into the forward model.  Because Abbe/Hopkins intensity is a
quadratic form in the mask transmission, scaling the mask by ``d``
scales the whole aerial image by ``d^2`` *exactly*; we therefore image
once and evaluate the three dose corners as ``sigmoid(beta * (d^2 * I -
I_tr))``, which is algebraically identical to three forward passes but
3x cheaper.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..optics import AbbeImaging, HopkinsImaging, OpticalConfig, SourceGrid
from .parametrization import mask_from_theta, source_from_theta

__all__ = ["dose_resist", "smo_loss_from_aerial", "AbbeSMOObjective", "HopkinsMOObjective"]


def dose_resist(aerial: ad.Tensor, config: OpticalConfig, dose: float) -> ad.Tensor:
    """Resist image at a given dose: sigmoid(beta * (dose^2 * I - I_tr))."""
    scaled = F.mul(aerial, dose * dose) if dose != 1.0 else aerial
    return F.sigmoid(F.mul(F.sub(scaled, config.intensity_threshold), config.beta))


def smo_loss_from_aerial(
    aerial: ad.Tensor, target: ad.Tensor, config: OpticalConfig
) -> ad.Tensor:
    """gamma * L2 + eta * L_pvb evaluated from one aerial image."""
    z_nom = dose_resist(aerial, config, 1.0)
    z_min = dose_resist(aerial, config, config.dose_min)
    z_max = dose_resist(aerial, config, config.dose_max)
    l2 = F.sum(F.power(F.sub(z_nom, target), 2.0))
    pvb = F.add(
        F.sum(F.power(F.sub(z_max, target), 2.0)),
        F.sum(F.power(F.sub(z_min, target), 2.0)),
    )
    return F.add(F.mul(l2, config.gamma), F.mul(pvb, config.eta))


class AbbeSMOObjective:
    """The unified Abbe-based SMO loss ``L_smo(theta_J, theta_M)``.

    This single callable backs SO, MO and all BiSMO levels (the paper
    uses the same objective at both levels, Eq. (9)); which parameter a
    solver differentiates decides the role.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        engine: Optional[AbbeImaging] = None,
        source_grid: Optional[SourceGrid] = None,
    ):
        self.config = config
        if target.shape != (config.mask_size, config.mask_size):
            raise ValueError(
                f"target shape {target.shape} != mask grid "
                f"({config.mask_size}, {config.mask_size})"
            )
        self.target = ad.Tensor(np.asarray(target, dtype=np.float64))
        self.engine = engine or AbbeImaging(config, source_grid)

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """L_smo as an autodiff scalar (differentiable in both thetas)."""
        source = source_from_theta(theta_j, self.config)
        mask = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(mask, source)
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        """All intermediate images at the current parameters (no grads)."""
        with ad.no_grad():
            tj = ad.Tensor(theta_j)
            tm = ad.Tensor(theta_m)
            source = source_from_theta(tj, self.config)
            mask = mask_from_theta(tm, self.config)
            aerial = self.engine.aerial(mask, source)
            z_nom = dose_resist(aerial, self.config, 1.0)
            z_min = dose_resist(aerial, self.config, self.config.dose_min)
            z_max = dose_resist(aerial, self.config, self.config.dose_max)
        return {
            "source": source.data,
            "mask": mask.data,
            "aerial": aerial.data,
            "resist": z_nom.data,
            "resist_min": z_min.data,
            "resist_max": z_max.data,
            "target": self.target.data,
        }


class HopkinsMOObjective:
    """Hopkins/SOCS mask-only objective (for MO baselines & hybrid AM-SMO).

    The source is frozen into the TCC at construction;
    :meth:`rebuild_source` re-assembles the TCC after an SO phase — the
    expensive, non-differentiable step that motivates the paper's
    Abbe-only framework.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        num_kernels: Optional[int] = None,
        source_grid: Optional[SourceGrid] = None,
    ):
        self.config = config
        self.target = ad.Tensor(np.asarray(target, dtype=np.float64))
        self._source_grid = source_grid
        self._num_kernels = num_kernels
        self.engine = HopkinsImaging(config, source, num_kernels, source_grid)

    def rebuild_source(self, source: np.ndarray) -> None:
        """Re-derive TCC + SOCS kernels for a new source (slow path)."""
        self.engine = HopkinsImaging(
            self.config, source, self._num_kernels, self._source_grid
        )

    def loss(self, theta_m: ad.Tensor) -> ad.Tensor:
        mask = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(mask)
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def images(self, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        with ad.no_grad():
            mask = mask_from_theta(ad.Tensor(theta_m), self.config)
            aerial = self.engine.aerial(mask)
            z_nom = dose_resist(aerial, self.config, 1.0)
            z_min = dose_resist(aerial, self.config, self.config.dose_min)
            z_max = dose_resist(aerial, self.config, self.config.dose_max)
        return {
            "mask": mask.data,
            "aerial": aerial.data,
            "resist": z_nom.data,
            "resist_min": z_min.data,
            "resist_max": z_max.data,
            "target": self.target.data,
        }
