"""SMO objectives — Equations (7)-(9) of the paper.

``L_smo := L_so := L_mo = gamma * L2 + eta * L_pvb`` where

* ``L2``   = || Z - Z_t ||^2 at nominal dose (Eq. (7)),
* ``L_pvb`` = || Z_max - Z_t ||^2 + || Z_min - Z_t ||^2 at the +/-2 %
  dose corners (Eq. (8)).

Dose handling: the paper substitutes ``M_min = d_min * sigma(alpha_m
theta_M)`` into the forward model.  Because Abbe/Hopkins intensity is a
quadratic form in the mask transmission, scaling the mask by ``d``
scales the whole aerial image by ``d^2`` *exactly*; we therefore image
once and evaluate the three dose corners as ``sigmoid(beta * (d^2 * I -
I_tr))``, which is algebraically identical to three forward passes but
3x cheaper.

All objectives consume any :class:`repro.optics.ImagingEngine`; default
engines come from the shared optics cache, and every inference-only
entry point (``images()``) rides the engines' graph-free fast path.
:class:`BatchedSMOObjective` evaluates a whole ``(B, N, N)`` layout
batch as one loss through the engines' fused multi-tile forward — since
PR 3 a single :func:`repro.autodiff.functional.incoherent_image` node
per evaluation (streamed forward, hand-written VJP), so neither the
loss nor its backward retains a ``(B, S, N, N)`` field stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..optics import (
    ImagingEngine,
    OpticalConfig,
    ProcessWindow,
    SourceGrid,
    engine_for,
)
from ..optics.abbe import AbbeImaging
from .parametrization import mask_from_theta, source_from_theta

__all__ = [
    "dose_resist",
    "smo_loss_from_aerial",
    "robust_corner_loss",
    "robust_tile_losses",
    "windowed_corner_loss",
    "AdaptiveCornerWeights",
    "adaptive_corner_update",
    "AbbeSMOObjective",
    "HopkinsMOObjective",
    "BatchedSMOObjective",
    "LoopedSMOObjective",
    "ProcessWindowSMOObjective",
    "ROBUST_MODES",
]


def dose_resist(
    aerial: ad.Tensor,
    config: OpticalConfig,
    dose: float,
    intensity_threshold: Optional[float] = None,
) -> ad.Tensor:
    """Resist image at a given dose: sigmoid(beta * (dose^2 * I - I_tr)).

    ``intensity_threshold`` overrides the config's shared ``I_tr`` —
    the per-corner resist calibration a
    :class:`repro.optics.ProcessCorner` can carry; ``None`` keeps the
    config value.
    """
    threshold = (
        config.intensity_threshold
        if intensity_threshold is None
        else float(intensity_threshold)
    )
    scaled = F.mul(aerial, dose * dose) if dose != 1.0 else aerial
    return F.sigmoid(F.mul(F.sub(scaled, threshold), config.beta))


def smo_loss_from_aerial(
    aerial: ad.Tensor, target: ad.Tensor, config: OpticalConfig
) -> ad.Tensor:
    """gamma * L2 + eta * L_pvb evaluated from one aerial image.

    Shapes broadcast: a ``(B, N, N)`` aerial/target pair yields the summed
    loss over the whole batch (one scalar, one graph).
    """
    z_nom = dose_resist(aerial, config, 1.0)
    z_min = dose_resist(aerial, config, config.dose_min)
    z_max = dose_resist(aerial, config, config.dose_max)
    l2 = F.sum(F.power(F.sub(z_nom, target), 2.0))
    pvb = F.add(
        F.sum(F.power(F.sub(z_max, target), 2.0)),
        F.sum(F.power(F.sub(z_min, target), 2.0)),
    )
    return F.add(F.mul(l2, config.gamma), F.mul(pvb, config.eta))


def _resist_images_fast(
    aerial_np: np.ndarray, config: OpticalConfig
) -> Dict[str, np.ndarray]:
    """Dose-corner resist images from a numpy aerial (no graph)."""
    with ad.no_grad():
        aerial = ad.Tensor(aerial_np)
        return {
            "aerial": aerial_np,
            "resist": dose_resist(aerial, config, 1.0).data,
            "resist_min": dose_resist(aerial, config, config.dose_min).data,
            "resist_max": dose_resist(aerial, config, config.dose_max).data,
        }


def _tile_loss_vector(
    images: Dict[str, np.ndarray], targets: np.ndarray, config: OpticalConfig
) -> np.ndarray:
    """Per-tile ``gamma * L2 + eta * L_pvb`` from batched resist images."""
    axes = (1, 2)
    l2 = ((images["resist"] - targets) ** 2).sum(axis=axes)
    pvb = ((images["resist_max"] - targets) ** 2).sum(axis=axes) + (
        (images["resist_min"] - targets) ** 2
    ).sum(axis=axes)
    return config.gamma * l2 + config.eta * pvb


def _tile_losses_from_aerial(
    aerial: np.ndarray, targets: np.ndarray, config: OpticalConfig
) -> np.ndarray:
    """Per-tile losses straight from a ``(B, N, N)`` aerial (no graph).

    This is how batched objectives deliver per-tile diagnostics *for
    free*: the aerial was already computed for the scalar loss, so the
    per-tile split costs three resist sigmoids and a few sums — no extra
    imaging forward.
    """
    with ad.no_grad():
        images = _resist_images_fast(aerial, config)
    return _tile_loss_vector(images, targets, config)


# ----------------------------------------------------------------------
# process-window robustness: corner losses + robust reductions
# ----------------------------------------------------------------------
#: Supported robust reductions across process corners.  ``"adaptive"``
#: is the weighted sum under live :class:`AdaptiveCornerWeights` — the
#: soft-minimax ascent loop the solvers step once per outer iteration.
ROBUST_MODES = ("sum", "max", "adaptive")


def _corner_loss_terms(
    aerials: Sequence[ad.Tensor],
    target: ad.Tensor,
    window: ProcessWindow,
    config: OpticalConfig,
) -> Tuple[List[ad.Tensor], np.ndarray]:
    """Per-corner squared-error scalars from per-condition aerial images.

    ``aerials[i]`` is the (differentiable) aerial image at the window's
    i-th distinct pupil condition; each corner applies its exact
    post-aerial ``dose**2`` scaling (and its calibrated resist
    threshold, when set) through :func:`dose_resist` and contributes
    ``L_c = || Z_c - Z_t ||^2``.  Returns the list of C scalar loss
    tensors plus the ``(C, B)`` per-tile loss matrix (harvested from the
    already-computed resist data at no extra imaging cost).
    """
    fidx = window.condition_index()
    losses: List[ad.Tensor] = []
    matrix_rows = []
    for ci, corner in enumerate(window.corners):
        z = dose_resist(
            aerials[int(fidx[ci])],
            config,
            corner.dose,
            corner.intensity_threshold,
        )
        sq = F.power(F.sub(z, target), 2.0)
        losses.append(F.sum(sq))
        d = sq.data
        matrix_rows.append(
            d.sum(axis=(-2, -1)).reshape(-1) if d.ndim == 3 else [d.sum()]
        )
    return losses, np.asarray(matrix_rows, dtype=np.float64)


def _resolve_corner_weights(
    window: ProcessWindow, weights: Optional[np.ndarray]
) -> np.ndarray:
    if weights is None:
        return window.weights
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.shape != (window.num_corners,):
        raise ValueError(
            f"corner weights must be ({window.num_corners},); got {w.shape}"
        )
    return w


def robust_corner_loss(
    corner_losses: Sequence[ad.Tensor],
    window: ProcessWindow,
    robust: str = "sum",
    tau: float = 1.0,
    weights: Optional[np.ndarray] = None,
) -> ad.Tensor:
    """Reduce per-corner scalar losses to one robust objective.

    * ``"sum"`` — the weighted sum ``sum_c w_c L_c``.  With the paper's
      window (:meth:`ProcessWindow.from_config`) this *is* the classic
      ``gamma * L2 + eta * L_pvb`` loss.
    * ``"max"`` — the smooth worst case ``tau * log sum_c w_c
      exp(L_c / tau)``: a log-sum-exp upper bound on the (weighted) worst
      corner that stays differentiable.  Evaluated with the standard
      constant max-shift, which leaves value and all derivatives exact.
      Smaller ``tau`` tracks the hard max more tightly; ``tau`` is in
      loss units.
    * ``"adaptive"`` — a weighted sum under the *live* weights of an
      :class:`AdaptiveCornerWeights` ascent (passed via ``weights``):
      within one evaluation the weights are constants, so the graph is
      the ``"sum"`` graph; the minimax behavior comes from the outer
      weight updates between iterations.

    ``weights`` overrides the window's static corner weights for the
    reduction (any mode); ``None`` uses ``window.weights``.
    """
    if robust not in ROBUST_MODES:
        raise ValueError(f"unknown robust mode {robust!r}; choose {ROBUST_MODES}")
    w_arr = _resolve_corner_weights(window, weights)
    if robust in ("sum", "adaptive"):
        total: Optional[ad.Tensor] = None
        for loss, w in zip(corner_losses, w_arr):
            term = F.mul(loss, float(w))
            total = term if total is None else F.add(total, term)
        if total is None:
            raise ValueError("robust_corner_loss needs at least one corner loss")
        return total
    if tau <= 0.0:
        raise ValueError(f"tau must be positive; got {tau}")
    shift = max(float(loss.data) for loss in corner_losses)
    acc: Optional[ad.Tensor] = None
    for loss, w in zip(corner_losses, w_arr):
        term = F.mul(F.exp(F.div(F.sub(loss, shift), float(tau))), float(w))
        acc = term if acc is None else F.add(acc, term)
    if acc is None:
        raise ValueError("robust_corner_loss needs at least one corner loss")
    return F.add(F.mul(F.log(acc), float(tau)), shift)


def robust_tile_losses(
    matrix: np.ndarray,
    window: ProcessWindow,
    robust: str = "sum",
    tau: float = 1.0,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-tile robust losses ``(B,)`` from a ``(C, B)`` corner matrix."""
    if robust not in ROBUST_MODES:
        raise ValueError(f"unknown robust mode {robust!r}; choose {ROBUST_MODES}")
    w = _resolve_corner_weights(window, weights)
    if robust in ("sum", "adaptive"):
        return w @ matrix
    shift = matrix.max(axis=0)
    return tau * np.log(
        (w[:, None] * np.exp((matrix - shift) / tau)).sum(axis=0)
    ) + shift


def windowed_corner_loss(
    engine: ImagingEngine,
    config: OpticalConfig,
    mask: ad.Tensor,
    target: ad.Tensor,
    window: ProcessWindow,
    robust: str = "sum",
    tau: float = 1.0,
    source: Optional[ad.Tensor] = None,
    weights: Optional[np.ndarray] = None,
) -> Tuple[ad.Tensor, np.ndarray]:
    """One fused condition-axis evaluation of a robust window loss.

    The single shared implementation behind every windowed objective
    (:class:`ProcessWindowSMOObjective`, the windowed
    :class:`HopkinsMOObjective`, the robust NILT baseline): one
    ``engine.aerial_conditions`` stack (shared mask spectrum across the
    window's distinct pupil conditions — defocus *and* general Zernike
    aberrations), per-corner ``dose**2`` resists with per-corner
    thresholds, and the robust reduction.  Pass ``source=None`` for
    baked-source (Hopkins) engines and ``weights`` for live adaptive
    corner weights.  Returns ``(robust_loss, corner_matrix)`` with the
    matrix shaped ``(C, B)``.
    """
    conditions = window.conditions()
    stack = engine.aerial_conditions(mask, source, conditions)
    aerials = [F.getitem(stack, fi) for fi in range(len(conditions))]
    losses, matrix = _corner_loss_terms(aerials, target, window, config)
    return robust_corner_loss(losses, window, robust, tau, weights), matrix


class AdaptiveCornerWeights:
    """Soft-minimax corner reweighting by exponentiated-gradient ascent.

    ``robust="adaptive"`` closes the loop on true worst-case
    optimization: instead of a fixed weighted sum (``"sum"``) or a fixed
    log-sum-exp temperature (``"max"``), the corner weights themselves
    are a simplex variable ``lambda`` ascending the inner maximization
    of

        min_theta  max_{lambda in simplex}  sum_c lambda_c L_c(theta).

    After each outer iteration the solvers call :meth:`update` with the
    current per-corner losses, taking the mirror-ascent (EG) step

        lambda_c  <-  lambda_c * exp(rate * L_c / mean(L)) / Z

    — the multiplicative-weights update on the corner loss *shares*
    (normalizing by ``mean(L)`` makes ``rate`` scale-free).  ``lambda``
    is seeded from the window's normalized static weights, and
    :attr:`weights` rescales it by the window's total weight mass so
    adaptive losses stay magnitude-comparable with ``robust="sum"``.
    ``floor`` lower-bounds every corner's simplex share at ``floor / C``
    (one ``floor``-th of the uniform share) so no corner ever stops
    being monitored entirely (a dead corner could silently regress).
    """

    @classmethod
    def maybe(
        cls,
        window: Optional[ProcessWindow],
        robust: str,
        rate: float,
    ) -> Optional["AdaptiveCornerWeights"]:
        """The standard consumer wiring: an ascent instance iff
        ``robust == "adaptive"`` and a window exists, else ``None``.
        Every windowed objective/baseline builds (or inherits) its
        adaptive weights through this one idiom."""
        if robust != "adaptive" or window is None:
            return None
        return cls(window, rate=rate)

    def __init__(
        self, window: ProcessWindow, rate: float = 1.0, floor: float = 1e-3
    ):
        if rate <= 0.0:
            raise ValueError(f"adaptive rate must be positive; got {rate}")
        if not 0.0 <= floor < 1.0:
            raise ValueError(f"floor must be in [0, 1); got {floor}")
        base = window.weights
        self.window = window
        self.rate = float(rate)
        self.floor = float(floor)
        self.total_mass = float(base.sum())
        self.lam = base / self.total_mass
        self._apply_floor()

    def _apply_floor(self) -> None:
        if self.floor > 0.0:
            self.lam = np.maximum(self.lam, self.floor / self.lam.size)
            self.lam = self.lam / self.lam.sum()

    @property
    def weights(self) -> np.ndarray:
        """Current corner weights ``(C,)`` (simplex * total mass)."""
        return self.total_mass * self.lam

    def update(self, corner_losses: np.ndarray) -> np.ndarray:
        """One EG ascent step from per-corner losses; returns the new
        weights.  Non-finite or non-positive loss vectors leave the
        weights unchanged (nothing to ascend)."""
        losses = np.asarray(corner_losses, dtype=np.float64).reshape(-1)
        if losses.shape != self.lam.shape:
            raise ValueError(
                f"corner losses must be ({self.lam.size},); got {losses.shape}"
            )
        mean = losses.mean()
        if not np.isfinite(mean) or mean <= 0.0:
            return self.weights
        z = self.rate * losses / mean
        z -= z.max()  # constant shift cancels in the normalization
        self.lam = self.lam * np.exp(z)
        self.lam = self.lam / self.lam.sum()
        self._apply_floor()
        return self.weights


def live_corner_weights(
    adaptive: Optional[AdaptiveCornerWeights],
) -> Optional[np.ndarray]:
    """Current weight override of an (optional) adaptive ascent.

    The shared accessor behind every objective's ``_robust_weights``:
    ``None`` (use the window's static weights) when no ascent is
    attached, the live weight vector otherwise.
    """
    return None if adaptive is None else adaptive.weights


def adaptive_corner_update(
    objective, matrix: Optional[np.ndarray] = None
) -> Optional[np.ndarray]:
    """Step an objective's adaptive corner weights (solver helper).

    Looks for ``objective.adaptive_weights`` (an
    :class:`AdaptiveCornerWeights`, present when the objective was built
    with ``robust="adaptive"``) and EG-updates it from a ``(C, B)``
    corner-loss matrix summed over tiles.  ``matrix`` defaults to the
    objective's stashed ``last_corner_losses``; solvers whose iteration
    re-evaluates the objective at *perturbed* points after the iterate's
    own evaluation (BiSMO's FD hypergradient oracles) must capture the
    matrix at the iterate and pass it explicitly, or the ascent would
    run on perturbed losses.  Returns a copy of the current weights for
    the iteration record, or ``None`` when the objective is not
    adaptive — solvers call this unconditionally once per outer
    iteration.
    """
    adaptive = getattr(objective, "adaptive_weights", None)
    if adaptive is None:
        return None
    if matrix is None:
        matrix = getattr(objective, "last_corner_losses", None)
    if matrix is not None:
        adaptive.update(np.asarray(matrix).sum(axis=1))
    return adaptive.weights.copy()


class ProcessWindowSMOObjective:
    """Robust SMO loss across a dose x aberration :class:`ProcessWindow`.

    The condition-axis counterpart of :class:`AbbeSMOObjective` /
    :class:`BatchedSMOObjective`: one evaluation images every distinct
    pupil condition of the window — defocus and general Zernike
    aberrations alike — through the engine's fused ``aerial_conditions``
    stack (a single mask-spectrum FFT shared by all conditions), applies
    each corner's exact ``dose**2`` scaling (and calibrated resist
    threshold, when set) in the resist model, and reduces the per-corner
    losses with :func:`robust_corner_loss`.  With the default window
    (:meth:`ProcessWindow.from_config`) and ``robust="sum"`` this equals
    the classic SMO loss exactly.  ``robust="adaptive"`` attaches an
    :class:`AdaptiveCornerWeights` ascent (``tau`` becomes the EG rate)
    that solvers step once per outer iteration via
    :func:`adaptive_corner_update`.

    ``target`` may be a single ``(N, N)`` tile or a ``(B, N, N)`` stack
    (joint multi-clip robust SMO — per-tile robust losses ride every
    iteration record, and the ``(C, B)`` corner matrix is stashed on
    ``last_corner_losses`` for the harness report).  Differentiable in
    both parameters, including the second-order products BiSMO needs
    (the stack primitive's ``create_graph`` fallback), and exposes the
    FFT-free ``source_only_loss`` inner oracle through per-focus
    intensity bases.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        window: Optional[ProcessWindow] = None,
        engine: Optional[ImagingEngine] = None,
        robust: str = "sum",
        tau: float = 1.0,
        reduction: str = "sum",
    ):
        if robust not in ROBUST_MODES:
            raise ValueError(
                f"unknown robust mode {robust!r}; choose {ROBUST_MODES}"
            )
        if reduction not in ("sum", "mean"):
            raise ValueError(f"unknown reduction {reduction!r}")
        target = np.asarray(target, dtype=np.float64)
        n = config.mask_size
        if target.ndim not in (2, 3) or target.shape[-2:] != (n, n):
            raise ValueError(
                f"target must be ({n}, {n}) or (B, {n}, {n}); got {target.shape}"
            )
        self.config = config
        self.window = window or ProcessWindow.from_config(config)
        self.robust = robust
        self.tau = float(tau)
        self.reduction = reduction
        self._batched = target.ndim == 3
        self.num_tiles = target.shape[0] if self._batched else 1
        self.target = self.targets = ad.Tensor(target)
        self.engine = engine or engine_for(config, "abbe")
        if not hasattr(self.engine, "source_weights"):
            raise ValueError(
                "ProcessWindowSMOObjective needs a source-differentiable "
                "engine (the loss is a function of theta_J); for "
                "baked-source Hopkins engines use "
                "HopkinsMOObjective(..., window=...) instead"
            )
        #: ``(C, B)`` per-corner / per-tile loss matrix of the latest
        #: :meth:`loss` call (C follows ``window.corners`` order).
        self.last_corner_losses: Optional[np.ndarray] = None
        #: Per-tile robust loss vector of the latest call (batched only).
        self.last_tile_losses: Optional[np.ndarray] = None
        #: Live minimax corner weights (``robust="adaptive"`` only).
        self.adaptive_weights = AdaptiveCornerWeights.maybe(
            self.window, robust, self.tau
        )

    # ------------------------------------------------------------------
    def _robust_weights(self) -> Optional[np.ndarray]:
        """Current corner-weight override (live adaptive weights)."""
        return live_corner_weights(self.adaptive_weights)

    def _check_theta_m(self, theta_m) -> None:
        if self._batched and (
            theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles
        ):
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )

    def _reduce(self, total: ad.Tensor, matrix: np.ndarray) -> ad.Tensor:
        self.last_corner_losses = matrix
        self.last_tile_losses = (
            robust_tile_losses(
                matrix, self.window, self.robust, self.tau,
                weights=self._robust_weights(),
            )
            if self._batched
            else None
        )
        if self.reduction == "mean":
            total = F.div(total, float(self.num_tiles))
        return total

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """Robust L_smo across the window (one fused condition stack)."""
        self._check_theta_m(theta_m)
        source = source_from_theta(theta_j, self.config)
        mask = mask_from_theta(theta_m, self.config)
        total, matrix = windowed_corner_loss(
            self.engine,
            self.config,
            mask,
            self.target,
            self.window,
            self.robust,
            self.tau,
            source=source,
            weights=self._robust_weights(),
        )
        return self._reduce(total, matrix)

    def loss_reference(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """Per-condition reference loop: one independent imaging pass per
        distinct pupil condition (no shared mask spectrum, no fused
        stack).

        The parity/benchmark oracle for :meth:`loss` — mathematically
        identical, structurally the pre-condition-axis consumer pattern.
        It evaluates *this objective's engine* (its pupil stacks and
        source grid), so parity holds for custom engines too.
        """
        self._check_theta_m(theta_m)
        source = source_from_theta(theta_j, self.config)
        mask = mask_from_theta(theta_m, self.config)
        j = self.engine.source_weights(source)
        jn = F.div(j, F.add(F.sum(j), 1e-12))
        aerials = [
            F.incoherent_image(mask, stack, jn, conj_pairs=pairs)
            for stack, pairs in self.engine.condition_stacks(
                self.window.conditions()
            )
        ]
        losses, matrix = _corner_loss_terms(
            aerials, self.target, self.window, self.config
        )
        total = robust_corner_loss(
            losses, self.window, self.robust, self.tau,
            weights=self._robust_weights(),
        )
        return self._reduce(total, matrix)

    # ------------------------------------------------------------------
    def corner_loss_matrix(
        self, theta_j: np.ndarray, theta_m: np.ndarray
    ) -> np.ndarray:
        """``(C, B)`` per-corner / per-tile losses via the fast path.

        Derived from the :meth:`images` resist stack so the per-corner
        loss definition lives in one place.
        """
        resists = self.images(theta_j, theta_m)["corner_resists"]
        sq = (resists - self.target.data) ** 2
        return sq.sum(axis=(-2, -1)).reshape(self.window.num_corners, -1)

    def source_only_loss(self, theta_m: np.ndarray):
        """FFT-free robust source-only closure at fixed ``theta_M``.

        Extends ``BatchedSMOObjective.source_only_loss`` across the
        condition axis: Abbe's aerial is linear in the normalized source
        weights at *every* pupil condition, so one intensity basis per
        distinct condition makes the whole robust loss an FFT-free
        function of ``theta_J`` — the cheap inner-SO / inner-Hessian
        oracle BiSMO uses.  Adaptive corner weights are read at *call*
        time, so the closure tracks the minimax ascent across outer
        iterations.  Returns ``None`` for custom engines that do not
        expose an intensity basis.
        """
        engine = self.engine
        if not (
            hasattr(engine, "source_intensity_basis")
            and hasattr(engine, "aerial_from_basis")
            and hasattr(engine, "condition_stacks")
        ):
            return None
        with ad.no_grad():
            masks = mask_from_theta(ad.Tensor(theta_m), self.config).data
        bases = [
            ad.Tensor(engine.source_intensity_basis(masks, stack.data))
            for stack, _ in engine.condition_stacks(self.window.conditions())
        ]

        def loss_j(theta_j: ad.Tensor) -> ad.Tensor:
            source = source_from_theta(theta_j, self.config)
            aerials = [
                engine.aerial_from_basis(basis, source) for basis in bases
            ]
            losses, matrix = _corner_loss_terms(
                aerials, self.target, self.window, self.config
            )
            total = robust_corner_loss(
                losses, self.window, self.robust, self.tau,
                weights=self._robust_weights(),
            )
            if self.reduction == "mean":
                total = F.div(total, float(self.num_tiles))
            return total

        return loss_j

    def images(
        self, theta_j: np.ndarray, theta_m: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Nominal-dose images plus the full per-corner resist stack.

        The nominal keys (``aerial``/``resist``/``resist_min``/
        ``resist_max``) match :class:`AbbeSMOObjective.images` so every
        downstream consumer (harness judge, metrics) keeps working:
        they are evaluated at the window's pupil condition *closest to
        nominal* (smallest aberration magnitude — exactly the unaberrated
        condition whenever the window contains one) and at the config's
        nominal/min/max doses; ``corner_resists`` adds the
        ``(C, [B,] N, N)`` stack across the window's actual corners
        (honoring per-corner resist thresholds) and ``corner_aerials``
        the per-condition aerial stack.
        """
        with ad.no_grad():
            source = source_from_theta(ad.Tensor(theta_j), self.config).data
            mask = mask_from_theta(ad.Tensor(theta_m), self.config).data
        conditions = self.window.conditions()
        stack = self.engine.aerial_conditions_fast(mask, source, conditions)
        nominal_fi = int(
            np.argmin([ab.magnitude_nm(self.config) for ab in conditions])
        )
        images = _resist_images_fast(stack[nominal_fi], self.config)
        fidx = self.window.condition_index()
        with ad.no_grad():
            corner_resists = np.stack(
                [
                    dose_resist(
                        ad.Tensor(stack[int(fidx[ci])]),
                        self.config,
                        c.dose,
                        c.intensity_threshold,
                    ).data
                    for ci, c in enumerate(self.window.corners)
                ]
            )
        images.update(
            source=source,
            mask=mask,
            target=self.target.data,
            corner_aerials=stack,
            corner_resists=corner_resists,
        )
        return images


class AbbeSMOObjective:
    """The unified Abbe-based SMO loss ``L_smo(theta_J, theta_M)``.

    This single callable backs SO, MO and all BiSMO levels (the paper
    uses the same objective at both levels, Eq. (9)); which parameter a
    solver differentiates decides the role.
    """

    num_tiles: int = 1
    #: Single-tile objectives never stash per-tile losses.
    last_tile_losses: Optional[np.ndarray] = None

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        source_grid: Optional[SourceGrid] = None,
    ):
        self.config = config
        if target.shape != (config.mask_size, config.mask_size):
            raise ValueError(
                f"target shape {target.shape} != mask grid "
                f"({config.mask_size}, {config.mask_size})"
            )
        self.target = ad.Tensor(np.asarray(target, dtype=np.float64))
        if engine is not None:
            self.engine = engine
        elif source_grid is not None:
            self.engine = AbbeImaging(config, source_grid)
        else:
            self.engine = engine_for(config, "abbe")

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """L_smo as an autodiff scalar (differentiable in both thetas)."""
        source = source_from_theta(theta_j, self.config)
        mask = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(mask, source)
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        """All intermediate images at the current parameters.

        Inference-only: the aerial image comes from the engine's
        graph-free fast path.
        """
        with ad.no_grad():
            source = source_from_theta(ad.Tensor(theta_j), self.config).data
            mask = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(
            self.engine.aerial_fast(mask, source), self.config
        )
        images.update(source=source, mask=mask, target=self.target.data)
        return images


class HopkinsMOObjective:
    """Hopkins/SOCS mask-only objective (for MO baselines & hybrid AM-SMO).

    The source is frozen into the TCC at construction;
    :meth:`rebuild_source` re-assembles the TCC after an SO phase — the
    expensive, non-differentiable step that motivates the paper's
    Abbe-only framework.  Engines resolve through the shared optics
    cache, so a repeated (config, source, Q) triple decomposes once.

    ``target`` may be a single ``(N, N)`` tile or a ``(B, N, N)`` stack;
    a stack makes the objective joint over the batch (``theta_m`` must
    then be a matching ``(B, N, N)`` parameter stack and the loss is the
    sum over tiles, riding the engine's fused multi-tile forward).

    ``window`` switches the loss to the robust dose x aberration
    reduction of :func:`robust_corner_loss` across a
    :class:`ProcessWindow`: aberration corners ride the engine's fused
    ``aerial_conditions`` stack (the aberrated SOCS kernels are exact
    phase multiplies of the nominal decomposition — the arbitrary-D
    identity, no TCC rebuild), dose corners share each condition pass.
    ``robust`` / ``robust_tau`` pick weighted-sum, smooth worst-case, or
    the adaptive minimax ascent (``adaptive_weights`` lets a driver like
    AM-SMO share one live :class:`AdaptiveCornerWeights` across phases /
    rebuilds; otherwise ``robust="adaptive"`` creates its own).
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        num_kernels: Optional[int] = None,
        source_grid: Optional[SourceGrid] = None,
        engine: Optional[ImagingEngine] = None,
        window: Optional[ProcessWindow] = None,
        robust: str = "sum",
        robust_tau: float = 1.0,
        adaptive_weights: Optional[AdaptiveCornerWeights] = None,
    ):
        if robust not in ROBUST_MODES:
            raise ValueError(
                f"unknown robust mode {robust!r}; choose {ROBUST_MODES}"
            )
        self.config = config
        target = np.asarray(target, dtype=np.float64)
        n = config.mask_size
        if target.ndim not in (2, 3) or target.shape[-2:] != (n, n):
            raise ValueError(
                f"target must be ({n}, {n}) or (B, {n}, {n}); got {target.shape}"
            )
        self.num_tiles = target.shape[0] if target.ndim == 3 else 1
        self._batched = target.ndim == 3
        self.target = ad.Tensor(target)
        self._source_grid = source_grid
        self._num_kernels = num_kernels
        self.window = window
        self.robust = robust
        self.robust_tau = float(robust_tau)
        self.engine = engine or self._build_engine(source)
        #: Per-tile losses of the latest :meth:`loss` call (batched only).
        self.last_tile_losses: Optional[np.ndarray] = None
        #: ``(C, B)`` corner/tile matrix of the latest windowed call.
        self.last_corner_losses: Optional[np.ndarray] = None
        #: Live minimax corner weights (``robust="adaptive"`` only); a
        #: caller-supplied instance (AM-SMO, MILT) takes precedence so
        #: the dual variable survives phases / rebuilds.
        if adaptive_weights is not None and robust != "adaptive":
            raise ValueError(
                "adaptive_weights requires robust='adaptive' (a live "
                "ascent would silently override the static corner "
                f"weights under robust={robust!r})"
            )
        self.adaptive_weights = (
            adaptive_weights
            if adaptive_weights is not None
            else AdaptiveCornerWeights.maybe(window, robust, robust_tau)
        )

    def _robust_weights(self) -> Optional[np.ndarray]:
        return live_corner_weights(self.adaptive_weights)

    def _build_engine(self, source: np.ndarray) -> ImagingEngine:
        if self._source_grid is not None:
            from ..optics.hopkins import HopkinsImaging

            return HopkinsImaging(
                self.config, source, self._num_kernels, self._source_grid
            )
        return engine_for(
            self.config, "hopkins", source=source, num_kernels=self._num_kernels
        )

    def rebuild_source(self, source: np.ndarray) -> None:
        """Re-derive TCC + SOCS kernels for a new source (slow path)."""
        self.engine = self._build_engine(source)

    def loss(self, theta_m: ad.Tensor) -> ad.Tensor:
        if self._batched and (
            theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles
        ):
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )
        mask = mask_from_theta(theta_m, self.config)
        if self.window is not None:
            total, matrix = windowed_corner_loss(
                self.engine,
                self.config,
                mask,
                self.target,
                self.window,
                self.robust,
                self.robust_tau,
                weights=self._robust_weights(),
            )
            self.last_corner_losses = matrix
            if self._batched:
                self.last_tile_losses = robust_tile_losses(
                    matrix, self.window, self.robust, self.robust_tau,
                    weights=self._robust_weights(),
                )
            return total
        aerial = self.engine.aerial(mask)
        if self._batched:
            self.last_tile_losses = _tile_losses_from_aerial(
                aerial.data, self.target.data, self.config
            )
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def tile_losses(self, theta_m: np.ndarray) -> np.ndarray:
        """Per-tile loss vector ``(B,)`` via the inference fast path."""
        if not self._batched:
            raise ValueError("tile_losses needs a (B, N, N) target stack")
        images = self.images(theta_m)
        return _tile_loss_vector(images, self.target.data, self.config)

    def images(self, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        with ad.no_grad():
            mask = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(self.engine.aerial_fast(mask), self.config)
        images.update(mask=mask, target=self.target.data)
        return images


class BatchedSMOObjective:
    """Joint SMO loss over a batch of layout tiles sharing one source.

    Evaluating B tiles through one engine call turns the whole layout
    suite into a single fused FFT stack (and a single autodiff graph)
    instead of a Python loop over per-tile objectives — the multi-tile
    extension of the paper's Abbe batching.

    Parameters
    ----------
    targets:
        ``(B, N, N)`` stack of binary target tiles (see
        :func:`repro.layouts.tile_stack`).
    reduction:
        ``"sum"`` (default) or ``"mean"`` over the batch.
    """

    def __init__(
        self,
        config: OpticalConfig,
        targets: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        reduction: str = "sum",
    ):
        targets = np.asarray(targets, dtype=np.float64)
        n = config.mask_size
        if targets.ndim != 3 or targets.shape[-2:] != (n, n):
            raise ValueError(
                f"targets must be (B, {n}, {n}); got shape {targets.shape}"
            )
        if reduction not in ("sum", "mean"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.config = config
        self.reduction = reduction
        self.num_tiles = targets.shape[0]
        self.targets = ad.Tensor(targets)
        self.engine = engine or engine_for(config, "abbe")
        #: Per-tile loss vector of the most recent :meth:`loss` call,
        #: derived from that call's aerial at no extra imaging cost.
        self.last_tile_losses: Optional[np.ndarray] = None

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """Batch SMO loss; ``theta_m`` is a ``(B, N, N)`` parameter stack."""
        if theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles:
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )
        source = source_from_theta(theta_j, self.config)
        masks = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(masks, source)  # (B, N, N), one fused stack
        self.last_tile_losses = _tile_losses_from_aerial(
            aerial.data, self.targets.data, self.config
        )
        total = smo_loss_from_aerial(aerial, self.targets, self.config)
        if self.reduction == "mean":
            total = F.div(total, float(self.num_tiles))
        return total

    def tile_losses(self, theta_j: np.ndarray, theta_m: np.ndarray) -> np.ndarray:
        """Per-tile loss vector ``(B,)`` via the inference fast path."""
        images = self.images(theta_j, theta_m)
        return _tile_loss_vector(images, self.targets.data, self.config)

    def source_only_loss(self, theta_m: np.ndarray):
        """FFT-free source-only loss closure at a fixed ``theta_M`` stack.

        Abbe's aerial is linear in the normalized source weights, so at
        fixed masks the per-source-point intensity basis ``X[b, s]`` is a
        constant; the returned closure rebuilds ``L_smo(theta_J)`` from
        ``X`` with a graph that never touches an FFT.  Exactly equal to
        ``loss(theta_j, theta_m)`` as a function of ``theta_j`` — this is
        the cheap inner-Hessian (HVP) oracle BiSMO uses in joint mode.
        Returns ``None`` when the engine cannot expose the basis
        (e.g. Hopkins, where the source is baked into the TCC).
        """
        if not hasattr(self.engine, "source_intensity_basis") or not hasattr(
            self.engine, "aerial_from_basis"
        ):
            return None
        with ad.no_grad():
            masks = mask_from_theta(ad.Tensor(theta_m), self.config).data
        basis = ad.Tensor(self.engine.source_intensity_basis(masks))

        def loss_j(theta_j: ad.Tensor) -> ad.Tensor:
            source = source_from_theta(theta_j, self.config)
            aerial = self.engine.aerial_from_basis(basis, source)
            total = smo_loss_from_aerial(aerial, self.targets, self.config)
            if self.reduction == "mean":
                total = F.div(total, float(self.num_tiles))
            return total

        return loss_j

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        """Batched intermediate images, all ``(B, N, N)`` (no graph)."""
        with ad.no_grad():
            source = source_from_theta(ad.Tensor(theta_j), self.config).data
            masks = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(
            self.engine.aerial_fast(masks, source), self.config
        )
        images.update(source=source, mask=masks, target=self.targets.data)
        return images


class LoopedSMOObjective:
    """Reference joint SMO loss: a Python loop over per-tile objectives.

    Mathematically identical to :class:`BatchedSMOObjective` (same shared
    ``theta_J``, same summed loss over the ``(B, N, N)`` ``theta_M``
    stack) but each tile builds its own single-tile graph — the
    pre-batching consumer pattern.  Each per-tile graph still rides the
    engine's fused ``incoherent_image`` node, so the loop-vs-batch gap
    it measures isolates graph-count overhead, not op fusion.  It also deliberately omits the
    FFT-free ``source_only_loss`` HVP oracle, exactly as the per-clip
    code it stands in for.  Kept as the equivalence oracle for the
    batched solver tests and the wall-clock baseline of
    ``benchmarks/bench_joint_smo.py``; production code should use the
    fused batched objective.
    """

    def __init__(
        self,
        config: OpticalConfig,
        targets: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        reduction: str = "sum",
    ):
        self._batched = BatchedSMOObjective(config, targets, engine, reduction)
        self.config = config
        self.reduction = reduction
        self.num_tiles = self._batched.num_tiles
        self.targets = self._batched.targets
        self.engine = self._batched.engine
        self._per_tile = [
            AbbeSMOObjective(config, t, engine=self.engine)
            for t in self.targets.data
        ]
        #: Per-tile loss vector of the most recent :meth:`loss` call.
        self.last_tile_losses: Optional[np.ndarray] = None

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """Sum of B independent single-tile graphs (the slow path)."""
        if theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles:
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )
        total: Optional[ad.Tensor] = None
        per_tile = np.empty(self.num_tiles)
        for i, objective in enumerate(self._per_tile):
            li = objective.loss(theta_j, F.getitem(theta_m, i))
            per_tile[i] = float(li.data)
            total = li if total is None else F.add(total, li)
        if total is None:
            raise RuntimeError("LoopedSMOObjective has no tiles to accumulate")
        self.last_tile_losses = per_tile
        if self.reduction == "mean":
            total = F.div(total, float(self.num_tiles))
        return total

    def tile_losses(self, theta_j: np.ndarray, theta_m: np.ndarray) -> np.ndarray:
        return self._batched.tile_losses(theta_j, theta_m)

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        return self._batched.images(theta_j, theta_m)
