"""SMO objectives — Equations (7)-(9) of the paper.

``L_smo := L_so := L_mo = gamma * L2 + eta * L_pvb`` where

* ``L2``   = || Z - Z_t ||^2 at nominal dose (Eq. (7)),
* ``L_pvb`` = || Z_max - Z_t ||^2 + || Z_min - Z_t ||^2 at the +/-2 %
  dose corners (Eq. (8)).

Dose handling: the paper substitutes ``M_min = d_min * sigma(alpha_m
theta_M)`` into the forward model.  Because Abbe/Hopkins intensity is a
quadratic form in the mask transmission, scaling the mask by ``d``
scales the whole aerial image by ``d^2`` *exactly*; we therefore image
once and evaluate the three dose corners as ``sigmoid(beta * (d^2 * I -
I_tr))``, which is algebraically identical to three forward passes but
3x cheaper.

All objectives consume any :class:`repro.optics.ImagingEngine`; default
engines come from the shared optics cache, and every inference-only
entry point (``images()``) rides the engines' graph-free fast path.
:class:`BatchedSMOObjective` evaluates a whole ``(B, N, N)`` layout
batch as one loss through the engines' fused multi-tile forward.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..optics import ImagingEngine, OpticalConfig, SourceGrid, engine_for
from ..optics.abbe import AbbeImaging
from .parametrization import mask_from_theta, source_from_theta

__all__ = [
    "dose_resist",
    "smo_loss_from_aerial",
    "AbbeSMOObjective",
    "HopkinsMOObjective",
    "BatchedSMOObjective",
]


def dose_resist(aerial: ad.Tensor, config: OpticalConfig, dose: float) -> ad.Tensor:
    """Resist image at a given dose: sigmoid(beta * (dose^2 * I - I_tr))."""
    scaled = F.mul(aerial, dose * dose) if dose != 1.0 else aerial
    return F.sigmoid(F.mul(F.sub(scaled, config.intensity_threshold), config.beta))


def smo_loss_from_aerial(
    aerial: ad.Tensor, target: ad.Tensor, config: OpticalConfig
) -> ad.Tensor:
    """gamma * L2 + eta * L_pvb evaluated from one aerial image.

    Shapes broadcast: a ``(B, N, N)`` aerial/target pair yields the summed
    loss over the whole batch (one scalar, one graph).
    """
    z_nom = dose_resist(aerial, config, 1.0)
    z_min = dose_resist(aerial, config, config.dose_min)
    z_max = dose_resist(aerial, config, config.dose_max)
    l2 = F.sum(F.power(F.sub(z_nom, target), 2.0))
    pvb = F.add(
        F.sum(F.power(F.sub(z_max, target), 2.0)),
        F.sum(F.power(F.sub(z_min, target), 2.0)),
    )
    return F.add(F.mul(l2, config.gamma), F.mul(pvb, config.eta))


def _resist_images_fast(
    aerial_np: np.ndarray, config: OpticalConfig
) -> Dict[str, np.ndarray]:
    """Dose-corner resist images from a numpy aerial (no graph)."""
    with ad.no_grad():
        aerial = ad.Tensor(aerial_np)
        return {
            "aerial": aerial_np,
            "resist": dose_resist(aerial, config, 1.0).data,
            "resist_min": dose_resist(aerial, config, config.dose_min).data,
            "resist_max": dose_resist(aerial, config, config.dose_max).data,
        }


class AbbeSMOObjective:
    """The unified Abbe-based SMO loss ``L_smo(theta_J, theta_M)``.

    This single callable backs SO, MO and all BiSMO levels (the paper
    uses the same objective at both levels, Eq. (9)); which parameter a
    solver differentiates decides the role.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        source_grid: Optional[SourceGrid] = None,
    ):
        self.config = config
        if target.shape != (config.mask_size, config.mask_size):
            raise ValueError(
                f"target shape {target.shape} != mask grid "
                f"({config.mask_size}, {config.mask_size})"
            )
        self.target = ad.Tensor(np.asarray(target, dtype=np.float64))
        if engine is not None:
            self.engine = engine
        elif source_grid is not None:
            self.engine = AbbeImaging(config, source_grid)
        else:
            self.engine = engine_for(config, "abbe")

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """L_smo as an autodiff scalar (differentiable in both thetas)."""
        source = source_from_theta(theta_j, self.config)
        mask = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(mask, source)
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        """All intermediate images at the current parameters.

        Inference-only: the aerial image comes from the engine's
        graph-free fast path.
        """
        with ad.no_grad():
            source = source_from_theta(ad.Tensor(theta_j), self.config).data
            mask = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(
            self.engine.aerial_fast(mask, source), self.config
        )
        images.update(source=source, mask=mask, target=self.target.data)
        return images


class HopkinsMOObjective:
    """Hopkins/SOCS mask-only objective (for MO baselines & hybrid AM-SMO).

    The source is frozen into the TCC at construction;
    :meth:`rebuild_source` re-assembles the TCC after an SO phase — the
    expensive, non-differentiable step that motivates the paper's
    Abbe-only framework.  Engines resolve through the shared optics
    cache, so a repeated (config, source, Q) triple decomposes once.
    """

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        source: np.ndarray,
        num_kernels: Optional[int] = None,
        source_grid: Optional[SourceGrid] = None,
        engine: Optional[ImagingEngine] = None,
    ):
        self.config = config
        self.target = ad.Tensor(np.asarray(target, dtype=np.float64))
        self._source_grid = source_grid
        self._num_kernels = num_kernels
        self.engine = engine or self._build_engine(source)

    def _build_engine(self, source: np.ndarray) -> ImagingEngine:
        if self._source_grid is not None:
            from ..optics.hopkins import HopkinsImaging

            return HopkinsImaging(
                self.config, source, self._num_kernels, self._source_grid
            )
        return engine_for(
            self.config, "hopkins", source=source, num_kernels=self._num_kernels
        )

    def rebuild_source(self, source: np.ndarray) -> None:
        """Re-derive TCC + SOCS kernels for a new source (slow path)."""
        self.engine = self._build_engine(source)

    def loss(self, theta_m: ad.Tensor) -> ad.Tensor:
        mask = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(mask)
        return smo_loss_from_aerial(aerial, self.target, self.config)

    def images(self, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        with ad.no_grad():
            mask = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(self.engine.aerial_fast(mask), self.config)
        images.update(mask=mask, target=self.target.data)
        return images


class BatchedSMOObjective:
    """Joint SMO loss over a batch of layout tiles sharing one source.

    Evaluating B tiles through one engine call turns the whole layout
    suite into a single fused FFT stack (and a single autodiff graph)
    instead of a Python loop over per-tile objectives — the multi-tile
    extension of the paper's Abbe batching.

    Parameters
    ----------
    targets:
        ``(B, N, N)`` stack of binary target tiles (see
        :func:`repro.layouts.tile_stack`).
    reduction:
        ``"sum"`` (default) or ``"mean"`` over the batch.
    """

    def __init__(
        self,
        config: OpticalConfig,
        targets: np.ndarray,
        engine: Optional[ImagingEngine] = None,
        reduction: str = "sum",
    ):
        targets = np.asarray(targets, dtype=np.float64)
        n = config.mask_size
        if targets.ndim != 3 or targets.shape[-2:] != (n, n):
            raise ValueError(
                f"targets must be (B, {n}, {n}); got shape {targets.shape}"
            )
        if reduction not in ("sum", "mean"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.config = config
        self.reduction = reduction
        self.num_tiles = targets.shape[0]
        self.targets = ad.Tensor(targets)
        self.engine = engine or engine_for(config, "abbe")

    def loss(self, theta_j: ad.Tensor, theta_m: ad.Tensor) -> ad.Tensor:
        """Batch SMO loss; ``theta_m`` is a ``(B, N, N)`` parameter stack."""
        if theta_m.ndim != 3 or theta_m.shape[0] != self.num_tiles:
            raise ValueError(
                f"theta_m must be ({self.num_tiles}, N, N); got {theta_m.shape}"
            )
        source = source_from_theta(theta_j, self.config)
        masks = mask_from_theta(theta_m, self.config)
        aerial = self.engine.aerial(masks, source)  # (B, N, N), one fused stack
        total = smo_loss_from_aerial(aerial, self.targets, self.config)
        if self.reduction == "mean":
            total = F.div(total, float(self.num_tiles))
        return total

    def tile_losses(self, theta_j: np.ndarray, theta_m: np.ndarray) -> np.ndarray:
        """Per-tile loss vector ``(B,)`` via the inference fast path."""
        images = self.images(theta_j, theta_m)
        t = self.targets.data
        axes = (1, 2)
        l2 = ((images["resist"] - t) ** 2).sum(axis=axes)
        pvb = ((images["resist_max"] - t) ** 2).sum(axis=axes) + (
            (images["resist_min"] - t) ** 2
        ).sum(axis=axes)
        return self.config.gamma * l2 + self.config.eta * pvb

    def images(self, theta_j: np.ndarray, theta_m: np.ndarray) -> Dict[str, np.ndarray]:
        """Batched intermediate images, all ``(B, N, N)`` (no graph)."""
        with ad.no_grad():
            source = source_from_theta(ad.Tensor(theta_j), self.config).data
            masks = mask_from_theta(ad.Tensor(theta_m), self.config).data
        images = _resist_images_fast(
            self.engine.aerial_fast(masks, source), self.config
        )
        images.update(source=source, mask=masks, target=self.targets.data)
        return images
