"""Source/mask parametrization — Table 1 of the paper.

Both the grayscale source ``J`` and the relaxed-binary mask ``M`` are
produced from unconstrained real parameters through a steep sigmoid:

    M = sigmoid(alpha_m * theta_M)      theta_M init: +m0 inside target
    J = sigmoid(alpha_j * theta_J)      theta_J init: +j0 inside template

The cosine activation mentioned (and rejected for stability) by
Section 3.1 is also provided for the activation ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from ..optics import OpticalConfig

__all__ = [
    "mask_from_theta",
    "source_from_theta",
    "init_theta_mask",
    "init_theta_source",
    "cosine_activation",
    "mask_from_theta_cosine",
]


def mask_from_theta(theta_m: ad.Tensor, config: OpticalConfig) -> ad.Tensor:
    """Mask transmission M = sigmoid(alpha_m * theta_M) in (0, 1)."""
    return F.sigmoid(F.mul(theta_m, config.alpha_m))


def source_from_theta(theta_j: ad.Tensor, config: OpticalConfig) -> ad.Tensor:
    """Grayscale source J = sigmoid(alpha_j * theta_J) in (0, 1)."""
    return F.sigmoid(F.mul(theta_j, config.alpha_j))


def init_theta_mask(target: np.ndarray, config: OpticalConfig) -> np.ndarray:
    """theta_M init: +m0 where the target is 1, else -m0 (Table 1).

    The initial mask therefore *is* the (soft-binarized) target pattern,
    which, as the paper notes, lets SRAFs emerge during MO.
    """
    target = np.asarray(target, dtype=np.float64)
    return np.where(target >= 0.5, config.m0, -config.m0)


def init_theta_source(template: np.ndarray, config: OpticalConfig) -> np.ndarray:
    """theta_J init: +j0 where the template illuminates, else -j0 (Table 1).

    With alpha_j = 2 and j0 = 5, sigmoid(alpha_j * j0) ~= 0.99995: lit
    points start essentially at full intensity but remain trainable.
    """
    template = np.asarray(template, dtype=np.float64)
    return np.where(template >= 0.5, config.j0, -config.j0)


def cosine_activation(theta: ad.Tensor, alpha: float) -> ad.Tensor:
    """Cosine activation ``(1 - cos(alpha * theta)) / 2``.

    Section 3.1 flags this alternative as unstable (its gradient
    vanishes periodically and changes sign); kept for the activation
    ablation benchmark.
    """
    return F.mul(F.sub(1.0, F.cos(F.mul(theta, alpha))), 0.5)


def mask_from_theta_cosine(theta_m: ad.Tensor, config: OpticalConfig) -> ad.Tensor:
    """Cosine-activated mask (ablation variant of :func:`mask_from_theta`)."""
    return cosine_activation(theta_m, config.alpha_m)
