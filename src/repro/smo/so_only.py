"""Source-only optimization (SO) with the mask held fixed.

SO is only possible with Abbe's model (the paper's core observation:
Hopkins bakes the source into the TCC).  Used standalone and as the
inner phase of AM-SMO.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import autodiff as ad
from ..obs import observe_iteration
from ..obs import span as obs_span
from ..opt import make_optimizer
from ..utils.timing import tick
from ..optics import OpticalConfig
from .objective import AbbeSMOObjective, BatchedSMOObjective
from .parametrization import init_theta_source
from .state import IterationRecord, SMOResult

__all__ = ["SourceOptimizer"]


class SourceOptimizer:
    """Gradient-based SO: minimize L_so over theta_J with theta_M fixed.

    A ``(B, N, N)`` target stack optimizes one shared source against a
    fixed ``theta_M`` batch (the joint SO that motivates multi-clip SMO);
    records then carry per-tile losses.
    """

    method_name = "SO"

    def __init__(
        self,
        config: OpticalConfig,
        target: np.ndarray,
        lr: float = 0.1,
        optimizer: str = "sgd",
        objective: Optional[AbbeSMOObjective] = None,
    ):
        self.config = config
        target = np.asarray(target, dtype=np.float64)
        if objective is not None:
            self.objective = objective
        elif target.ndim == 3:
            self.objective = BatchedSMOObjective(config, target)
        else:
            self.objective = AbbeSMOObjective(config, target)
        self._opt = make_optimizer(optimizer, lr)

    def run(
        self,
        theta_m: np.ndarray,
        theta_j0: np.ndarray,
        iterations: int = 30,
        callback: Optional[Callable[[IterationRecord], Optional[bool]]] = None,
    ) -> SMOResult:
        theta_j = np.array(theta_j0, dtype=np.float64, copy=True)
        tm_fixed = ad.Tensor(theta_m)
        self._opt.reset()
        history = []
        start = tick()
        for it in range(iterations):
            t0 = tick()
            with obs_span(
                "solver.iter", solver=self.method_name, iteration=it
            ):
                tj = ad.Tensor(theta_j, requires_grad=True)
                loss = self.objective.loss(tj, tm_fixed)
                (gj,) = ad.grad(loss, [tj])
                tiles = getattr(self.objective, "last_tile_losses", None)
                theta_j = self._opt.step(theta_j, gj.data)
            rec = IterationRecord(
                it,
                float(loss.data),
                tick() - t0,
                "so",
                tile_losses=tiles,
            )
            observe_iteration(rec, grad=gj)
            history.append(rec)
            if callback and callback(rec):
                break
        return SMOResult(
            method=self.method_name,
            theta_m=np.array(theta_m, copy=True),
            theta_j=theta_j,
            history=history,
            runtime_seconds=tick() - start,
        )
