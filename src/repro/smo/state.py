"""Result containers shared by every SMO/MO/SO solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["IterationRecord", "SMOResult"]


@dataclass
class IterationRecord:
    """One outer-iteration snapshot: loss value and elapsed seconds."""

    iteration: int
    loss: float
    seconds: float
    phase: str = ""  # "so" / "mo" / "bilevel" — used by convergence plots


@dataclass
class SMOResult:
    """Final parameters + convergence trace of one optimization run."""

    method: str
    theta_m: np.ndarray
    theta_j: Optional[np.ndarray]
    history: List[IterationRecord] = field(default_factory=list)
    runtime_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.history], dtype=np.float64)

    @property
    def final_loss(self) -> float:
        if not self.history:
            raise ValueError("empty history")
        return self.history[-1].loss

    @property
    def best_loss(self) -> float:
        return float(self.losses.min())

    def log_losses(self) -> np.ndarray:
        """log10 of the loss trace — the quantity plotted in Figure 3."""
        return np.log10(np.maximum(self.losses, 1e-30))
