"""Result containers shared by every SMO/MO/SO solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["IterationRecord", "SMOResult"]


@dataclass
class IterationRecord:
    """One outer-iteration snapshot: loss value and elapsed seconds."""

    iteration: int
    loss: float
    seconds: float
    phase: str = ""  # "so" / "mo" / "bilevel" — used by convergence plots
    #: Per-tile loss vector ``(B,)`` for joint multi-clip runs; ``None``
    #: for single-tile solves.  Sums (up to the objective's reduction) to
    #: ``loss``.
    tile_losses: Optional[np.ndarray] = None
    #: Adaptive process-corner weights ``(C,)`` after this iteration's
    #: minimax ascent step (``robust="adaptive"`` runs only); ``None``
    #: otherwise.  The trajectory shows which corners dominated the
    #: worst-case objective over the run.
    corner_weights: Optional[np.ndarray] = None


@dataclass
class SMOResult:
    """Final parameters + convergence trace of one optimization run."""

    method: str
    theta_m: np.ndarray
    theta_j: Optional[np.ndarray]
    history: List[IterationRecord] = field(default_factory=list)
    runtime_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.history], dtype=np.float64)

    @property
    def final_loss(self) -> float:
        if not self.history:
            raise ValueError("empty history")
        return self.history[-1].loss

    @property
    def best_loss(self) -> float:
        return float(self.losses.min())

    @property
    def num_tiles(self) -> int:
        """Batch size of a joint multi-clip run (1 for single-tile runs)."""
        return int(self.theta_m.shape[0]) if self.theta_m.ndim == 3 else 1

    def tile_loss_matrix(self) -> np.ndarray:
        """Per-tile loss traces as a ``(T, B)`` array (joint runs only)."""
        if not self.history or any(r.tile_losses is None for r in self.history):
            raise ValueError("history carries no per-tile losses")
        return np.stack([r.tile_losses for r in self.history])

    @property
    def final_tile_losses(self) -> np.ndarray:
        """Last recorded per-tile loss vector ``(B,)`` (joint runs only)."""
        if not self.history or self.history[-1].tile_losses is None:
            raise ValueError("history carries no per-tile losses")
        return self.history[-1].tile_losses

    def corner_weight_matrix(self) -> np.ndarray:
        """Adaptive corner-weight traces as a ``(T, C)`` array.

        Only available for ``robust="adaptive"`` runs, whose records
        carry the per-iteration minimax weights.
        """
        if not self.history or any(
            r.corner_weights is None for r in self.history
        ):
            raise ValueError("history carries no adaptive corner weights")
        return np.stack([r.corner_weights for r in self.history])

    @property
    def final_corner_weights(self) -> np.ndarray:
        """Last recorded adaptive corner weights ``(C,)``."""
        if not self.history or self.history[-1].corner_weights is None:
            raise ValueError("history carries no adaptive corner weights")
        return self.history[-1].corner_weights

    def log_losses(self) -> np.ndarray:
        """log10 of the loss trace — the quantity plotted in Figure 3."""
        return np.log10(np.maximum(self.losses, 1e-30))
