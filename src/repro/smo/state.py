"""Result containers shared by every SMO/MO/SO solver.

Both containers serialize to plain-``json`` dictionaries
(:meth:`SMOResult.to_json` / :meth:`SMOResult.from_json`) for the
harness checkpoint journal.  Python's ``json`` writes doubles via
``repr``, which round-trips float64 bitwise, so a revived result is
numerically identical to the original — arrays included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["IterationRecord", "SMOResult"]


def _array_to_json(arr: Optional[np.ndarray]) -> Optional[List[Any]]:
    return None if arr is None else np.asarray(arr, dtype=np.float64).tolist()


def _array_from_json(data: Optional[List[Any]]) -> Optional[np.ndarray]:
    return None if data is None else np.asarray(data, dtype=np.float64)


@dataclass
class IterationRecord:
    """One outer-iteration snapshot: loss value and elapsed seconds."""

    iteration: int
    loss: float
    seconds: float
    phase: str = ""  # "so" / "mo" / "bilevel" — used by convergence plots
    #: Per-tile loss vector ``(B,)`` for joint multi-clip runs; ``None``
    #: for single-tile solves.  Sums (up to the objective's reduction) to
    #: ``loss``.
    tile_losses: Optional[np.ndarray] = None
    #: Adaptive process-corner weights ``(C,)`` after this iteration's
    #: minimax ascent step (``robust="adaptive"`` runs only); ``None``
    #: otherwise.  The trajectory shows which corners dominated the
    #: worst-case objective over the run.
    corner_weights: Optional[np.ndarray] = None

    def to_json(self) -> Dict[str, Any]:
        """Plain-``json`` form (float64 round-trips bitwise via repr)."""
        return {
            "iteration": self.iteration,
            "loss": self.loss,
            "seconds": self.seconds,
            "phase": self.phase,
            "tile_losses": _array_to_json(self.tile_losses),
            "corner_weights": _array_to_json(self.corner_weights),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "IterationRecord":
        return cls(
            iteration=int(data["iteration"]),
            loss=float(data["loss"]),
            seconds=float(data["seconds"]),
            phase=str(data.get("phase", "")),
            tile_losses=_array_from_json(data.get("tile_losses")),
            corner_weights=_array_from_json(data.get("corner_weights")),
        )


@dataclass
class SMOResult:
    """Final parameters + convergence trace of one optimization run."""

    method: str
    theta_m: np.ndarray
    theta_j: Optional[np.ndarray]
    history: List[IterationRecord] = field(default_factory=list)
    runtime_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.history], dtype=np.float64)

    @property
    def final_loss(self) -> float:
        if not self.history:
            raise ValueError("empty history")
        return self.history[-1].loss

    @property
    def best_loss(self) -> float:
        return float(self.losses.min())

    @property
    def num_tiles(self) -> int:
        """Batch size of a joint multi-clip run (1 for single-tile runs)."""
        return int(self.theta_m.shape[0]) if self.theta_m.ndim == 3 else 1

    def tile_loss_matrix(self) -> np.ndarray:
        """Per-tile loss traces as a ``(T, B)`` array (joint runs only)."""
        if not self.history or any(r.tile_losses is None for r in self.history):
            raise ValueError("history carries no per-tile losses")
        return np.stack([r.tile_losses for r in self.history])

    @property
    def final_tile_losses(self) -> np.ndarray:
        """Last recorded per-tile loss vector ``(B,)`` (joint runs only)."""
        if not self.history or self.history[-1].tile_losses is None:
            raise ValueError("history carries no per-tile losses")
        return self.history[-1].tile_losses

    def corner_weight_matrix(self) -> np.ndarray:
        """Adaptive corner-weight traces as a ``(T, C)`` array.

        Only available for ``robust="adaptive"`` runs, whose records
        carry the per-iteration minimax weights.
        """
        if not self.history or any(
            r.corner_weights is None for r in self.history
        ):
            raise ValueError("history carries no adaptive corner weights")
        return np.stack([r.corner_weights for r in self.history])

    @property
    def final_corner_weights(self) -> np.ndarray:
        """Last recorded adaptive corner weights ``(C,)``."""
        if not self.history or self.history[-1].corner_weights is None:
            raise ValueError("history carries no adaptive corner weights")
        return self.history[-1].corner_weights

    def log_losses(self) -> np.ndarray:
        """log10 of the loss trace — the quantity plotted in Figure 3."""
        return np.log10(np.maximum(self.losses, 1e-30))

    def to_json(self) -> Dict[str, Any]:
        """Plain-``json`` form: parameters, trace and extras, exactly."""
        return {
            "method": self.method,
            "theta_m": _array_to_json(self.theta_m),
            "theta_m_shape": list(self.theta_m.shape),
            "theta_j": _array_to_json(self.theta_j),
            "history": [r.to_json() for r in self.history],
            "runtime_seconds": self.runtime_seconds,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SMOResult":
        theta_m = np.asarray(data["theta_m"], dtype=np.float64)
        theta_m = theta_m.reshape(tuple(data["theta_m_shape"]))
        theta_j = _array_from_json(data.get("theta_j"))
        return cls(
            method=str(data["method"]),
            theta_m=theta_m,
            theta_j=theta_j,
            history=[IterationRecord.from_json(r) for r in data.get("history", [])],
            runtime_seconds=float(data.get("runtime_seconds", 0.0)),
            extra={k: float(v) for k, v in data.get("extra", {}).items()},
        )
