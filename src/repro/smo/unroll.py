"""BiSMO-UNROLL: reverse-mode differentiation through the inner loop.

Section 3.2.1 notes that unrolling many inner SO steps and
differentiating through the optimization path "results in a linear
increase in memory and computational load" — this module implements
exactly that reference strategy (reverse-mode / RMD hypergradients, as
in early DARTS-second-order and MAML) so the IFT-based methods can be
compared against it.  The T inner SGD updates are built *inside* the
autodiff graph; the outer gradient then flows through every unrolled
step.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import functional as F
from .objective import AbbeSMOObjective

__all__ = ["unrolled_hypergradient"]


def unrolled_hypergradient(
    objective: AbbeSMOObjective,
    theta_j: np.ndarray,
    theta_m: np.ndarray,
    steps: int,
    inner_lr: float,
    inner_optimizer: str = "sgd",
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Differentiate L_mo through ``steps`` unrolled inner SGD updates.

    Returns ``(hypergradient_wrt_theta_m, new_theta_j, loss_value)``.
    Memory grows linearly with ``steps`` (every intermediate imaging
    stack is retained), which is the cost the paper's IFT methods avoid.

    Only plain SGD inner updates can be unrolled here (a stateful inner
    optimizer would need its state built into the graph), so any other
    ``inner_optimizer`` is rejected instead of being silently replaced
    by SGD.
    """
    if steps < 1:
        raise ValueError("unrolled differentiation needs at least one inner step")
    if inner_optimizer.lower() != "sgd":
        raise ValueError(
            "unrolled_hypergradient supports inner_optimizer='sgd' only; "
            f"got {inner_optimizer!r}"
        )
    tm = ad.Tensor(theta_m, requires_grad=True)
    cur = ad.Tensor(theta_j, requires_grad=True)
    for _ in range(steps):
        loss_so = objective.loss(cur, tm)
        (gj,) = ad.grad(loss_so, [cur], create_graph=True)
        cur = F.sub(cur, F.mul(gj, inner_lr))
    loss_mo = objective.loss(cur, tm)
    (gm,) = ad.grad(loss_mo, [tm])
    return gm.data, cur.data.copy(), float(loss_mo.data)
