"""Small shared utilities: timing, seeding, logging."""

from .timing import Timer, timed
from .seed import seeded_rng

__all__ = ["Timer", "timed", "seeded_rng"]
