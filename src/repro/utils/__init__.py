"""Small shared utilities: timing, seeding, fault injection, logging."""

from .timing import Timer, timed
from .seed import seeded_rng
from .faultinject import fault_point, install_plan, clear_plan

__all__ = ["Timer", "timed", "seeded_rng", "fault_point", "install_plan", "clear_plan"]
