"""Deterministic fault injection at named points in the codebase.

The resilience layer of the harness (:mod:`repro.harness.resilience`)
is only trustworthy if its failure paths are *exercised*: worker death,
out-of-memory, stuck cells.  Real faults are nondeterministic, so this
module provides the opposite — a **plan** of faults that fire at exact,
reproducible moments.  Library code marks interesting locations with
:func:`fault_point`; with no plan installed the call is a dictionary
lookup and a ``None`` check (safe on hot-ish paths), and with a plan it
consults the spec list for that point.

Plans come from the ``REPRO_FAULT_PLAN`` environment variable (so they
propagate into harness worker processes automatically) or from
:func:`install_plan` in tests.  Grammar — entries separated by ``;``,
fields of one entry separated by ``|``::

    point@N=action[:arg][|fuse=PATH]
    point?P=action[:arg][|seed=K][|fuse=PATH]

* ``point`` — a registered name like ``harness.run_cell``.
* ``@N`` — fire on exactly the N-th visit (1-based) of this point *in
  this process*; ``@N+`` fires on the N-th and every later visit.
* ``?P`` — seeded probabilistic mode: fire each visit with probability
  ``P``, drawn from :func:`repro.utils.seed.seeded_rng` keyed on
  ``(seed, point)`` so a given plan replays the identical fault
  sequence every run.
* ``action`` — ``kill`` (``os._exit(KILL_EXIT_CODE)``, simulating a
  segfault/OOM-killed worker), ``raise:ExcName`` (raise one of
  ``MemoryError``/``RuntimeError``/``ValueError``/``OSError``/
  ``TimeoutError``), or ``delay:SECONDS`` (sleep, for timeout tests).
* ``fuse=PATH`` — single-shot across a whole *process tree*: the first
  process to trigger atomically creates ``PATH`` and fires; once the
  file exists the entry never fires again anywhere.  Without a fuse,
  hit counters are per-process, so a replacement worker replays the
  plan from scratch.

Example: kill the worker running the second harness cell, once::

    REPRO_FAULT_PLAN="harness.run_cell@2=kill|fuse=/tmp/f1"

Registered fault points (kept in sync with :func:`fault_point`
call sites): ``harness.worker_warmup``, ``harness.run_cell``,
``cache.warmup``, ``fftlib.stream_chunk``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .seed import seeded_rng

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultError",
    "KILL_EXIT_CODE",
    "KNOWN_POINTS",
    "parse_plan",
    "install_plan",
    "active_plan",
    "clear_plan",
    "reload_from_env",
    "fault_point",
]

#: Exit status of a ``kill`` action — distinctive so tests can assert a
#: planned death rather than a genuine crash.
KILL_EXIT_CODE = 43

#: Fault points the library currently visits (documentation + the
#: parser rejects typos against this registry).
KNOWN_POINTS: Tuple[str, ...] = (
    "harness.worker_warmup",
    "harness.run_cell",
    "cache.warmup",
    "fftlib.stream_chunk",
)

_RAISABLE: Dict[str, type] = {
    "MemoryError": MemoryError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "OSError": OSError,
    "TimeoutError": TimeoutError,
}

_ACTIONS = ("kill", "raise", "delay")


class FaultError(ValueError):
    """A malformed ``REPRO_FAULT_PLAN`` spec."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed plan entry."""

    point: str
    action: str  # "kill" | "raise" | "delay"
    arg: str = ""  # exception name or sleep seconds
    hit: int = 1  # 1-based visit number (hit-count mode)
    persistent: bool = False  # "@N+": fire from the N-th visit onward
    probability: Optional[float] = None  # "?P": seeded probabilistic mode
    seed: int = 0
    fuse: str = ""  # single-shot marker file across a process tree

    def fires_on(self, visit: int, rng_draw: Optional[float]) -> bool:
        """Whether this spec fires on the given 1-based visit."""
        if self.probability is not None:
            return rng_draw is not None and rng_draw < self.probability
        if self.persistent:
            return visit >= self.hit
        return visit == self.hit


def _parse_entry(entry: str) -> FaultSpec:
    fields = [f.strip() for f in entry.split("|")]
    head = fields[0]
    fuse = ""
    seed = 0
    for extra in fields[1:]:
        key, sep, value = extra.partition("=")
        if not sep:
            raise FaultError(f"malformed plan field {extra!r} in {entry!r}")
        if key == "fuse":
            fuse = value
        elif key == "seed":
            seed = int(value)
        else:
            raise FaultError(f"unknown plan field {key!r} in {entry!r}")
    trigger, sep, action_text = head.partition("=")
    if not sep:
        raise FaultError(f"missing '=action' in plan entry {entry!r}")
    probability: Optional[float] = None
    hit, persistent = 1, False
    if "?" in trigger:
        point, _, prob_text = trigger.partition("?")
        try:
            probability = float(prob_text)
        except ValueError as exc:
            raise FaultError(f"bad probability in {entry!r}") from exc
        if not 0.0 <= probability <= 1.0:
            raise FaultError(f"probability out of [0, 1] in {entry!r}")
    elif "@" in trigger:
        point, _, hit_text = trigger.partition("@")
        persistent = hit_text.endswith("+")
        try:
            hit = int(hit_text.rstrip("+"))
        except ValueError as exc:
            raise FaultError(f"bad hit count in {entry!r}") from exc
        if hit < 1:
            raise FaultError(f"hit count must be >= 1 in {entry!r}")
    else:
        point = trigger
    point = point.strip()
    if point not in KNOWN_POINTS:
        raise FaultError(
            f"unknown fault point {point!r}; known points: {KNOWN_POINTS}"
        )
    action, _, arg = action_text.partition(":")
    action = action.strip()
    if action not in _ACTIONS:
        raise FaultError(
            f"unknown action {action!r} in {entry!r}; choose from {_ACTIONS}"
        )
    if action == "raise":
        if arg not in _RAISABLE:
            raise FaultError(
                f"unknown exception {arg!r} in {entry!r}; "
                f"choose from {sorted(_RAISABLE)}"
            )
    elif action == "delay":
        try:
            float(arg)
        except ValueError as exc:
            raise FaultError(f"bad delay seconds in {entry!r}") from exc
    elif arg:
        raise FaultError(f"action 'kill' takes no argument (got {entry!r})")
    return FaultSpec(
        point=point,
        action=action,
        arg=arg,
        hit=hit,
        persistent=persistent,
        probability=probability,
        seed=seed,
        fuse=fuse,
    )


def parse_plan(text: str) -> "FaultPlan":
    """Parse a ``REPRO_FAULT_PLAN`` string into a :class:`FaultPlan`."""
    specs: List[FaultSpec] = []
    for entry in text.split(";"):
        entry = entry.strip()
        if entry:
            specs.append(_parse_entry(entry))
    return FaultPlan(specs)


class FaultPlan:
    """A parsed plan plus this process's per-point visit counters."""

    def __init__(self, specs: List[FaultSpec]) -> None:
        self.specs = list(specs)
        self._counters: Dict[str, int] = {}
        self._rngs: Dict[str, "object"] = {}
        self._lock = threading.Lock()

    def visits(self, point: str) -> int:
        """How many times this process has visited ``point`` so far."""
        with self._lock:
            return self._counters.get(point, 0)

    def _claim_fuse(self, path: str) -> bool:
        """Atomically claim a single-shot fuse file; False if burnt."""
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return True

    def visit(self, point: str) -> None:
        """Record one visit of ``point`` and fire any matching spec."""
        with self._lock:
            visit = self._counters.get(point, 0) + 1
            self._counters[point] = visit
            draws: Dict[int, float] = {}
            for i, spec in enumerate(self.specs):
                if spec.point == point and spec.probability is not None:
                    key = f"{spec.seed}:{point}"
                    rng = self._rngs.setdefault(
                        key, seeded_rng(spec.seed, point)
                    )
                    draws[i] = float(rng.random())  # type: ignore[attr-defined]
        for i, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if not spec.fires_on(visit, draws.get(i)):
                continue
            if spec.fuse and not self._claim_fuse(spec.fuse):
                continue
            self._fire(spec)

    def _fire(self, spec: FaultSpec) -> None:
        if spec.action == "kill":
            os._exit(KILL_EXIT_CODE)
        if spec.action == "raise":
            raise _RAISABLE[spec.arg](
                f"injected {spec.arg} at {spec.point!r} (REPRO_FAULT_PLAN)"
            )
        # "delay": parser validated the float
        time.sleep(float(spec.arg))


#: Module-level plan state.  ``_UNSET`` marks "env not parsed yet" so the
#: first :func:`fault_point` call lazily reads ``REPRO_FAULT_PLAN`` —
#: harness worker processes therefore pick the plan up on their first
#: visited point with zero configuration.
_UNSET = object()
_PLAN: object = _UNSET
_PLAN_LOCK = threading.Lock()


def reload_from_env() -> Optional[FaultPlan]:
    """(Re)parse ``REPRO_FAULT_PLAN`` from the environment."""
    global _PLAN
    text = os.environ.get("REPRO_FAULT_PLAN", "").strip()
    with _PLAN_LOCK:
        _PLAN = parse_plan(text) if text else None
        return _PLAN  # type: ignore[return-value]


def install_plan(text: Optional[str]) -> Optional[FaultPlan]:
    """Install a plan programmatically (``None`` disables injection)."""
    global _PLAN
    with _PLAN_LOCK:
        _PLAN = parse_plan(text) if text else None
        return _PLAN  # type: ignore[return-value]


def clear_plan() -> None:
    """Disable fault injection and forget the cached env parse."""
    global _PLAN
    with _PLAN_LOCK:
        _PLAN = None


def active_plan() -> Optional[FaultPlan]:
    """The live plan, lazily parsed from the environment once."""
    global _PLAN
    if _PLAN is _UNSET:
        return reload_from_env()
    return _PLAN  # type: ignore[return-value]


def fault_point(name: str) -> None:
    """Mark a named fault point; fires the active plan's matching specs.

    No-plan calls cost one attribute read and an identity check.  Tests
    install a plan (env or :func:`install_plan`) to kill the process,
    raise, or sleep here on a chosen visit.
    """
    plan = _PLAN
    if plan is _UNSET:
        plan = active_plan()
    if plan is None:
        return
    plan.visit(name)  # type: ignore[union-attr]
