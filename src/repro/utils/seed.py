"""Deterministic RNG construction so every experiment is reproducible."""

from __future__ import annotations

import numpy as np

__all__ = ["seeded_rng"]


def seeded_rng(*keys: int | str) -> np.random.Generator:
    """Build a generator from a sequence of integer/string keys.

    Strings are hashed stably (not with Python's randomized ``hash``).
    """
    ints = []
    for key in keys:
        if isinstance(key, str):
            acc = 2166136261
            for ch in key.encode():
                acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
            ints.append(acc)
        else:
            ints.append(int(key) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(ints))
