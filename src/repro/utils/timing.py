"""Wall-clock timing helpers used by the runtime benchmarks (Table 4 TAT)."""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator, Optional, TypeVar

__all__ = ["Timer", "timed", "tick"]

T = TypeVar("T")


class Timer:
    """Accumulating wall-clock timer.

    Use as a context manager (accumulates across entries)::

        t = Timer()
        with t:
            run_once()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.count: int = 0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:
            raise RuntimeError("Timer.__exit__ without a matching __enter__")
        self.elapsed += time.perf_counter() - self._start
        self.count += 1
        self._start = None

    @property
    def mean(self) -> float:
        return self.elapsed / self.count if self.count else 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._start = None


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once, returning (result, seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def tick() -> float:
    """The project's wall-clock read (monotonic, for runtime metrics).

    Library code (solvers recording ``runtime_seconds``, time-to-target
    stopping) must take timestamps through here rather than calling
    ``time.*`` directly — the R5 determinism rule enforces it, keeping
    every wall-clock dependency behind one seam.
    """
    return time.perf_counter()
