"""R10 fixture (violations): obs names that bypass the registry.

Linted as module ``repro.smo.obs_fixture``: an undeclared span name, an
undeclared metric name, a kind mismatch (a declared gauge incremented
as a counter), a non-literal span name the linter cannot check, and the
same violations reached through relative imports all flag.
"""

from repro import obs
from repro.obs import span as obs_span
from ..obs import counter as rel_counter

__all__ = ["work"]


def work(label):
    with obs_span("solver.bogus_phase"):  # undeclared span
        obs.counter("made.up_total").inc()  # undeclared metric
        obs.counter("solver.loss").inc()  # declared as a gauge
        rel_counter("imaging.bogus_chunks").inc()  # undeclared via relative import
    with obs.span(label):  # non-literal name: statically uncheckable
        return None
