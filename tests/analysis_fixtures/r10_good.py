"""R10 fixture (clean): declared obs names, absolute and relative.

Linted as module ``repro.smo.obs_fixture``: every span and metric name
is a string literal declared in ``repro.obs.registry``, reached through
the package facade, a direct binding, and a relative import — all of
which the rule resolves.
"""

from repro import obs
from repro.obs import span as obs_span
from ..obs import histogram as rel_histogram

__all__ = ["work"]


def work():
    with obs_span("solver.iter", idx=0):
        obs.counter("imaging.chunks").inc()
        obs.gauge("solver.loss").set(0.5)
        rel_histogram("solver.iter_seconds").observe(0.01)
    with obs.span("engine.conditions"):
        return None
