"""R1 fixture (violations): raw FFT imports outside the fftlib seam.

Linted as module ``repro.optics.sim_fixture``; expects R1 findings for
the direct import, the from-import, and the attribute-chain call.
"""

import numpy as np
import numpy.fft
from scipy import fft as sfft

__all__ = ["spectrum"]


def spectrum(field):
    a = numpy.fft.fft2(field)
    b = np.fft.ifft2(a)
    return sfft.fft2(b)
