"""R1 fixture (clean): all transforms go through the fftlib seam.

Linted as module ``repro.optics.sim_fixture``.
"""

from repro.optics import fftlib

__all__ = ["spectrum"]


def spectrum(field):
    return fftlib.fft2(field)
