"""R2 fixture (violations): governed env vars read the wrong way.

Linted as module ``benchmarks.bench_rogue``: an *undeclared* BISMO_ knob
and a declared knob read outside the raw-reader allow-list both flag.
"""

import os

__all__ = ["knobs"]


def knobs():
    secret = os.environ.get("BISMO_NOT_A_REAL_KNOB", "")
    scale = os.getenv("BISMO_BENCH_SCALE", "default")
    return secret, scale
