"""R2 fixture (clean): a declared knob read inside a raw-reader module.

Linted as module ``benchmarks.bench_env`` (one of the two modules the
registry allows to touch ``os.environ`` for governed variables).
"""

import os

__all__ = ["scale"]


def scale():
    return os.environ.get("BISMO_BENCH_SCALE", "default")
