"""R3 fixture (violations): memo mutations outside the module lock.

Linted as module ``repro.optics.cache_fixture``; the subscript write,
the ``pop`` and the ``clear`` all flag.
"""

import threading

__all__ = ["remember", "forget"]

_LOCK = threading.Lock()
_MEMO = {}


def remember(key, value):
    _MEMO[key] = value
    return value


def forget(key):
    _MEMO.pop(key, None)
    _MEMO.clear()
