"""R3 fixture (clean): memo writes stay inside the module lock.

Linted as module ``repro.optics.cache_fixture``.
"""

import threading

__all__ = ["remember"]

_LOCK = threading.Lock()
_MEMO = {}


def remember(key, value):
    with _LOCK:
        _MEMO[key] = value
        _MEMO.setdefault(key, value)
    return value
