"""R4 fixture (violations): in-place mutation of autodiff arguments.

Linted as module ``repro.autodiff.ops_fixture``: the augmented assign,
the element write, the ``out=`` alias and the mutator call all flag —
any of them could corrupt an array saved by a VJP closure.
"""

import numpy as np

__all__ = ["accumulate", "stamp", "alias_out", "wipe"]


def accumulate(x, delta):
    x += delta
    return x


def stamp(buf, idx, value):
    buf[idx] = value
    return buf


def alias_out(a, b, out):
    return np.multiply(a, b, out=out)


def wipe(x):
    x.fill(0.0)
    return x
