"""R4 fixture (clean): autodiff helper copies before mutating.

Linted as module ``repro.autodiff.ops_fixture``.
"""

import numpy as np

__all__ = ["scaled"]


def scaled(x, factor):
    out = np.array(x, dtype=np.float64)
    out *= factor
    return out
