"""R5 fixture (violations): nondeterminism sources in library code.

Linted as module ``repro.smo.rand_fixture``: the unseeded generator, the
legacy global-state sampler, the set-order float accumulation and the
raw wall-clock read all flag.
"""

import time

import numpy as np

__all__ = ["start_vector", "legacy", "wobbly_total", "stamp"]


def start_vector(n):
    rng = np.random.default_rng()
    return rng.standard_normal(n)


def legacy(n):
    return np.random.rand(n)


def wobbly_total(values):
    total = 0.0
    for v in set(values):
        total += v
    return total


def stamp():
    return time.perf_counter()
