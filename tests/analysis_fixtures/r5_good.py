"""R5 fixture (clean): seeded randomness, no wall-clock in library code.

Linted as module ``repro.smo.rand_fixture``.
"""

import numpy as np

from repro.utils.timing import tick

__all__ = ["start_vector", "stamp"]


def start_vector(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)


def stamp():
    return tick()
