"""R6 fixture (violations): ad-hoc pools outside fftlib and the harness.

Linted as module ``repro.smo.pool_fixture``: a solver spinning up its
own executor or thread bypasses the unified worker budget.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["run_all", "spawn"]


def run_all(fn, items):
    with ThreadPoolExecutor(max_workers=8) as pool:
        return list(pool.map(fn, items))


def spawn(fn):
    worker = threading.Thread(target=fn)
    worker.start()
    return worker
