"""R6 fixture (clean): pool construction where the budget says it may live.

Linted as module ``repro.harness.pool_fixture`` (the harness owns the
process axis of the unified worker budget).
"""

from concurrent.futures import ThreadPoolExecutor

__all__ = ["run_all"]


def run_all(fn, items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(fn, items))
