"""R7 fixture (violations): assert statements in library code.

Linted as module ``repro.smo.guard_fixture``; asserts vanish under
``python -O``, so invariants must be raised as real exceptions.
"""

__all__ = ["positive"]


def positive(x):
    assert x > 0, "x must be positive"
    return x
