"""R7 fixture (clean): library code raises real exceptions.

Linted as module ``repro.smo.guard_fixture``.
"""

__all__ = ["positive"]


def positive(x):
    if x <= 0:
        raise ValueError(f"x must be positive; got {x}")
    return x
