"""R8 fixture (violations): ``__all__`` drifted from the module body.

Linted as module ``repro.utils.api_fixture``: a stale export that is
defined nowhere, plus a duplicate entry.
"""

__all__ = ["helper", "removed_long_ago", "helper"]


def helper():
    return 1
