"""R8 fixture (clean): ``__all__`` present and consistent.

Linted as module ``repro.utils.api_fixture``.
"""

__all__ = ["VERSION", "helper"]

VERSION = 1


def helper():
    return VERSION
