"""R9 fixture (violations): out-of-seam allocation and transforms in a
hot-path module.

Linted as module ``repro.autodiff.stream_fixture``; expects R9 findings
for the raw ``np.zeros``/``np.empty`` allocations and the direct
``fftlib.fft2``/``fftlib.ifft2``/``freq_reverse`` calls, which must all
route through :mod:`repro.optics.backend`.
"""

import numpy as np

from repro.optics import fftlib
from repro.optics.fftlib import freq_reverse

__all__ = ["stream"]


def stream(tiles, kernels):
    acc = np.zeros(tiles.shape, np.complex128)
    out = np.empty(tiles.shape, np.float64)
    spectra = fftlib.fft2(tiles)
    fields = fftlib.ifft2(kernels * spectra)
    acc += freq_reverse(fields)
    out[:] = (acc * acc.conj()).real
    return out
