"""R9 fixture (clean): the same streaming pass routed through the
array-backend seam.

Linted as module ``repro.autodiff.stream_fixture``.  Host-side graph
plumbing (``np.zeros_like``) and fftlib policy helpers
(``get_stream_chunk``) stay legal; allocation and transforms go
through the active backend.
"""

import numpy as np

from repro.optics import backend, fftlib

__all__ = ["stream"]


def stream(tiles, kernels):
    bk = backend.active_backend()
    chunk = fftlib.get_stream_chunk()
    acc = bk.zeros(tiles.shape, bk.complex128)
    spectra = bk.fft2(bk.from_host(tiles))
    for lo in range(0, kernels.shape[0], chunk):
        fields = bk.ifft2(bk.from_host(kernels[lo : lo + chunk]) * spectra)
        acc += bk.freq_reverse(fields)
    out = backend.HOST.empty(tiles.shape, np.float64)
    out[:] = bk.to_host(bk.abs2(acc))
    return np.zeros_like(out) + out
