"""Shared fixtures: tiny optical setups sized for unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import GridSpec, Rect, rasterize
from repro.optics import OpticalConfig, SourceGrid, annular


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "thread_stress: concurrency stress tests; CI runs them "
        "serialized (-m thread_stress in a dedicated step) so they "
        "don't fight other tests for the runner's cores",
    )
    config.addinivalue_line(
        "markers",
        "fault_injection: resilience tests that kill worker processes "
        "or break pools on purpose; CI runs them serialized "
        "(-m fault_injection in a dedicated step) so deliberate "
        "process churn can't destabilize unrelated tests",
    )


@pytest.fixture(scope="session")
def tiny_config() -> OpticalConfig:
    """32x32 mask over a 500 nm tile, 7x7 source — fast but physical."""
    return OpticalConfig.preset("tiny")


@pytest.fixture(scope="session")
def tiny_source(tiny_config) -> np.ndarray:
    grid = SourceGrid.from_config(tiny_config)
    return annular(grid, tiny_config.sigma_out, tiny_config.sigma_in)


@pytest.fixture(scope="session")
def tiny_rects() -> list[Rect]:
    """Two features inside the 500 nm tile: a bar and a short stub."""
    return [Rect(150, 100, 350, 180), Rect(150, 260, 220, 420)]


@pytest.fixture(scope="session")
def tiny_target(tiny_config, tiny_rects) -> np.ndarray:
    grid = GridSpec(tiny_config.mask_size, tiny_config.pixel_nm)
    return (rasterize(tiny_rects, grid) >= 0.5).astype(np.float64)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
