"""Engine-level tests for reprolint: waivers, reporters, exit codes.

The per-rule behaviour lives in ``test_analysis_rules.py``; here we test
the machinery those rules ride on — waiver comments (same-line and
next-line), malformed-waiver meta-findings (W0), syntax-error handling
(E0), module-name resolution for the src layout, and the text / JSON
reporters the CLI prints.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_source, run_paths
from repro.analysis.engine import module_name_for
from repro.analysis.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]

ASSERTING = "def positive(x):\n    assert x > 0\n    return x\n"


# ----------------------------------------------------------------------
# waivers
# ----------------------------------------------------------------------
def test_same_line_waiver_moves_finding_to_waived():
    source = (
        "def positive(x):\n"
        "    assert x > 0  # reprolint: allow[R7] exercised by fixture tests\n"
        "    return x\n"
    )
    report = lint_source(source, module_name="repro.smo.guard", select=["R7"])
    assert report.findings == []
    assert len(report.waived) == 1
    assert report.waived[0].waiver_reason == "exercised by fixture tests"
    assert report.exit_code == 0


def test_standalone_waiver_covers_next_line():
    source = (
        "def positive(x):\n"
        "    # reprolint: allow[R7] checked by the caller\n"
        "    assert x > 0\n"
        "    return x\n"
    )
    report = lint_source(source, module_name="repro.smo.guard", select=["R7"])
    assert report.findings == []
    assert len(report.waived) == 1


def test_waiver_only_silences_named_rule():
    source = (
        "def positive(x):\n"
        "    assert x > 0  # reprolint: allow[R4] wrong rule on purpose\n"
        "    return x\n"
    )
    report = lint_source(source, module_name="repro.smo.guard", select=["R7"])
    assert len(report.findings) == 1
    assert report.findings[0].rule == "R7"


def test_waiver_without_reason_is_a_w0_finding():
    source = ASSERTING.replace(
        "assert x > 0", "assert x > 0  # reprolint: allow[R7]"
    )
    report = lint_source(source, module_name="repro.smo.guard", select=["R7"])
    rules = {f.rule for f in report.findings}
    assert "W0" in rules


def test_waiver_with_unknown_rule_is_a_w0_finding():
    source = ASSERTING.replace(
        "assert x > 0", "assert x > 0  # reprolint: allow[R99] no such rule"
    )
    report = lint_source(source, module_name="repro.smo.guard", select=["R7"])
    assert any(f.rule == "W0" and "unknown rule" in f.message for f in report.findings)


def test_malformed_waiver_marker_is_a_w0_finding():
    source = ASSERTING.replace(
        "assert x > 0", "assert x > 0  # reprolint: please ignore"
    )
    report = lint_source(source, module_name="repro.smo.guard", select=["R7"])
    assert any(f.rule == "W0" for f in report.findings)


def test_waiver_inside_string_literal_is_ignored():
    source = 'MESSAGE = "# reprolint: allow[R7] not a comment"\n__all__ = ["MESSAGE"]\n'
    report = lint_source(source, module_name="repro.smo.guard")
    assert all(f.rule != "W0" for f in report.findings)


# ----------------------------------------------------------------------
# errors and exit codes
# ----------------------------------------------------------------------
def test_syntax_error_reports_e0_and_exit_2():
    report = lint_source("def broken(:\n", module_name="repro.smo.guard")
    assert report.errors and report.errors[0].rule == "E0"
    assert report.exit_code == 2


def test_exit_codes_clean_and_findings():
    clean = lint_source("__all__ = []\n", module_name="repro.smo.guard", select=["R7"])
    assert clean.exit_code == 0
    dirty = lint_source(ASSERTING, module_name="repro.smo.guard", select=["R7"])
    assert dirty.exit_code == 1


# ----------------------------------------------------------------------
# module-name resolution (src layout, script dirs, __init__)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rel, expected",
    [
        ("src/repro/optics/abbe.py", "repro.optics.abbe"),
        ("src/repro/optics/__init__.py", "repro.optics"),
        ("src/repro/__init__.py", "repro"),
        ("benchmarks/bench_env.py", "benchmarks.bench_env"),
        ("examples/quickstart.py", "examples.quickstart"),
        ("setup.cfg", None),
    ],
)
def test_module_name_for(rel, expected):
    assert module_name_for(REPO_ROOT / rel, REPO_ROOT) == expected


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def test_text_reporter_lists_findings_and_summary():
    report = lint_source(ASSERTING, module_name="repro.smo.guard", select=["R7"])
    text = render_text(report)
    assert "R7" in text
    assert "1 finding" in text


def test_json_reporter_round_trips():
    report = lint_source(ASSERTING, module_name="repro.smo.guard", select=["R7"])
    payload = json.loads(render_json(report))
    assert payload["exit_code"] == 1
    assert payload["counts"] == {"R7": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "R7"
    assert finding["line"] == 2
    assert payload["files_checked"] == 1


def test_json_reporter_carries_waivers():
    source = (
        "def positive(x):\n"
        "    assert x > 0  # reprolint: allow[R7] fixture\n"
        "    return x\n"
    )
    report = lint_source(source, module_name="repro.smo.guard", select=["R7"])
    payload = json.loads(render_json(report))
    assert payload["findings"] == []
    (waived,) = payload["waived"]
    assert waived["waived"] is True
    assert waived["waiver_reason"] == "fixture"


# ----------------------------------------------------------------------
# the CLI end to end
# ----------------------------------------------------------------------
def test_cli_nonzero_on_bad_fixture(tmp_path):
    bad = tmp_path / "src" / "repro" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(ASSERTING + '__all__ = ["positive"]\n', encoding="utf-8")
    (tmp_path / "README.md").write_text("stub\n", encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "--root",
            str(tmp_path),
            "--format",
            "json",
            "src",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["counts"].get("R7") == 1


def test_run_paths_on_fixture_tree(tmp_path):
    good = tmp_path / "src" / "repro" / "fine.py"
    good.parent.mkdir(parents=True)
    good.write_text('__all__ = ["VALUE"]\nVALUE = 3\n', encoding="utf-8")
    report = run_paths([Path("src")], root=tmp_path, project_checks=False)
    assert report.exit_code == 0
    assert report.files_checked == 1
