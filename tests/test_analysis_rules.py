"""Per-rule fixture tests for the reprolint engine.

Each rule R1-R10 has a good and a bad fixture under
``tests/analysis_fixtures/``; the bad fixture must produce at least the
expected number of findings for *its* rule and the good fixture none.
Fixtures are linted via :func:`repro.analysis.lint_source` with a
declared module name, because most rules scope by where code lives
(library vs. benchmark, inside vs. outside the fftlib seam).
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source

FIXTURES = Path(__file__).parent / "analysis_fixtures"

#: rule id -> (declared module name, minimum findings in the bad fixture)
CASES = {
    "R1": ("repro.optics.sim_fixture", 3),
    "R2": ("benchmarks.bench_rogue", 2),
    "R3": ("repro.optics.cache_fixture", 3),
    "R4": ("repro.autodiff.ops_fixture", 4),
    "R5": ("repro.smo.rand_fixture", 4),
    "R6": ("repro.smo.pool_fixture", 2),
    "R7": ("repro.smo.guard_fixture", 1),
    "R8": ("repro.utils.api_fixture", 2),
    "R9": ("repro.autodiff.stream_fixture", 5),
    "R10": ("repro.smo.obs_fixture", 5),
}

#: good fixtures that legitimately lint under a different module name
GOOD_MODULE_OVERRIDES = {
    "R2": "benchmarks.bench_env",
    "R6": "repro.harness.pool_fixture",
}


def _lint_fixture(rule: str, kind: str, module_name: str):
    source = (FIXTURES / f"{rule.lower()}_{kind}.py").read_text(encoding="utf-8")
    return lint_source(source, module_name=module_name, select=[rule])


@pytest.mark.parametrize("rule", sorted(CASES))
def test_bad_fixture_flags(rule):
    module_name, min_findings = CASES[rule]
    report = _lint_fixture(rule, "bad", module_name)
    assert report.exit_code == 1
    assert len(report.findings) >= min_findings
    assert all(f.rule == rule for f in report.findings)


@pytest.mark.parametrize("rule", sorted(CASES))
def test_good_fixture_clean(rule):
    module_name = GOOD_MODULE_OVERRIDES.get(rule, CASES[rule][0])
    report = _lint_fixture(rule, "good", module_name)
    assert report.exit_code == 0
    assert report.findings == []


# ----------------------------------------------------------------------
# scoping: the same source is legal or not depending on where it lives
# ----------------------------------------------------------------------
def test_r1_fftlib_itself_is_exempt():
    source = (FIXTURES / "r1_bad.py").read_text(encoding="utf-8")
    report = lint_source(source, module_name="repro.optics.fftlib", select=["R1"])
    assert report.findings == []


def test_r2_same_read_ok_inside_raw_reader():
    source = (FIXTURES / "r2_good.py").read_text(encoding="utf-8")
    outside = lint_source(source, module_name="benchmarks.bench_other", select=["R2"])
    assert any(f.rule == "R2" for f in outside.findings)
    inside = lint_source(source, module_name="benchmarks.bench_env", select=["R2"])
    assert inside.findings == []


def test_r4_only_scopes_autodiff():
    source = (FIXTURES / "r4_bad.py").read_text(encoding="utf-8")
    report = lint_source(source, module_name="repro.smo.ops_fixture", select=["R4"])
    assert report.findings == []


def test_r9_only_scopes_hot_path_modules():
    source = (FIXTURES / "r9_bad.py").read_text(encoding="utf-8")
    # the seam provider itself and non-hot-path library code are exempt
    for module_name in (
        "repro.optics.backend",
        "repro.optics.fftlib",
        "repro.smo.stream_fixture",
    ):
        report = lint_source(source, module_name=module_name, select=["R9"])
        assert report.findings == []
    # the imaging engines are in scope like the autodiff package
    report = lint_source(source, module_name="repro.optics.engine", select=["R9"])
    assert len(report.findings) >= 5


def test_r5_wall_clock_allowed_in_harness():
    source = "import time\n\n\ndef stamp():\n    return time.perf_counter()\n"
    lib = lint_source(source, module_name="repro.smo.timers", select=["R5"])
    assert any("wall-clock" in f.message for f in lib.findings)
    harness = lint_source(source, module_name="repro.harness.runner", select=["R5"])
    assert harness.findings == []
    script = lint_source(source, module_name="benchmarks.bench_foo", select=["R5"])
    assert script.findings == []


def test_r5_wall_clock_allowed_in_obs():
    # repro.obs is the second sanctioned wall-clock consumer (its spans
    # time arbitrary scopes through utils.timing.tick)
    source = "import time\n\n\ndef stamp():\n    return time.perf_counter()\n"
    obs = lint_source(source, module_name="repro.obs.trace", select=["R5"])
    assert obs.findings == []


def test_r10_obs_package_itself_is_exempt():
    source = (FIXTURES / "r10_bad.py").read_text(encoding="utf-8")
    for module_name in ("repro.obs", "repro.obs.export"):
        report = lint_source(source, module_name=module_name, select=["R10"])
        assert report.findings == []


def test_r10_resolves_relative_obs_imports():
    # the library's call sites bind obs relatively; a bare absolute-only
    # alias map would silently skip them
    source = (
        '"""x."""\n'
        "from ..obs import span as obs_span\n\n"
        "__all__ = []\n\n\n"
        "def f():\n"
        '    with obs_span("solver.bogus"):\n'
        "        return None\n"
    )
    report = lint_source(source, module_name="repro.smo.fixture", select=["R10"])
    assert len(report.findings) == 1
    assert "solver.bogus" in report.findings[0].message


def test_r10_kind_mismatch_names_the_declared_kind():
    source = (
        '"""x."""\n'
        "from repro import obs\n\n"
        "__all__ = []\n\n\n"
        "def f():\n"
        '    obs.counter("solver.loss").inc()\n'
    )
    report = lint_source(source, module_name="repro.smo.fixture", select=["R10"])
    assert len(report.findings) == 1
    assert "declared as a gauge" in report.findings[0].message


def test_r6_pools_allowed_in_fftlib():
    source = (FIXTURES / "r6_bad.py").read_text(encoding="utf-8")
    report = lint_source(source, module_name="repro.optics.fftlib", select=["R6"])
    assert report.findings == []


def test_r7_scripts_may_assert():
    source = (FIXTURES / "r7_bad.py").read_text(encoding="utf-8")
    report = lint_source(source, module_name="benchmarks.bench_foo", select=["R7"])
    assert report.findings == []


def test_r8_missing_all_flags():
    source = "def helper():\n    return 1\n"
    report = lint_source(source, module_name="repro.utils.api_fixture", select=["R8"])
    assert any("__all__" in f.message for f in report.findings)
