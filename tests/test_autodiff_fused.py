"""Tests for the fused ``incoherent_image`` primitive: finite-difference
gradcheck against the composed-op reference (real + complex masks, B=1
and B=3), streamed-VJP parity, argument validation, and the documented
``create_graph`` fallback (HVPs matching the FFT-free basis oracle)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.autodiff.grad import gradcheck
from repro.optics import AbbeImaging, OpticalConfig
from repro.smo import BatchedSMOObjective
from repro.smo.parametrization import init_theta_mask, init_theta_source

S, N = 6, 12


@pytest.fixture(scope="module")
def kernels() -> np.ndarray:
    rng = np.random.default_rng(7)
    return (
        rng.standard_normal((S, N, N)) + 1j * rng.standard_normal((S, N, N))
    ) * 0.3


@pytest.fixture(scope="module")
def weights() -> np.ndarray:
    return np.linspace(1.0, 0.2, S)


def _masks(batch: bool, complex_: bool) -> np.ndarray:
    rng = np.random.default_rng(11)
    shape = (3, N, N) if batch else (N, N)
    m = rng.standard_normal(shape)
    if complex_:
        m = m + 1j * rng.standard_normal(shape)
    return m


class TestForwardParity:
    @pytest.mark.parametrize("batch", [False, True])
    @pytest.mark.parametrize("complex_", [False, True])
    def test_fused_matches_composed(self, kernels, weights, batch, complex_):
        m = _masks(batch, complex_)
        with ad.no_grad():
            fused = F.incoherent_image(m, kernels, weights).data
            composed = F.incoherent_image_composed(m, kernels, weights).data
        assert fused.shape == m.shape
        np.testing.assert_allclose(fused, composed, atol=1e-12)

    @pytest.mark.parametrize("chunk", [1, 2, 4, S, S + 5])
    def test_chunk_size_invariance(self, kernels, weights, chunk):
        m = _masks(True, False)
        with ad.no_grad():
            ref = F.incoherent_image(m, kernels, weights, chunk=S).data
            out = F.incoherent_image(m, kernels, weights, chunk=chunk).data
        np.testing.assert_allclose(out, ref, atol=1e-13)

    def test_single_equals_batch_row(self, kernels, weights):
        m = _masks(True, False)
        with ad.no_grad():
            batched = F.incoherent_image(m, kernels, weights).data
            single = F.incoherent_image(m[1], kernels, weights).data
        np.testing.assert_allclose(single, batched[1], atol=1e-13)


class TestGradients:
    @pytest.mark.parametrize("batch", [False, True])
    @pytest.mark.parametrize("complex_", [False, True])
    def test_grads_match_composed(self, kernels, weights, batch, complex_):
        """Streamed VJP == composed-op backward for mask and weights."""
        m = _masks(batch, complex_)

        def eval_grads(fn):
            mt = ad.Tensor(m, requires_grad=True)
            wt = ad.Tensor(weights, requires_grad=True)
            loss = F.sum(F.power(fn(mt, kernels, wt), 2.0))
            gm, gw = ad.grad(loss, [mt, wt])
            return float(loss.data), gm.data, gw.data

        lf, gmf, gwf = eval_grads(F.incoherent_image)
        lc, gmc, gwc = eval_grads(F.incoherent_image_composed)
        np.testing.assert_allclose(lf, lc, rtol=1e-12)
        np.testing.assert_allclose(gmf, gmc, atol=1e-10)
        np.testing.assert_allclose(gwf, gwc, atol=1e-10)

    @pytest.mark.parametrize("batch", [False, True])
    @pytest.mark.parametrize("complex_", [False, True])
    def test_fd_gradcheck(self, kernels, weights, batch, complex_):
        """Central-difference check of the hand-written VJP itself."""
        m = _masks(batch, complex_)
        gradcheck(
            lambda mt, wt: F.sum(
                F.power(F.incoherent_image(mt, kernels, wt), 2.0)
            ),
            [ad.Tensor(m), ad.Tensor(weights)],
            eps=1e-6,
            rtol=1e-4,
            atol=1e-6,
        )

    def test_mask_only_and_weights_only_paths(self, kernels, weights):
        """The VJP skips work for inputs that don't require grad."""
        m = _masks(False, False)
        mt = ad.Tensor(m, requires_grad=True)
        (gm,) = ad.grad(F.sum(F.incoherent_image(mt, kernels, weights)), [mt])
        assert gm.data.shape == m.shape and not np.iscomplexobj(gm.data)
        wt = ad.Tensor(weights, requires_grad=True)
        (gw,) = ad.grad(F.sum(F.incoherent_image(m, kernels, wt)), [wt])
        assert gw.data.shape == weights.shape
        assert np.abs(gw.data).min() > 0  # every kernel contributes


class TestConjugatePairStreaming:
    """The +/-sigma field-conjugation shortcut for real masks."""

    @pytest.fixture(scope="class")
    def paired_setup(self):
        from repro.optics import fftlib

        rng = np.random.default_rng(21)
        k_reps = rng.standard_normal((3, N, N)) * 0.5  # real kernels
        kernels = np.empty((5, N, N))
        kernels[0] = k_reps[0]
        kernels[1] = fftlib.freq_reverse(k_reps[0])
        kernels[2] = k_reps[1]
        kernels[3] = fftlib.freq_reverse(k_reps[1])
        # Self-paired kernel: symmetric under frequency reversal.
        kernels[4] = k_reps[2] + fftlib.freq_reverse(k_reps[2])
        pairs = np.array([1, 0, 3, 2, 4])
        weights = np.array([0.9, 0.4, 0.7, 0.2, 0.5])
        return kernels, pairs, weights

    @pytest.mark.parametrize("batch", [False, True])
    def test_paired_matches_unpaired(self, paired_setup, batch):
        kernels, pairs, weights = paired_setup
        m = _masks(batch, False)

        def grads(**kw):
            mt = ad.Tensor(m, requires_grad=True)
            wt = ad.Tensor(weights, requires_grad=True)
            out = F.incoherent_image(mt, kernels, wt, **kw)
            loss = F.sum(F.power(out, 2.0))
            gm, gw = ad.grad(loss, [mt, wt])
            return out.data, gm.data, gw.data

        o1, gm1, gw1 = grads()
        o2, gm2, gw2 = grads(conj_pairs=pairs)
        np.testing.assert_allclose(o2, o1, atol=1e-12)
        np.testing.assert_allclose(gm2, gm1, atol=1e-10)
        np.testing.assert_allclose(gw2, gw1, atol=1e-10)

    def test_complex_mask_ignores_pairing(self, paired_setup):
        """Pairing relies on real fields; complex masks take the exact
        unpaired stream instead."""
        kernels, pairs, weights = paired_setup
        m = _masks(False, True)
        with ad.no_grad():
            paired = F.incoherent_image(m, kernels, weights, conj_pairs=pairs)
            plain = F.incoherent_image_composed(m, kernels, weights)
        np.testing.assert_allclose(paired.data, plain.data, atol=1e-12)

    def test_invalid_pairing_rejected(self, paired_setup):
        kernels, _, weights = paired_setup
        m = _masks(False, False)
        with pytest.raises(ValueError):  # not an involution
            F.incoherent_image(
                m, kernels, weights, conj_pairs=np.array([1, 2, 3, 4, 0])
            )
        with pytest.raises(ValueError):  # wrong length
            F.incoherent_image(m, kernels, weights, conj_pairs=np.arange(4))

    def test_abbe_engine_builds_verified_pairing(self):
        from repro.optics import AbbeImaging, OpticalConfig

        cfg = OpticalConfig.preset("tiny")
        engine = AbbeImaging(cfg)
        pairs = engine._conj_pairs
        assert pairs is not None
        s = engine.num_source_points
        assert np.array_equal(pairs[pairs], np.arange(s))
        # Defocused stacks are complex: pairing must opt out.
        assert AbbeImaging(cfg, defocus_nm=80.0)._conj_pairs is None


class TestValidation:
    def test_bad_shapes_raise(self, kernels, weights):
        with pytest.raises(ValueError):
            F.incoherent_image(np.zeros(N), kernels, weights)  # 1-D mask
        with pytest.raises(ValueError):
            F.incoherent_image(np.zeros((N + 1, N + 1)), kernels, weights)
        with pytest.raises(ValueError):
            F.incoherent_image(np.zeros((N, N)), kernels, weights[:-1])
        with pytest.raises(ValueError):
            F.incoherent_image(np.zeros((N, N)), kernels[0], weights)
        with pytest.raises(ValueError):
            F.incoherent_image(np.zeros((N, N)), kernels, weights, chunk=0)

    def test_complex_weights_rejected(self, kernels, weights):
        with pytest.raises(TypeError):
            F.incoherent_image(np.zeros((N, N)), kernels, weights * 1j)

    def test_pupil_grad_rejected(self, kernels, weights):
        kt = ad.Tensor(kernels, requires_grad=True)
        with pytest.raises(ValueError):
            F.incoherent_image(np.zeros((N, N)), kt, weights)


class TestCreateGraphFallback:
    """The documented composed-op fallback for double backward."""

    @pytest.fixture(scope="class")
    def smo_setup(self):
        cfg = OpticalConfig.preset("tiny")
        rng = np.random.default_rng(3)
        targets = (rng.random((2, cfg.mask_size, cfg.mask_size)) > 0.7).astype(
            np.float64
        )
        source = np.full((cfg.source_size,) * 2, 0.4)
        theta_j = init_theta_source(source, cfg)
        theta_m = init_theta_mask(targets, cfg)
        objective = BatchedSMOObjective(cfg, targets, engine=AbbeImaging(cfg))
        return cfg, theta_j, theta_m, objective

    def test_hvp_matches_basis_oracle(self, smo_setup):
        """Source HVPs through the fused graph (create_graph fallback)
        must equal the FFT-free intensity-basis oracle — the exactness
        property BiSMO's inner-Hessian products rely on."""
        _, theta_j, theta_m, objective = smo_setup
        tm_fixed = ad.Tensor(theta_m)
        rng = np.random.default_rng(5)
        v = ad.Tensor(rng.standard_normal(theta_j.shape))
        x = ad.Tensor(theta_j)
        h_fused = ad.hvp(lambda tj: objective.loss(tj, tm_fixed), x, v)
        basis_loss = objective.source_only_loss(theta_m)
        h_basis = ad.hvp(basis_loss, x, v)
        scale = np.abs(h_basis.data).max()
        np.testing.assert_allclose(
            h_fused.data, h_basis.data, rtol=1e-8, atol=1e-8 * max(scale, 1e-30)
        )

    def test_mixed_jvp_matches_composed_engine(self, smo_setup):
        """Mixed second derivatives agree between the fused graph (via
        its fallback) and a fully composed graph."""
        cfg, theta_j, theta_m, objective = smo_setup
        composed = BatchedSMOObjective(
            cfg, objective.targets.data, engine=AbbeImaging(cfg, fused=False)
        )
        rng = np.random.default_rng(6)
        v = ad.Tensor(rng.standard_normal(theta_j.shape))
        args = (ad.Tensor(theta_j), ad.Tensor(theta_m), v)
        mj_fused = ad.mixed_jvp(objective.loss, *args)
        mj_composed = ad.mixed_jvp(composed.loss, *args)
        np.testing.assert_allclose(mj_fused.data, mj_composed.data, atol=1e-10)

    def test_unrolled_backward_through_fused_graph(self, smo_setup, kernels, weights):
        """An inner-SGD step built through the fused node (create_graph)
        backpropagates correctly — checked against the composed op."""
        m = _masks(False, False)

        def unrolled(fn):
            mt = ad.Tensor(m, requires_grad=True)
            wt = ad.Tensor(weights, requires_grad=True)
            inner = F.sum(F.power(fn(mt, kernels, wt), 2.0))
            (gw,) = ad.grad(inner, [wt], create_graph=True)
            stepped = F.sub(wt, F.mul(gw, 0.05))
            outer = F.sum(F.power(fn(mt, kernels, stepped), 2.0))
            (gm,) = ad.grad(outer, [mt])
            return gm.data

        np.testing.assert_allclose(
            unrolled(F.incoherent_image),
            unrolled(F.incoherent_image_composed),
            atol=1e-10,
        )
