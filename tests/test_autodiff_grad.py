"""Tests for the grad/backward drivers and second-order products."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F


def _quadratic_loss(x):
    """L = sum(sigmoid(x)^3 + x^2) — smooth, non-trivial Hessian."""
    return F.add(F.sum(F.power(F.sigmoid(x), 3.0)), F.sum(F.mul(x, x)))


class TestGradAPI:
    def test_simple_grad(self):
        x = ad.Tensor([1.0, -2.0], requires_grad=True)
        (g,) = ad.grad(F.sum(F.mul(x, x)), [x])
        np.testing.assert_allclose(g.data, [2.0, -4.0])

    def test_multiple_inputs(self):
        a = ad.Tensor([2.0], requires_grad=True)
        b = ad.Tensor([3.0], requires_grad=True)
        ga, gb = ad.grad(F.sum(F.mul(a, b)), [a, b])
        assert ga.data[0] == 3.0
        assert gb.data[0] == 2.0

    def test_non_scalar_needs_grad_output(self):
        x = ad.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            ad.grad(F.mul(x, x), [x])

    def test_explicit_grad_output(self):
        x = ad.Tensor([1.0, 2.0], requires_grad=True)
        (g,) = ad.grad(F.mul(x, x), [x], grad_output=ad.Tensor([1.0, 0.5]))
        np.testing.assert_allclose(g.data, [2.0, 2.0])

    def test_unused_input_raises(self):
        x = ad.Tensor([1.0], requires_grad=True)
        y = ad.Tensor([1.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            ad.grad(F.sum(x), [y])

    def test_allow_unused_returns_none(self):
        x = ad.Tensor([1.0], requires_grad=True)
        y = ad.Tensor([1.0], requires_grad=True)
        gx, gy = ad.grad(F.sum(x), [x, y], allow_unused=True)
        assert gy is None
        assert gx.data[0] == 1.0

    def test_grad_of_intermediate(self):
        x = ad.Tensor([2.0], requires_grad=True)
        mid = F.mul(x, 3.0)
        out = F.sum(F.mul(mid, mid))
        (gmid,) = ad.grad(out, [mid])
        assert gmid.data[0] == pytest.approx(12.0)

    def test_diamond_graph_accumulates(self):
        x = ad.Tensor([1.0], requires_grad=True)
        y = F.add(F.mul(x, 2.0), F.mul(x, 3.0))
        (g,) = ad.grad(F.sum(y), [x])
        assert g.data[0] == pytest.approx(5.0)

    def test_same_tensor_used_twice_in_op(self):
        x = ad.Tensor([3.0], requires_grad=True)
        (g,) = ad.grad(F.sum(F.mul(x, x)), [x])
        assert g.data[0] == pytest.approx(6.0)

    def test_complex_leaf_gradient_convention(self):
        # L = |z|^2 => dL/dRe = 2 Re, dL/dIm = 2 Im => grad = 2 z.
        z = ad.Tensor([1.0 + 2.0j], requires_grad=True)
        (g,) = ad.grad(F.sum(F.abs2(z)), [z])
        np.testing.assert_allclose(g.data, [2.0 + 4.0j])

    def test_real_leaf_through_complex_chain_gets_real_grad(self):
        x = ad.Tensor(np.ones((2, 2)), requires_grad=True)
        loss = F.sum(F.abs2(F.fft2(x)))
        (g,) = ad.grad(loss, [x])
        assert not g.is_complex

    def test_create_graph_gives_differentiable_grad(self):
        x = ad.Tensor([1.0, 2.0], requires_grad=True)
        (g,) = ad.grad(F.sum(F.power(x, 3.0)), [x], create_graph=True)
        (gg,) = ad.grad(F.sum(g), [x])
        np.testing.assert_allclose(gg.data, 6.0 * x.data)

    def test_without_create_graph_grad_is_leaf(self):
        x = ad.Tensor([1.0], requires_grad=True)
        (g,) = ad.grad(F.sum(F.mul(x, x)), [x])
        assert g._vjp is None


class TestBackward:
    def test_backward_populates_leaves(self):
        x = ad.Tensor([1.0, 2.0], requires_grad=True)
        ad.backward(F.sum(F.mul(x, x)))
        np.testing.assert_allclose(x.grad.data, [2.0, 4.0])

    def test_backward_non_scalar_raises(self):
        x = ad.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            ad.backward(F.mul(x, x))


class TestSecondOrder:
    def test_hvp_matches_fd(self, rng):
        x = ad.Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        v = ad.Tensor(rng.standard_normal((3, 3)))
        hv = ad.hvp(_quadratic_loss, x, v)

        def grad_fn(t):
            t = ad.Tensor(t.data, requires_grad=True)
            (g,) = ad.grad(_quadratic_loss(t), [t])
            return g

        hv_fd = ad.hvp_fd(grad_fn, x, v, eps=1e-4)
        np.testing.assert_allclose(hv.data, hv_fd.data, atol=1e-6)

    def test_hvp_on_pure_quadratic_is_exact(self, rng):
        a = rng.standard_normal((4, 4))
        a = a + a.T
        at = ad.Tensor(a)

        def loss(x):
            xc = F.reshape(x, (4, 1))
            return F.mul(F.sum(F.mul(xc, F.matmul(at, xc))), 0.5)

        x = ad.Tensor(rng.standard_normal(4))
        v = rng.standard_normal(4)
        hv = ad.hvp(loss, x, ad.Tensor(v))
        np.testing.assert_allclose(hv.data, a @ v, atol=1e-10)

    def test_mixed_jvp_matches_fd(self, rng):
        def loss(a, b):
            return F.sum(F.power(F.mul(F.sigmoid(a), F.sigmoid(b)), 2.0))

        a = ad.Tensor(rng.standard_normal(5))
        b = ad.Tensor(rng.standard_normal(5))
        v = ad.Tensor(rng.standard_normal(5))
        mj = ad.mixed_jvp(loss, a, b, v)

        def gy_fn(at):
            at2 = ad.Tensor(at.data, requires_grad=True)
            bt = ad.Tensor(b.data, requires_grad=True)
            (g,) = ad.grad(loss(at2, bt), [bt])
            return g

        mj_fd = ad.mixed_jvp_fd(gy_fn, a, v, eps=1e-4)
        np.testing.assert_allclose(mj.data, mj_fd.data, atol=1e-6)

    def test_mixed_jvp_decoupled_is_zero(self, rng):
        def loss(a, b):
            return F.add(F.sum(F.mul(a, a)), F.sum(F.mul(b, b)))

        a = ad.Tensor(rng.standard_normal(3))
        b = ad.Tensor(rng.standard_normal(3))
        mj = ad.mixed_jvp(loss, a, b, ad.Tensor(np.ones(3)))
        np.testing.assert_allclose(mj.data, np.zeros(3), atol=1e-12)

    def test_hvp_fd_zero_direction(self):
        x = ad.Tensor([1.0, 2.0])
        out = ad.hvp_fd(lambda t: t, x, ad.Tensor([0.0, 0.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0])

    def test_mixed_jvp_fd_zero_direction_raises(self):
        x = ad.Tensor([1.0])
        with pytest.raises(ValueError):
            ad.mixed_jvp_fd(lambda t: t, x, ad.Tensor([0.0]))


class TestGradcheckHarness:
    def test_gradcheck_passes_correct_grad(self):
        x = ad.Tensor([0.3, -0.7])
        assert ad.gradcheck(lambda t: F.sum(F.sigmoid(t)), [x])

    def test_gradcheck_catches_wrong_grad(self):
        # exp's VJP is correct; fake a wrong function via clip (identity
        # gradient) composed where a true gradient would differ.
        x = ad.Tensor([0.5, 1.5])
        with pytest.raises(AssertionError):
            ad.gradcheck(
                lambda t: F.sum(F.clip_for_stability(F.mul(t, t), -100.0, 0.5)), [x]
            )

    def test_numerical_gradient_complex(self):
        z = ad.Tensor([0.2 + 0.4j])
        num = ad.numerical_gradient(lambda t: F.sum(F.abs2(t)), [z], 0)
        np.testing.assert_allclose(num, 2.0 * z.data, atol=1e-6)
