"""Gradcheck every primitive op against central finite differences,
in both real and complex regimes, including broadcasting edge cases."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.autodiff.grad import gradcheck


def _real(shape, seed=0):
    return ad.Tensor(np.random.default_rng(seed).standard_normal(shape))


def _complex(shape, seed=0):
    rng = np.random.default_rng(seed)
    return ad.Tensor(rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


class TestArithmeticGrads:
    def test_add(self):
        gradcheck(lambda a, b: F.sum(F.add(a, b) ** 2), [_real(4), _real(4, 1)])

    def test_add_broadcast(self):
        gradcheck(
            lambda a, b: F.sum(F.add(a, b) ** 2), [_real((3, 4)), _real(4, 1)]
        )

    def test_sub_broadcast_scalar(self):
        gradcheck(lambda a, b: F.sum(F.sub(a, b) ** 2), [_real((2, 3)), _real(())])

    def test_mul(self):
        gradcheck(lambda a, b: F.sum(F.mul(a, b) ** 2), [_real(5), _real(5, 1)])

    def test_mul_complex(self):
        gradcheck(
            lambda a, b: F.sum(F.abs2(F.mul(a, b))), [_complex(4), _complex(4, 1)]
        )

    def test_mul_real_by_complex(self):
        gradcheck(
            lambda a, b: F.sum(F.abs2(F.mul(a, b))), [_real(4), _complex(4, 1)]
        )

    def test_div(self):
        b = ad.Tensor(np.random.default_rng(2).uniform(0.5, 2.0, 4))
        gradcheck(lambda a, b: F.sum(F.div(a, b) ** 2), [_real(4), b])

    def test_div_complex(self):
        b = _complex(4, 3)
        b = ad.Tensor(b.data + 2.0)  # keep away from zero
        gradcheck(lambda a, b: F.sum(F.abs2(F.div(a, b))), [_complex(4), b])

    def test_neg(self):
        gradcheck(lambda a: F.sum(F.neg(a) ** 3), [_real(4)])

    def test_power(self):
        x = ad.Tensor(np.random.default_rng(0).uniform(0.5, 2.0, 5))
        gradcheck(lambda a: F.sum(F.power(a, 2.5)), [x])

    def test_power_negative_exponent(self):
        x = ad.Tensor(np.random.default_rng(0).uniform(0.5, 2.0, 5))
        gradcheck(lambda a: F.sum(F.power(a, -1.0)), [x])


class TestTranscendentalGrads:
    def test_exp(self):
        gradcheck(lambda a: F.sum(F.exp(a)), [_real(4)])

    def test_log(self):
        x = ad.Tensor(np.random.default_rng(0).uniform(0.5, 3.0, 4))
        gradcheck(lambda a: F.sum(F.log(a)), [x])

    def test_sqrt(self):
        x = ad.Tensor(np.random.default_rng(0).uniform(0.5, 3.0, 4))
        gradcheck(lambda a: F.sum(F.sqrt(a)), [x])

    def test_sin_cos(self):
        gradcheck(lambda a: F.sum(F.sin(a) * F.cos(a)), [_real(6)])

    def test_tanh(self):
        gradcheck(lambda a: F.sum(F.tanh(a) ** 2), [_real(4)])

    def test_sigmoid(self):
        gradcheck(lambda a: F.sum(F.sigmoid(a) ** 2), [_real(6)])

    def test_sigmoid_extreme_values_stable(self):
        x = ad.Tensor(np.array([-800.0, -30.0, 0.0, 30.0, 800.0]), requires_grad=True)
        y = F.sigmoid(x)
        assert np.all(np.isfinite(y.data))
        (g,) = ad.grad(F.sum(y), [x])
        assert np.all(np.isfinite(g.data))

    def test_sigmoid_rejects_complex(self):
        with pytest.raises(TypeError):
            F.sigmoid(_complex(3))

    def test_relu(self):
        x = ad.Tensor([-1.0, 2.0, -3.0, 4.0], requires_grad=True)
        (g,) = ad.grad(F.sum(F.relu(x)), [x])
        np.testing.assert_allclose(g.data, [0.0, 1.0, 0.0, 1.0])

    def test_clip_passthrough_gradient(self):
        x = ad.Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        y = F.clip_for_stability(x, -1.0, 1.0)
        np.testing.assert_allclose(y.data, [-1.0, 0.5, 1.0])
        (g,) = ad.grad(F.sum(y), [x])
        np.testing.assert_allclose(g.data, [1.0, 1.0, 1.0])


class TestReductionsAndShaping:
    def test_sum_all(self):
        gradcheck(lambda a: F.sum(a) ** 2, [_real((3, 4))])

    def test_sum_axis_keepdims(self):
        gradcheck(
            lambda a: F.sum(F.sum(a, axis=0, keepdims=True) ** 2), [_real((3, 4))]
        )

    def test_sum_negative_axis(self):
        gradcheck(lambda a: F.sum(F.sum(a, axis=-1) ** 2), [_real((3, 4))])

    def test_sum_multi_axis(self):
        gradcheck(
            lambda a: F.sum(F.sum(a, axis=(0, 2)) ** 2), [_real((2, 3, 4))]
        )

    def test_mean(self):
        x = _real((4, 5))
        assert F.mean(x).item() == pytest.approx(x.data.mean())
        gradcheck(lambda a: F.mean(a) ** 2, [x])

    def test_mean_axis_tuple(self):
        x = _real((2, 3, 4))
        np.testing.assert_allclose(
            F.mean(x, axis=(1, 2)).data, x.data.mean(axis=(1, 2))
        )

    def test_reshape(self):
        gradcheck(lambda a: F.sum(F.reshape(a, (6,)) ** 2), [_real((2, 3))])

    def test_broadcast_to(self):
        gradcheck(
            lambda a: F.sum(F.broadcast_to(a, (4, 3)) ** 2), [_real((1, 3))]
        )

    def test_sum_to_roundtrip(self):
        x = _real((4, 3))
        out = F.sum_to(x, (1, 3))
        np.testing.assert_allclose(out.data, x.data.sum(axis=0, keepdims=True))

    def test_sum_to_noop(self):
        x = _real((2, 2))
        assert F.sum_to(x, (2, 2)) is x

    def test_sum_to_invalid(self):
        with pytest.raises(ValueError):
            F.sum_to(_real(3), (2, 3))


class TestComplexOps:
    def test_real_imag_conj(self):
        z = _complex(5)
        np.testing.assert_allclose(F.real(z).data, z.data.real)
        np.testing.assert_allclose(F.imag(z).data, z.data.imag)
        np.testing.assert_allclose(F.conj(z).data, np.conj(z.data))

    def test_conj_real_passthrough(self):
        x = _real(3)
        assert F.conj(x) is x

    def test_real_grad(self):
        gradcheck(lambda z: F.sum(F.real(z) ** 2), [_complex(4)])

    def test_imag_grad(self):
        gradcheck(lambda z: F.sum(F.imag(z) ** 2), [_complex(4)])

    def test_conj_grad(self):
        gradcheck(lambda z: F.sum(F.abs2(F.conj(z) + 1.0)), [_complex(4)])

    def test_abs2(self):
        gradcheck(lambda z: F.sum(F.abs2(z)), [_complex(5)])

    def test_abs2_real_input(self):
        gradcheck(lambda x: F.sum(F.abs2(x)), [_real(5)])

    def test_absolute(self):
        z = _complex(4)
        np.testing.assert_allclose(
            F.absolute(z).data, np.abs(z.data), rtol=1e-9, atol=1e-9
        )

    def test_make_complex(self):
        gradcheck(
            lambda a, b: F.sum(F.abs2(F.make_complex(a, b) ** 2)),
            [_real(3), _real(3, 1)],
        )


class TestFFT:
    def test_fft2_matches_numpy(self):
        x = _real((4, 4))
        np.testing.assert_allclose(F.fft2(x).data, np.fft.fft2(x.data))

    def test_ifft2_matches_numpy(self):
        z = _complex((4, 4))
        np.testing.assert_allclose(F.ifft2(z).data, np.fft.ifft2(z.data))

    def test_fft_roundtrip(self):
        x = _real((8, 8))
        np.testing.assert_allclose(F.ifft2(F.fft2(x)).data.real, x.data, atol=1e-12)

    def test_fft2_grad_real_input(self):
        gradcheck(lambda x: F.sum(F.abs2(F.fft2(x))), [_real((3, 3))])

    def test_fft2_grad_complex_input(self):
        gradcheck(lambda z: F.sum(F.abs2(F.fft2(z))), [_complex((3, 3))])

    def test_ifft2_grad(self):
        gradcheck(lambda z: F.sum(F.abs2(F.ifft2(z))), [_complex((3, 3))])

    def test_batched_fft_grad(self):
        gradcheck(lambda z: F.sum(F.abs2(F.fft2(z))), [_complex((2, 3, 3))])

    def test_fft_linearity(self):
        a, b = _complex((4, 4), 1), _complex((4, 4), 2)
        lhs = F.fft2(F.add(a, b)).data
        rhs = F.fft2(a).data + F.fft2(b).data
        np.testing.assert_allclose(lhs, rhs)


class TestIndexing:
    def test_getitem_grad(self):
        gradcheck(lambda x: F.sum(F.getitem(x, (slice(0, 2), 1)) ** 2), [_real((3, 3))])

    def test_getitem_fancy_index(self):
        idx = (np.array([0, 2]), np.array([1, 0]))
        gradcheck(lambda x: F.sum(F.getitem(x, idx) ** 2), [_real((3, 3))])

    def test_getitem_complex(self):
        gradcheck(lambda z: F.sum(F.abs2(F.getitem(z, slice(0, 2)))), [_complex(4)])

    def test_scatter_is_adjoint_of_getitem(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(3)
        idx = (np.array([0, 2]),)
        scattered = F.scatter(ad.Tensor(x[list(idx[0])]), idx, (3,))
        expected = np.zeros(3)
        expected[[0, 2]] = x[[0, 2]]
        np.testing.assert_allclose(scattered.data, expected)

    def test_scatter_duplicate_indices_accumulate(self):
        idx = (np.array([1, 1]),)
        out = F.scatter(ad.Tensor([2.0, 3.0]), idx, (3,))
        np.testing.assert_allclose(out.data, [0.0, 5.0, 0.0])

    def test_scatter_grad(self):
        idx = (np.array([0, 2]),)
        gradcheck(lambda x: F.sum(F.scatter(x, idx, (4,)) ** 2), [_real(2)])


class TestMatmulDot:
    def test_matmul_real(self):
        gradcheck(
            lambda a, b: F.sum(F.matmul(a, b) ** 2),
            [_real((2, 3)), _real((3, 2), 1)],
        )

    def test_matmul_complex(self):
        gradcheck(
            lambda a, b: F.sum(F.abs2(F.matmul(a, b))),
            [_complex((2, 2)), _complex((2, 2), 1)],
        )

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            F.matmul(_real(3), _real(3, 1))

    def test_dot_real(self):
        a, b = _real(5), _real(5, 1)
        assert F.dot(a, b).item() == pytest.approx(float(a.data @ b.data))

    def test_dot_complex_is_real_pairing(self):
        a, b = _complex(4), _complex(4, 1)
        expected = float(
            (a.data.real * b.data.real + a.data.imag * b.data.imag).sum()
        )
        assert F.dot(a, b).item() == pytest.approx(expected)


class TestConstructors:
    def test_zeros_ones(self):
        assert F.zeros((2, 2)).data.sum() == 0
        assert F.ones((2, 2)).data.sum() == 4

    def test_zeros_like_complex(self):
        z = _complex(3)
        assert F.zeros_like(z).is_complex

    def test_ones_like(self):
        np.testing.assert_allclose(F.ones_like(_real((2, 2))).data, np.ones((2, 2)))
