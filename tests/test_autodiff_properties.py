"""Hypothesis property-based tests on autodiff algebraic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.autodiff as ad
from repro.autodiff import functional as F

_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False, width=64
)


def vectors(n=4):
    return arrays(np.float64, (n,), elements=_floats)


def matrices(n=3):
    return arrays(np.float64, (n, n), elements=_floats)


@settings(max_examples=40, deadline=None)
@given(vectors(), vectors())
def test_grad_of_sum_is_linear(a, b):
    """grad(L1 + L2) == grad(L1) + grad(L2) at the same point."""
    x = ad.Tensor(a, requires_grad=True)
    bb = ad.Tensor(b)

    l1 = F.sum(F.mul(x, x))
    l2 = F.sum(F.mul(x, bb))
    (g_combined,) = ad.grad(F.add(l1, l2), [x])

    x2 = ad.Tensor(a, requires_grad=True)
    (g1,) = ad.grad(F.sum(F.mul(x2, x2)), [x2])
    x3 = ad.Tensor(a, requires_grad=True)
    (g2,) = ad.grad(F.sum(F.mul(x3, bb)), [x3])
    np.testing.assert_allclose(g_combined.data, g1.data + g2.data, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(vectors(), st.floats(min_value=-2.0, max_value=2.0, allow_nan=False))
def test_grad_scales_with_constant(a, c):
    x = ad.Tensor(a, requires_grad=True)
    (g,) = ad.grad(F.mul(F.sum(F.mul(x, x)), c), [x])
    np.testing.assert_allclose(g.data, 2.0 * c * a, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrices(4))
def test_fft_parseval(m):
    """sum |x|^2 == sum |FFT(x)|^2 / N  (Parseval, backward norm)."""
    x = ad.Tensor(m)
    space = F.sum(F.abs2(x)).item()
    freq = F.sum(F.abs2(F.fft2(x))).item() / m.size
    np.testing.assert_allclose(space, freq, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrices(4))
def test_fft_roundtrip_property(m):
    x = ad.Tensor(m)
    back = F.real(F.ifft2(F.fft2(x)))
    np.testing.assert_allclose(back.data, m, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(vectors())
def test_sigmoid_symmetry(a):
    """sigmoid(-x) == 1 - sigmoid(x)."""
    s1 = F.sigmoid(ad.Tensor(a)).data
    s2 = F.sigmoid(ad.Tensor(-a)).data
    np.testing.assert_allclose(s1 + s2, np.ones_like(a), atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(vectors())
def test_sigmoid_grad_bounded(a):
    """d sigmoid/dx in (0, 0.25]."""
    x = ad.Tensor(a, requires_grad=True)
    (g,) = ad.grad(F.sum(F.sigmoid(x)), [x])
    assert np.all(g.data > 0)
    assert np.all(g.data <= 0.25 + 1e-12)


@settings(max_examples=40, deadline=None)
@given(vectors(), vectors())
def test_abs2_multiplicative(a, b):
    """|z w|^2 == |z|^2 |w|^2 elementwise."""
    z = ad.Tensor(a + 1j * b)
    w = ad.Tensor(b + 1j * a)
    lhs = F.abs2(F.mul(z, w)).data
    rhs = F.abs2(z).data * F.abs2(w).data
    np.testing.assert_allclose(lhs, rhs, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrices(3), matrices(3))
def test_hvp_symmetry(m, d):
    """v^T H u == u^T H v (Hessian symmetry) for a smooth loss."""
    def loss(x):
        return F.sum(F.power(F.sigmoid(x), 3.0))

    x = ad.Tensor(m)
    u = np.eye(3)[0][:, None] * np.ones((1, 3))
    hv_d = ad.hvp(loss, x, ad.Tensor(d))
    hv_u = ad.hvp(loss, x, ad.Tensor(u))
    lhs = float((u * hv_d.data).sum())
    rhs = float((d * hv_u.data).sum())
    np.testing.assert_allclose(lhs, rhs, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(vectors(6))
def test_sum_to_is_adjoint_of_broadcast(a):
    """<broadcast(x), y> == <x, sum_to(y)> — adjoint pair."""
    x = ad.Tensor(a[:3])
    y = ad.Tensor(np.stack([a[:3], a[3:]]))
    lhs = F.sum(F.mul(F.broadcast_to(x, (2, 3)), y)).item()
    rhs = F.sum(F.mul(x, F.sum_to(y, (3,)))).item()
    np.testing.assert_allclose(lhs, rhs, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(matrices(4))
def test_fft_adjoint_identity(m):
    """<FFT(x), y> == <x, N * IFFT(y)> under the real pairing."""
    rng = np.random.default_rng(0)
    y = ad.Tensor(rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4)))
    x = ad.Tensor(m)
    lhs = F.dot(F.fft2(x), y).item()
    rhs = F.dot(x, F.mul(F.ifft2(y), 16.0)).item()
    np.testing.assert_allclose(lhs, rhs, atol=1e-9)
