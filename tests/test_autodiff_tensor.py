"""Unit tests for the Tensor type and grad-mode switches."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F


class TestConstruction:
    def test_float_coercion(self):
        t = ad.Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_complex_coercion(self):
        t = ad.Tensor(np.array([1 + 2j], dtype=np.complex64))
        assert t.dtype == np.complex128
        assert t.is_complex

    def test_scalar(self):
        t = ad.Tensor(2.5)
        assert t.shape == ()
        assert t.item() == 2.5

    def test_as_tensor_passthrough(self):
        t = ad.Tensor([1.0])
        assert ad.as_tensor(t) is t

    def test_as_tensor_wraps(self):
        t = ad.as_tensor([1.0, 2.0])
        assert isinstance(t, ad.Tensor)

    def test_leaf_flag(self):
        t = ad.Tensor([1.0], requires_grad=True)
        assert t.is_leaf
        out = F.mul(t, 2.0)
        assert not out.is_leaf

    def test_len(self):
        assert len(ad.Tensor([1.0, 2.0, 3.0])) == 3


class TestGradMode:
    def test_default_enabled(self):
        assert ad.is_grad_enabled()

    def test_no_grad_blocks_graph(self):
        x = ad.Tensor([1.0], requires_grad=True)
        with ad.no_grad():
            y = F.mul(x, 3.0)
        assert y._vjp is None
        assert not y.requires_grad

    def test_enable_grad_inside_no_grad(self):
        x = ad.Tensor([1.0], requires_grad=True)
        with ad.no_grad():
            with ad.enable_grad():
                y = F.mul(x, 3.0)
        assert y.requires_grad

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with ad.no_grad():
                raise ValueError("boom")
        assert ad.is_grad_enabled()

    def test_requires_grad_propagates(self):
        a = ad.Tensor([1.0], requires_grad=True)
        b = ad.Tensor([2.0])
        assert F.add(a, b).requires_grad
        assert not F.add(b, b).requires_grad


class TestDetachClone:
    def test_detach_breaks_graph(self):
        x = ad.Tensor([1.0, 2.0], requires_grad=True)
        y = F.mul(x, 2.0).detach()
        assert not y.requires_grad
        assert y._vjp is None

    def test_detach_shares_data(self):
        x = ad.Tensor([1.0])
        assert x.detach().data is x.data

    def test_clone_keeps_graph(self):
        x = ad.Tensor([3.0], requires_grad=True)
        y = x.clone()
        (g,) = ad.grad(F.sum(y), [x])
        assert g.data == pytest.approx(1.0)


class TestOperatorSugar:
    def test_arithmetic_operators(self):
        a = ad.Tensor([2.0])
        b = ad.Tensor([4.0])
        assert (a + b).data[0] == 6.0
        assert (a - b).data[0] == -2.0
        assert (a * b).data[0] == 8.0
        assert (a / b).data[0] == 0.5
        assert (-a).data[0] == -2.0
        assert (a**2).data[0] == 4.0

    def test_reflected_operators(self):
        a = ad.Tensor([2.0])
        assert (1.0 + a).data[0] == 3.0
        assert (1.0 - a).data[0] == -1.0
        assert (3.0 * a).data[0] == 6.0
        assert (8.0 / a).data[0] == 4.0

    def test_getitem(self):
        a = ad.Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a[1, 0].data == 3.0

    def test_method_sugar(self):
        a = ad.Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10.0
        assert a.mean().item() == 2.5
        assert a.reshape(4).shape == (4,)
        assert a.reshape((4,)).shape == (4,)

    def test_backward_accumulates_into_grad(self):
        x = ad.Tensor([1.0, 2.0], requires_grad=True)
        F.sum(F.mul(x, x)).backward()
        np.testing.assert_allclose(x.grad.data, [2.0, 4.0])
        F.sum(F.mul(x, x)).backward()
        np.testing.assert_allclose(x.grad.data, [4.0, 8.0])
