"""Cross-backend conformance suite for the array-backend seam.

One parametrized battery runs against every registered backend that is
constructible in this environment — numpy always, the instrumented
strict backend always, torch when installed (CI's torch-CPU leg).  Each
backend must reproduce the fused ``incoherent_image`` /
``incoherent_image_stack`` forward and streamed VJP, survive
finite-difference gradcheck, match the exact HVP / mixed-JVP oracles
against their finite-difference counterparts, be invariant to the
stream chunk size, and agree with the conjugate-pair streaming
optimisation.  The numpy backend is additionally asserted to be
*bitwise* identical to the strict backend (tagging is a zero-copy
view), and torch-CPU gradients must match numpy to 1e-8 at float64.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.autodiff.grad import gradcheck
from repro.optics import backend, fftlib

S, N = 5, 12

TORCH_MISSING = "torch" not in backend.available_backends()

ALL_BACKENDS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("strict", id="strict"),
    pytest.param(
        "torch",
        id="torch",
        marks=pytest.mark.skipif(TORCH_MISSING, reason="torch not installed"),
    ),
]


@pytest.fixture(params=ALL_BACKENDS)
def bk_name(request) -> str:
    """Activate one backend for the duration of a test."""
    with backend.use_backend(request.param) as bk:
        if isinstance(bk, backend.StrictBackend):
            bk.reset()
        yield request.param


@pytest.fixture(scope="module")
def paired():
    """Real kernel stack with a verified frequency-reversal pairing."""
    rng = np.random.default_rng(21)
    k_reps = rng.standard_normal((3, N, N)) * 0.5
    kernels = np.stack(
        [
            k_reps[0],
            fftlib.freq_reverse(k_reps[0]),
            k_reps[1],
            fftlib.freq_reverse(k_reps[1]),
            k_reps[2] + fftlib.freq_reverse(k_reps[2]),  # self-paired
        ]
    )
    pairs = np.array([1, 0, 3, 2, 4])
    weights = np.array([0.9, 0.4, 0.7, 0.2, 0.5])
    return kernels, pairs, weights


@pytest.fixture(scope="module")
def complex_kernels() -> np.ndarray:
    rng = np.random.default_rng(7)
    return (
        rng.standard_normal((S, N, N)) + 1j * rng.standard_normal((S, N, N))
    ) * 0.3


def _mask(batch: bool = True) -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.standard_normal((3, N, N) if batch else (N, N))


def _loss_and_grads(kernels, weights, conj_pairs=None, chunk=None):
    mt = ad.Tensor(_mask(), requires_grad=True)
    wt = ad.Tensor(weights, requires_grad=True)
    out = F.incoherent_image(mt, kernels, wt, chunk=chunk, conj_pairs=conj_pairs)
    loss = F.sum(F.power(out, 2.0))
    gm, gw = ad.grad(loss, [mt, wt])
    return out.data, float(loss.data), gm.data, gw.data


# ----------------------------------------------------------------------
# the shared battery, per backend
# ----------------------------------------------------------------------
class TestPerBackend:
    def test_forward_matches_composed(self, bk_name, complex_kernels, paired):
        _, _, weights = paired
        with ad.no_grad():
            fused = F.incoherent_image(_mask(), complex_kernels, weights).data
            composed = F.incoherent_image_composed(
                _mask(), complex_kernels, weights
            ).data
        np.testing.assert_allclose(fused, composed, atol=1e-12)

    def test_fd_gradcheck_incoherent_image(self, bk_name, complex_kernels, paired):
        _, _, weights = paired
        gradcheck(
            lambda mt, wt: F.sum(
                F.power(F.incoherent_image(mt, complex_kernels, wt), 2.0)
            ),
            [ad.Tensor(_mask(False)), ad.Tensor(weights)],
            eps=1e-6,
            rtol=1e-4,
            atol=1e-6,
        )

    def test_fd_gradcheck_incoherent_image_stack(
        self, bk_name, complex_kernels, paired
    ):
        kernels, pairs, weights = paired
        gradcheck(
            lambda mt, wt: F.sum(
                F.power(
                    F.incoherent_image_stack(
                        mt,
                        [kernels, complex_kernels],
                        wt,
                        conj_pairs=[pairs, None],
                    ),
                    2.0,
                )
            ),
            [ad.Tensor(_mask(False)), ad.Tensor(weights)],
            eps=1e-6,
            rtol=1e-4,
            atol=1e-6,
        )

    def test_hvp_matches_fd_oracle(self, bk_name, complex_kernels, paired):
        """Exact double-backward HVP == finite-difference HVP."""
        _, _, weights = paired

        def loss_fn(mt):
            return F.sum(
                F.power(F.incoherent_image(mt, complex_kernels, weights), 2.0)
            )

        def grad_fn(mt):
            mt = ad.Tensor(mt.data, requires_grad=True)
            (g,) = ad.grad(loss_fn(mt), [mt])
            return g

        rng = np.random.default_rng(5)
        x = ad.Tensor(_mask(False))
        v = ad.Tensor(rng.standard_normal((N, N)))
        h_exact = ad.hvp(loss_fn, x, v)
        h_fd = ad.hvp_fd(grad_fn, x, v)
        scale = max(float(np.abs(h_fd.data).max()), 1e-30)
        np.testing.assert_allclose(
            h_exact.data, h_fd.data, rtol=1e-4, atol=1e-5 * scale
        )

    def test_mixed_jvp_matches_fd_oracle(self, bk_name, complex_kernels, paired):
        """Exact mixed second derivative == finite-difference oracle."""
        _, _, weights = paired

        def loss_fn(mt, wt):
            return F.sum(
                F.power(F.incoherent_image(mt, complex_kernels, wt), 2.0)
            )

        rng = np.random.default_rng(6)
        x = ad.Tensor(_mask(False))
        y = ad.Tensor(weights)
        v = ad.Tensor(rng.standard_normal((N, N)))
        mj = ad.mixed_jvp(loss_fn, x, y, v)

        def grad_y_fn(xt):
            xt = ad.Tensor(xt.data, requires_grad=True)
            yt = ad.Tensor(weights, requires_grad=True)
            (gy,) = ad.grad(loss_fn(xt, yt), [yt])
            return gy

        mj_fd = ad.mixed_jvp_fd(grad_y_fn, x, v)
        scale = max(float(np.abs(mj_fd.data).max()), 1e-30)
        np.testing.assert_allclose(
            mj.data, mj_fd.data, rtol=1e-4, atol=1e-5 * scale
        )

    @pytest.mark.parametrize("chunk", [1, 2, S + 7])
    def test_chunk_invariance(self, bk_name, complex_kernels, paired, chunk):
        _, _, weights = paired
        ref = _loss_and_grads(complex_kernels, weights, chunk=S)
        out = _loss_and_grads(complex_kernels, weights, chunk=chunk)
        for a, b in zip(out, ref):
            np.testing.assert_allclose(a, b, atol=1e-13)

    def test_conj_pair_streaming(self, bk_name, paired):
        """Paired (half-FFT) streaming == exact unpaired results."""
        kernels, pairs, weights = paired
        o1, l1, gm1, gw1 = _loss_and_grads(kernels, weights)
        o2, l2, gm2, gw2 = _loss_and_grads(kernels, weights, conj_pairs=pairs)
        np.testing.assert_allclose(o2, o1, atol=1e-12)
        np.testing.assert_allclose(l2, l1, rtol=1e-12)
        np.testing.assert_allclose(gm2, gm1, atol=1e-10)
        np.testing.assert_allclose(gw2, gw1, atol=1e-10)

    def test_stack_matches_per_condition_calls(self, bk_name, complex_kernels, paired):
        kernels, pairs, weights = paired
        m = _mask()
        with ad.no_grad():
            stacked = F.incoherent_image_stack(
                m, [kernels, complex_kernels], weights,
                conj_pairs=[pairs, None],
            ).data
            one_by_one = np.stack(
                [
                    F.incoherent_image(m, kernels, weights, conj_pairs=pairs).data,
                    F.incoherent_image(m, complex_kernels, weights).data,
                ]
            )
        np.testing.assert_allclose(stacked, one_by_one, atol=1e-13)


# ----------------------------------------------------------------------
# cross-backend agreement
# ----------------------------------------------------------------------
class TestCrossBackend:
    def test_strict_is_bitwise_numpy(self, complex_kernels, paired):
        """Strict tagging is a zero-copy view: results are bitwise numpy."""
        kernels, pairs, weights = paired
        with backend.use_backend("numpy"):
            ref = _loss_and_grads(kernels, weights, conj_pairs=pairs)
        with backend.use_backend("strict"):
            out = _loss_and_grads(kernels, weights, conj_pairs=pairs)
        for a, b in zip(out, ref):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.skipif(TORCH_MISSING, reason="torch not installed")
    def test_torch_cpu_grads_match_numpy(self, complex_kernels, paired):
        """numpy and torch-CPU gradients agree to 1e-8 at float64."""
        kernels, pairs, weights = paired
        for kern, cp in ((kernels, pairs), (complex_kernels, None)):
            with backend.use_backend("numpy"):
                o1, l1, gm1, gw1 = _loss_and_grads(kern, weights, conj_pairs=cp)
            with backend.use_backend("torch"):
                o2, l2, gm2, gw2 = _loss_and_grads(kern, weights, conj_pairs=cp)
            np.testing.assert_allclose(o2, o1, rtol=1e-8, atol=1e-10)
            np.testing.assert_allclose(l2, l1, rtol=1e-8)
            np.testing.assert_allclose(gm2, gm1, rtol=1e-8, atol=1e-8)
            np.testing.assert_allclose(gw2, gw1, rtol=1e-8, atol=1e-8)


# ----------------------------------------------------------------------
# backend protocol mechanics (selection, transfer, primitives)
# ----------------------------------------------------------------------
class TestBackendProtocol:
    def test_registry_and_availability(self):
        names = backend.registered_backends()
        for expected in ("numpy", "strict", "torch", "cupy"):
            assert expected in names
        avail = backend.available_backends()
        assert "numpy" in avail and "strict" in avail

    def test_host_singleton_is_numpy_backend(self):
        assert backend.get_backend("numpy") is backend.HOST
        assert isinstance(backend.HOST, backend.NumpyBackend)

    def test_use_backend_restores_previous(self):
        before = backend.active_backend().name
        with backend.use_backend("strict") as bk:
            assert bk.name == "strict"
            assert backend.active_backend() is bk
        assert backend.active_backend().name == before

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            backend.get_backend("no-such-backend")

    def test_env_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "strict")
        assert backend.env_default_backend() == "strict"
        monkeypatch.delenv("REPRO_BACKEND")
        assert backend.env_default_backend() == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError):
            backend.env_default_backend()

    def test_describe_names_active_backend(self):
        with backend.use_backend("strict"):
            assert backend.describe()["backend"] == "strict"
        assert backend.describe()["backend"] == backend.active_backend().name

    def test_coerce_host_policy(self, bk_name):
        bk = backend.active_backend()
        assert bk.coerce_host([1, 2, 3]).dtype == np.float64
        assert bk.coerce_host(np.ones(3, np.complex64)).dtype == np.complex128

    def test_primitives_match_numpy(self, bk_name):
        """Transfer roundtrip, abs2, fft2/ifft2, fftfreq, freq_reverse."""
        bk = backend.active_backend()
        rng = np.random.default_rng(9)
        x = rng.standard_normal((2, N, N)) + 1j * rng.standard_normal((2, N, N))
        dev = bk.from_host(x)
        np.testing.assert_array_equal(bk.to_host(dev), x)
        np.testing.assert_allclose(
            bk.to_host(bk.abs2(dev)), (x * np.conj(x)).real, atol=1e-13
        )
        np.testing.assert_allclose(
            bk.to_host(bk.fft2(dev)), np.fft.fft2(x), atol=1e-9
        )
        np.testing.assert_allclose(
            bk.to_host(bk.ifft2(bk.fft2(dev))), x, atol=1e-12
        )
        np.testing.assert_allclose(
            bk.to_host(bk.fftfreq(N, d=0.5)), np.fft.fftfreq(N, d=0.5),
            atol=1e-15,
        )
        np.testing.assert_array_equal(
            bk.to_host(bk.freq_reverse(bk.from_host(x.real))),
            fftlib.freq_reverse(x.real),
        )
        z = bk.to_host(bk.zeros((3, 4), bk.complex128))
        assert z.shape == (3, 4) and z.dtype == np.complex128 and not z.any()
