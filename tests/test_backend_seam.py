"""Seam-enforcement tests with the instrumented ``StrictBackend``.

The strict backend raises :class:`BackendSeamError` when a raw host
array reaches an FFT without entering through the seam
(``from_host``/``zeros``/``empty``), and counts the exact number of 2-D
transforms every call performs.  These tests prove two properties of
the hot path:

* a full BiSMO objective evaluation (forward + VJP) and the graph-free
  ``aerial_conditions_fast`` judge path execute with **zero**
  out-of-seam array ops — and remain *bitwise* identical to the numpy
  backend (strict tagging is a zero-copy ndarray view);
* the fused primitive performs **exactly** the predicted number of
  transforms, with the conjugate-pair reduction included — so a
  pairing regression (re-transforming mirrored kernels) fails an
  exact-count assertion here rather than only showing up in a bench.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.optics import AbbeImaging, OpticalConfig, backend, fftlib
from repro.smo.objective import BatchedSMOObjective
from repro.smo.parametrization import init_theta_mask, init_theta_source

N = 12
CHUNK = 8  # one stream chunk for the S=5 fixtures below


@pytest.fixture(scope="module")
def paired():
    rng = np.random.default_rng(21)
    k_reps = rng.standard_normal((3, N, N)) * 0.5
    kernels = np.stack(
        [
            k_reps[0],
            fftlib.freq_reverse(k_reps[0]),
            k_reps[1],
            fftlib.freq_reverse(k_reps[1]),
            k_reps[2] + fftlib.freq_reverse(k_reps[2]),  # self-paired
        ]
    )
    pairs = np.array([1, 0, 3, 2, 4])
    weights = np.array([0.9, 0.4, 0.7, 0.2, 0.5])
    return kernels, pairs, weights


@pytest.fixture(scope="module")
def smo_setup():
    cfg = OpticalConfig.preset("tiny")
    rng = np.random.default_rng(3)
    targets = (rng.random((2, cfg.mask_size, cfg.mask_size)) > 0.7).astype(
        np.float64
    )
    source = np.full((cfg.source_size,) * 2, 0.4)
    theta_j = init_theta_source(source, cfg)
    theta_m = init_theta_mask(targets, cfg)
    objective = BatchedSMOObjective(cfg, targets, engine=AbbeImaging(cfg))
    return cfg, source, targets, theta_j, theta_m, objective


def _expected_transforms(batch: int, s: int, cp) -> tuple:
    """(fft2, ifft2) transform counts for one fused forward + VJP.

    The forward transforms the mask batch once and inverse-transforms
    one field per streamed representative kernel; the backward
    recomputes the fields, forward-transforms them, and runs one final
    inverse transform for the mask cotangent.
    """
    reps = s if cp is None else int(np.count_nonzero(cp >= np.arange(s)))
    return batch + batch * reps, 2 * batch * reps + batch


def _fused_pass(kernels, weights, cp):
    rng = np.random.default_rng(11)
    mt = ad.Tensor(rng.standard_normal((3, N, N)), requires_grad=True)
    wt = ad.Tensor(weights, requires_grad=True)
    out = F.incoherent_image(mt, kernels, wt, chunk=CHUNK, conj_pairs=cp)
    loss = F.sum(F.power(out, 2.0))
    gm, gw = ad.grad(loss, [mt, wt])
    return out.data, gm.data, gw.data


class TestSeamEnforcement:
    def test_raw_array_rejected_by_ffts(self):
        bk = backend.get_backend("strict")
        raw = np.ones((4, 4), np.complex128)
        with pytest.raises(backend.BackendSeamError):
            bk.fft2(raw)
        with pytest.raises(backend.BackendSeamError):
            bk.ifft2(raw)
        # seam entries are accepted, and the tag survives slicing,
        # broadcasting arithmetic and in-place accumulation
        bk.fft2(bk.from_host(raw))
        derived = bk.from_host(raw)[0:2][None] * 2.0
        derived += bk.zeros(derived.shape, np.complex128)
        bk.ifft2(derived)

    def test_counters_reset(self):
        bk = backend.get_backend("strict")
        bk.reset()
        assert set(bk.counters) == {
            "from_host",
            "to_host",
            "alloc",
            "fft2_calls",
            "ifft2_calls",
            "fft2_transforms",
            "ifft2_transforms",
        }
        assert not any(bk.counters.values())


class TestExactTransformCounts:
    @pytest.mark.parametrize("use_pairs", [False, True], ids=["unpaired", "paired"])
    def test_fused_forward_backward(self, paired, use_pairs):
        kernels, pairs, weights = paired
        cp = pairs if use_pairs else None
        with backend.use_backend("strict") as bk:
            bk.reset()
            _fused_pass(kernels, weights, cp)
            counts = dict(bk.counters)
        n_fft2, n_ifft2 = _expected_transforms(3, len(kernels), cp)
        assert counts["fft2_transforms"] == n_fft2
        assert counts["ifft2_transforms"] == n_ifft2
        # single-chunk streaming: 1 forward + 1 backward fft2 call,
        # 1 forward + 1 recompute + 1 final-cotangent ifft2 call
        assert counts["fft2_calls"] == 2
        assert counts["ifft2_calls"] == 3

    def test_conj_pairs_reduce_transform_count(self, paired):
        """The pairing must actually halve the streamed work: 3
        representatives instead of 5 kernels."""
        kernels, pairs, _ = paired
        unpaired = _expected_transforms(3, len(kernels), None)
        paired_counts = _expected_transforms(3, len(kernels), pairs)
        assert paired_counts[0] < unpaired[0]
        assert paired_counts[1] < unpaired[1]

    def test_aerial_conditions_fast(self, smo_setup):
        """Graph-free judge path: B mask transforms and B*S field
        transforms per distinct pupil condition, nothing more."""
        cfg, source, targets, _, _, objective = smo_setup
        engine = objective.engine
        conditions = (0.0, 80.0)
        with fftlib.use(condition_workers=1):
            ref = engine.aerial_conditions_fast(targets, source, conditions)
            with backend.use_backend("strict") as bk:
                bk.reset()
                out = engine.aerial_conditions_fast(targets, source, conditions)
                counts = dict(bk.counters)
        np.testing.assert_array_equal(out, ref)
        n_cond = len(conditions)
        n_batch = targets.shape[0]
        n_src = engine._pupil_stack.data.shape[0]
        assert counts["fft2_calls"] == n_cond
        assert counts["fft2_transforms"] == n_cond * n_batch
        assert counts["ifft2_calls"] == n_cond * n_batch
        assert counts["ifft2_transforms"] == n_cond * n_batch * n_src


class TestBismoIterationUnderStrict:
    def test_full_objective_pass_is_in_seam_and_bitwise_numpy(self, smo_setup):
        """A complete BiSMO outer evaluation — fused condition-stack
        forward plus VJPs w.r.t. both source and mask parameters —
        runs under the strict backend (zero out-of-seam FFTs) and is
        bitwise identical to the numpy backend."""
        _, _, _, theta_j, theta_m, objective = smo_setup

        def one_pass():
            tj = ad.Tensor(theta_j, requires_grad=True)
            tm = ad.Tensor(theta_m, requires_grad=True)
            loss = objective.loss(tj, tm)
            gj, gm = ad.grad(loss, [tj, tm])
            return float(loss.data), gj.data, gm.data

        l_ref, gj_ref, gm_ref = one_pass()
        with backend.use_backend("strict") as bk:
            bk.reset()
            l_strict, gj_strict, gm_strict = one_pass()
            counts = dict(bk.counters)
        assert l_strict == l_ref
        np.testing.assert_array_equal(gj_strict, gj_ref)
        np.testing.assert_array_equal(gm_strict, gm_ref)
        # the hot path really went through the seam
        assert counts["fft2_calls"] > 0
        assert counts["ifft2_calls"] > 0
        assert counts["from_host"] > 0
        assert counts["to_host"] > 0

    def test_second_order_fallback_under_strict(self, smo_setup):
        """The create_graph composed-op fallback (BiSMO's exact HVP
        oracle) also stays inside the seam."""
        _, _, _, theta_j, theta_m, objective = smo_setup
        tm_fixed = ad.Tensor(theta_m)
        rng = np.random.default_rng(5)
        v = ad.Tensor(rng.standard_normal(theta_j.shape))
        x = ad.Tensor(theta_j)
        h_ref = ad.hvp(lambda tj: objective.loss(tj, tm_fixed), x, v)
        with backend.use_backend("strict") as bk:
            bk.reset()
            h_strict = ad.hvp(lambda tj: objective.loss(tj, tm_fixed), x, v)
            assert bk.counters["fft2_calls"] > 0
        np.testing.assert_array_equal(h_strict.data, h_ref.data)
