"""Tests for the NILT-style and DAC23-MILT-style comparators."""

import numpy as np
import pytest

from repro.baselines import MultiLevelILT, NILTBaseline
from repro.optics import OpticalConfig


class TestNILT:
    def test_decreases_loss(self, tiny_config, tiny_target, tiny_source):
        res = NILTBaseline(
            tiny_config, tiny_target, tiny_source, num_kernels=8
        ).run(iterations=10)
        assert res.final_loss < res.losses[0]
        assert res.method == "NILT"

    def test_objective_excludes_pvb(self, tiny_config, tiny_target, tiny_source):
        """NILT optimizes nominal printability only: its loss equals
        gamma * L2 with no eta term."""
        import repro.autodiff as ad
        from repro.smo import init_theta_mask
        from repro.smo.objective import dose_resist

        solver = NILTBaseline(tiny_config, tiny_target, tiny_source, num_kernels=8)
        tm = ad.Tensor(init_theta_mask(tiny_target, tiny_config))
        with ad.no_grad():
            loss = solver._loss(tm).item()
            from repro.smo import mask_from_theta

            mask = mask_from_theta(tm, tiny_config)
            aerial = solver.engine.aerial(mask)
            z = dose_resist(aerial, tiny_config, 1.0).data
        expected = tiny_config.gamma * ((z - tiny_target) ** 2).sum()
        assert loss == pytest.approx(expected, rel=1e-12)

    def test_custom_theta0(self, tiny_config, tiny_target, tiny_source):
        theta0 = np.zeros_like(tiny_target)
        res = NILTBaseline(
            tiny_config, tiny_target, tiny_source, num_kernels=4
        ).run(iterations=2, theta_m0=theta0)
        assert res.theta_m.shape == theta0.shape


class TestMILT:
    def test_decreases_loss_within_final_level(
        self, tiny_config, tiny_target, tiny_source
    ):
        # Loss traces from different levels use a pixel-count rescale and
        # are not comparable across the level switch; check monotone
        # improvement within the native-resolution level.
        res = MultiLevelILT(
            tiny_config, tiny_target, tiny_source, levels=2, num_kernels=8
        ).run(iterations=10)
        n_levels = 2
        first_fine = 10 // n_levels  # per-level split in run()
        assert res.final_loss < res.losses[first_fine]
        assert res.method == "DAC23-MILT"

    def test_final_theta_at_native_resolution(self, tiny_config, tiny_target, tiny_source):
        res = MultiLevelILT(
            tiny_config, tiny_target, tiny_source, levels=2, num_kernels=8
        ).run(iterations=6)
        assert res.theta_m.shape == tiny_target.shape

    def test_undersampled_levels_dropped(self, tiny_target, tiny_source):
        """Asking for more levels than Nyquist allows silently clamps."""
        cfg = OpticalConfig.preset("tiny")  # 32px/500nm; 8px level invalid
        solver = MultiLevelILT(cfg, tiny_target, tiny_source, levels=4, num_kernels=4)
        sizes = [c.mask_size for c in solver.level_configs]
        assert sizes[-1] == cfg.mask_size
        for c in solver.level_configs:
            c.validate_sampling()

    def test_iterations_distributed_across_levels(
        self, tiny_config, tiny_target, tiny_source
    ):
        res = MultiLevelILT(
            tiny_config, tiny_target, tiny_source, levels=2, num_kernels=4
        ).run(iterations=9)
        assert len(res.history) == 9

    def test_upsample_helper(self):
        theta = np.array([[1.0, 2.0], [3.0, 4.0]])
        up = MultiLevelILT._upsample_theta(theta, 2)
        assert up.shape == (4, 4)
        assert up[0, 0] == up[1, 1] == 1.0
        assert up[2, 2] == 4.0

    def test_downsample_target_binary(self):
        tgt = np.zeros((8, 8))
        tgt[:4, :4] = 1.0
        down = MultiLevelILT._downsample_target(tgt, 4)
        assert set(np.unique(down)) <= {0.0, 1.0}
        assert down[0, 0] == 1.0 and down[3, 3] == 0.0
