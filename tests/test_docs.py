"""Documentation health checks (the CI docs job runs exactly these).

* Every relative markdown link in README.md / docs/*.md must resolve to
  a file or directory in the repository.
* Every fenced ``python`` code block must be valid syntax
  (``compile()``), and every import statement inside it must actually
  import — a README snippet that names a moved/renamed symbol fails
  here instead of on a reader's machine.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    p
    for p in [REPO / "README.md", *(REPO / "docs").glob("*.md")]
    if p.exists()
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_IMPORT = re.compile(r"^(?:from\s+[\w.]+\s+import\s+.+|import\s+[\w.]+.*)$")


def _doc_ids():
    return [str(p.relative_to(REPO)) for p in DOC_FILES]


def test_docs_exist():
    assert DOC_FILES, "no markdown documentation found"
    names = _doc_ids()
    assert "README.md" in names
    assert any(n.startswith("docs/") for n in names), (
        "docs/ARCHITECTURE.md (or another docs/*.md) is missing"
    )


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_relative_links_resolve(doc: Path):
    text = doc.read_text()
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"broken relative links in {doc.name}: {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_python_snippets_compile(doc: Path):
    blocks = _FENCE.findall(doc.read_text())
    for i, block in enumerate(blocks):
        try:
            compile(block, f"{doc.name}[snippet {i}]", "exec")
        except SyntaxError as exc:  # pragma: no cover - failure path
            pytest.fail(f"{doc.name} snippet {i} does not compile: {exc}")


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_python_snippet_imports_resolve(doc: Path):
    """Execute only the import lines of each snippet: cheap, and catches
    renamed modules/symbols referenced by the documentation."""
    blocks = _FENCE.findall(doc.read_text())
    for i, block in enumerate(blocks):
        imports = "\n".join(
            line
            for line in block.splitlines()
            if _IMPORT.match(line.strip()) and "<" not in line
        )
        if not imports:
            continue
        try:
            exec(compile(imports, f"{doc.name}[snippet {i} imports]", "exec"), {})
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"{doc.name} snippet {i} imports fail: {exc}\n{imports}"
            )
