"""Tests for the unified FFT dispatch layer (:mod:`repro.optics.fftlib`):
backend selection, worker determinism, the inference precision policy,
and policy plumbing into the imaging fast paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optics import fftlib
from repro.optics.engine import incoherent_sum_fast


@pytest.fixture(autouse=True)
def _restore_policy():
    """Every test runs against the default policy and restores it."""
    with fftlib.use(backend="auto", workers=0, precision="double", chunk=16):
        yield


@pytest.fixture()
def batch(rng) -> np.ndarray:
    return rng.standard_normal((3, 16, 16))


class TestBackends:
    def test_auto_prefers_scipy_when_available(self):
        assert fftlib.get_backend() in fftlib.available_backends()
        if "scipy" in fftlib.available_backends():
            assert fftlib.get_backend() == "scipy"

    def test_backends_agree(self, batch):
        results = {}
        for name in fftlib.available_backends():
            with fftlib.use(backend=name):
                results[name] = (
                    fftlib.fft2(batch),
                    fftlib.ifft2(batch.astype(np.complex128)),
                    fftlib.fftfreq(16, d=0.5),
                )
        ref_f, ref_i, ref_q = (
            np.fft.fft2(batch),
            np.fft.ifft2(batch),
            np.fft.fftfreq(16, d=0.5),
        )
        for name, (f, i, q) in results.items():
            np.testing.assert_allclose(f, ref_f, atol=1e-12, err_msg=name)
            np.testing.assert_allclose(i, ref_i, atol=1e-12, err_msg=name)
            np.testing.assert_array_equal(q, ref_q, err_msg=name)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            fftlib.set_backend("fftw")

    def test_use_restores_state(self):
        before = fftlib.describe()
        with fftlib.use(workers=3, precision="single", chunk=4):
            assert fftlib.get_workers() == 3
            assert fftlib.get_precision() == "single"
            assert fftlib.get_stream_chunk() == 4
        assert fftlib.describe() == before

    def test_use_restores_on_error(self):
        before = fftlib.describe()
        with pytest.raises(RuntimeError):
            with fftlib.use(workers=5):
                raise RuntimeError("boom")
        assert fftlib.describe() == before


class TestWorkers:
    def test_validation(self):
        with pytest.raises(ValueError):
            fftlib.set_workers(-1)
        fftlib.set_workers(0)
        assert fftlib.effective_workers() >= 1

    def test_multiworker_results_bitwise_identical(self, batch):
        """pocketfft threads across independent transforms — no
        cross-thread reductions, so results must be bitwise equal."""
        with fftlib.use(workers=1):
            serial = fftlib.fft2(batch)
        with fftlib.use(workers=4):
            threaded = fftlib.fft2(batch)
        np.testing.assert_array_equal(serial, threaded)


class TestPrecisionPolicy:
    def test_compute_dtypes(self):
        assert fftlib.compute_dtypes() == (np.float64, np.complex128)
        with fftlib.use(precision="single"):
            assert fftlib.compute_dtypes() == (np.float32, np.complex64)
        with pytest.raises(ValueError):
            fftlib.set_precision("half")

    def test_incoherent_sum_fast_honors_policy(self, rng):
        tiles = rng.random((2, 16, 16))
        kernels = rng.standard_normal((4, 16, 16)) * 0.4
        weights = np.array([0.5, 0.0, 0.3, 0.2])  # includes an exact zero
        ref = incoherent_sum_fast(tiles, kernels, weights, norm=1.0)
        with fftlib.use(precision="single"):
            single = incoherent_sum_fast(tiles, kernels, weights, norm=1.0)
        assert ref.dtype == np.float64 and single.dtype == np.float64
        np.testing.assert_allclose(single, ref, rtol=2e-4, atol=1e-5)
        if fftlib.get_backend() == "scipy":
            # complex64 transforms actually ran -> results differ in the
            # low bits (np.fft computes in double regardless, documented
            # best-effort behaviour of the numpy backend).
            assert np.abs(single - ref).max() > 0

    def test_incoherent_sum_fast_complex_tiles(self, rng):
        """Complex (e.g. phase-shift) tiles keep their imaginary part
        through the compute-dtype cast."""
        tiles = rng.random((2, 16, 16)) + 1j * rng.random((2, 16, 16))
        kernels = rng.standard_normal((3, 16, 16)) * 0.4
        weights = np.array([0.6, 0.3, 0.1])
        out = incoherent_sum_fast(tiles, kernels, weights, norm=1.0)
        fields = np.fft.ifft2(kernels[None] * np.fft.fft2(tiles)[:, None])
        ref = np.einsum("s,bsij->bij", weights, np.abs(fields) ** 2)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            fftlib.set_stream_chunk(0)
        fftlib.set_stream_chunk(8)
        assert fftlib.get_stream_chunk() == 8


class TestAutodiffDispatch:
    def test_functional_ffts_follow_backend(self, batch):
        """The differentiable fft2/ifft2 run on whatever fftlib selects."""
        from repro.autodiff import functional as F

        outs = {}
        for name in fftlib.available_backends():
            with fftlib.use(backend=name):
                outs[name] = F.fft2(batch).data
        for name, value in outs.items():
            np.testing.assert_allclose(
                value, np.fft.fft2(batch), atol=1e-12, err_msg=name
            )

    def test_cache_freq_axes_match_numpy(self):
        from repro.optics import OpticalConfig
        from repro.optics import cache

        cfg = OpticalConfig.preset("tiny")
        f, _ = cache.freq_axes(cfg)
        np.testing.assert_allclose(
            f, np.fft.fftfreq(cfg.mask_size, d=cfg.pixel_nm)
        )
