"""Tests for EPE measurement sites and contour probing."""

import numpy as np
import pytest

from repro.geometry import (
    EPESite,
    GridSpec,
    Rect,
    edge_sites,
    measure_epe,
    rasterize,
)


class TestEdgeSites:
    def test_rect_has_sites_on_all_four_edges(self):
        sites = edge_sites([Rect(100, 100, 300, 200)], spacing_nm=50)
        normals = {s.normal for s in sites}
        assert normals == {(0.0, -1.0), (0.0, 1.0), (-1.0, 0.0), (1.0, 0.0)}

    def test_spacing_controls_count(self):
        few = edge_sites([Rect(0, 0, 400, 400)], spacing_nm=200)
        many = edge_sites([Rect(0, 0, 400, 400)], spacing_nm=50)
        assert len(many) > len(few)

    def test_sites_lie_on_edges(self):
        r = Rect(100, 100, 300, 200)
        for s in edge_sites([r], spacing_nm=60):
            on_x_edge = s.x_nm in (r.x1, r.x2) and r.y1 <= s.y_nm <= r.y2
            on_y_edge = s.y_nm in (r.y1, r.y2) and r.x1 <= s.x_nm <= r.x2
            assert on_x_edge or on_y_edge

    def test_corner_margin_respected(self):
        r = Rect(0, 0, 100, 100)
        for s in edge_sites([r], spacing_nm=20, corner_margin_nm=15):
            if s.normal[0] != 0:  # vertical edge: y varies
                assert 15 <= s.y_nm <= 85
            else:
                assert 15 <= s.x_nm <= 85

    def test_tiny_edge_skipped(self):
        # edge shorter than twice the corner margin has no usable span
        sites = edge_sites([Rect(0, 0, 15, 400)], spacing_nm=50, corner_margin_nm=10)
        vertical_normals = [s for s in sites if s.normal[1] != 0]
        assert not vertical_normals

    def test_shared_edges_excluded(self):
        # two abutting rects: the shared edge is interior, not printable
        a, b = Rect(0, 0, 100, 100), Rect(100, 0, 200, 100)
        sites = edge_sites([a, b], spacing_nm=30)
        for s in sites:
            assert not (s.x_nm == 100 and s.normal[0] != 0)

    def test_is_vertical_edge_flag(self):
        assert EPESite(0, 0, (1.0, 0.0)).is_vertical_edge
        assert not EPESite(0, 0, (0.0, 1.0)).is_vertical_edge


class TestMeasureEPE:
    def _setup(self, print_rect, target_rect=Rect(100, 100, 300, 200)):
        grid = GridSpec(64, 5.0)  # 320 nm tile
        printed = rasterize([print_rect], grid)
        sites = edge_sites([target_rect], spacing_nm=40)
        return measure_epe(printed, sites, grid), sites

    def test_perfect_print_near_zero(self):
        errors, _ = self._setup(Rect(100, 100, 300, 200))
        assert np.abs(errors).max() < 3.0  # within sub-pixel interpolation

    def test_uniform_shrink_negative(self):
        errors, _ = self._setup(Rect(110, 110, 290, 190))
        assert np.all(errors < 0)
        assert np.abs(np.abs(errors).mean() - 10.0) < 3.0

    def test_uniform_bloat_positive(self):
        errors, _ = self._setup(Rect(90, 90, 310, 210))
        assert np.all(errors > 0)
        assert np.abs(errors.mean() - 10.0) < 3.0

    def test_nothing_printed_saturates(self):
        grid = GridSpec(64, 5.0)
        printed = np.zeros((64, 64))
        sites = edge_sites([Rect(100, 100, 300, 200)], spacing_nm=40)
        errors = measure_epe(printed, sites, grid, max_search_nm=80.0)
        np.testing.assert_allclose(errors, -80.0)

    def test_one_sided_shift(self):
        # only the right edge moves: sites on the right edge see the shift;
        # top/bottom sites beyond the printed extent (x > 280) legitimately
        # report catastrophic misses and are excluded here.
        errors, sites = self._setup(Rect(100, 100, 280, 200))
        right = [e for e, s in zip(errors, sites) if s.normal == (1.0, 0.0)]
        others = [
            e
            for e, s in zip(errors, sites)
            if s.normal != (1.0, 0.0) and s.x_nm <= 270
        ]
        assert np.all(np.array(right) < -15)
        assert np.abs(np.array(others)).max() < 5.0
