"""Tests for rectilinear polygon decomposition."""

import pytest

from repro.geometry import Rect, RectilinearPolygon, decompose, total_area


class TestPolygonValidation:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            RectilinearPolygon([(0, 0), (1, 0), (1, 1)])

    def test_diagonal_edge_rejected(self):
        with pytest.raises(ValueError):
            RectilinearPolygon([(0, 0), (5, 5), (5, 0), (0, 5)])

    def test_from_rect(self):
        poly = RectilinearPolygon.from_rect(Rect(0, 0, 4, 2))
        assert poly.area() == 8
        assert poly.bounding_box() == Rect(0, 0, 4, 2)


class TestDecompose:
    def test_rectangle(self):
        poly = RectilinearPolygon.from_rect(Rect(0, 0, 10, 5))
        assert decompose(poly) == [Rect(0, 0, 10, 5)]

    def test_l_shape(self):
        # L: 10x10 square minus its top-right 5x5 quadrant
        poly = RectilinearPolygon(
            [(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)]
        )
        rects = decompose(poly)
        assert total_area(rects) == poly.area() == 75
        # disjointness
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.intersects(b)

    def test_t_shape(self):
        poly = RectilinearPolygon(
            [(0, 0), (30, 0), (30, 10), (20, 10), (20, 30), (10, 30), (10, 10), (0, 10)]
        )
        rects = decompose(poly)
        assert total_area(rects) == poly.area() == 500

    def test_u_shape(self):
        poly = RectilinearPolygon(
            [(0, 0), (30, 0), (30, 20), (20, 20), (20, 10), (10, 10), (10, 20), (0, 20)]
        )
        rects = decompose(poly)
        assert total_area(rects) == poly.area() == 500

    def test_area_shoelace_orientation_invariant(self):
        cw = RectilinearPolygon([(0, 0), (0, 5), (5, 5), (5, 0)])
        ccw = RectilinearPolygon([(0, 0), (5, 0), (5, 5), (0, 5)])
        assert cw.area() == ccw.area() == 25

    def test_to_rects_method(self):
        poly = RectilinearPolygon.from_rect(Rect(2, 3, 9, 8))
        assert poly.to_rects() == [Rect(2, 3, 9, 8)]

    def test_vertical_merge_inside_decompose(self):
        # A plain rectangle defined with an extra collinear slab boundary
        # should still come back as one rect.
        poly = RectilinearPolygon(
            [(0, 0), (10, 0), (10, 5), (10, 10), (0, 10), (0, 5)]
        )
        assert decompose(poly) == [Rect(0, 0, 10, 10)]
