"""Tests for rasterization and vectorization."""

import numpy as np
import pytest

from repro.geometry import GridSpec, Rect, downsample_binary, grid_to_rects, rasterize


class TestGridSpec:
    def test_properties(self):
        g = GridSpec(100, 5.0)
        assert g.extent_nm == 500.0
        assert g.pixel_area_nm2 == 25.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            GridSpec(0, 5.0)
        with pytest.raises(ValueError):
            GridSpec(10, -1.0)

    def test_coordinate_roundtrip(self):
        g = GridSpec(64, 4.0, origin_nm=(10.0, 20.0))
        col, row = g.to_pixels(26.0, 36.0)
        assert (col, row) == (4.0, 4.0)
        assert g.to_nm(col, row) == (26.0, 36.0)

    def test_centered_on(self):
        g = GridSpec(10, 10.0).centered_on([Rect(40, 40, 60, 60)])
        col, row = g.to_pixels(50, 50)
        assert col == pytest.approx(5.0)
        assert row == pytest.approx(5.0)


class TestRasterize:
    def test_exact_pixel_aligned_area(self):
        g = GridSpec(16, 10.0)
        img = rasterize([Rect(20, 30, 60, 80)], g)
        assert img.sum() * g.pixel_area_nm2 == pytest.approx(40 * 50)

    def test_antialias_partial_pixels(self):
        g = GridSpec(4, 10.0)
        img = rasterize([Rect(5, 0, 15, 10)], g)  # half of px0, half of px1
        np.testing.assert_allclose(img[0, :2], [0.5, 0.5])

    def test_no_antialias_uses_pixel_centres(self):
        g = GridSpec(4, 10.0)
        img = rasterize([Rect(0, 0, 16, 10)], g, antialias=False)
        # covers centres of pixels 0 (5nm) and 1 (15nm), not 2 (25nm)
        np.testing.assert_allclose(img[0], [1.0, 1.0, 0.0, 0.0])

    def test_out_of_bounds_clipped(self):
        g = GridSpec(4, 10.0)
        img = rasterize([Rect(-100, -100, 5, 5)], g)
        assert img[0, 0] == pytest.approx(0.25)
        assert img.sum() == pytest.approx(0.25)

    def test_fully_outside_ignored(self):
        g = GridSpec(4, 10.0)
        img = rasterize([Rect(100, 100, 110, 110)], g)
        assert img.sum() == 0.0

    def test_row_is_y_col_is_x(self):
        g = GridSpec(8, 10.0)
        img = rasterize([Rect(0, 50, 10, 60)], g, antialias=False)
        assert img[5, 0] == 1.0
        assert img[0, 5] == 0.0

    def test_values_clipped_to_one_on_overlap(self):
        g = GridSpec(4, 10.0)
        img = rasterize([Rect(0, 0, 20, 20), Rect(0, 0, 20, 20)], g)
        assert img.max() <= 1.0


class TestGridToRects:
    def test_roundtrip_single_rect(self):
        g = GridSpec(16, 10.0)
        rect = Rect(20, 30, 60, 80)
        img = rasterize([rect], g)
        assert grid_to_rects(img, g) == [rect]

    def test_roundtrip_two_rects(self):
        g = GridSpec(32, 10.0)
        rects = [Rect(10, 10, 50, 30), Rect(100, 200, 180, 240)]
        img = rasterize(rects, g)
        assert grid_to_rects(img, g) == sorted(rects)

    def test_empty_image(self):
        g = GridSpec(8, 10.0)
        assert grid_to_rects(np.zeros((8, 8)), g) == []

    def test_l_shape_cover_area(self):
        g = GridSpec(16, 10.0)
        rects = [Rect(0, 0, 100, 50), Rect(0, 50, 50, 100)]
        img = rasterize(rects, g)
        out = grid_to_rects(img, g)
        from repro.geometry import total_area

        assert total_area(out) == total_area(rects)


class TestDownsample:
    def test_block_average(self):
        img = np.arange(16, dtype=float).reshape(4, 4)
        out = downsample_binary(img, 2)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx(img[:2, :2].mean())

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            downsample_binary(np.zeros((6, 6)), 4)
