"""Tests for the Rect primitive and union-area accounting."""

import pytest

from repro.geometry import Rect, bounding_box, merge_touching, total_area


class TestRect:
    def test_basic_properties(self):
        r = Rect(0, 0, 10, 20)
        assert r.width == 10
        assert r.height == 20
        assert r.area == 200
        assert r.center == (5.0, 10.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(5, 5, 3, 10)

    def test_shifted(self):
        assert Rect(0, 0, 2, 2).shifted(3, 4) == Rect(3, 4, 5, 6)

    def test_scaled(self):
        assert Rect(0, 0, 10, 10).scaled(0.5) == Rect(0, 0, 5, 5)

    def test_intersects(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(5, 5, 15, 15))
        assert not a.intersects(Rect(10, 0, 20, 10))  # touching edges don't overlap
        assert not a.intersects(Rect(20, 20, 30, 30))

    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersection(Rect(5, 5, 15, 15)) == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(10, 10, 20, 20)) is None

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert r.contains_point(9.99, 9.99)
        assert not r.contains_point(10, 5)

    def test_expanded(self):
        assert Rect(5, 5, 10, 10).expanded(2) == Rect(3, 3, 12, 12)

    def test_ordering_is_deterministic(self):
        rects = [Rect(5, 0, 6, 1), Rect(0, 0, 1, 1), Rect(0, 5, 1, 6)]
        assert sorted(rects)[0] == Rect(0, 0, 1, 1)


class TestBoundingBox:
    def test_single(self):
        assert bounding_box([Rect(1, 2, 3, 4)]) == Rect(1, 2, 3, 4)

    def test_multiple(self):
        bb = bounding_box([Rect(0, 0, 1, 1), Rect(5, 7, 9, 8)])
        assert bb == Rect(0, 0, 9, 8)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])


class TestTotalArea:
    def test_disjoint(self):
        assert total_area([Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)]) == 8

    def test_overlapping_counted_once(self):
        assert total_area([Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)]) == 28

    def test_contained(self):
        assert total_area([Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)]) == 100

    def test_empty(self):
        assert total_area([]) == 0

    def test_complex_union(self):
        # plus-sign shape from two crossing bars
        bars = [Rect(0, 4, 10, 6), Rect(4, 0, 6, 10)]
        assert total_area(bars) == 20 + 20 - 4


class TestMergeTouching:
    def test_horizontal_merge(self):
        merged = merge_touching([Rect(0, 0, 5, 2), Rect(5, 0, 9, 2)])
        assert merged == [Rect(0, 0, 9, 2)]

    def test_vertical_merge(self):
        merged = merge_touching([Rect(0, 0, 2, 5), Rect(0, 5, 2, 9)])
        assert merged == [Rect(0, 0, 2, 9)]

    def test_no_merge_different_heights(self):
        rects = [Rect(0, 0, 5, 2), Rect(5, 0, 9, 3)]
        assert len(merge_touching(rects)) == 2

    def test_chain_merges(self):
        rects = [Rect(0, 0, 1, 1), Rect(1, 0, 2, 1), Rect(2, 0, 3, 1)]
        assert merge_touching(rects) == [Rect(0, 0, 3, 1)]
