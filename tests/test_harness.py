"""Tests for the experiment harness: runner, tables, figures, CLI, report."""

import numpy as np
import pytest

from repro.harness import (
    METHOD_ORDER,
    RunRecord,
    RunSettings,
    ascii_plot,
    figure3_series,
    figure5_stats,
    render_series,
    render_table,
    run_clip,
    run_matrix,
    table3,
    table4,
    table_to_csv,
)
from repro.harness.cli import build_parser, main
from repro.harness.figures import FigureSeries
from repro.layouts import Clip, Dataset, iccad13
from repro.geometry import Rect
from repro.layouts.synth import ClipStyle
from repro.optics import OpticalConfig


def _tiny_clip() -> Clip:
    """A small clip in the 500 nm tiny tile."""
    return Clip(
        name="unit_clip",
        rects=(Rect(150, 100, 350, 180), Rect(150, 260, 220, 420)),
        cd_nm=32,
        tile_nm=500,
    )


def _settings(iterations=4) -> RunSettings:
    return RunSettings(
        config=OpticalConfig.preset("tiny"),
        iterations=iterations,
        num_kernels=8,
        unroll_steps=1,
        terms=2,
    )


def _tiny_dataset(n_clips=2) -> Dataset:
    clips = tuple(
        Clip(
            name=f"c{i}",
            rects=(Rect(100 + 30 * i, 100, 300, 180),),
            cd_nm=32,
            tile_nm=500,
        )
        for i in range(n_clips)
    )
    style = ClipStyle(name="T", cd_nm=32, tile_nm=500, target_area_nm2=20000)
    return Dataset(name="TINY", clips=clips, style=style)


class TestRunClip:
    @pytest.mark.parametrize(
        "method", ["NILT", "DAC23-MILT", "Abbe-MO", "BiSMO-FD"]
    )
    def test_methods_produce_records(self, method):
        rec = run_clip(method, _tiny_clip(), _settings(), "TINY")
        assert rec.method == method
        assert rec.dataset == "TINY"
        assert rec.l2_nm2 >= 0
        assert rec.pvb_nm2 >= 0
        assert rec.epe_violations >= 0
        assert rec.runtime_s > 0
        assert len(rec.losses) > 0

    def test_am_smo_step_budget(self):
        rec = run_clip("AM-SMO(Abbe-Abbe)", _tiny_clip(), _settings(8), "TINY")
        # equal mask updates + SO overhead: >= one (5 SO + 10 MO) round
        assert len(rec.losses) >= 15

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            run_clip("Quantum-SMO", _tiny_clip(), _settings(), "TINY")

    def test_tile_mismatch_raises(self):
        clip = Clip(name="big", rects=(Rect(0, 0, 100, 100),), cd_nm=32, tile_nm=2000)
        with pytest.raises(ValueError):
            run_clip("Abbe-MO", clip, _settings(), "TINY")


class TestTables:
    @pytest.fixture(scope="class")
    def records(self):
        ds = _tiny_dataset(1)
        return run_matrix(
            [ds],
            _settings(3),
            methods=("NILT", "Abbe-MO", "BiSMO-NMN"),
        )

    def test_run_matrix_covers_all(self, records):
        assert len(records) == 3
        assert {r.method for r in records} == {"NILT", "Abbe-MO", "BiSMO-NMN"}

    def test_table3_structure(self, records):
        t = table3(records)
        labels = [label for label, _ in t.rows]
        assert labels == ["TINY", "Average", "Ratio"]
        assert len(t.columns) == 6  # 3 methods x (L2, PVB)

    def test_table3_ratio_reference_is_one(self, records):
        t = table3(records)
        ratio = t.row("Ratio")
        idx = t.columns.index("BiSMO-NMN L2")
        assert ratio[idx] == pytest.approx(1.0)

    def test_table4_structure(self, records):
        t = table4(records)
        labels = [label for label, _ in t.rows]
        assert labels == ["EPE avg.", "EPE ratio", "TAT avg. (s)", "TAT ratio"]
        assert t.columns == ["NILT", "Abbe-MO", "BiSMO-NMN"]

    def test_method_order_preserved(self, records):
        t = table4(records)
        assert t.columns.index("NILT") < t.columns.index("Abbe-MO")

    def test_render_and_csv(self, records, tmp_path):
        t = table3(records)
        text = render_table(t)
        assert "Table 3" in text and "Ratio" in text
        path = tmp_path / "t3.csv"
        table_to_csv(t, path)
        assert path.read_text().startswith("Table 3")


class TestFigures:
    def test_figure3_series(self):
        series = figure3_series(
            _tiny_clip(),
            _settings(3),
            methods=("Abbe-MO", "BiSMO-FD"),
            dataset_name="TINY",
        )
        assert len(series) == 2
        assert series[0].style == "dashed"  # Abbe-MO is an MO method
        assert series[1].style == "solid"
        assert np.all(np.isfinite(series[0].values))

    def test_figure5_stats(self):
        ds = _tiny_dataset(2)
        stats = figure5_stats(
            ds, _settings(6), methods=("BiSMO-FD",), step_window=(1, 5)
        )
        data = stats["BiSMO-FD"]
        assert data["mean"].shape == data["std"].shape
        assert len(data["steps"]) == len(data["mean"])
        assert np.all(data["std"] >= 0)


class TestReportRendering:
    def test_render_series(self):
        s = [
            FigureSeries("a", np.arange(3), np.array([1.0, 2.0, 3.0])),
            FigureSeries("b", np.arange(2), np.array([5.0, 6.0]), style="dashed"),
        ]
        out = render_series(s)
        assert out.splitlines()[0] == "step,a[solid],b[dashed]"
        assert out.splitlines()[3].endswith(",")  # b exhausted

    def test_ascii_plot(self):
        s = [FigureSeries("x", np.arange(10), np.linspace(0, 1, 10))]
        art = ascii_plot(s, width=20, height=6)
        assert "a=x" in art
        assert "a" in art.splitlines()[0] + art.splitlines()[-2]


class TestCLI:
    def test_parser_commands(self):
        p = build_parser()
        args = p.parse_args(["table3", "--scale", "tiny", "--clips", "1"])
        assert args.command == "table3"
        assert args.scale == "tiny"

    def test_parser_fig3_options(self):
        p = build_parser()
        args = p.parse_args(["fig3", "--dataset", "ISPD19", "--steps", "10"])
        assert args.dataset == "ISPD19"
        assert args.steps == 10

    def test_parser_rejects_unknown_dataset(self):
        p = build_parser()
        with pytest.raises(SystemExit):
            p.parse_args(["fig3", "--dataset", "FAKE"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
