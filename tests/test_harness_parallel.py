"""Tests for the sharded parallel sweep and the joint multi-clip harness
mode: a ``workers=2`` run must reproduce the serial records exactly, and
``joint=True`` must produce one record per clip from a single shared
solve."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Rect
from repro.harness import RunSettings, run_joint, run_matrix
from repro.harness.cli import build_parser
from repro.layouts import Clip, Dataset
from repro.layouts.synth import ClipStyle
from repro.optics import OpticalConfig

METHODS = ("NILT", "Abbe-MO", "BiSMO-NMN")


def _tiny_dataset(n_clips: int = 2) -> Dataset:
    clips = tuple(
        Clip(
            name=f"c{i}",
            rects=(Rect(100 + 30 * i, 100, 300, 180),),
            cd_nm=32,
            tile_nm=500,
        )
        for i in range(n_clips)
    )
    style = ClipStyle(name="T", cd_nm=32, tile_nm=500, target_area_nm2=20000)
    return Dataset(name="TINY", clips=clips, style=style)


def _settings(iterations: int = 2) -> RunSettings:
    return RunSettings(
        config=OpticalConfig.preset("tiny"),
        iterations=iterations,
        num_kernels=8,
        unroll_steps=1,
        terms=2,
    )


def _assert_records_identical(serial, parallel):
    """Byte-identical deterministic content; only wall-clock may differ."""
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert (a.method, a.dataset, a.clip) == (b.method, b.dataset, b.clip)
        assert a.l2_nm2 == b.l2_nm2
        assert a.pvb_nm2 == b.pvb_nm2
        assert a.epe_violations == b.epe_violations
        assert a.epe_mean_nm == b.epe_mean_nm
        assert a.final_loss == b.final_loss
        assert a.losses.tobytes() == b.losses.tobytes()


class TestParallelSweep:
    def test_workers_records_match_serial(self):
        ds = _tiny_dataset(2)
        settings = _settings()
        serial = run_matrix([ds], settings, methods=METHODS)
        parallel = run_matrix([ds], settings, methods=METHODS, workers=2)
        _assert_records_identical(serial, parallel)

    def test_serial_order_is_clip_major(self):
        ds = _tiny_dataset(2)
        records = run_matrix([ds], _settings(), methods=METHODS[:2])
        keys = [(r.clip, r.method) for r in records]
        assert keys == [
            ("c0", "NILT"),
            ("c0", "Abbe-MO"),
            ("c1", "NILT"),
            ("c1", "Abbe-MO"),
        ]

    def test_progress_labels_cover_all_cells(self):
        ds = _tiny_dataset(1)
        seen = []
        run_matrix([ds], _settings(), methods=METHODS[:2], progress=seen.append)
        assert [(e.label, e.status) for e in seen] == [
            ("TINY/c0/NILT", "start"),
            ("TINY/c0/NILT", "ok"),
            ("TINY/c0/Abbe-MO", "start"),
            ("TINY/c0/Abbe-MO", "ok"),
        ]
        # terminal events carry the measured wall clock and attempt count
        for e in seen:
            if e.status == "ok":
                assert e.seconds is not None and e.seconds >= 0
                assert e.attempts == 1
        # string rendering keeps the CLI's printable form
        assert str(seen[0]) == "TINY/c0/NILT"
        assert str(seen[1]).startswith("TINY/c0/NILT [ok ")


class TestJointMode:
    def test_joint_one_record_per_clip(self):
        ds = _tiny_dataset(2)
        records = run_matrix([ds], _settings(), methods=METHODS, joint=True)
        assert len(records) == len(METHODS) * 2
        keys = [(r.method, r.clip) for r in records]
        assert keys[:2] == [("NILT", "c0"), ("NILT", "c1")]
        for r in records:
            assert np.isfinite(r.final_loss)
            assert len(r.losses) > 0
            assert r.runtime_s > 0

    def test_joint_parallel_matches_joint_serial(self):
        ds = _tiny_dataset(2)
        settings = _settings()
        serial = run_matrix([ds], settings, methods=METHODS, joint=True)
        parallel = run_matrix(
            [ds], settings, methods=METHODS, joint=True, workers=2
        )
        _assert_records_identical(serial, parallel)

    def test_run_joint_tile_traces_differ_per_clip(self):
        ds = _tiny_dataset(2)
        records = run_joint("BiSMO-NMN", list(ds), _settings(3), "TINY")
        assert len(records) == 2
        # per-clip traces come from the solver's per-tile loss history
        assert not np.array_equal(records[0].losses, records[1].losses)
        assert records[0].final_loss == records[0].losses[-1]

    def test_joint_runtime_is_amortized(self):
        ds = _tiny_dataset(2)
        records = run_joint("Abbe-MO", list(ds), _settings(), "TINY")
        # both clips report the same per-clip share of one joint solve
        assert records[0].runtime_s == pytest.approx(records[1].runtime_s)


class TestCLIFlags:
    def test_workers_and_joint_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table3", "--scale", "tiny", "--workers", "4", "--joint"]
        )
        assert args.workers == 4
        assert args.joint is True

    def test_flags_default_to_serial_per_clip(self):
        args = build_parser().parse_args(["table4"])
        assert args.workers == 1
        assert args.joint is False

    def test_fig_commands_have_no_sweep_flags(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--workers", "2"])
