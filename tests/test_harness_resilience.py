"""Tests for the fault-tolerant harness execution layer.

Covers the deterministic fault-injection framework
(:mod:`repro.utils.faultinject`), the crash-safe checkpoint journal,
retry/backoff with error classification, per-cell timeouts with serial
degradation, and the acceptance contracts: a sweep whose worker is
killed mid-run recovers records *bitwise* identical to a clean run, and
a sweep with one deterministically-failing cell finishes the rest and
surfaces the failure as a structured record.

Tests that kill worker processes on purpose carry the
``fault_injection`` marker; CI runs them serialized.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.geometry import Rect
from repro.harness import RunSettings, run_matrix, sweep_health, table3
from repro.harness.cli import build_parser
from repro.harness.resilience import (
    CellTimeout,
    CheckpointJournal,
    RecordCodec,
    RetryPolicy,
    classify_error,
    default_cell_timeout,
    default_max_retries,
    execute_cells,
    sweep_fingerprint,
)
from repro.harness.runner import RunRecord
from repro.layouts import Clip, Dataset
from repro.layouts.synth import ClipStyle
from repro.optics import OpticalConfig, fftlib
from repro.utils import faultinject as fi

METHODS = ("NILT", "Abbe-MO")


@pytest.fixture(autouse=True)
def _no_fault_plan(monkeypatch):
    """Every test starts and ends with fault injection disabled."""
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    fi.clear_plan()
    yield
    fi.clear_plan()


def _tiny_dataset(n_clips: int = 2) -> Dataset:
    clips = tuple(
        Clip(
            name=f"c{i}",
            rects=(Rect(100 + 30 * i, 100, 300, 180),),
            cd_nm=32,
            tile_nm=500,
        )
        for i in range(n_clips)
    )
    style = ClipStyle(name="T", cd_nm=32, tile_nm=500, target_area_nm2=20000)
    return Dataset(name="TINY", clips=clips, style=style)


def _settings(iterations: int = 2) -> RunSettings:
    return RunSettings(
        config=OpticalConfig.preset("tiny"),
        iterations=iterations,
        num_kernels=8,
        unroll_steps=1,
        terms=2,
    )


def _assert_records_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert (a.method, a.dataset, a.clip) == (b.method, b.dataset, b.clip)
        assert a.l2_nm2 == b.l2_nm2
        assert a.pvb_nm2 == b.pvb_nm2
        assert a.epe_violations == b.epe_violations
        assert a.epe_mean_nm == b.epe_mean_nm
        assert a.final_loss == b.final_loss
        assert a.losses.tobytes() == b.losses.tobytes()


# ----------------------------------------------------------------------
# fault-injection framework
# ----------------------------------------------------------------------
class TestFaultPlanParsing:
    def test_unknown_point_rejected(self):
        with pytest.raises(fi.FaultError, match="unknown fault point"):
            fi.parse_plan("harness.bogus@1=kill")

    def test_unknown_action_rejected(self):
        with pytest.raises(fi.FaultError, match="unknown action"):
            fi.parse_plan("harness.run_cell@1=explode")

    def test_unknown_exception_rejected(self):
        with pytest.raises(fi.FaultError, match="unknown exception"):
            fi.parse_plan("harness.run_cell@1=raise:KeyboardInterrupt")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(fi.FaultError, match="probability"):
            fi.parse_plan("harness.run_cell?1.5=kill")

    def test_kill_takes_no_argument(self):
        with pytest.raises(fi.FaultError, match="no argument"):
            fi.parse_plan("harness.run_cell@1=kill:9")

    def test_multi_entry_plan(self):
        plan = fi.parse_plan(
            "harness.run_cell@2=raise:MemoryError;"
            "cache.warmup?0.5=delay:0.01|seed=7"
        )
        assert len(plan.specs) == 2
        assert plan.specs[0].hit == 2
        assert plan.specs[1].probability == 0.5
        assert plan.specs[1].seed == 7


class TestFaultPlanFiring:
    def test_exact_hit_fires_once(self):
        fi.install_plan("harness.run_cell@2=raise:ValueError")
        fi.fault_point("harness.run_cell")  # visit 1: no fire
        with pytest.raises(ValueError, match="injected"):
            fi.fault_point("harness.run_cell")  # visit 2: fires
        fi.fault_point("harness.run_cell")  # visit 3: no fire

    def test_persistent_hit_fires_from_n_onward(self):
        fi.install_plan("harness.run_cell@2+=raise:MemoryError")
        fi.fault_point("harness.run_cell")
        for _ in range(3):
            with pytest.raises(MemoryError):
                fi.fault_point("harness.run_cell")

    def test_points_count_independently(self):
        fi.install_plan("harness.run_cell@1=raise:ValueError")
        fi.fault_point("cache.warmup")  # different point: no fire
        with pytest.raises(ValueError):
            fi.fault_point("harness.run_cell")

    def test_probabilistic_mode_is_seeded(self):
        text = "harness.run_cell?0.5=raise:ValueError|seed=3"

        def firing_pattern():
            plan = fi.parse_plan(text)
            pattern = []
            for _ in range(24):
                try:
                    plan.visit("harness.run_cell")
                    pattern.append(False)
                except ValueError:
                    pattern.append(True)
            return pattern

        first, second = firing_pattern(), firing_pattern()
        assert first == second  # replays identically
        assert any(first) and not all(first)  # actually probabilistic

    def test_fuse_is_single_shot_across_plans(self, tmp_path):
        fuse = tmp_path / "fuse"
        text = f"harness.run_cell@1=raise:ValueError|fuse={fuse}"
        plan_a, plan_b = fi.parse_plan(text), fi.parse_plan(text)
        with pytest.raises(ValueError):
            plan_a.visit("harness.run_cell")
        assert fuse.exists()
        plan_b.visit("harness.run_cell")  # fuse burnt: no fire

    def test_no_plan_is_a_noop(self):
        fi.clear_plan()
        fi.fault_point("harness.run_cell")  # must not raise

    def test_env_reload(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "harness.run_cell@1=raise:OSError")
        fi.reload_from_env()
        with pytest.raises(OSError):
            fi.fault_point("harness.run_cell")


# ----------------------------------------------------------------------
# error taxonomy + policy + env defaults
# ----------------------------------------------------------------------
class TestClassification:
    def test_taxonomy(self):
        assert classify_error(MemoryError()) == "transient"
        assert classify_error(EOFError()) == "transient"
        assert classify_error(OSError()) == "transient"
        assert classify_error(ValueError("solver bug")) == "deterministic"
        assert classify_error(KeyError("method")) == "deterministic"
        assert classify_error(CellTimeout("late")) == "timeout"

    def test_policy_budgets(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.retries_for("transient") == 3
        assert policy.retries_for("timeout") == 3
        assert policy.retries_for("deterministic") == 1  # fail fast

    def test_backoff_is_deterministic_and_growing(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.25)
        a1, a2 = policy.backoff(5, 1), policy.backoff(5, 2)
        assert policy.backoff(5, 1) == a1  # seeded jitter replays
        assert 0.1 <= a1 <= 0.125
        assert a2 > a1

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_CELL_TIMEOUT", raising=False)
        assert default_max_retries() == 2
        assert default_cell_timeout() == 0.0
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "1.5")
        assert default_max_retries() == 5
        assert default_cell_timeout() == 1.5
        monkeypatch.setenv("REPRO_MAX_RETRIES", "-1")
        with pytest.raises(ValueError):
            default_max_retries()


# ----------------------------------------------------------------------
# checkpoint journal
# ----------------------------------------------------------------------
def _toy_codec() -> RecordCodec:
    def failure(cell, status, error, attempts):
        return [{"cell": cell, "status": status, "error": error, "attempts": attempts}]

    def stamp(records, status, attempts, error):
        for rec in records:
            rec["status"] = status
            rec["attempts"] = attempts
            rec["error"] = error

    return RecordCodec(
        encode=lambda records: records,
        decode=lambda payload: payload,
        failure=failure,
        stamp=stamp,
    )


class TestCheckpointJournal:
    def test_round_trip_keeps_completed_cells(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        labels = ["a", "b", "c"]
        codec = _toy_codec()
        outcomes = execute_cells(
            [10, 20, 30], labels, lambda c: [{"cell": c}], codec, checkpoint=path
        )
        assert [o.status for o in outcomes] == ["ok"] * 3
        journal = CheckpointJournal(path, labels)
        assert sorted(journal.completed) == [0, 1, 2]
        journal.close()

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        labels = ["a", "b"]
        execute_cells([1, 2], labels, lambda c: [{"cell": c}], _toy_codec(),
                      checkpoint=path)
        with open(path, "a") as fh:
            fh.write('{"cell": 1, "status"')  # crash mid-append
        journal = CheckpointJournal(path, labels)
        assert sorted(journal.completed) == [0, 1]
        journal.close()

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        labels = ["a"]
        with CheckpointJournal(path, labels):
            pass
        text = path.read_text()
        path.write_text(text + "not json\n" + json.dumps({"cell": 0}) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            CheckpointJournal(path, labels)

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointJournal(path, ["a", "b"]):
            pass
        with pytest.raises(ValueError, match="different sweep"):
            CheckpointJournal(path, ["a", "b", "c"])

    def test_failed_entries_rerun_on_resume(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        labels = ["a", "b"]
        codec = _toy_codec()

        def failing(cell):
            if cell == 2:
                raise ValueError("deterministic solver bug")
            return [{"cell": cell}]

        outcomes = execute_cells(
            [1, 2], labels, failing, codec, checkpoint=path,
            policy=RetryPolicy(max_retries=1, backoff_base=0.001),
        )
        assert [o.status for o in outcomes] == ["ok", "failed"]
        journal = CheckpointJournal(path, labels)
        assert sorted(journal.completed) == [0]  # failed cell is not done
        journal.close()

    def test_fingerprint_is_order_sensitive(self):
        assert sweep_fingerprint(["a", "b"]) != sweep_fingerprint(["b", "a"])


class TestRecordSerialization:
    def test_run_record_round_trips_bitwise(self):
        rng = np.random.default_rng(7)
        rec = RunRecord(
            method="BiSMO-NMN",
            dataset="TINY",
            clip="c0",
            l2_nm2=rng.standard_normal() * 1e4,
            pvb_nm2=rng.standard_normal() * 1e3,
            epe_violations=3,
            epe_mean_nm=float("nan"),
            runtime_s=0.123456789123456789,
            final_loss=rng.standard_normal(),
            losses=rng.standard_normal(17),
            attempts=2,
        )
        revived = RunRecord.from_json(json.loads(json.dumps(rec.to_json())))
        assert revived.method == rec.method
        assert revived.l2_nm2 == rec.l2_nm2
        assert revived.pvb_nm2 == rec.pvb_nm2
        assert np.isnan(revived.epe_mean_nm)
        assert revived.runtime_s == rec.runtime_s
        assert revived.final_loss == rec.final_loss
        assert revived.losses.tobytes() == rec.losses.tobytes()
        assert revived.attempts == 2 and revived.status == "ok"


# ----------------------------------------------------------------------
# the resilient executor (serial paths, toy cells)
# ----------------------------------------------------------------------
class TestExecutorSerial:
    def test_deterministic_failure_is_structured_not_fatal(self):
        def run_one(cell):
            if cell == "bad":
                raise ValueError("solver exploded")
            return [{"cell": cell}]

        outcomes = execute_cells(
            ["a", "bad", "b"], ["a", "bad", "b"], run_one, _toy_codec(),
            policy=RetryPolicy(max_retries=2, backoff_base=0.001),
        )
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        failed = outcomes[1]
        assert failed.attempts == 2  # one retry, then fail fast
        assert "ValueError" in failed.error
        assert failed.records[0]["status"] == "failed"

    def test_transient_failure_retries_to_success(self):
        calls = {"n": 0}

        def run_one(cell):
            calls["n"] += 1
            if calls["n"] == 1:
                raise MemoryError("transient pressure")
            return [{"cell": cell}]

        outcomes = execute_cells(
            ["only"], ["only"], run_one, _toy_codec(),
            policy=RetryPolicy(max_retries=2, backoff_base=0.001),
        )
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 2
        assert outcomes[0].records[0]["attempts"] == 2

    def test_resume_skips_journaled_cells(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        labels = ["a", "b", "c"]
        codec = _toy_codec()
        first = execute_cells(
            [1, 2, 3], labels, lambda c: [{"cell": c}], codec, checkpoint=path
        )

        def must_not_run(cell):
            raise AssertionError("resumed run must not re-execute cells")

        second = execute_cells([1, 2, 3], labels, must_not_run, codec,
                               checkpoint=path)
        assert [o.records for o in second] == [o.records for o in first]


# ----------------------------------------------------------------------
# run_matrix integration
# ----------------------------------------------------------------------
class TestRunMatrixResilience:
    def test_failing_cell_yields_structured_record_and_sweep_finishes(self):
        ds = _tiny_dataset(2)
        records = run_matrix(
            [ds], _settings(), methods=("NILT", "NO-SUCH-METHOD"),
            max_retries=1,
        )
        assert len(records) == 4  # 2 clips x 2 methods, nothing dropped
        by_method = {}
        for rec in records:
            by_method.setdefault(rec.method, []).append(rec)
        assert all(r.ok for r in by_method["NILT"])
        failed = by_method["NO-SUCH-METHOD"]
        assert all(r.status == "failed" for r in failed)
        assert all("KeyError" in r.error for r in failed)
        assert all(np.isnan(r.l2_nm2) for r in failed)
        # metric tables skip the failures instead of averaging NaNs
        t3 = table3(records)
        assert all(np.isfinite(v) for v in t3.row("TINY"))
        # ... and the sweep-health table keeps them visible
        health = sweep_health(records)
        assert health.row("TINY/NO-SUCH-METHOD")[health.columns.index("failed")] == 2.0

    def test_checkpoint_resume_reproduces_serial_records_bitwise(self, tmp_path):
        ds = _tiny_dataset(2)
        settings = _settings()
        baseline = run_matrix([ds], settings, methods=METHODS)
        path = tmp_path / "sweep.jsonl"
        first = run_matrix(
            [ds], settings, methods=METHODS, checkpoint=path, max_retries=0
        )
        _assert_records_identical(baseline, first)
        # amputate the journal down to header + 2 completed cells,
        # as if the sweep had crashed halfway
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        seen = []
        resumed = run_matrix(
            [ds], settings, methods=METHODS, checkpoint=path,
            max_retries=0, progress=seen.append,
        )
        _assert_records_identical(baseline, resumed)
        # only the 2 un-journaled cells re-ran (one start event each)
        assert len([e for e in seen if e.status == "start"]) == 2

    @pytest.mark.fault_injection
    def test_worker_death_recovers_bitwise(self, tmp_path, monkeypatch):
        ds = _tiny_dataset(2)
        settings = _settings()
        baseline = run_matrix([ds], settings, methods=METHODS)
        fuse = tmp_path / "kill.fuse"
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", f"harness.run_cell@1=kill|fuse={fuse}"
        )
        # parse now so forked workers inherit the plan (and a worker's
        # first cell visit reads REPRO_FAULT_PLAN lazily regardless)
        fi.reload_from_env()
        recovered = run_matrix([ds], settings, methods=METHODS, workers=2)
        assert fuse.exists()  # the kill really fired
        _assert_records_identical(baseline, recovered)
        assert all(r.ok for r in recovered)


# ----------------------------------------------------------------------
# timeouts + degradation (toy pool cells)
# ----------------------------------------------------------------------
def _toy_pool_cell(cell):
    """Top-level pool task: (name, sleep_s) -> one toy record."""
    fi.fault_point("harness.run_cell")
    name, sleep_s = cell
    if sleep_s:
        time.sleep(sleep_s)
    return [{"cell": name}]


class TestTimeoutsAndDegradation:
    @pytest.mark.fault_injection
    def test_overdue_cell_times_out_others_survive(self):
        cells = [("fast1", 0.0), ("stuck", 30.0), ("fast2", 0.0)]
        labels = [c[0] for c in cells]
        outcomes = execute_cells(
            cells,
            labels,
            _toy_pool_cell,
            _toy_codec(),
            workers=2,
            pool_factory=lambda: ProcessPoolExecutor(max_workers=2),
            policy=RetryPolicy(max_retries=0, backoff_base=0.001),
            cell_timeout=1.0,
            poll_interval=0.02,
        )
        by_label = {o.label: o for o in outcomes}
        assert by_label["stuck"].status == "timeout"
        assert "wall-clock budget" in by_label["stuck"].error
        assert by_label["fast1"].status == "ok"
        assert by_label["fast2"].status == "ok"

    @pytest.mark.fault_injection
    def test_repeated_pool_breakage_degrades_to_serial(self):
        # every worker dies on its first cell, every round: the pool can
        # never make progress, so the executor must fall back to serial
        cells = [("a", 0.0), ("b", 0.0), ("c", 0.0)]
        labels = [c[0] for c in cells]
        messages = []
        outcomes = execute_cells(
            cells,
            labels,
            _toy_pool_cell,
            _toy_codec(),
            workers=2,
            pool_factory=lambda: ProcessPoolExecutor(
                max_workers=2,
                initializer=fi.install_plan,
                initargs=("harness.run_cell@1+=kill",),
            ),
            policy=RetryPolicy(max_retries=1, backoff_base=0.001),
            max_pool_rebuilds=1,
            poll_interval=0.02,
            progress=messages.append,
        )
        assert [o.status for o in outcomes] == ["ok"] * 3
        # pool-breakage victims are not charged attempts
        assert [o.attempts for o in outcomes] == [1, 1, 1]
        assert any("degrading to serial" in str(m) for m in messages)


# ----------------------------------------------------------------------
# fftlib chunk fallback
# ----------------------------------------------------------------------
class TestChunkFallback:
    def test_memory_error_halves_chunk_once(self):
        fi.install_plan("fftlib.stream_chunk@1=raise:MemoryError")
        calls = []

        def fn(csize):
            calls.append(csize)
            return csize

        assert fftlib.run_with_chunk_fallback(fn, 8) == 4  # injected, halved
        assert fftlib.run_with_chunk_fallback(fn, 8) == 8  # visit 2: clean
        assert calls == [4, 8]

    def test_second_memory_error_propagates(self):
        fi.install_plan("fftlib.stream_chunk@1+=raise:MemoryError")

        def fn(csize):
            raise AssertionError("unreachable: the fault fires first")

        with pytest.raises(MemoryError):
            fftlib.run_with_chunk_fallback(fn, 8)

    def test_chunk_one_propagates(self):
        def fn(csize):
            raise MemoryError("genuine exhaustion")

        with pytest.raises(MemoryError):
            fftlib.run_with_chunk_fallback(fn, 1)


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCLIFlags:
    def test_resilience_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            [
                "table3",
                "--resume", str(tmp_path / "j.jsonl"),
                "--cell-timeout", "30",
                "--max-retries", "1",
            ]
        )
        assert args.resume == tmp_path / "j.jsonl"
        assert args.cell_timeout == 30.0
        assert args.max_retries == 1

    def test_pwindow_has_resume(self, tmp_path):
        args = build_parser().parse_args(
            ["pwindow", "--resume", str(tmp_path / "j.jsonl")]
        )
        assert args.resume == tmp_path / "j.jsonl"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["table4"])
        assert args.resume is None
        assert args.cell_timeout is None
        assert args.max_retries is None
