"""Tests for GLP I/O, synthetic clip generation, and dataset registries."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.layouts import (
    Clip,
    ClipStyle,
    DATASET_NAMES,
    clip_area,
    dataset_by_name,
    dumps,
    generate_clip,
    iccad13,
    iccad_l,
    ispd19,
    loads,
    read_glp,
    write_glp,
)


class TestGLP:
    def test_roundtrip(self, tmp_path):
        rects = [Rect(0, 0, 50, 100), Rect(200, 300, 260, 340)]
        path = tmp_path / "clip.glp"
        write_glp(path, "myclip", {"M1": rects})
        name, layers = read_glp(path)
        assert name == "myclip"
        assert sorted(layers["M1"]) == sorted(rects)

    def test_pgon_parsing(self):
        text = (
            "BEGIN\nCNAME lshape\nLEVEL M1\n"
            "PGON 0 0 100 0 100 50 50 50 50 100 0 100\nENDMSG\n"
        )
        name, layers = loads(text)
        assert name == "lshape"
        assert clip_area(layers["M1"]) == 7500

    def test_multiple_layers(self):
        text = (
            "BEGIN\nCNAME two\nLEVEL M1\nRECT 0 0 10 10\n"
            "LEVEL VIA1\nRECT 2 2 4 4\nENDMSG\n"
        )
        _, layers = loads(text)
        assert set(layers) == {"M1", "VIA1"}

    def test_rect_without_level_defaults_m1(self):
        _, layers = loads("RECT 0 0 5 5\n")
        assert layers["M1"] == [Rect(0, 0, 5, 5)]

    def test_bad_rect_raises(self):
        with pytest.raises(ValueError):
            loads("LEVEL M1\nRECT 1 2 three 4\n")

    def test_odd_pgon_coords_raise(self):
        with pytest.raises(ValueError):
            loads("LEVEL M1\nPGON 0 0 10\n")

    def test_unknown_record_raises(self):
        with pytest.raises(ValueError):
            loads("CIRCLE 0 0 5\n")

    def test_comments_and_blank_lines_skipped(self):
        _, layers = loads("# comment\n\nLEVEL M1\nRECT 0 0 1 1\n")
        assert len(layers["M1"]) == 1

    def test_dumps_sorted_and_parseable(self):
        rects = [Rect(100, 0, 120, 10), Rect(0, 0, 10, 10)]
        text = dumps("c", {"M1": rects})
        _, layers = loads(text)
        assert layers["M1"] == sorted(rects)


class TestSynth:
    STYLE = ClipStyle(name="T", cd_nm=32, tile_nm=2000, target_area_nm2=150000)

    def test_deterministic(self):
        a = generate_clip(self.STYLE, seed=7)
        b = generate_clip(self.STYLE, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_clip(self.STYLE, seed=1) != generate_clip(self.STYLE, seed=2)

    def test_area_near_target(self):
        areas = [clip_area(generate_clip(self.STYLE, seed=s)) for s in range(5)]
        mean = np.mean(areas)
        assert 0.7 * self.STYLE.target_area_nm2 < mean < 1.4 * self.STYLE.target_area_nm2

    def test_min_feature_width_is_cd(self):
        for r in generate_clip(self.STYLE, seed=3):
            assert min(r.width, r.height) >= self.STYLE.cd_nm

    def test_spacing_at_least_cd(self):
        rects = generate_clip(self.STYLE, seed=4)
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.expanded(self.STYLE.cd_nm - 1).intersects(b)

    def test_features_respect_margin(self):
        for r in generate_clip(self.STYLE, seed=5):
            assert r.x1 >= self.STYLE.margin_nm
            assert r.x2 <= self.STYLE.tile_nm - self.STYLE.margin_nm

    def test_via_fraction_produces_squares(self):
        style = ClipStyle(
            name="V", cd_nm=28, tile_nm=2000, target_area_nm2=300000, via_fraction=0.2
        )
        rects = generate_clip(style, seed=0)
        squares = [r for r in rects if r.width == r.height == 2 * style.cd_nm]
        assert squares, "expected via squares"


class TestDatasets:
    def test_table2_names(self):
        assert DATASET_NAMES == ("ICCAD13", "ICCAD-L", "ISPD19")

    def test_counts(self):
        assert len(iccad13(num_clips=3)) == 3
        assert len(iccad_l(num_clips=2)) == 2
        assert len(ispd19(num_clips=4)) == 4

    def test_average_areas_match_table2(self):
        checks = [
            (iccad13(num_clips=6), 202655),
            (iccad_l(num_clips=6), 475571),
            (ispd19(num_clips=6), 698743),
        ]
        for ds, target in checks:
            assert 0.75 * target < ds.average_area_nm2 < 1.35 * target

    def test_cd_per_dataset(self):
        assert iccad13(num_clips=1)[0].cd_nm == 32
        assert ispd19(num_clips=1)[0].cd_nm == 28

    def test_clip_names_unique(self):
        names = [c.name for c in iccad13(num_clips=5)]
        assert len(set(names)) == 5

    def test_dataset_by_name(self):
        assert dataset_by_name("ICCAD13", num_clips=2).name == "ICCAD13"
        assert dataset_by_name("iccad_l", num_clips=2).name == "ICCAD-L"
        with pytest.raises(KeyError):
            dataset_by_name("nope")

    def test_caching_returns_same_object(self):
        assert iccad13(num_clips=2) is iccad13(num_clips=2)

    def test_iteration_and_indexing(self):
        ds = iccad13(num_clips=3)
        assert [c.name for c in ds][0] == ds[0].name

    def test_clip_is_frozen(self):
        clip = iccad13(num_clips=1)[0]
        with pytest.raises(AttributeError):
            clip.name = "x"

    def test_clips_deterministic_across_processes_seed(self):
        # regression for the randomized-hash seeding bug: fixed expectation
        clip = iccad13(num_clips=1)[0]
        again = dataset_by_name("ICCAD13", num_clips=1)[0]
        assert clip.rects == again.rects
