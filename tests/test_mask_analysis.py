"""Tests for mask manufacturability analysis (SRAF extraction etc.)."""

import numpy as np
import pytest

from repro.geometry import GridSpec, Rect, rasterize
from repro.mask import (
    connected_components,
    mask_statistics,
    remove_small_features,
    split_main_and_sraf,
)
from repro.optics import OpticalConfig


@pytest.fixture(scope="module")
def cfg():
    return OpticalConfig.preset("tiny")  # 32px / 500nm -> 15.625nm px


class TestConnectedComponents:
    def test_empty(self):
        assert connected_components(np.zeros((4, 4))) == []

    def test_single_blob(self):
        img = np.zeros((6, 6))
        img[1:3, 1:4] = 1.0
        comps = connected_components(img)
        assert len(comps) == 1
        assert comps[0].sum() == 6

    def test_two_blobs(self):
        img = np.zeros((6, 6))
        img[0, 0] = 1.0
        img[4:6, 4:6] = 1.0
        comps = connected_components(img)
        assert sorted(c.sum() for c in comps) == [1, 4]

    def test_diagonal_not_connected(self):
        img = np.zeros((4, 4))
        img[0, 0] = img[1, 1] = 1.0
        assert len(connected_components(img)) == 2

    def test_l_shape_is_one_component(self):
        img = np.zeros((5, 5))
        img[0:4, 0] = 1.0
        img[3, 0:4] = 1.0
        assert len(connected_components(img)) == 1


class TestSplitMainSraf:
    def test_sraf_detection(self, cfg):
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        target_rects = [Rect(100, 100, 300, 200)]
        sraf_rects = [Rect(100, 280, 300, 320)]  # detached assist bar
        target = rasterize(target_rects, grid, antialias=False)
        mask = rasterize(target_rects + sraf_rects, grid, antialias=False)
        parts = split_main_and_sraf(mask, target, grid)
        assert parts.num_srafs >= 1
        assert len(parts.main) >= 1

    def test_no_sraf_when_mask_equals_target(self, cfg):
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        rects = [Rect(100, 100, 300, 200)]
        img = rasterize(rects, grid, antialias=False)
        parts = split_main_and_sraf(img, img, grid)
        assert parts.num_srafs == 0


class TestMaskStatistics:
    def test_counts_and_areas(self, cfg):
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        target_rects = [Rect(100, 100, 300, 200)]
        sraf_rects = [Rect(100, 280, 300, 312)]
        target = rasterize(target_rects, grid, antialias=False)
        mask = rasterize(target_rects + sraf_rects, grid, antialias=False)
        stats = mask_statistics(mask, target, cfg)
        assert stats.num_components == 2
        assert stats.num_srafs == 1
        assert stats.shot_count >= 2
        assert stats.mask_area_nm2 > 0
        assert stats.sraf_area_nm2 > 0
        assert stats.min_feature_nm > 0

    def test_empty_mask(self, cfg):
        stats = mask_statistics(
            np.zeros((cfg.mask_size,) * 2), np.zeros((cfg.mask_size,) * 2), cfg
        )
        assert stats.shot_count == 0
        assert stats.min_feature_nm == 0.0


class TestRemoveSmallFeatures:
    def test_removes_below_rule(self, cfg):
        img = np.zeros((cfg.mask_size,) * 2)
        img[2:12, 2:12] = 1.0  # 10px ~ 156nm
        img[20, 20] = 1.0  # single pixel speck
        cleaned = remove_small_features(img, cfg, min_feature_nm=40.0)
        assert cleaned[20, 20] == 0.0
        assert cleaned[5, 5] == 1.0

    def test_keeps_everything_with_zero_rule(self, cfg):
        img = np.zeros((cfg.mask_size,) * 2)
        img[3, 3] = 1.0
        cleaned = remove_small_features(img, cfg, min_feature_nm=0.0)
        assert cleaned[3, 3] == 1.0
