"""Tests for L2 / PVB / EPE metrics (Definitions 1-3)."""

import numpy as np
import pytest

from repro.geometry import GridSpec, Rect, rasterize
from repro.metrics import (
    DEFAULT_EPE_TOLERANCE_NM,
    epe_report,
    l2_error_nm2,
    l2_error_pixels,
    pvb_nm2,
    pvb_pixels,
)
from repro.optics import OpticalConfig


@pytest.fixture(scope="module")
def cfg():
    return OpticalConfig.preset("tiny")  # 32px over 500nm


class TestL2:
    def test_identical_is_zero(self, cfg):
        z = np.random.default_rng(0).random((8, 8))
        assert l2_error_pixels(z, z) == 0

    def test_pixel_count(self, cfg):
        target = np.zeros((4, 4))
        resist = np.zeros((4, 4))
        resist[0, :2] = 1.0
        assert l2_error_pixels(resist, target) == 2

    def test_nm2_scaling(self, cfg):
        target = np.zeros((cfg.mask_size,) * 2)
        resist = target.copy()
        resist[0, 0] = 1.0
        assert l2_error_nm2(resist, target, cfg) == pytest.approx(cfg.pixel_area_nm2)

    def test_binarization_threshold(self, cfg):
        target = np.zeros((2, 2))
        resist = np.full((2, 2), 0.49)
        assert l2_error_pixels(resist, target) == 0
        assert l2_error_pixels(resist + 0.02, target) == 4

    def test_symmetry(self, cfg):
        rng = np.random.default_rng(1)
        a = (rng.random((6, 6)) > 0.5).astype(float)
        b = (rng.random((6, 6)) > 0.5).astype(float)
        assert l2_error_pixels(a, b) == l2_error_pixels(b, a)


class TestPVB:
    def test_identical_corners_zero(self):
        z = (np.random.default_rng(0).random((8, 8)) > 0.5).astype(float)
        assert pvb_pixels(z, z) == 0

    def test_xor_count(self):
        z_min = np.zeros((4, 4))
        z_max = np.zeros((4, 4))
        z_max[1:3, 1:3] = 1.0
        assert pvb_pixels(z_min, z_max) == 4

    def test_nm2(self, cfg):
        z_min = np.zeros((cfg.mask_size,) * 2)
        z_max = z_min.copy()
        z_max[0, :3] = 1.0
        assert pvb_nm2(z_min, z_max, cfg) == pytest.approx(3 * cfg.pixel_area_nm2)

    def test_band_shape(self):
        """A feature printed larger at max dose: PVB is the ring between."""
        grid = GridSpec(32, 10.0)
        inner = rasterize([Rect(100, 100, 200, 200)], grid, antialias=False)
        outer = rasterize([Rect(90, 90, 210, 210)], grid, antialias=False)
        ring_px = pvb_pixels(inner, outer)
        assert ring_px == int(outer.sum() - inner.sum())


class TestEPEReport:
    def _cfg(self):
        # 64px over 500nm tile -> 7.8nm pixels: enough for EPE probing
        return OpticalConfig(mask_size=64, tile_nm=500.0, source_size=5)

    def test_perfect_print_no_violations(self):
        cfg = self._cfg()
        rects = [Rect(100, 100, 350, 220)]
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        printed = rasterize(rects, grid)
        rep = epe_report(printed, rects, cfg)
        assert rep.violations == 0
        assert rep.num_sites > 0
        assert rep.mean_abs_nm < 4.0
        assert rep.violation_rate == 0.0

    def test_shrunk_print_flags_violations(self):
        cfg = self._cfg()
        target = [Rect(100, 100, 350, 220)]
        shrunk = [Rect(120, 120, 330, 200)]  # 20 nm in > 15 nm tolerance
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        printed = rasterize(shrunk, grid)
        rep = epe_report(printed, target, cfg)
        assert rep.violations == rep.num_sites
        assert rep.max_abs_nm >= 19.0

    def test_tolerance_configurable(self):
        cfg = self._cfg()
        target = [Rect(100, 100, 350, 220)]
        shifted = [Rect(110, 110, 340, 210)]  # 10 nm in
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        printed = rasterize(shifted, grid)
        # uniform 10 nm shrink: corner sites see up to ~sqrt(2)*10 nm
        assert epe_report(printed, target, cfg, tolerance_nm=25.0).violations == 0
        assert epe_report(printed, target, cfg, tolerance_nm=5.0).violations > 0

    def test_default_tolerance_is_contest_spec(self):
        assert DEFAULT_EPE_TOLERANCE_NM == 15.0

    def test_empty_target_raises(self):
        cfg = self._cfg()
        with pytest.raises(ValueError):
            epe_report(np.zeros((64, 64)), [], cfg)
