"""Tests for aerial-image diagnostics (contrast, NILS, MEEF)."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.geometry import GridSpec, Rect, rasterize
from repro.metrics import image_contrast, meef, nils_at_edges
from repro.optics import AbbeImaging, OpticalConfig, SourceGrid, annular


class TestContrast:
    def test_binary_image_full_contrast(self):
        img = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert image_contrast(img) == pytest.approx(1.0)

    def test_uniform_image_zero_contrast(self):
        assert image_contrast(np.full((4, 4), 0.5)) == pytest.approx(0.0)

    def test_all_dark(self):
        assert image_contrast(np.zeros((4, 4))) == 0.0

    def test_active_region(self):
        img = np.zeros((4, 4))
        img[0, 0] = 0.4
        img[0, 1] = 0.6
        active = np.zeros((4, 4))
        active[0, :2] = 1.0
        assert image_contrast(img, active) == pytest.approx(0.2 / 1.0)

    def test_empty_active_raises(self):
        with pytest.raises(ValueError):
            image_contrast(np.ones((2, 2)), np.zeros((2, 2)))

    def test_defocus_reduces_real_contrast(self):
        """Physical check: defocus must lower aerial-image contrast."""
        cfg = OpticalConfig.preset("tiny")
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        rects = [Rect(150, 100, 350, 180)]
        mask = ad.Tensor(rasterize(rects, grid))
        src = ad.Tensor(
            annular(SourceGrid.from_config(cfg), cfg.sigma_out, cfg.sigma_in)
        )
        active = rasterize([r.expanded(60) for r in rects], grid) > 0
        with ad.no_grad():
            sharp = AbbeImaging(cfg).aerial(mask, src).data
            blurred = AbbeImaging(cfg, defocus_nm=150.0).aerial(mask, src).data
        assert image_contrast(blurred, active) < image_contrast(sharp, active)


class TestNILS:
    def _aerial(self, cfg, rects, defocus=0.0):
        grid = GridSpec(cfg.mask_size, cfg.pixel_nm)
        mask = ad.Tensor(rasterize(rects, grid))
        src = ad.Tensor(
            annular(SourceGrid.from_config(cfg), cfg.sigma_out, cfg.sigma_in)
        )
        with ad.no_grad():
            return AbbeImaging(cfg, defocus_nm=defocus).aerial(mask, src).data

    def test_positive_at_real_edges(self):
        cfg = OpticalConfig.preset("tiny")
        rects = [Rect(150, 100, 350, 180)]
        nils = nils_at_edges(self._aerial(cfg, rects), rects, cfg)
        assert nils.shape[0] > 0
        assert np.all(nils >= 0)
        assert nils.max() > 0.1

    def test_defocus_degrades_nils(self):
        cfg = OpticalConfig.preset("tiny")
        rects = [Rect(150, 100, 350, 180)]
        sharp = nils_at_edges(self._aerial(cfg, rects), rects, cfg)
        soft = nils_at_edges(self._aerial(cfg, rects, defocus=150.0), rects, cfg)
        assert soft.mean() < sharp.mean()

    def test_empty_target_raises(self):
        cfg = OpticalConfig.preset("tiny")
        with pytest.raises(ValueError):
            nils_at_edges(np.zeros((cfg.mask_size,) * 2), [], cfg)


class TestMEEF:
    def test_linear_system_meef(self):
        """If printed CD = 1.8 * mask CD, MEEF = 1.8."""
        assert meef(lambda b: 100.0 + 1.8 * 2 * b) == pytest.approx(1.8)

    def test_ideal_printing_meef_one(self):
        assert meef(lambda b: 100.0 + 2 * b) == pytest.approx(1.0)

    def test_insensitive_process_meef_zero(self):
        assert meef(lambda b: 100.0) == pytest.approx(0.0)
