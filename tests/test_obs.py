"""Tests for the ``repro.obs`` observability layer.

Covers the four contracts the layer advertises: registry-governed
names fail fast, disabled hooks are near-free (<2% of the
fused-imaging microbench), span nesting is correct across the
``fftlib.map_conditions`` thread fan-out, and the Chrome trace-event
export is schema-valid JSON.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

import repro.autodiff as ad
from repro import obs
from repro.autodiff import functional as F
from repro.optics import fftlib

S, N = 6, 16


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with obs disabled and empty."""
    obs.disable()
    obs.reset_metrics()
    obs.drain_events()
    yield
    obs.disable()
    obs.reset_metrics()
    obs.drain_events()


def _imaging_pass(kernels: np.ndarray, weights: np.ndarray, mask: np.ndarray):
    mt = ad.Tensor(mask, requires_grad=True)
    loss = F.sum(F.incoherent_image(mt, kernels, weights))
    (gm,) = ad.grad(loss, [mt])
    return loss.data, gm


class TestRegistryGoverned:
    def test_undeclared_span_name_raises(self):
        with obs.use(trace=True):
            with pytest.raises(ValueError, match="not declared"):
                obs.span("solver.bogus_phase")

    def test_undeclared_metric_name_raises(self):
        with obs.use(metrics=True):
            with pytest.raises(ValueError, match="not declared"):
                obs.counter("made.up_total")

    def test_metric_kind_mismatch_raises(self):
        with obs.use(metrics=True):
            with pytest.raises(ValueError, match="declared as a gauge"):
                obs.counter("solver.loss")

    def test_disabled_hooks_are_noops(self):
        # no validation, no recording — one branch and a shared null
        assert obs.span("solver.bogus_phase") is obs.span("also.bogus")
        obs.counter("made.up_total").inc()
        assert obs.values() == {}
        assert obs.drain_events() == []

    def test_observe_iteration_disabled_is_free(self):
        class Rec:
            loss = 1.0
            seconds = 0.1

        obs.observe_iteration(Rec(), grad=np.ones(4))
        assert obs.values() == {}


class TestSpans:
    def test_span_records_event_with_parent(self):
        with obs.use(trace=True):
            with obs.span("solver.iter", idx=3):
                assert obs.current_span_name() == "solver.iter"
                with obs.span("imaging.forward"):
                    pass
            events = obs.drain_events()
        by_name = {ev["name"]: ev for ev in events}
        assert by_name["imaging.forward"]["parent"] == "solver.iter"
        assert by_name["solver.iter"]["parent"] is None
        assert by_name["solver.iter"]["args"] == {"idx": 3}
        assert by_name["solver.iter"]["dur"] >= by_name["imaging.forward"]["dur"]

    def test_traced_decorator(self):
        @obs.traced("imaging.vjp")
        def work(x: int) -> int:
            return x + 1

        assert work(1) == 2  # disabled: plain call
        with obs.use(trace=True):
            assert work(1) == 2
            (event,) = obs.drain_events()
        assert event["name"] == "imaging.vjp"

    def test_span_error_annotation(self):
        with obs.use(trace=True):
            with pytest.raises(RuntimeError):
                with obs.span("solver.iter"):
                    raise RuntimeError("boom")
            (event,) = obs.drain_events()
        assert event["error"] == "RuntimeError"

    def test_nesting_across_map_conditions_threads(self):
        """Worker-thread spans keep their parent via context propagation."""

        def task(i: int) -> int:
            with obs.span("engine.condition", index=i):
                time.sleep(0.002)
            return threading.get_ident()

        main_tid = threading.get_ident()
        with obs.use(trace=True):
            with fftlib.use(condition_workers=2, budget=4):
                with obs.span("engine.conditions"):
                    tids = fftlib.map_conditions(task, 4)
            events = obs.drain_events()
        children = [ev for ev in events if ev["name"] == "engine.condition"]
        assert len(children) == 4
        # the fan-out left the caller's thread (the pool holds at least
        # one worker; on multi-core machines the groups spread further),
        # yet every child still sees the ambient engine.conditions span
        # as its parent because map_conditions copies the context per
        # group
        assert main_tid not in set(tids)
        assert {ev["tid"] for ev in children} == set(tids)
        assert {ev["parent"] for ev in children} == {"engine.conditions"}
        assert sorted(ev["args"]["index"] for ev in children) == [0, 1, 2, 3]


class TestMetrics:
    def test_counter_gauge_histogram_roundtrip(self):
        with obs.use(metrics=True):
            obs.counter("imaging.chunks").inc()
            obs.counter("imaging.chunks").inc(2)
            obs.gauge("solver.loss").set(0.25)
            obs.histogram("solver.iter_seconds").observe(0.5)
            obs.histogram("solver.iter_seconds").observe(1.5)
            vals = obs.values()
        assert vals["imaging.chunks"] == 3
        assert vals["solver.loss"] == 0.25
        hist = vals["solver.iter_seconds"]
        assert hist["count"] == 2
        assert hist["min"] == 0.5 and hist["max"] == 1.5
        assert hist["mean"] == pytest.approx(1.0)

    def test_observe_iteration_feeds_registry(self):
        class Rec:
            loss = 2.5
            seconds = 0.01

        with obs.use(metrics=True):
            obs.observe_iteration(Rec(), grad=np.array([3.0, 4.0]))
            vals = obs.values()
        assert vals["solver.iterations"] == 1
        assert vals["solver.loss"] == 2.5
        assert vals["solver.grad_norm"] == pytest.approx(5.0)
        assert vals["solver.iter_seconds"]["count"] == 1

    def test_solver_iterations_metered_end_to_end(self):
        kernels = (np.random.default_rng(0).standard_normal((S, N, N)) * 0.2).astype(
            complex
        )
        weights = np.linspace(1.0, 0.5, S)
        mask = np.random.default_rng(1).standard_normal((N, N))
        with obs.use(metrics=True):
            _imaging_pass(kernels, weights, mask)
            vals = obs.values()
        assert vals["imaging.fft2"] >= 1
        assert vals["imaging.ifft2"] >= 1
        assert vals["imaging.chunks"] >= 1


class TestDisabledOverhead:
    def test_disabled_hooks_within_two_percent_of_microbench(self):
        """The per-hook disabled cost, scaled to the hook count of one
        fused-imaging pass, must stay under 2% of that pass's wall time.

        Measured this way (hook cost x count vs. run time) instead of
        diffing two timed runs of identical code, which flakes on
        shared runners.
        """
        rng = np.random.default_rng(7)
        kernels = (
            rng.standard_normal((S, N, N)) + 1j * rng.standard_normal((S, N, N))
        ) * 0.3
        weights = np.linspace(1.0, 0.2, S)
        mask = rng.standard_normal((3, N, N))

        # count the hooks one instrumented pass fires
        with obs.use(trace=True, metrics=True):
            _imaging_pass(kernels, weights, mask)
            hook_count = len(obs.drain_events()) + sum(
                v for v in obs.values().values() if isinstance(v, int)
            )
        obs.reset_metrics()

        # time the pass with obs disabled (best of 3 for stability)
        run_s = min(
            _timed(lambda: _imaging_pass(kernels, weights, mask)) for _ in range(3)
        )

        # time the disabled hooks themselves, amortized over many calls
        reps = 2000
        hook_s = _timed(lambda: _fire_hooks(reps)) / reps

        overhead = hook_s * hook_count
        assert overhead < 0.02 * run_s, (
            f"{hook_count} disabled hooks cost {overhead * 1e6:.1f}us "
            f"vs run {run_s * 1e6:.1f}us"
        )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _fire_hooks(reps: int) -> None:
    for _ in range(reps):
        with obs.span("fft.chunk"):
            pass
        obs.counter("imaging.chunks").inc()


class TestChromeTraceExport:
    def _sample_trace(self):
        with obs.use(trace=True, metrics=True):
            with obs.span("harness.cell", label="DS/c0/M"):
                with obs.span("solver.iter", idx=0):
                    obs.counter("solver.iterations").inc()
            trace = obs.chrome_trace(obs.drain_events(), metrics=obs.values())
        obs.reset_metrics()
        return trace

    def test_schema_valid_and_json_roundtrips(self):
        trace = self._sample_trace()
        parsed = json.loads(json.dumps(trace))
        assert parsed["displayTimeUnit"] == "ms"
        events = parsed["traceEvents"]
        assert all(ev["ph"] in ("X", "M") for ev in events)
        spans = [ev for ev in events if ev["ph"] == "X"]
        assert {ev["name"] for ev in spans} == {"harness.cell", "solver.iter"}
        for ev in spans:
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            assert ev["cat"] in ("harness", "solver")
        meta = [ev for ev in events if ev["ph"] == "M"]
        assert any(ev["name"] == "process_name" for ev in meta)
        assert parsed["otherData"]["metrics"]["solver.iterations"] == 1

    def test_summary_table_renders(self):
        with obs.use(metrics=True):
            obs.counter("harness.cells").inc()
            text = obs.summary_table(obs.snapshot())
        obs.reset_metrics()
        assert "harness.cells" in text
        assert "fftlib" in text


class TestConfigForwarding:
    def test_export_apply_roundtrip(self, tmp_path):
        with obs.use(trace=True, metrics=True, shard_dir=str(tmp_path)):
            config = obs.export_config()
        assert config["trace"] and config["metrics"]
        assert config["shard_dir"] == str(tmp_path)
        obs.apply_config(config)
        try:
            assert obs.trace_enabled() and obs.metrics_enabled()
            assert obs.shard_dir() == str(tmp_path)
        finally:
            obs.disable()
