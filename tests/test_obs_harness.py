"""Cross-process observability through the harness.

Pins the determinism contract of the shard merge: a ``workers=2``
``run_matrix`` sweep under tracing must reduce to a canonical trace
byte-identical to the serial run's, with equal integer counters —
regardless of process count, thread interleaving, or which worker ran
which cell.  (Raw merged metrics are *not* comparable across runs:
histograms carry wall-clock totals.)
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.geometry import Rect
from repro.harness import RunSettings, run_matrix
from repro.layouts import Clip, Dataset
from repro.layouts.synth import ClipStyle
from repro.optics import OpticalConfig

METHODS = ("NILT", "Abbe-MO")


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset_metrics()
    obs.drain_events()
    yield
    obs.disable()
    obs.reset_metrics()
    obs.drain_events()


def _tiny_dataset(n_clips: int = 2) -> Dataset:
    clips = tuple(
        Clip(
            name=f"c{i}",
            rects=(Rect(100 + 30 * i, 100, 300, 180),),
            cd_nm=32,
            tile_nm=500,
        )
        for i in range(n_clips)
    )
    style = ClipStyle(name="T", cd_nm=32, tile_nm=500, target_area_nm2=20000)
    return Dataset(name="TINY", clips=clips, style=style)


def _settings() -> RunSettings:
    return RunSettings(
        config=OpticalConfig.preset("tiny"),
        iterations=2,
        num_kernels=8,
        unroll_steps=1,
        terms=2,
    )


def _traced_sweep(tmp_path, workers: int):
    """Run the sweep under tracing; return (merged trace, records)."""
    shard_dir = tmp_path / f"shards-w{workers}"
    shard_dir.mkdir()
    labels = []

    def progress(event):
        if event.status == "start":
            labels.append(event.label)

    ds = _tiny_dataset(2)
    with obs.use(trace=True, metrics=True, shard_dir=str(shard_dir)):
        records = run_matrix(
            [ds], _settings(), methods=METHODS, workers=workers, progress=progress
        )
        trace = obs.merge_shards(obs.discover_shards(str(shard_dir)), labels)
    obs.reset_metrics()
    obs.drain_events()
    return trace, records


def _int_counters(trace) -> dict:
    return {
        k: v
        for k, v in trace["otherData"]["metrics"].items()
        if isinstance(v, int)
    }


class TestShardMergeDeterminism:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs-harness")
        serial, serial_records = _traced_sweep(tmp, workers=1)
        parallel, parallel_records = _traced_sweep(tmp, workers=2)
        return serial, parallel, serial_records, parallel_records

    def test_canonical_trace_is_worker_count_invariant(self, traces):
        serial, parallel, _, _ = traces
        assert obs.canonical_trace_bytes(serial) == obs.canonical_trace_bytes(
            parallel
        )

    def test_int_counters_match_across_worker_counts(self, traces):
        serial, parallel, _, _ = traces
        counters = _int_counters(serial)
        assert counters == _int_counters(parallel)
        assert counters["harness.cells"] == 4
        assert counters["solver.iterations"] == 2 * 4  # 2 iters x 4 cells
        assert counters["imaging.chunks"] >= 4

    def test_records_unaffected_by_tracing(self, traces):
        serial, parallel, serial_records, parallel_records = traces
        assert len(serial_records) == len(parallel_records) == 4
        for a, b in zip(serial_records, parallel_records):
            assert (a.method, a.clip) == (b.method, b.clip)
            assert a.final_loss == b.final_loss
            assert a.losses.tobytes() == b.losses.tobytes()

    def test_merged_trace_covers_every_cell(self, traces):
        _, parallel, _, _ = traces
        other = parallel["otherData"]
        expected = [
            "TINY/c0/NILT",
            "TINY/c0/Abbe-MO",
            "TINY/c1/NILT",
            "TINY/c1/Abbe-MO",
        ]
        assert other["labels"] == expected
        assert other["missing"] == []
        spans = [ev for ev in parallel["traceEvents"] if ev["ph"] == "X"]
        cell_spans = [ev for ev in spans if ev["name"] == "harness.cell"]
        assert sorted(ev["args"]["label"] for ev in cell_spans) == sorted(expected)
        # every cell contributed nested solver spans, not just the shell
        for label in expected:
            names = {
                ev["name"] for ev in spans if ev["args"].get("cell") == label
            }
            assert "solver.iter" in names

    def test_worker_lanes_and_warmup_records(self, traces):
        serial, parallel, _, _ = traces
        assert serial["otherData"]["workers"] == 1
        assert parallel["otherData"]["workers"] == 2
        # pool initializers parked their warmup spans under @warmup
        assert parallel["otherData"]["warmups"] == 2
        pids = {
            ev["pid"] for ev in parallel["traceEvents"] if ev["ph"] == "X"
        }
        assert pids == {0, 1}

    def test_merged_trace_is_valid_chrome_json(self, traces):
        _, parallel, _, _ = traces
        parsed = json.loads(json.dumps(parallel, sort_keys=True))
        assert parsed["displayTimeUnit"] == "ms"
        for ev in parsed["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            if ev["ph"] == "X":
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
                assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0


class TestCellScope:
    def test_cell_scope_writes_one_shard_record(self, tmp_path):
        with obs.use(trace=True, metrics=True, shard_dir=str(tmp_path)):
            with obs.cell_scope("DS/c0/M"):
                with obs.span("solver.iter", idx=0):
                    obs.counter("solver.iterations").inc()
        paths = obs.discover_shards(str(tmp_path))
        assert len(paths) == 1
        (record,) = [json.loads(line) for line in open(paths[0])]
        assert record["label"] == "DS/c0/M"
        names = [ev["name"] for ev in record["events"]]
        assert "harness.cell" in names and "solver.iter" in names
        # the shard carries the cell's metric *delta*
        assert record["metrics"]["solver.iterations"] == 1
        assert record["metrics"]["harness.cells"] == 1

    def test_cell_scope_disabled_is_silent(self, tmp_path):
        with obs.cell_scope("DS/c0/M"):
            pass
        assert obs.discover_shards(str(tmp_path)) == []
        assert obs.values() == {}

    def test_flush_shard_parks_warmup_events(self, tmp_path):
        with obs.use(trace=True, shard_dir=str(tmp_path)):
            with obs.span("harness.warmup"):
                pass
            obs.flush_shard()
        (path,) = obs.discover_shards(str(tmp_path))
        (record,) = [json.loads(line) for line in open(path)]
        assert record["label"] == obs.WARMUP_LABEL
        assert [ev["name"] for ev in record["events"]] == ["harness.warmup"]
